//! Ablation A3: compatibility-aware vs locality-only placement across
//! job mixes.
//!
//! Runs several arrival orders of split-forcing job streams through both
//! placement policies and reports each cluster's mean slowdown, then times
//! the placement decision itself (the solver-in-the-loop cost a real
//! scheduler would pay per arrival).

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::cluster::{run, ClusterConfig};
use scheduler::{ClusterScheduler, SchedulerConfig};
use simtime::{Bandwidth, Dur};
use topology::builders::two_tier;
use workload::{JobSpec, Model};

fn stream(order: usize) -> Vec<JobSpec> {
    let w3 = |spec: JobSpec| JobSpec { workers: 3, ..spec };
    let mut jobs = vec![
        w3(JobSpec::reference(Model::BertLarge, 8)),
        w3(JobSpec::reference(Model::Vgg19, 1200)),
        JobSpec::reference(Model::ResNet50, 1600),
    ];
    let n = jobs.len();
    jobs.rotate_left(order % n);
    jobs
}

fn reproduce() {
    banner("Ablation A3 — placement policy vs mean slowdown, 3 arrival orders");
    println!(
        "{:<16} {:>18} {:>22}",
        "arrival order", "locality slowdown", "compat-aware slowdown"
    );
    for order in 0..3 {
        let cfg = ClusterConfig {
            jobs: stream(order),
            iterations: 12,
            warmup: 4,
            ..ClusterConfig::default()
        };
        let r = run(&cfg);
        println!(
            "{:<16} {:>17.2}× {:>21.2}×",
            format!("rotation {order}"),
            r.locality.mean_slowdown(),
            r.compatibility.mean_slowdown()
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    // Time the placement decision alone (profiling + closure + solve).
    c.bench_function("ablation_placement/submit_3_jobs_compat_aware", |b| {
        b.iter(|| {
            let fabric = two_tier(
                4,
                2,
                2,
                Bandwidth::from_gbps(50),
                Bandwidth::from_gbps(50),
                Dur::ZERO,
            );
            let mut s = ClusterScheduler::new(fabric, SchedulerConfig::compatibility_aware());
            for spec in stream(0) {
                s.submit(spec).unwrap();
            }
            s.cluster_verdict()
        })
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
