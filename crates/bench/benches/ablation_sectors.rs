//! Ablation A1: sector resolution vs solver accuracy and cost.
//!
//! The paper discretizes the circle "for scalability" without saying how
//! finely. This ablation sweeps the sector count on a *tight* instance —
//! two jobs whose communication arcs exactly fill the circle — where
//! coarse, conservative quantization must eventually report a false
//! incompatible, and measures where that happens and what resolution
//! costs.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geometry::{solve_pair, Profile, SolverConfig};
use simtime::Dur;

fn tight_pair() -> (Profile, Profile) {
    // 49% + 49% comm: feasible, but only with ≈2% of the circle spare.
    (
        Profile::compute_then_comm(Dur::from_millis(51), Dur::from_millis(49)),
        Profile::compute_then_comm(Dur::from_millis(51), Dur::from_millis(49)),
    )
}

fn reproduce() {
    banner("Ablation A1 — sector resolution vs verdict on a 2% -slack instance");
    let (a, b) = tight_pair();
    println!("{:<10} {:>12} {:>14}", "sectors", "verdict", "overlap est.");
    for sectors in [45, 90, 180, 360, 720, 1440, 2880, 5760] {
        let cfg = SolverConfig {
            sectors,
            ..SolverConfig::default()
        };
        let v = solve_pair(&a, &b, &cfg).unwrap();
        println!(
            "{sectors:<10} {:>12} {:>13.2}%",
            if v.is_compatible() {
                "compatible"
            } else {
                "INCOMPATIBLE"
            },
            v.overlap_fraction() * 100.0
        );
    }
    println!(
        "(conservative quantization pads each arc by up to one sector, so very\n\
         coarse circles reject this feasible instance — resolution buys accuracy)"
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let (a, b) = tight_pair();
    let mut group = c.benchmark_group("ablation_sectors/solve_pair");
    for sectors in [180usize, 720, 2880] {
        let cfg = SolverConfig {
            sectors,
            ..SolverConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(sectors), &cfg, |bch, cfg| {
            bch.iter(|| solve_pair(&a, &b, cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
