//! Ablation A2: how strong must the unfairness knob be?
//!
//! Sweeps the aggressive job's DCQCN timer `T` (the default peer stays at
//! 125 µs) on the Fig. 1 pair and reports each setting's first-iteration
//! bandwidth split and steady-state speedup over fair sharing. The paper
//! uses 100 µs; the sweep shows the payoff is robust across a wide band —
//! any persistent asymmetry suffices to trigger the slide.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcc::experiments::fig1::{run, Fig1Config};
use simtime::Dur;

fn cfg_with_timer(us: u64, iterations: usize) -> Fig1Config {
    Fig1Config {
        iterations,
        aggressive_timer: Dur::from_micros(us),
        ..Fig1Config::default()
    }
}

fn reproduce() {
    banner("Ablation A2 — unfairness strength (aggressive T) vs payoff");
    println!(
        "{:<8} {:>14} {:>12} {:>12}",
        "T (µs)", "1st-iter split", "J1 speedup", "J2 speedup"
    );
    for t_us in [60, 80, 100, 110, 120] {
        let r = run(&cfg_with_timer(t_us, 20));
        let sp = r.speedups();
        println!(
            "{t_us:<8} {:>6.1}/{:<6.1} {:>12} {:>12}",
            r.unfair.first_iteration_bw[0],
            r.unfair.first_iteration_bw[1],
            sp[0].to_string(),
            sp[1].to_string()
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("ablation_unfairness/fig1_run");
    for t_us in [80u64, 100, 120] {
        let cfg = cfg_with_timer(t_us, 6);
        group.bench_with_input(BenchmarkId::from_parameter(t_us), &cfg, |bch, cfg| {
            bch.iter(|| run(cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
