//! Regenerates the §4.i adaptively-unfair congestion-control experiment
//! and times one pair run.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::adaptive::{run, AdaptiveConfig};

fn reproduce() {
    banner("§4.i — adaptively unfair congestion control");
    let r = run(&AdaptiveConfig::default());
    println!("{}", r.render());
    let (stat, adapt) = r.victim_speedups();
    println!("incompatible victim: static {stat} vs adaptive {adapt} (adaptive must spare it)");
}

fn bench(c: &mut Criterion) {
    reproduce();
    let quick = AdaptiveConfig {
        iterations: 8,
        warmup: 3,
        ..AdaptiveConfig::default()
    };
    c.bench_function("adaptive/five_scenarios_8_iters", |b| {
        b.iter(|| run(&quick))
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
