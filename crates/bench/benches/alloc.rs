//! Allocation-kernel performance: the incremental progressive-filling
//! solver against the from-scratch reference oracle on a dense 64-flow ×
//! 16-link instance, plus an end-to-end fluid run (the fig1 pair) that
//! exercises the solver the way the simulator does — persistent scratch,
//! active-set reuse, cached completions.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::alloc::{
    reference, strict_priority_into, weighted_max_min_into, AllocScratch, FlowDemand,
};
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use simtime::{Bandwidth, Dur};
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

const LINKS: usize = 16;
const FLOWS: usize = 64;

/// A dense deterministic instance: every flow crosses three links spread
/// over the fabric, weights and priorities cycle, half the flows carry
/// distinct rate caps so progressive filling freezes them one level at a
/// time — the many-round regime where the per-round rescan of the
/// reference solver is quadratic.
fn instance() -> (Vec<Vec<usize>>, Vec<f64>) {
    let links: Vec<Vec<usize>> = (0..FLOWS)
        .map(|i| {
            let mut v = vec![i % LINKS, (i * 7 + 3) % LINKS, (i * 5 + 11) % LINKS];
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let caps: Vec<f64> = (0..LINKS)
        .map(|l| (40 + 5 * (l % 4)) as f64 * 1e9)
        .collect();
    (links, caps)
}

fn demands(links: &[Vec<usize>]) -> Vec<FlowDemand<'_>> {
    links
        .iter()
        .enumerate()
        .map(|(i, l)| FlowDemand {
            links: l,
            weight: 1.0 + (i % 4) as f64,
            priority: (i % 3) as u8,
            rate_cap: if i % 2 == 0 {
                (i + 1) as f64 * 0.2e9
            } else {
                f64::INFINITY
            },
        })
        .collect()
}

fn reproduce() {
    banner("Allocation kernel — incremental vs from-scratch reference");
    let (links, caps) = instance();
    let flows = demands(&links);
    let mut scratch = AllocScratch::default();
    let mut rates = Vec::new();
    weighted_max_min_into(&flows, &caps, &mut scratch, &mut rates);
    let oracle = reference::weighted_max_min(&flows, &caps);
    let div = rates
        .iter()
        .zip(&oracle)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "{FLOWS} flows x {LINKS} links: total allocated {:.1} Gbps, max divergence from reference {div:.2e} bps",
        rates.iter().sum::<f64>() / 1e9
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let (links, caps) = instance();
    let flows = demands(&links);

    let mut scratch = AllocScratch::default();
    let mut rates = Vec::new();
    c.bench_function("alloc/weighted_max_min_64x16", |b| {
        b.iter(|| {
            weighted_max_min_into(&flows, &caps, &mut scratch, &mut rates);
            rates[0]
        })
    });
    c.bench_function("alloc/weighted_max_min_64x16_reference", |b| {
        b.iter(|| reference::weighted_max_min(&flows, &caps)[0])
    });
    c.bench_function("alloc/strict_priority_64x16", |b| {
        b.iter(|| {
            strict_priority_into(&flows, &caps, &mut scratch, &mut rates);
            rates[0]
        })
    });
    c.bench_function("alloc/strict_priority_64x16_reference", |b| {
        b.iter(|| reference::strict_priority(&flows, &caps)[0])
    });

    // End-to-end: the fig1 pair in the fluid engine — dominated by the
    // allocator plus the completion scheduler.
    let specs = [
        JobSpec::reference(Model::Vgg19, 1200),
        JobSpec::reference(Model::Vgg19, 1200),
    ];
    c.bench_function("alloc/fluid_fig1_pair_10iters", |b| {
        b.iter(|| {
            let d = dumbbell(
                2,
                Bandwidth::from_gbps(50),
                Bandwidth::from_gbps(50),
                Dur::ZERO,
            );
            let t = &d.topology;
            let jobs: Vec<FluidJob> = (0..2)
                .map(|i| {
                    let path = t
                        .route(topology::FlowKey {
                            src: d.left_hosts[i],
                            dst: d.right_hosts[i],
                            tag: 0,
                        })
                        .unwrap();
                    FluidJob::single_path(specs[i], path.links().to_vec())
                })
                .collect();
            let mut sim = FluidSimulator::new(t, FluidConfig::fair(), &jobs);
            let per = specs[0].iteration_time_at(Bandwidth::from_gbps(50));
            assert!(sim.run_until_iterations(10, per * 60));
            sim.progress(0).completed()
        })
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
