//! Regenerates the §5 cluster-level placement experiment and times the
//! placement + evaluation pipeline.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::cluster::{run, ClusterConfig};

fn reproduce() {
    banner("§5 — locality-only vs compatibility-aware placement");
    let r = run(&ClusterConfig::default());
    println!("{}", r.render());
    println!(
        "contended links: locality {} vs compat-aware {}",
        r.locality.contended_links, r.compatibility.contended_links
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let quick = ClusterConfig {
        iterations: 6,
        warmup: 2,
        ..ClusterConfig::default()
    };
    c.bench_function("cluster/both_policies_6_iters", |b| b.iter(|| run(&quick)));
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
