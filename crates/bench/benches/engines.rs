//! Engine performance: simulated-time throughput of the three network
//! engines — how much cluster time one wall-clock second buys at each
//! fidelity level.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use dcqcn::CcVariant;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use simtime::{Bandwidth, Dur};
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

fn pair() -> [JobSpec; 2] {
    [
        JobSpec::reference(Model::ResNet50, 400),
        JobSpec::reference(Model::ResNet50, 400),
    ]
}

fn reproduce() {
    banner("Engine fidelity ladder — cost of simulating 200 ms of cluster time");
    println!(
        "fluid (event-driven allocation)  ≪  rate (5 µs DCQCN steps)  ≪  packet (per-packet events)"
    );
    println!("(timings follow from Criterion below)");
}

fn bench(c: &mut Criterion) {
    reproduce();
    let span = Dur::from_millis(200);
    let specs = pair();

    c.bench_function("engines/fluid_200ms_2jobs", |b| {
        b.iter(|| {
            let d = dumbbell(
                2,
                Bandwidth::from_gbps(50),
                Bandwidth::from_gbps(50),
                Dur::ZERO,
            );
            let t = &d.topology;
            let jobs: Vec<FluidJob> = (0..2)
                .map(|i| {
                    let path = t
                        .route(topology::FlowKey {
                            src: d.left_hosts[i],
                            dst: d.right_hosts[i],
                            tag: 0,
                        })
                        .unwrap();
                    FluidJob::single_path(specs[i], path.links().to_vec())
                })
                .collect();
            let mut sim = FluidSimulator::new(t, FluidConfig::fair(), &jobs);
            sim.run_for(span);
            sim.progress(0).completed()
        })
    });

    c.bench_function("engines/rate_200ms_2jobs", |b| {
        b.iter(|| {
            let jobs = [
                RateJob::new(specs[0], CcVariant::Fair),
                RateJob::new(specs[1], CcVariant::Fair),
            ];
            let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
            sim.run_for(span);
            sim.progress(0).completed()
        })
    });

    c.bench_function("engines/packet_200ms_2jobs", |b| {
        b.iter(|| {
            let jobs = [
                PacketJob {
                    spec: specs[0],
                    variant: CcVariant::Fair,
                },
                PacketJob {
                    spec: specs[1],
                    variant: CcVariant::Fair,
                },
            ];
            let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
            sim.run_until(simtime::Time::ZERO + span);
            sim.packet_counts().0
        })
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
