//! Engine performance: simulated-time throughput of the three network
//! engines — how much cluster time one wall-clock second buys at each
//! fidelity level.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use dcqcn::CcVariant;
use diagnostics::RunSummary;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use simtime::{Bandwidth, Dur};
use std::time::Instant;
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

fn pair() -> [JobSpec; 2] {
    [
        JobSpec::reference(Model::ResNet50, 400),
        JobSpec::reference(Model::ResNet50, 400),
    ]
}

fn run_packet(train_packets: u32, span: Dur) -> (f64, u64) {
    let specs = pair();
    let jobs = [
        PacketJob::new(specs[0], CcVariant::Fair),
        PacketJob::new(specs[1], CcVariant::Fair),
    ];
    let mut sim = PacketSimulator::new(
        PacketSimConfig {
            train_packets,
            ..PacketSimConfig::default()
        },
        &jobs,
    );
    let t0 = Instant::now();
    sim.run_until(simtime::Time::ZERO + span);
    (t0.elapsed().as_secs_f64(), sim.events_processed())
}

fn run_rate(adaptive_step: bool, span: Dur) -> (f64, u64) {
    let specs = pair();
    let jobs = [
        RateJob::new(specs[0], CcVariant::Fair),
        RateJob::new(specs[1], CcVariant::Fair),
    ];
    let mut sim = RateSimulator::new(
        RateSimConfig {
            adaptive_step,
            ..RateSimConfig::default()
        },
        &jobs,
    );
    let t0 = Instant::now();
    sim.run_for(span);
    (t0.elapsed().as_secs_f64(), sim.steps())
}

/// Writes `BENCH_packet.json` / `BENCH_rate.json` (the flat `RunSummary`
/// schema) so the speedup trajectory of this PR's optimisations is
/// machine-diffable. The directory comes from `BENCH_SUMMARY_DIR`,
/// defaulting to `target/bench-summaries`.
fn write_summaries() {
    let dir =
        std::env::var("BENCH_SUMMARY_DIR").unwrap_or_else(|_| "target/bench-summaries".to_string());
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let span = Dur::from_millis(200);

    let mut packet = RunSummary::new("packet");
    // Warm up, then one timed run per variant (criterion below gives the
    // statistically careful numbers; this json records the trajectory).
    run_packet(1, Dur::from_millis(20));
    let (w1, e1) = run_packet(1, span);
    let (w64, e64) = run_packet(64, span);
    packet.put("train1.wall_clock_secs", w1);
    packet.put("train1.events", e1 as f64);
    packet.put("train64.wall_clock_secs", w64);
    packet.put("train64.events", e64 as f64);
    packet.put("train64.speedup", w1 / w64);
    println!(
        "packet 200 ms: train=1 {:.3}s ({e1} events) -> train=64 {:.3}s ({e64} events), {:.1}x",
        w1,
        w64,
        w1 / w64
    );
    let _ = std::fs::write(format!("{dir}/BENCH_packet.json"), packet.to_json());

    let mut rate = RunSummary::new("rate");
    run_rate(false, Dur::from_millis(20));
    let (wf, sf) = run_rate(false, span);
    let (wa, sa) = run_rate(true, span);
    rate.put("fixed.wall_clock_secs", wf);
    rate.put("fixed.steps", sf as f64);
    rate.put("adaptive.wall_clock_secs", wa);
    rate.put("adaptive.steps", sa as f64);
    rate.put("adaptive.speedup", wf / wa);
    println!(
        "rate 200 ms: fixed {:.3}s ({sf} steps) -> adaptive {:.3}s ({sa} steps), {:.1}x",
        wf,
        wa,
        wf / wa
    );
    let _ = std::fs::write(format!("{dir}/BENCH_rate.json"), rate.to_json());
}

fn reproduce() {
    banner("Engine fidelity ladder — cost of simulating 200 ms of cluster time");
    println!(
        "fluid (event-driven allocation)  ≪  rate (5 µs DCQCN steps)  ≪  packet (per-packet events)"
    );
    println!("(timings follow from Criterion below)");
    write_summaries();
}

fn bench(c: &mut Criterion) {
    reproduce();
    let span = Dur::from_millis(200);
    let specs = pair();

    c.bench_function("engines/fluid_200ms_2jobs", |b| {
        b.iter(|| {
            let d = dumbbell(
                2,
                Bandwidth::from_gbps(50),
                Bandwidth::from_gbps(50),
                Dur::ZERO,
            );
            let t = &d.topology;
            let jobs: Vec<FluidJob> = (0..2)
                .map(|i| {
                    let path = t
                        .route(topology::FlowKey {
                            src: d.left_hosts[i],
                            dst: d.right_hosts[i],
                            tag: 0,
                        })
                        .unwrap();
                    FluidJob::single_path(specs[i], path.links().to_vec())
                })
                .collect();
            let mut sim = FluidSimulator::new(t, FluidConfig::fair(), &jobs);
            sim.run_for(span);
            sim.progress(0).completed()
        })
    });

    c.bench_function("engines/rate_200ms_2jobs", |b| {
        b.iter(|| {
            let jobs = [
                RateJob::new(specs[0], CcVariant::Fair),
                RateJob::new(specs[1], CcVariant::Fair),
            ];
            let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
            sim.run_for(span);
            sim.progress(0).completed()
        })
    });

    c.bench_function("engines/packet_200ms_2jobs", |b| {
        b.iter(|| {
            let jobs = [
                PacketJob::new(specs[0], CcVariant::Fair),
                PacketJob::new(specs[1], CcVariant::Fair),
            ];
            let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
            sim.run_until(simtime::Time::ZERO + span);
            sim.packet_counts().0
        })
    });

    // This PR's optimisations: packet trains and adaptive stepping.
    c.bench_function("engines/packet_200ms_2jobs_train64", |b| {
        b.iter(|| {
            let jobs = [
                PacketJob::new(specs[0], CcVariant::Fair),
                PacketJob::new(specs[1], CcVariant::Fair),
            ];
            let mut sim = PacketSimulator::new(
                PacketSimConfig {
                    train_packets: 64,
                    ..PacketSimConfig::default()
                },
                &jobs,
            );
            sim.run_until(simtime::Time::ZERO + span);
            sim.packet_counts().0
        })
    });

    c.bench_function("engines/rate_200ms_2jobs_adaptive", |b| {
        b.iter(|| {
            let jobs = [
                RateJob::new(specs[0], CcVariant::Fair),
                RateJob::new(specs[1], CcVariant::Fair),
            ];
            let mut sim = RateSimulator::new(
                RateSimConfig {
                    adaptive_step: true,
                    ..RateSimConfig::default()
                },
                &jobs,
            );
            sim.run_for(span);
            sim.progress(0).completed()
        })
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
