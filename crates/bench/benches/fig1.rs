//! Regenerates Fig. 1 (first-iteration bandwidth shares + iteration-time
//! CDF) and times one fair-scenario run.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::fig1::{run, Fig1Config};

fn reproduce() {
    banner("Fig. 1 — fair vs unfair DCQCN, two VGG19(1200) jobs");
    let cfg = Fig1Config {
        iterations: 60,
        ..Fig1Config::default()
    };
    let r = run(&cfg);
    println!("{}", r.render());
    let sp = r.speedups();
    println!(
        "median speedups: J1 {}, J2 {} (paper testbed: ≈1.23× both)",
        sp[0], sp[1]
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let quick = Fig1Config {
        iterations: 8,
        warmup: 2,
        ..Fig1Config::default()
    };
    c.bench_function("fig1/both_scenarios_8_iters", |b| b.iter(|| run(&quick)));
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
