//! Regenerates Fig. 2 (the sliding effect: per-iteration contended time)
//! and times the traced two-scenario run.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::fig2::{run, Fig2Config};

fn reproduce() {
    banner("Fig. 2 — link-utilization sliding, fair vs unfair");
    let cfg = Fig2Config::default();
    let r = run(&cfg);
    println!("{}", r.render());
    match r.interleaved_at() {
        Some(i) => println!(
            "phases fully interleaved by iteration {} (paper: by the fourth)",
            i + 1
        ),
        None => println!("phases never fully interleaved"),
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let quick = Fig2Config {
        iterations: 4,
        ..Fig2Config::default()
    };
    c.bench_function("fig2/traced_4_iters", |b| b.iter(|| run(&quick)));
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
