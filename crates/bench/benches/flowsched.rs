//! Regenerates the §4.iii flow-scheduling experiment and times the gated
//! fluid run.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::flowsched::{run, FlowschedConfig};

fn reproduce() {
    banner("§4.iii — precise flow scheduling from rotation angles");
    let r = run(&FlowschedConfig::default());
    println!("{}", r.render());
}

fn bench(c: &mut Criterion) {
    reproduce();
    let quick = FlowschedConfig {
        iterations: 8,
        warmup: 3,
        ..FlowschedConfig::default()
    };
    c.bench_function("flowsched/solve_gate_run_8_iters", |b| {
        b.iter(|| run(&quick))
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
