//! Regenerates Figs. 3–5 (the geometric abstraction) and times the
//! rotation solver on representative instances.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use geometry::{solve, solve_pair, Profile, SolverConfig};
use mlcc::experiments::geometry_demo::{fig3, fig4, fig5};
use simtime::Dur;

fn reproduce() {
    banner("Figs. 3–5 — the geometric abstraction");
    let f3 = fig3(8);
    println!(
        "Fig. 3: VGG16 circle — perimeter {}, comm arc {}; arcs stable over {} iterations: {}",
        f3.profile.period(),
        f3.profile.comm_time(),
        f3.per_iteration_checks.len(),
        f3.per_iteration_checks.iter().all(|&(c, m)| !c && m),
    );
    let f4 = fig4();
    println!(
        "Fig. 4: same-period pair — {} ms initial overlap, rotated apart: {}",
        f4.overlap_at_zero_ms,
        f4.verdict.is_compatible()
    );
    let f5 = fig5();
    let rot = f5.verdict.rotations().expect("fig5 compatible")[1];
    println!(
        "Fig. 5: unified circle {} (reps {:?}); J2 rotation {:.1}°",
        f5.perimeter, f5.repetitions, rot.degrees
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let cfg = SolverConfig::default();
    // Exact two-job scan (the Fig. 4/5 kernel).
    let a = Profile::compute_then_comm(Dur::from_millis(141), Dur::from_millis(114));
    let b = Profile::compute_then_comm(Dur::from_millis(200), Dur::from_millis(55));
    c.bench_function("geometry/solve_pair_720_sectors", |bch| {
        bch.iter(|| solve_pair(&a, &b, &cfg).unwrap())
    });
    // Three-job DFS (the Table 1 group-5 kernel).
    let trio = [
        Profile::compute_then_comm(Dur::from_micros(166_280), Dur::from_micros(118_720)),
        Profile::compute_then_comm(Dur::from_micros(171_080), Dur::from_micros(113_920)),
        Profile::compute_then_comm(Dur::from_micros(121_540), Dur::from_micros(20_960)),
    ];
    c.bench_function("geometry/solve_trio_720_sectors", |bch| {
        bch.iter(|| solve(&trio, &cfg).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
