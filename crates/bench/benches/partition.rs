//! Shard-plan construction: `topology::partition` over the conflict graph
//! of a cluster-scale job population (1k jobs). The planner runs once per
//! sharded scenario, so it must stay negligible next to even one solver
//! epoch — these benches pin its cost across the plan shapes that matter:
//!
//! * **disjoint** — many small components (the best case for sharding);
//! * **chained** — jobs overlap pairwise into a few long chains, the
//!   worst case for union-find path compression;
//! * **collapsed** — every job crosses one shared spine link, the
//!   degenerate single-component plan a core fabric produces.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use topology::{partition, LinkId};

const JOBS: usize = 1_000;
/// Links per job route: host uplink, two fabric hops, host downlink.
const PATH: usize = 4;

/// `groups` components of equal size; each job's route is its own private
/// links plus its group's shared bottleneck.
fn grouped(jobs: usize, groups: usize) -> Vec<Vec<LinkId>> {
    (0..jobs)
        .map(|j| {
            let mut links: Vec<LinkId> = (0..PATH - 1)
                .map(|k| LinkId((groups + j * (PATH - 1) + k) as u32))
                .collect();
            links.push(LinkId((j % groups) as u32));
            links
        })
        .collect()
}

/// Pairwise-overlapping chains: job j shares a link with job j+1, forming
/// `chains` long threads of transitive conflicts.
fn chained(jobs: usize, chains: usize) -> Vec<Vec<LinkId>> {
    (0..jobs)
        .map(|j| {
            let mut links = vec![LinkId(j as u32)];
            if j + chains < jobs {
                links.push(LinkId((j + chains) as u32));
            }
            links
        })
        .collect()
}

fn reproduce() {
    banner("Shard planning — conflict-graph partition at 1k jobs");
    let plan = partition(&grouped(JOBS, 8));
    println!(
        "grouped:   {} jobs -> {} components, largest share {:.3}",
        plan.num_jobs(),
        plan.num_components(),
        plan.largest_share()
    );
    assert_eq!(plan.num_components(), 8);
    let plan = partition(&chained(JOBS, 4));
    println!(
        "chained:   {} jobs -> {} components, largest share {:.3}",
        plan.num_jobs(),
        plan.num_components(),
        plan.largest_share()
    );
    assert_eq!(plan.num_components(), 4);
    let plan = partition(&grouped(JOBS, 1));
    println!(
        "collapsed: {} jobs -> {} component(s)",
        plan.num_jobs(),
        plan.num_components()
    );
    assert_eq!(plan.num_components(), 1);
}

fn bench(c: &mut Criterion) {
    reproduce();

    let disjoint = grouped(JOBS, 64);
    c.bench_function("partition/disjoint_1k", |b| {
        b.iter(|| partition(&disjoint).num_components())
    });

    let grouped8 = grouped(JOBS, 8);
    c.bench_function("partition/grouped8_1k", |b| {
        b.iter(|| partition(&grouped8).num_components())
    });

    let chains = chained(JOBS, 4);
    c.bench_function("partition/chained_1k", |b| {
        b.iter(|| partition(&chains).num_components())
    });

    let collapsed = grouped(JOBS, 1);
    c.bench_function("partition/collapsed_1k", |b| {
        b.iter(|| partition(&collapsed).num_components())
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
