//! Regenerates the §4.ii switch-priority-queue experiment and times the
//! fluid strict-priority run.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::priority::{run, PriorityConfig};

fn reproduce() {
    banner("§4.ii — switch priority queues");
    let r = run(&PriorityConfig::default());
    println!("{}", r.render());
}

fn bench(c: &mut Criterion) {
    reproduce();
    let quick = PriorityConfig {
        iterations: 8,
        warmup: 3,
        ..PriorityConfig::default()
    };
    c.bench_function("priority/both_policies_8_iters", |b| b.iter(|| run(&quick)));
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
