//! Event-queue core: the hierarchical timing wheel against the
//! binary-heap reference oracle at simulation-realistic backlogs
//! (1e5–1e6 pending events).
//!
//! Two access patterns:
//!
//! * **churn** — the steady state of a packet simulation: pop the next
//!   event, schedule a replacement a short pseudorandom delay ahead, with
//!   the backlog held constant. This is where the heap pays `O(log n)`
//!   per operation twice and the wheel pays amortized `O(1)`.
//! * **fill+drain** — bulk load then empty, the transient at phase
//!   boundaries.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use eventsim::{queue::reference, EventQueue, Rng};
use simtime::{Dur, Time};

/// Short delays (≤ ~65 µs) keep churn inside the wheel's fine levels,
/// matching packet-engine behaviour (serialization gaps and CNP timers
/// are ns–µs scale).
fn delay(rng: &mut Rng) -> Dur {
    Dur::from_nanos(1 + rng.below(65_536))
}

fn fill_wheel(n: u64) -> (EventQueue<u64>, Rng) {
    let mut q = EventQueue::new();
    let mut rng = Rng::new(7);
    for i in 0..n {
        let at = Time::ZERO + Dur::from_nanos(rng.below(100_000_000));
        q.schedule_at(at, i);
    }
    (q, rng)
}

fn fill_heap(n: u64) -> (reference::EventQueue<u64>, Rng) {
    let mut q = reference::EventQueue::new();
    let mut rng = Rng::new(7);
    for i in 0..n {
        let at = Time::ZERO + Dur::from_nanos(rng.below(100_000_000));
        q.schedule_at(at, i);
    }
    (q, rng)
}

fn reproduce() {
    banner("Event queue — timing wheel vs binary-heap reference");
    // Differential sanity at bench scale: both implementations drain the
    // same 100k-event fill in the same order.
    let (mut w, _) = fill_wheel(100_000);
    let (mut h, _) = fill_heap(100_000);
    let mut n = 0u64;
    while let (Some(a), Some(b)) = (w.pop(), h.pop()) {
        assert_eq!((a.at, a.event), (b.at, b.event));
        n += 1;
    }
    assert!(w.pop().is_none() && h.pop().is_none());
    println!("drain order identical across {n} events (seed 7)");
}

fn bench(c: &mut Criterion) {
    reproduce();

    for &n in &[100_000u64, 1_000_000] {
        let label = if n >= 1_000_000 { "1e6" } else { "1e5" };

        // Steady-state churn at a constant backlog of n.
        let (mut q, mut rng) = fill_wheel(n);
        c.bench_function(&format!("queue/wheel_churn_{label}"), |b| {
            b.iter(|| {
                let ev = q.pop().unwrap();
                q.schedule_at(ev.at + delay(&mut rng), ev.event);
                ev.event
            })
        });
        let (mut q, mut rng) = fill_heap(n);
        c.bench_function(&format!("queue/heap_churn_{label}"), |b| {
            b.iter(|| {
                let ev = q.pop().unwrap();
                q.schedule_at(ev.at + delay(&mut rng), ev.event);
                ev.event
            })
        });

        // Bulk fill + full drain (per-event cost reported over 2n ops).
        c.bench_function(&format!("queue/wheel_fill_drain_{label}"), |b| {
            b.iter(|| {
                let (mut q, _) = fill_wheel(n);
                let mut last = 0u64;
                while let Some(ev) = q.pop() {
                    last = ev.event;
                }
                last
            })
        });
        c.bench_function(&format!("queue/heap_fill_drain_{label}"), |b| {
            b.iter(|| {
                let (mut q, _) = fill_heap(n);
                let mut last = 0u64;
                while let Some(ev) = q.pop() {
                    last = ev.event;
                }
                last
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
