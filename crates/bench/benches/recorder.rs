//! Telemetry overhead: the same fig1 scenario run through the three
//! recorder configurations — the zero-cost `NoopRecorder` (disabled
//! instrumentation monomorphized away), a `BufferRecorder` (full event
//! buffering), and a `TapRecorder` mirroring into a live flight-recorder
//! sink — so the cost of *being watched* stays measured. The disabled
//! path is additionally asserted allocation-free in
//! `tests/recorder_alloc.rs`.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::fig1::{run, run_traced, Fig1Config};
use telemetry::live::{self, LiveConfig};
use telemetry::{BufferRecorder, TapRecorder};

fn quick() -> Fig1Config {
    Fig1Config {
        iterations: 8,
        warmup: 2,
        ..Fig1Config::default()
    }
}

fn reproduce() {
    banner("Recorder overhead — noop vs buffered vs live-tapped fig1");
    let cfg = quick();
    let mut rec = BufferRecorder::new();
    run_traced(&cfg, &mut rec);
    println!(
        "one 8-iteration fig1 run emits {} events across both scenarios",
        rec.len()
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let cfg = quick();

    c.bench_function("recorder/noop", |b| b.iter(|| run(&cfg)));

    c.bench_function("recorder/buffered", |b| {
        b.iter(|| {
            let mut rec = BufferRecorder::new();
            run_traced(&cfg, &mut rec);
            rec.len()
        })
    });

    // Live tap with an installed sink: every event is additionally cloned
    // into the flight-recorder channel. The handle is drained after each
    // run (std mpsc is unbounded, so batches queue without blocking).
    let mut handle = live::install(LiveConfig::default());
    c.bench_function("recorder/live_tap", |b| {
        b.iter(|| {
            let mut rec = TapRecorder::new(BufferRecorder::new());
            run_traced(&cfg, &mut rec);
            let events = rec.into_inner().len();
            handle.poll();
            events
        })
    });
    live::uninstall();
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
