//! Snapshot/restore cost per engine: how expensive is capturing a
//! simulator at a barrier, and how expensive is rehydrating one — the
//! two operations a forked sweep pays once per shared prefix and once
//! per cell respectively. Cheap restore is what makes fork-from-prefix
//! a win: a cell's restore must cost far less than re-simulating the
//! prefix it skips.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use dcqcn::CcVariant;
use diagnostics::RunSummary;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use netsim::snapshot::Snapshottable;
use simtime::{Bandwidth, Dur, Time};
use std::time::Instant;
use telemetry::NoopRecorder;
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

fn pair() -> [JobSpec; 2] {
    [
        JobSpec::reference(Model::ResNet50, 400),
        JobSpec::reference(Model::ResNet50, 400),
    ]
}

/// How far each prefix runs before the snapshot is taken. Long enough
/// that queues, spans, and telemetry state are all non-trivial.
const PREFIX: Dur = Dur::from_millis(50);

fn fluid_at_barrier() -> FluidSimulator {
    let d = dumbbell(
        2,
        Bandwidth::from_gbps(50),
        Bandwidth::from_gbps(50),
        Dur::ZERO,
    );
    let t = &d.topology;
    let specs = pair();
    let jobs: Vec<FluidJob> = (0..2)
        .map(|i| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .unwrap();
            FluidJob::single_path(specs[i], path.links().to_vec())
        })
        .collect();
    let mut sim = FluidSimulator::new(t, FluidConfig::fair(), &jobs);
    sim.run_until(Time::ZERO + PREFIX);
    sim
}

fn rate_at_barrier() -> RateSimulator {
    let specs = pair();
    let jobs = [
        RateJob::new(specs[0], CcVariant::Fair),
        RateJob::new(specs[1], CcVariant::Fair),
    ];
    let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
    sim.run_until(Time::ZERO + PREFIX);
    sim
}

fn packet_at_barrier() -> PacketSimulator {
    let specs = pair();
    let jobs = [
        PacketJob::new(specs[0], CcVariant::Fair),
        PacketJob::new(specs[1], CcVariant::Fair),
    ];
    let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
    sim.run_until(Time::ZERO + PREFIX);
    sim
}

/// Table-1-style 4-job mix at paper scale (the configuration the
/// packet-train batching PR made affordable): snapshot cost must stay
/// flat as state grows from the fig1 pair to a realistic mix.
fn paper_mix() -> [JobSpec; 4] {
    [
        JobSpec::reference(Model::Vgg19, 1400),
        JobSpec::reference(Model::WideResNet50, 919),
        JobSpec::reference(Model::ResNet50, 3480),
        JobSpec::reference(Model::ResNet50, 3480),
    ]
}

fn packet_paper_at_barrier() -> PacketSimulator {
    let jobs: Vec<PacketJob> = paper_mix()
        .into_iter()
        .map(|spec| PacketJob::new(spec, CcVariant::Fair))
        .collect();
    let mut sim = PacketSimulator::new(
        PacketSimConfig {
            train_packets: 64,
            ..PacketSimConfig::default()
        },
        &jobs,
    );
    sim.run_until(Time::ZERO + PREFIX);
    sim
}

fn rate_paper_at_barrier() -> RateSimulator {
    let jobs: Vec<RateJob> = paper_mix()
        .into_iter()
        .map(|spec| RateJob::new(spec, CcVariant::Fair))
        .collect();
    let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
    sim.run_until(Time::ZERO + PREFIX);
    sim
}

/// One timed snapshot + restore per engine, written to
/// `BENCH_snapshot.json` (directory from `BENCH_SUMMARY_DIR`, default
/// `target/bench-summaries`) so the cost trajectory is machine-diffable.
/// The CLI `snapshot` command writes the end-to-end sweep speedup under
/// the same name into its own `--summary-dir`; this file records the
/// per-operation costs that speedup is built from.
fn write_summaries() {
    let dir =
        std::env::var("BENCH_SUMMARY_DIR").unwrap_or_else(|_| "target/bench-summaries".to_string());
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut s = RunSummary::new("snapshot");
    let reps = 100u32;

    macro_rules! measure {
        ($label:literal, $sim:ty, $build:expr) => {{
            let sim = $build;
            let t0 = Instant::now();
            let mut snap = None;
            for _ in 0..reps {
                snap = Some(sim.snapshot().expect("prefix stopped at a barrier"));
            }
            let snap_cost = t0.elapsed().as_secs_f64() / reps as f64;
            let snap = snap.unwrap();
            let t0 = Instant::now();
            for _ in 0..reps {
                let restored = <$sim>::restore(snap.clone(), NoopRecorder);
                assert!(restored.is_ok());
            }
            let restore_cost = t0.elapsed().as_secs_f64() / reps as f64;
            s.put(concat!($label, ".snapshot_usecs"), snap_cost * 1e6);
            s.put(concat!($label, ".restore_usecs"), restore_cost * 1e6);
            println!(
                "{}: snapshot {:.1} us, restore {:.1} us (50 ms prefix)",
                $label,
                snap_cost * 1e6,
                restore_cost * 1e6
            );
        }};
    }

    measure!("fluid", FluidSimulator, fluid_at_barrier());
    measure!("rate", RateSimulator, rate_at_barrier());
    measure!("packet", PacketSimulator, packet_at_barrier());
    measure!("rate_paper", RateSimulator, rate_paper_at_barrier());
    measure!("packet_paper", PacketSimulator, packet_paper_at_barrier());

    let _ = std::fs::write(format!("{dir}/BENCH_snapshot.json"), s.to_json());
}

fn reproduce() {
    banner("Snapshot/restore cost — what a forked sweep pays per prefix and per cell");
    write_summaries();
}

fn bench(c: &mut Criterion) {
    reproduce();

    let fluid = fluid_at_barrier();
    c.bench_function("snapshot/fluid_snapshot", |b| {
        b.iter(|| fluid.snapshot().expect("barrier"))
    });
    let snap = fluid.snapshot().expect("barrier");
    c.bench_function("snapshot/fluid_restore", |b| {
        // Clone included: a forked cell clones the shared snapshot too.
        b.iter(|| FluidSimulator::restore(snap.clone(), NoopRecorder).expect("round-trips"))
    });

    let rate = rate_at_barrier();
    c.bench_function("snapshot/rate_snapshot", |b| {
        b.iter(|| rate.snapshot().expect("barrier"))
    });
    let snap = rate.snapshot().expect("barrier");
    c.bench_function("snapshot/rate_restore", |b| {
        b.iter(|| RateSimulator::restore(snap.clone(), NoopRecorder).expect("round-trips"))
    });

    let packet = packet_at_barrier();
    c.bench_function("snapshot/packet_snapshot", |b| {
        b.iter(|| packet.snapshot().expect("barrier"))
    });
    let snap = packet.snapshot().expect("barrier");
    c.bench_function("snapshot/packet_restore", |b| {
        b.iter(|| PacketSimulator::restore(snap.clone(), NoopRecorder).expect("round-trips"))
    });

    let packet = packet_paper_at_barrier();
    c.bench_function("snapshot/packet_paper_snapshot", |b| {
        b.iter(|| packet.snapshot().expect("barrier"))
    });
    let snap = packet.snapshot().expect("barrier");
    c.bench_function("snapshot/packet_paper_restore", |b| {
        b.iter(|| PacketSimulator::restore(snap.clone(), NoopRecorder).expect("round-trips"))
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
