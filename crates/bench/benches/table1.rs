//! Regenerates Table 1 (all five job groups, fair vs ordered unfairness,
//! measured and predicted compatibility) and times one group.

use bench::{banner, configure};
use criterion::{criterion_group, criterion_main, Criterion};
use mlcc::experiments::table1::{paper_groups, run, run_group, Table1Config};

fn reproduce() {
    banner("Table 1 — five job groups, fair vs unfair iteration times");
    let cfg = Table1Config {
        iterations: 20,
        warmup: 5,
        ..Table1Config::default()
    };
    let r = run(&cfg);
    println!("{}", r.render());
    let agree = r.groups.iter().filter(|g| g.prediction_agrees()).count();
    println!(
        "geometry verdict agrees with measured outcome in {}/{} groups",
        agree,
        r.groups.len()
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let quick = Table1Config {
        iterations: 6,
        warmup: 2,
        ..Table1Config::default()
    };
    let group4 = paper_groups()[3].clone(); // WRN + VGG16 (fast periods)
    c.bench_function("table1/group4_both_scenarios_6_iters", |b| {
        b.iter(|| run_group(&group4, &quick))
    });
}

criterion_group! {
    name = benches;
    config = configure(Criterion::default());
    targets = bench
}
criterion_main!(benches);
