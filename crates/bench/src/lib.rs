//! Shared scaffolding for the benchmark harness.
//!
//! Every bench in `benches/` regenerates one of the paper's tables or
//! figures: it prints the reproduced rows/series once (so `cargo bench`
//! output doubles as the experiment log recorded in `EXPERIMENTS.md`),
//! then times a representative kernel of that experiment with Criterion.

use criterion::Criterion;
use std::time::Duration;

/// Standard Criterion settings for simulation-scale benches: few samples,
/// bounded measurement time — one experiment run takes seconds of wall
/// clock, so statistical microbenchmark defaults (100 samples) would run
/// for hours.
pub fn configure(c: Criterion) -> Criterion {
    c.sample_size(10).measurement_time(Duration::from_secs(8))
}

/// Prints a banner separating the reproduction output from Criterion's
/// timing output.
pub fn banner(title: &str) {
    println!("\n===== {title} =====");
}
