//! [`CcAlgorithm`]: the open congestion-controller interface behind
//! [`crate::CcVariant`].
//!
//! The engines used to dispatch on a closed two-armed enum (DCQCN vs
//! Swift). The zoo is now open: every controller implements this
//! object-safe trait and the engines drive a `Box<dyn CcAlgorithm>`, so
//! adding a controller means one impl block plus one [`crate::CcVariant`]
//! arm — no engine edits.
//!
//! Beyond the classic [`DcqcnRp`]/[`SwiftRp`] pair, two job-aware
//! controllers ship here:
//!
//! * [`MltcpRp`] — MLTCP-style per-iteration rate scaling: the DCQCN boost
//!   grows with communication-phase progress (`1 + bonus · sent/total`), so
//!   a job closer to finishing its allreduce pushes harder and competing
//!   jobs' iteration phases self-organize apart. `bonus = 0` degenerates
//!   **bit-exactly** to plain fair DCQCN: the boost stays at 1.0, the same
//!   constant already multiplied through the fair arithmetic path.
//! * [`PolicyRp`] — DCQCN parameterized by an explicit [`FairnessPolicy`]
//!   in the Fair-Aurora spirit: max-min (neutral), proportional (static
//!   weight), or bonus-decay (front-loaded aggression that relaxes as the
//!   phase drains).

use crate::{DcqcnParams, DcqcnRp, RpStage, SwiftRp};
use simtime::Dur;

/// A per-flow congestion controller, driven by the network engines.
///
/// The contract mirrors how the engines already drive DCQCN and Swift:
///
/// * [`advance`](CcAlgorithm::advance) is called every engine step with the
///   elapsed time, the bytes the flow sent in that step, and the currently
///   observed queueing delay — each implementation consumes the signals it
///   cares about and ignores the rest;
/// * [`on_cnp`](CcAlgorithm::on_cnp) delivers a congestion notification;
///   engines only send them when [`reacts_to_marks`](CcAlgorithm::reacts_to_marks)
///   is `true`;
/// * [`on_phase_progress`](CcAlgorithm::on_phase_progress) feeds
///   communication-phase progress (`sent/total ∈ [0, 1]`) to job-aware
///   controllers; engines gate the call on
///   [`crate::CcVariant::wants_progress`];
/// * [`on_iteration_end`](CcAlgorithm::on_iteration_end) fires at every
///   iteration boundary (phase rollover) so per-iteration state resets;
/// * [`restart`](CcAlgorithm::restart) resets the flow to a fresh
///   line-rate state at the start of a new communication phase.
pub trait CcAlgorithm: std::fmt::Debug + Send + Sync {
    /// Current sending rate in bits/s.
    fn rate(&self) -> f64;

    /// Reacts to a congestion notification (CNP / ECN mark echo).
    fn on_cnp(&mut self);

    /// Advances the controller's clocks by `dt`, during which the flow
    /// sent `bytes_sent` bytes and observed `queue_delay` of fabric
    /// queueing.
    fn advance(&mut self, dt: Dur, bytes_sent: f64, queue_delay: Dur);

    /// Resets the flow to a fresh line-rate state (new communication
    /// phase after an idle compute phase).
    fn restart(&mut self);

    /// Feeds communication-phase progress (`sent/total`, clamped to
    /// `[0, 1]`) into a job-aware controller. Default: ignored.
    fn on_phase_progress(&mut self, _progress: f64) {}

    /// Iteration boundary: the job finished a communication phase.
    /// Default: ignored.
    fn on_iteration_end(&mut self) {}

    /// `true` if the controller consumes ECN marks / CNPs (mark-reactive
    /// DCQCN family); `false` for delay-based controllers.
    fn reacts_to_marks(&self) -> bool {
        true
    }

    /// The DCQCN increase regime, for telemetry tagging; `None` for
    /// controllers without DCQCN's stage machinery (delay-based).
    fn stage(&self) -> Option<RpStage> {
        None
    }

    /// Clones the controller behind a fresh box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn CcAlgorithm>;

    /// The underlying DCQCN reaction point, if this controller wraps one.
    /// Introspection for tests and telemetry; not on any hot path.
    fn as_dcqcn(&self) -> Option<&DcqcnRp> {
        None
    }
}

impl Clone for Box<dyn CcAlgorithm> {
    fn clone(&self) -> Box<dyn CcAlgorithm> {
        self.clone_box()
    }
}

impl CcAlgorithm for DcqcnRp {
    fn rate(&self) -> f64 {
        DcqcnRp::rate(self)
    }

    fn on_cnp(&mut self) {
        DcqcnRp::on_cnp(self)
    }

    fn advance(&mut self, dt: Dur, bytes_sent: f64, _queue_delay: Dur) {
        DcqcnRp::advance(self, dt, bytes_sent)
    }

    fn restart(&mut self) {
        DcqcnRp::restart(self)
    }

    fn on_phase_progress(&mut self, progress: f64) {
        self.set_phase_progress(progress)
    }

    fn on_iteration_end(&mut self) {
        self.clear_boost()
    }

    fn stage(&self) -> Option<RpStage> {
        Some(DcqcnRp::stage(self))
    }

    fn clone_box(&self) -> Box<dyn CcAlgorithm> {
        Box::new(self.clone())
    }

    fn as_dcqcn(&self) -> Option<&DcqcnRp> {
        Some(self)
    }
}

impl CcAlgorithm for SwiftRp {
    fn rate(&self) -> f64 {
        SwiftRp::rate(self)
    }

    fn on_cnp(&mut self) {
        // Delay-based: congestion is sensed through the queue, not marks.
    }

    fn advance(&mut self, dt: Dur, _bytes_sent: f64, queue_delay: Dur) {
        SwiftRp::advance(self, dt, queue_delay)
    }

    fn restart(&mut self) {
        SwiftRp::restart(self)
    }

    fn reacts_to_marks(&self) -> bool {
        false
    }

    fn clone_box(&self) -> Box<dyn CcAlgorithm> {
        Box::new(self.clone())
    }
}

/// MLTCP-style job-aware DCQCN: the boost ramps with communication-phase
/// progress, `boost = 1 + bonus · (sent/total)`.
///
/// MLTCP couples a flow's congestion window/rate to its training-iteration
/// progress so competing jobs slide into interleaved "slots". This
/// reproduction applies the same monotone coupling to DCQCN's boost, which
/// scales the increase steps and softens the multiplicative decrease (see
/// [`DcqcnRp::on_cnp`]). At `bonus = 0` the boost is pinned at 1.0 — the
/// identical constant the fair path multiplies by — so the controller is
/// bit-exact to [`CcVariant::Fair`](crate::CcVariant::Fair).
#[derive(Debug, Clone)]
pub struct MltcpRp {
    inner: DcqcnRp,
    bonus: f64,
}

impl MltcpRp {
    /// A fresh MLTCP-style flow at line rate.
    ///
    /// # Panics
    /// Panics if `params` are inconsistent or `bonus` is negative or
    /// non-finite.
    pub fn new(params: DcqcnParams, bonus: f64) -> MltcpRp {
        assert!(
            bonus.is_finite() && bonus >= 0.0,
            "MltcpRp: bonus {bonus} must be finite and >= 0"
        );
        MltcpRp {
            inner: DcqcnRp::new(params),
            bonus,
        }
    }

    /// The slot-bonus slope (`boost = 1 + bonus · progress`).
    pub fn bonus(&self) -> f64 {
        self.bonus
    }

    /// The wrapped DCQCN reaction point.
    pub fn inner(&self) -> &DcqcnRp {
        &self.inner
    }
}

impl CcAlgorithm for MltcpRp {
    fn rate(&self) -> f64 {
        self.inner.rate()
    }

    fn on_cnp(&mut self) {
        self.inner.on_cnp()
    }

    fn advance(&mut self, dt: Dur, bytes_sent: f64, _queue_delay: Dur) {
        self.inner.advance(dt, bytes_sent)
    }

    fn restart(&mut self) {
        self.inner.restart()
    }

    fn on_phase_progress(&mut self, progress: f64) {
        self.inner
            .set_boost(1.0 + self.bonus * progress.clamp(0.0, 1.0));
    }

    fn on_iteration_end(&mut self) {
        self.inner.clear_boost()
    }

    fn stage(&self) -> Option<RpStage> {
        Some(self.inner.stage())
    }

    fn clone_box(&self) -> Box<dyn CcAlgorithm> {
        Box::new(self.clone())
    }

    fn as_dcqcn(&self) -> Option<&DcqcnRp> {
        Some(&self.inner)
    }
}

/// An explicit bandwidth-sharing intent, in the Fair-Aurora spirit:
/// instead of hiding unfairness inside a timer constant, the policy names
/// what share a job should push for and [`PolicyRp`] translates it into
/// DCQCN boost dynamics. The fluid engine consumes the same policy
/// directly as an allocation weight
/// ([`CcVariant::fluid_weight`](crate::CcVariant::fluid_weight)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FairnessPolicy {
    /// Neutral max-min sharing — behaves like fair DCQCN.
    MaxMin,
    /// A constant weight: the job runs with `boost = weight` at all times
    /// (a static proportional share, like a smaller `T` but explicit).
    Proportional {
        /// The static boost weight, `> 0` (1.0 is neutral).
        weight: f64,
    },
    /// Front-loaded aggression: `boost = 1 + bonus · exp(−decay · p)`
    /// where `p` is communication-phase progress. The job pushes hardest
    /// right after its allreduce starts and relaxes as the phase drains —
    /// the mirror image of [`MltcpRp`]'s ramp.
    BonusDecay {
        /// Boost above neutral at phase start (`boost(0) = 1 + bonus`).
        bonus: f64,
        /// Exponential relaxation rate over progress `p ∈ [0, 1]`.
        decay: f64,
    },
}

impl FairnessPolicy {
    /// The DCQCN boost this policy prescribes at communication-phase
    /// progress `p` (clamped to `[0, 1]`).
    pub fn boost(&self, progress: f64) -> f64 {
        let p = progress.clamp(0.0, 1.0);
        match *self {
            FairnessPolicy::MaxMin => 1.0,
            FairnessPolicy::Proportional { weight } => weight,
            FairnessPolicy::BonusDecay { bonus, decay } => 1.0 + bonus * (-decay * p).exp(),
        }
    }

    /// `true` if the boost depends on phase progress (the engine must feed
    /// [`CcAlgorithm::on_phase_progress`]).
    pub fn wants_progress(&self) -> bool {
        matches!(self, FairnessPolicy::BonusDecay { .. })
    }

    /// Validates the policy's constants.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite weight, or a negative /
    /// non-finite bonus or decay.
    pub fn validate(&self) {
        match *self {
            FairnessPolicy::MaxMin => {}
            FairnessPolicy::Proportional { weight } => assert!(
                weight.is_finite() && weight > 0.0,
                "FairnessPolicy: weight {weight} must be finite and > 0"
            ),
            FairnessPolicy::BonusDecay { bonus, decay } => {
                assert!(
                    bonus.is_finite() && bonus >= 0.0,
                    "FairnessPolicy: bonus {bonus} must be finite and >= 0"
                );
                assert!(
                    decay.is_finite() && decay >= 0.0,
                    "FairnessPolicy: decay {decay} must be finite and >= 0"
                );
            }
        }
    }
}

/// DCQCN driven by an explicit [`FairnessPolicy`].
#[derive(Debug, Clone)]
pub struct PolicyRp {
    inner: DcqcnRp,
    policy: FairnessPolicy,
}

impl PolicyRp {
    /// A fresh policy-driven flow at line rate, starting at the policy's
    /// progress-0 boost.
    ///
    /// # Panics
    /// Panics if `params` or the policy's constants are inconsistent.
    pub fn new(params: DcqcnParams, policy: FairnessPolicy) -> PolicyRp {
        policy.validate();
        let mut inner = DcqcnRp::new(params);
        inner.set_boost(policy.boost(0.0));
        PolicyRp { inner, policy }
    }

    /// The policy this controller enforces.
    pub fn policy(&self) -> FairnessPolicy {
        self.policy
    }

    /// The wrapped DCQCN reaction point.
    pub fn inner(&self) -> &DcqcnRp {
        &self.inner
    }
}

impl CcAlgorithm for PolicyRp {
    fn rate(&self) -> f64 {
        self.inner.rate()
    }

    fn on_cnp(&mut self) {
        self.inner.on_cnp()
    }

    fn advance(&mut self, dt: Dur, bytes_sent: f64, _queue_delay: Dur) {
        self.inner.advance(dt, bytes_sent)
    }

    fn restart(&mut self) {
        self.inner.restart()
    }

    fn on_phase_progress(&mut self, progress: f64) {
        self.inner.set_boost(self.policy.boost(progress));
    }

    fn on_iteration_end(&mut self) {
        self.inner.set_boost(self.policy.boost(0.0));
    }

    fn stage(&self) -> Option<RpStage> {
        Some(self.inner.stage())
    }

    fn clone_box(&self) -> Box<dyn CcAlgorithm> {
        Box::new(self.clone())
    }

    fn as_dcqcn(&self) -> Option<&DcqcnRp> {
        Some(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: f64 = 50e9;

    fn params() -> DcqcnParams {
        DcqcnParams::testbed_default()
    }

    /// Bit-exact degeneration: with bonus = 0 every observable transition
    /// of MltcpRp equals plain fair DCQCN's, even when progress is fed.
    #[test]
    fn mltcp_zero_bonus_is_bit_exact_fair() {
        let mut fair: Box<dyn CcAlgorithm> = Box::new(DcqcnRp::new(params()));
        let mut mltcp: Box<dyn CcAlgorithm> = Box::new(MltcpRp::new(params(), 0.0));
        let dt = Dur::from_micros(17);
        for step in 0..2_000u32 {
            let bytes = (step % 7) as f64 * 1.3e5;
            if step % 23 == 0 {
                fair.on_cnp();
                mltcp.on_cnp();
            }
            if step % 11 == 0 {
                let p = (step % 100) as f64 / 100.0;
                mltcp.on_phase_progress(p); // sets boost to exactly 1.0
            }
            if step % 401 == 0 {
                fair.on_iteration_end();
                mltcp.on_iteration_end();
            }
            fair.advance(dt, bytes, Dur::ZERO);
            mltcp.advance(dt, bytes, Dur::ZERO);
            assert_eq!(fair.rate().to_bits(), mltcp.rate().to_bits());
        }
    }

    /// With a positive bonus a finishing flow out-recovers a starting one.
    #[test]
    fn mltcp_bonus_rewards_progress() {
        let run = |progress: f64| {
            let mut rp = MltcpRp::new(params(), 1.0);
            for _ in 0..20 {
                rp.on_cnp();
            }
            rp.on_phase_progress(progress);
            for _ in 0..30 {
                CcAlgorithm::advance(&mut rp, Dur::from_micros(125), 0.0, Dur::ZERO);
            }
            rp.rate()
        };
        assert!(run(1.0) > run(0.0));
    }

    #[test]
    fn mltcp_iteration_end_clears_boost() {
        let mut rp = MltcpRp::new(params(), 2.0);
        rp.on_phase_progress(1.0);
        assert_eq!(rp.inner().boost(), 3.0);
        rp.on_iteration_end();
        assert_eq!(rp.inner().boost(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and >= 0")]
    fn mltcp_rejects_negative_bonus() {
        MltcpRp::new(params(), -0.5);
    }

    #[test]
    fn policy_boost_shapes() {
        assert_eq!(FairnessPolicy::MaxMin.boost(0.7), 1.0);
        assert_eq!(FairnessPolicy::Proportional { weight: 1.5 }.boost(0.2), 1.5);
        let d = FairnessPolicy::BonusDecay {
            bonus: 1.0,
            decay: 2.0,
        };
        assert_eq!(d.boost(0.0), 2.0);
        assert!(d.boost(1.0) < d.boost(0.5));
        assert!(d.boost(1.0) > 1.0);
        assert!(d.wants_progress());
        assert!(!FairnessPolicy::MaxMin.wants_progress());
    }

    #[test]
    fn policy_rp_starts_at_policy_boost() {
        let rp = PolicyRp::new(params(), FairnessPolicy::Proportional { weight: 1.5 });
        assert_eq!(rp.inner().boost(), 1.5);
        let rp = PolicyRp::new(
            params(),
            FairnessPolicy::BonusDecay {
                bonus: 1.0,
                decay: 3.0,
            },
        );
        assert_eq!(rp.inner().boost(), 2.0);
    }

    /// MaxMin policy is bit-exact to fair DCQCN (boost pinned at 1.0).
    #[test]
    fn policy_maxmin_matches_fair() {
        let mut fair: Box<dyn CcAlgorithm> = Box::new(DcqcnRp::new(params()));
        let mut pol: Box<dyn CcAlgorithm> =
            Box::new(PolicyRp::new(params(), FairnessPolicy::MaxMin));
        for step in 0..500u32 {
            if step % 13 == 0 {
                fair.on_cnp();
                pol.on_cnp();
            }
            fair.advance(Dur::from_micros(25), 2e5, Dur::ZERO);
            pol.advance(Dur::from_micros(25), 2e5, Dur::ZERO);
            assert_eq!(fair.rate().to_bits(), pol.rate().to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn policy_rejects_zero_weight() {
        PolicyRp::new(params(), FairnessPolicy::Proportional { weight: 0.0 });
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut rp: Box<dyn CcAlgorithm> = Box::new(MltcpRp::new(params(), 1.0));
        rp.on_cnp();
        rp.on_phase_progress(0.5);
        let cl = rp.clone();
        assert_eq!(rp.rate().to_bits(), cl.rate().to_bits());
        assert_eq!(
            rp.as_dcqcn().unwrap().boost(),
            cl.as_dcqcn().unwrap().boost()
        );
    }

    #[test]
    fn swift_ignores_marks_and_reports_no_stage() {
        let mut s: Box<dyn CcAlgorithm> =
            Box::new(SwiftRp::new(crate::SwiftParams::fabric_default()));
        assert!(!s.reacts_to_marks());
        assert_eq!(s.stage(), None);
        let before = s.rate();
        s.on_cnp(); // no-op
        assert_eq!(s.rate(), before);
        s.advance(Dur::from_micros(25), 0.0, Dur::from_micros(90));
        assert!(s.rate() < LINE);
    }
}
