//! [`RedMarker`]: the congestion point's ECN marking curve.

/// RED-style ECN marking over instantaneous egress queue depth, as DCQCN's
/// congestion point runs on the switch:
///
/// ```text
/// p(q) = 0                          for q ≤ kmin
///      = pmax·(q−kmin)/(kmax−kmin)  for kmin < q < kmax
///      = 1                          for q ≥ kmax
/// ```
///
/// Note the jump from `pmax` to 1 at `kmax` — that is RED's (and DCQCN's)
/// actual curve: beyond `kmax` every packet is marked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedMarker {
    /// Queue depth (bytes) below which nothing is marked.
    pub kmin: f64,
    /// Queue depth (bytes) at and above which everything is marked.
    pub kmax: f64,
    /// Marking probability as the queue approaches `kmax` from below.
    pub pmax: f64,
}

impl RedMarker {
    /// A marker with the given thresholds.
    ///
    /// # Panics
    /// Panics unless `0 ≤ kmin < kmax` and `pmax ∈ (0, 1]`.
    pub fn new(kmin: f64, kmax: f64, pmax: f64) -> RedMarker {
        assert!(
            kmin >= 0.0 && kmin < kmax,
            "RedMarker: need 0 ≤ kmin < kmax (got {kmin}, {kmax})"
        );
        assert!(
            pmax > 0.0 && pmax <= 1.0,
            "RedMarker: pmax {pmax} outside (0, 1]"
        );
        RedMarker { kmin, kmax, pmax }
    }

    /// Defaults tuned for a 50 Gbps link: mark from 100 KB (≈ 16 µs of
    /// line-rate buffering), saturate at 1 MB, with a gentle 5% ceiling.
    ///
    /// The gentle slope matters: with scarce CNPs, flows spend most of
    /// their time in timer-driven recovery, which is where the paper's
    /// unfairness knob `T` differentiates aggressive from default jobs —
    /// calibrated so that the Fig. 1c / Table 1 asymmetries reproduce.
    pub fn default_50g() -> RedMarker {
        RedMarker::new(100e3, 1e6, 0.05)
    }

    /// Per-packet marking probability at queue depth `queue_bytes`.
    pub fn mark_probability(&self, queue_bytes: f64) -> f64 {
        if queue_bytes <= self.kmin {
            0.0
        } else if queue_bytes >= self.kmax {
            1.0
        } else {
            self.pmax * (queue_bytes - self.kmin) / (self.kmax - self.kmin)
        }
    }

    /// Probability that a *burst* of `packets` consecutive packets contains
    /// at least one mark: `1 − (1−p)^n`. This is what a fluid-flow engine
    /// needs per time step.
    pub fn burst_mark_probability(&self, queue_bytes: f64, packets: f64) -> f64 {
        let p = self.mark_probability(queue_bytes);
        if p <= 0.0 || packets <= 0.0 {
            0.0
        } else if p >= 1.0 {
            1.0
        } else {
            1.0 - (1.0 - p).powf(packets)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn piecewise_regions() {
        let m = RedMarker::new(100.0, 200.0, 0.5);
        assert_eq!(m.mark_probability(0.0), 0.0);
        assert_eq!(m.mark_probability(100.0), 0.0);
        assert!((m.mark_probability(150.0) - 0.25).abs() < 1e-12);
        assert!((m.mark_probability(199.999) - 0.5).abs() < 1e-3);
        assert_eq!(m.mark_probability(200.0), 1.0);
        assert_eq!(m.mark_probability(1e9), 1.0);
    }

    #[test]
    fn burst_probability_compounds() {
        let m = RedMarker::new(0.0, 100.0, 1.0); // p = q/100
                                                 // p = 0.1 per packet; 10 packets → 1 − 0.9^10 ≈ 0.651.
        let p = m.burst_mark_probability(10.0, 10.0);
        assert!((p - (1.0 - 0.9f64.powi(10))).abs() < 1e-12);
        // Zero packets → never marked.
        assert_eq!(m.burst_mark_probability(50.0, 0.0), 0.0);
        // Saturated queue → always marked for any positive burst.
        assert_eq!(m.burst_mark_probability(100.0, 0.5), 1.0);
    }

    #[test]
    #[should_panic(expected = "kmin < kmax")]
    fn inverted_thresholds_rejected() {
        RedMarker::new(200.0, 100.0, 0.5);
    }

    proptest! {
        #[test]
        fn probability_is_monotone_and_bounded(
            q1 in 0.0f64..2e6, q2 in 0.0f64..2e6,
        ) {
            let m = RedMarker::default_50g();
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let (plo, phi) = (m.mark_probability(lo), m.mark_probability(hi));
            prop_assert!((0.0..=1.0).contains(&plo));
            prop_assert!((0.0..=1.0).contains(&phi));
            prop_assert!(plo <= phi);
        }

        #[test]
        fn burst_exceeds_single(q in 0.0f64..2e6, n in 1.0f64..100.0) {
            let m = RedMarker::default_50g();
            let single = m.mark_probability(q);
            let burst = m.burst_mark_probability(q, n);
            prop_assert!(burst >= single - 1e-12);
            prop_assert!((0.0..=1.0).contains(&burst));
        }
    }
}
