//! DCQCN congestion control, plus the paper's unfairness knobs.
//!
//! DCQCN (Zhu et al., SIGCOMM '15 — the paper's refs [57, 58]) is the
//! default RDMA congestion control in ML clusters and the algorithm every
//! experiment in the paper runs on. It has three participants:
//!
//! * **CP** (congestion point — the switch): marks ECN on egress packets
//!   with a RED-style probability curve over queue depth ([`RedMarker`]).
//! * **NP** (notification point — the receiver): on ECN-marked arrivals,
//!   returns a CNP to the sender at most once per 50 µs per flow
//!   ([`NotificationPoint`]).
//! * **RP** (reaction point — the sender NIC): cuts rate multiplicatively
//!   on CNP and recovers through fast-recovery / additive-increase /
//!   hyper-increase stages driven by a **timer with period `T`** and a byte
//!   counter ([`DcqcnRp`]).
//!
//! `T` is the paper's unfairness knob (§2): its testbed default is 125 µs,
//! and setting one job's `T` to 100 µs makes that job recover faster after
//! every rate cut, durably claiming a larger bandwidth share — ≈30 vs
//! 15 Gbps on a 50 Gbps link in Fig. 1c.
//!
//! The paper's **adaptively unfair** variant (§4.i) replaces the constant
//! additive-increase step `R_AI` with `R_AI · (1 + sent/total)` where
//! `sent/total` is the flow's progress through its current communication
//! phase: a job near the end of its allreduce out-competes one just
//! starting, which interleaves compatible jobs and degenerates to fair
//! sharing for incompatible ones. Drive it via [`DcqcnRp::set_phase_progress`].
//!
//! Everything here is simulation-clock driven and deterministic; the
//! rate-based network engine in `netsim` owns packet/byte accounting and
//! calls into these state machines.
//!
//! # Example
//!
//! ```
//! use dcqcn::{DcqcnParams, DcqcnRp};
//! use simtime::Dur;
//!
//! let mut rp = DcqcnRp::new(DcqcnParams::testbed_default());
//! assert_eq!(rp.rate(), 50e9); // RDMA starts at line rate
//! rp.on_cnp();                 // congestion notification: cut
//! assert_eq!(rp.rate(), 25e9); // alpha was 1 → halved
//! rp.advance(Dur::from_micros(125), 0.0); // one timer period
//! assert_eq!(rp.rate(), 37.5e9); // fast recovery: halfway back to target
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
mod cp;
mod loss;
mod np;
mod params;
mod rp;
pub mod swift;
mod variant;

pub use algo::{CcAlgorithm, FairnessPolicy, MltcpRp, PolicyRp};
pub use cp::RedMarker;
pub use loss::SignalLoss;
pub use np::NotificationPoint;
pub use params::{DcqcnParams, ParamError};
pub use rp::{DcqcnRp, RpStage};
pub use swift::{SwiftParams, SwiftRp};
pub use variant::CcVariant;
