//! [`SignalLoss`]: lossy delivery of DCQCN's congestion signals.
//!
//! DCQCN's control loop rides on two best-effort signals: ECN marks
//! stamped by the switch (CP → NP) and CNPs returned by the receiver
//! (NP → RP). In a degraded fabric either can be lost — a mark is stripped
//! by a buggy ToR, a CNP is dropped on a congested reverse path — and the
//! sender then keeps increasing into a congested link. Fault injection
//! models this with independent per-signal loss probabilities; the network
//! engines roll a dedicated chaos RNG (seeded from [`SignalLoss::seed`],
//! never consulted when loss is disabled) so quiet runs stay bit-identical.

/// Probabilistic loss of DCQCN congestion signals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalLoss {
    /// Probability that an ECN mark is lost before reaching the NP.
    pub mark_loss: f64,
    /// Probability that a CNP is lost before reaching the RP.
    pub cnp_loss: f64,
    /// Seed for the engine's dedicated chaos RNG stream.
    pub seed: u64,
}

impl SignalLoss {
    /// No loss: both signals always arrive.
    pub fn none() -> SignalLoss {
        SignalLoss {
            mark_loss: 0.0,
            cnp_loss: 0.0,
            seed: 0,
        }
    }

    /// `true` if this configuration never drops anything.
    pub fn is_none(&self) -> bool {
        self.mark_loss <= 0.0 && self.cnp_loss <= 0.0
    }

    /// Validates probabilities, clamping into `[0, 1)` — a loss rate of
    /// exactly 1 would sever the control loop entirely and is nonsensical.
    pub fn clamped(self) -> SignalLoss {
        let clamp = |p: f64| {
            if p.is_finite() {
                p.clamp(0.0, 0.99)
            } else {
                0.0
            }
        };
        SignalLoss {
            mark_loss: clamp(self.mark_loss),
            cnp_loss: clamp(self.cnp_loss),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(SignalLoss::none().is_none());
        assert!(!SignalLoss {
            mark_loss: 0.1,
            cnp_loss: 0.0,
            seed: 0
        }
        .is_none());
        assert!(!SignalLoss {
            mark_loss: 0.0,
            cnp_loss: 0.1,
            seed: 0
        }
        .is_none());
    }

    #[test]
    fn clamped_bounds_probabilities() {
        let l = SignalLoss {
            mark_loss: 1.5,
            cnp_loss: f64::NAN,
            seed: 3,
        }
        .clamped();
        assert_eq!(l.mark_loss, 0.99);
        assert_eq!(l.cnp_loss, 0.0);
        assert_eq!(l.seed, 3);
    }
}
