//! [`NotificationPoint`]: the receiver-side CNP pacer.

use simtime::{Dur, Time};

/// Receiver-side CNP generation: when ECN-marked packets arrive, notify the
/// sender with a Congestion Notification Packet — but at most once per
/// `interval` per flow (50 µs in hardware), so a burst of marks costs the
/// sender a single rate cut.
#[derive(Debug, Clone)]
pub struct NotificationPoint {
    interval: Dur,
    last_cnp: Option<Time>,
}

impl NotificationPoint {
    /// A pacer with the given minimum CNP gap.
    pub fn new(interval: Dur) -> NotificationPoint {
        NotificationPoint {
            interval,
            last_cnp: None,
        }
    }

    /// Reports that one or more ECN-marked packets arrived at `now`.
    /// Returns `true` iff a CNP should be sent (and records it).
    pub fn on_marked_arrival(&mut self, now: Time) -> bool {
        match self.last_cnp {
            Some(t) if now.saturating_since(t) < self.interval => false,
            _ => {
                self.last_cnp = Some(now);
                true
            }
        }
    }

    /// When the last CNP was emitted, if any.
    pub fn last_cnp(&self) -> Option<Time> {
        self.last_cnp
    }

    /// Forgets pacing state (e.g. when a flow restarts).
    pub fn reset(&mut self) {
        self.last_cnp = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Time {
        Time::from_nanos(v * 1_000)
    }

    #[test]
    fn first_mark_always_fires() {
        let mut np = NotificationPoint::new(Dur::from_micros(50));
        assert!(np.on_marked_arrival(us(0)));
        assert_eq!(np.last_cnp(), Some(us(0)));
    }

    #[test]
    fn paces_to_interval() {
        let mut np = NotificationPoint::new(Dur::from_micros(50));
        assert!(np.on_marked_arrival(us(100)));
        assert!(!np.on_marked_arrival(us(120)));
        assert!(!np.on_marked_arrival(us(149)));
        assert!(np.on_marked_arrival(us(150))); // exactly one interval later
        assert!(!np.on_marked_arrival(us(199)));
        assert!(np.on_marked_arrival(us(205)));
    }

    #[test]
    fn reset_reopens_immediately() {
        let mut np = NotificationPoint::new(Dur::from_micros(50));
        assert!(np.on_marked_arrival(us(10)));
        np.reset();
        assert!(np.on_marked_arrival(us(11)));
    }
}
