//! [`DcqcnParams`]: tunable constants of the DCQCN state machines.

use simtime::{Bandwidth, ByteSize, Dur};

/// A parameter-validation rejection from [`DcqcnParams::try_validate`] or
/// [`crate::SwiftParams::try_validate`]. The panicking `validate` paths
/// wrap these, so a rejection carries the same message either way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamError {
    /// `line_rate` is zero.
    ZeroLineRate,
    /// The rate-increase timer `T` is zero.
    ZeroTimer,
    /// The alpha-decay timer is zero.
    ZeroAlphaTimer,
    /// The EWMA gain `g` is outside `(0, 1)`.
    GainOutOfRange {
        /// The rejected gain.
        g: f64,
    },
    /// `min_rate` exceeds `line_rate`.
    MinAboveLine,
    /// The byte-counter threshold `B` is zero.
    ZeroByteCounter,
    /// Swift's queueing-delay target is zero.
    ZeroTargetDelay,
    /// Swift's control update interval is zero.
    ZeroUpdateInterval,
    /// Swift's multiplicative-decrease cap β is outside `(0, 1]`.
    BetaOutOfRange {
        /// The rejected β.
        beta: f64,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ParamError::ZeroLineRate => write!(f, "zero line rate"),
            ParamError::ZeroTimer => write!(f, "zero timer"),
            ParamError::ZeroAlphaTimer => write!(f, "zero alpha timer"),
            ParamError::GainOutOfRange { g } => write!(f, "g {g} outside (0,1)"),
            ParamError::MinAboveLine => write!(f, "min rate above line rate"),
            ParamError::ZeroByteCounter => write!(f, "zero byte counter"),
            ParamError::ZeroTargetDelay => write!(f, "zero target"),
            ParamError::ZeroUpdateInterval => write!(f, "zero update interval"),
            ParamError::BetaOutOfRange { beta } => {
                write!(f, "beta {beta} outside (0, 1]")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// DCQCN parameters, following the SIGCOMM '15 paper's notation with the
/// defaults this paper's testbed uses (notably `T = 125 µs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcqcnParams {
    /// NIC line rate — the rate cap and the initial sending rate (RDMA
    /// starts flows at line rate).
    pub line_rate: Bandwidth,
    /// Rate-increase timer period `T` — **the unfairness knob**. A smaller
    /// `T` recovers faster after cuts and durably wins bandwidth.
    pub timer: Dur,
    /// Byte counter threshold `B`: a rate-increase event fires every `B`
    /// bytes sent.
    pub byte_counter: ByteSize,
    /// Number of fast-recovery stages `F` before additive increase begins.
    pub fast_recovery: u32,
    /// Additive-increase step `R_AI`.
    pub r_ai: Bandwidth,
    /// Hyper-increase step `R_HAI` (used when both timer and byte counter
    /// have passed `F` stages).
    pub r_hai: Bandwidth,
    /// EWMA gain `g` for the congestion estimate `alpha`.
    pub g: f64,
    /// Alpha-decay timer: with no CNP for this long, `alpha ← (1−g)·alpha`.
    pub alpha_timer: Dur,
    /// Minimum sending rate (the RP never cuts below this).
    pub min_rate: Bandwidth,
    /// NP-side minimum gap between CNPs for one flow.
    pub cnp_interval: Dur,
}

impl DcqcnParams {
    /// The testbed defaults behind the paper's Fig. 1: 50 Gbps ConnectX-5
    /// NICs, `T = 125 µs`.
    pub fn testbed_default() -> DcqcnParams {
        DcqcnParams {
            line_rate: Bandwidth::from_gbps(50),
            timer: Dur::from_micros(125),
            byte_counter: ByteSize::from_mb(10),
            fast_recovery: 5,
            r_ai: Bandwidth::from_mbps(40),
            r_hai: Bandwidth::from_mbps(400),
            g: 1.0 / 256.0,
            alpha_timer: Dur::from_micros(55),
            min_rate: Bandwidth::from_mbps(40),
            cnp_interval: Dur::from_micros(50),
        }
    }

    /// The same parameters with a different rate-increase timer — how the
    /// paper makes a job "more aggressive" (Fig. 1c uses 100 µs).
    pub fn with_timer(self, timer: Dur) -> DcqcnParams {
        DcqcnParams { timer, ..self }
    }

    /// The same parameters scaled to a different line rate, keeping the
    /// relative increase steps (R_AI and R_HAI scale with the line rate,
    /// min_rate stays absolute).
    pub fn with_line_rate(self, line_rate: Bandwidth) -> DcqcnParams {
        let scale = line_rate.as_bps_f64() / self.line_rate.as_bps_f64();
        DcqcnParams {
            line_rate,
            r_ai: self.r_ai.mul_f64(scale),
            r_hai: self.r_hai.mul_f64(scale),
            ..self
        }
    }

    /// Checks internal consistency, returning the first rejection instead
    /// of panicking.
    pub fn try_validate(&self) -> Result<(), ParamError> {
        if self.line_rate.is_zero() {
            return Err(ParamError::ZeroLineRate);
        }
        if self.timer.is_zero() {
            return Err(ParamError::ZeroTimer);
        }
        if self.alpha_timer.is_zero() {
            return Err(ParamError::ZeroAlphaTimer);
        }
        if !(self.g > 0.0 && self.g < 1.0) {
            return Err(ParamError::GainOutOfRange { g: self.g });
        }
        if self.min_rate > self.line_rate {
            return Err(ParamError::MinAboveLine);
        }
        if self.byte_counter.as_bytes() == 0 {
            return Err(ParamError::ZeroByteCounter);
        }
        Ok(())
    }

    /// Validates internal consistency; called by the RP constructor.
    ///
    /// # Panics
    /// Panics on nonsensical parameters (zero line rate, `g` outside
    /// `(0, 1)`, zero timer, min above line) — the panicking wrapper
    /// around [`DcqcnParams::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("DcqcnParams: {e}");
        }
    }
}

impl Default for DcqcnParams {
    fn default() -> DcqcnParams {
        DcqcnParams::testbed_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_defaults_match_paper() {
        let p = DcqcnParams::testbed_default();
        assert_eq!(p.line_rate, Bandwidth::from_gbps(50));
        assert_eq!(p.timer, Dur::from_micros(125));
        assert_eq!(p.cnp_interval, Dur::from_micros(50));
        p.validate();
    }

    #[test]
    fn with_timer_changes_only_timer() {
        let base = DcqcnParams::testbed_default();
        let fast = base.with_timer(Dur::from_micros(100));
        assert_eq!(fast.timer, Dur::from_micros(100));
        assert_eq!(fast.line_rate, base.line_rate);
        assert_eq!(fast.r_ai, base.r_ai);
    }

    #[test]
    fn with_line_rate_scales_steps() {
        let base = DcqcnParams::testbed_default();
        let big = base.with_line_rate(Bandwidth::from_gbps(100));
        assert_eq!(big.line_rate, Bandwidth::from_gbps(100));
        assert_eq!(big.r_ai, Bandwidth::from_mbps(80));
        assert_eq!(big.r_hai, Bandwidth::from_mbps(800));
        assert_eq!(big.min_rate, base.min_rate);
        big.validate();
    }

    #[test]
    #[should_panic(expected = "zero timer")]
    fn zero_timer_rejected() {
        DcqcnParams::testbed_default()
            .with_timer(Dur::ZERO)
            .validate();
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn bad_gain_rejected() {
        let mut p = DcqcnParams::testbed_default();
        p.g = 1.0;
        p.validate();
    }

    #[test]
    fn try_validate_accepts_defaults() {
        assert_eq!(DcqcnParams::testbed_default().try_validate(), Ok(()));
    }

    #[test]
    fn try_validate_rejects_each_inconsistency() {
        let base = DcqcnParams::testbed_default();

        let mut p = base;
        p.line_rate = Bandwidth::from_bps(0);
        assert_eq!(p.try_validate(), Err(ParamError::ZeroLineRate));

        assert_eq!(
            base.with_timer(Dur::ZERO).try_validate(),
            Err(ParamError::ZeroTimer)
        );

        let mut p = base;
        p.alpha_timer = Dur::ZERO;
        assert_eq!(p.try_validate(), Err(ParamError::ZeroAlphaTimer));

        let mut p = base;
        p.g = 0.0;
        assert_eq!(p.try_validate(), Err(ParamError::GainOutOfRange { g: 0.0 }));
        p.g = 1.0;
        assert_eq!(p.try_validate(), Err(ParamError::GainOutOfRange { g: 1.0 }));

        let mut p = base;
        p.min_rate = Bandwidth::from_gbps(100);
        assert_eq!(p.try_validate(), Err(ParamError::MinAboveLine));

        let mut p = base;
        p.byte_counter = ByteSize::from_bytes(0);
        assert_eq!(p.try_validate(), Err(ParamError::ZeroByteCounter));
    }

    /// The panic path reports the same message the typed error renders.
    #[test]
    fn validate_message_matches_display() {
        let e = ParamError::GainOutOfRange { g: 1.0 };
        assert_eq!(e.to_string(), "g 1 outside (0,1)");
        assert_eq!(ParamError::ZeroTimer.to_string(), "zero timer");
        assert_eq!(
            ParamError::BetaOutOfRange { beta: 1.5 }.to_string(),
            "beta 1.5 outside (0, 1]"
        );
    }
}
