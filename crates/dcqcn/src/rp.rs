//! [`DcqcnRp`]: the sender-side (reaction point) rate state machine.

use crate::DcqcnParams;
use simtime::Dur;

/// The increase regime a reaction point is in, derived from its timer and
/// byte-counter stages (SIGCOMM '15 §5): both stages ≤ F → fast recovery,
/// exactly one > F → additive increase, both > F → hyper increase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RpStage {
    /// Both stages ≤ F: binary-search back toward the target rate.
    FastRecovery,
    /// Exactly one stage > F: linear probing above the target.
    AdditiveIncrease,
    /// Both stages > F: exponential probing after a long quiet period.
    HyperIncrease,
}

/// DCQCN reaction point for one flow.
///
/// State per the SIGCOMM '15 algorithm:
/// * current rate `R_C` and target rate `R_T` (both start at line rate —
///   RDMA flows begin at full speed);
/// * congestion estimate `alpha` (EWMA of "was a CNP received lately");
/// * two rate-increase event sources: a **timer** with period `T` and a
///   **byte counter** with threshold `B`; each counts *stages* since the
///   last rate cut.
///
/// On CNP: `R_T ← R_C`, `R_C ← R_C·(1 − alpha/2)`, `alpha ← (1−g)·alpha + g`,
/// and all increase stages reset. On each increase event:
///
/// * both stages ≤ F → **fast recovery**: `R_C ← (R_C + R_T)/2`;
/// * exactly one stage > F → **additive increase**:
///   `R_T ← R_T + R_AI·boost`, then averaging;
/// * both stages > F → **hyper increase**: `R_T ← R_T + R_HAI`, then
///   averaging.
///
/// `boost` is 1 for classic DCQCN. The paper's adaptively-unfair variant
/// (§4.i) sets `boost = 1 + sent/total` via [`DcqcnRp::set_phase_progress`].
/// The boost scales the increase steps (the paper's formula) and softens
/// the multiplicative decrease (our extension — see [`DcqcnRp::on_cnp`]
/// for why the literal formula alone is numerically inert).
///
/// The engine drives the RP with [`DcqcnRp::advance`] every simulation
/// step, including while the flow is idle: with no CNPs arriving, timer
/// events keep firing and the rate climbs back to line rate — which is why
/// a job starts each new communication phase fast, a property the sliding
/// dynamics of §2 depend on.
#[derive(Debug, Clone)]
pub struct DcqcnRp {
    params: DcqcnParams,
    rc: f64,
    rt: f64,
    alpha: f64,
    time_stage: u32,
    byte_stage: u32,
    timer_elapsed: Dur,
    bytes_since_event: f64,
    alpha_elapsed: Dur,
    boost: f64,
}

impl DcqcnRp {
    /// A fresh flow at line rate.
    ///
    /// # Panics
    /// Panics if `params` are inconsistent (see [`DcqcnParams::validate`]).
    pub fn new(params: DcqcnParams) -> DcqcnRp {
        params.validate();
        let line = params.line_rate.as_bps_f64();
        DcqcnRp {
            params,
            rc: line,
            rt: line,
            alpha: 1.0,
            time_stage: 0,
            byte_stage: 0,
            timer_elapsed: Dur::ZERO,
            bytes_since_event: 0.0,
            alpha_elapsed: Dur::ZERO,
            boost: 1.0,
        }
    }

    /// The parameters this RP runs with.
    pub fn params(&self) -> &DcqcnParams {
        &self.params
    }

    /// Current sending rate in bits/s.
    pub fn rate(&self) -> f64 {
        self.rc
    }

    /// Current congestion estimate `alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The increase regime the next increase event lands in, mirroring the
    /// stage comparison in `increase_event`. Telemetry tags rate samples
    /// with this.
    pub fn stage(&self) -> RpStage {
        let f = self.params.fast_recovery;
        if self.time_stage > f && self.byte_stage > f {
            RpStage::HyperIncrease
        } else if self.time_stage > f || self.byte_stage > f {
            RpStage::AdditiveIncrease
        } else {
            RpStage::FastRecovery
        }
    }

    /// Current additive-increase boost (1 unless adaptive unfairness is
    /// active).
    pub fn boost(&self) -> f64 {
        self.boost
    }

    /// Sets the adaptive-unfairness boost from communication-phase
    /// progress: `boost = 1 + progress`, `progress ∈ [0, 1]` (clamped).
    pub fn set_phase_progress(&mut self, progress: f64) {
        self.boost = 1.0 + progress.clamp(0.0, 1.0);
    }

    /// Resets the boost to classic DCQCN behaviour.
    pub fn clear_boost(&mut self) {
        self.boost = 1.0;
    }

    /// Sets the boost directly — the hook job-aware controllers
    /// ([`crate::MltcpRp`], [`crate::PolicyRp`]) drive. The boost scales
    /// the increase steps and softens the multiplicative decrease; 1.0 is
    /// classic DCQCN.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite boost (the CNP cut divides
    /// by it).
    pub fn set_boost(&mut self, boost: f64) {
        assert!(
            boost.is_finite() && boost > 0.0,
            "set_boost: boost {boost} must be finite and > 0"
        );
        self.boost = boost;
    }

    /// Resets the flow to a fresh line-rate state. The network engine calls
    /// this when a job starts a new communication phase: RDMA transmits a
    /// new message burst at line rate (per-QP rate limiting state does not
    /// meaningfully survive a multi-hundred-millisecond idle compute phase,
    /// during which timer-driven increase would have recovered most of the
    /// rate anyway — see `idle_recovery_is_substantial`).
    pub fn restart(&mut self) {
        let line = self.params.line_rate.as_bps_f64();
        self.rc = line;
        self.rt = line;
        self.alpha = 1.0;
        self.time_stage = 0;
        self.byte_stage = 0;
        self.timer_elapsed = Dur::ZERO;
        self.bytes_since_event = 0.0;
        self.alpha_elapsed = Dur::ZERO;
    }

    /// Handles a CNP: multiplicative decrease and increase-state reset.
    ///
    /// The adaptive boost softens the decrease: a flow at progress `p`
    /// cuts by `alpha / (2·(1 + p))` instead of `alpha / 2`. This is where
    /// adaptive unfairness actually gets its teeth in our reproduction:
    /// contended DCQCN is CNP-dominated (stages reset every ~50 µs, so the
    /// increase-side boost the paper writes down rarely fires), and the
    /// one quantity exercised on every congestion event is the cut. The
    /// monotone mapping — closer to finishing ⇒ more aggressive — is
    /// exactly the paper's; only the term it modulates differs (see
    /// EXPERIMENTS.md, §4.i).
    pub fn on_cnp(&mut self) {
        self.rt = self.rc;
        self.rc = (self.rc * (1.0 - self.alpha / (2.0 * self.boost)))
            .max(self.params.min_rate.as_bps_f64());
        self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g;
        self.time_stage = 0;
        self.byte_stage = 0;
        self.timer_elapsed = Dur::ZERO;
        self.bytes_since_event = 0.0;
        self.alpha_elapsed = Dur::ZERO;
    }

    /// Advances the RP's clocks by `dt`, during which the flow sent
    /// `bytes_sent` bytes. Fires any due timer / byte-counter / alpha-decay
    /// events.
    pub fn advance(&mut self, dt: Dur, bytes_sent: f64) {
        assert!(bytes_sent >= 0.0, "advance: negative bytes");
        // Alpha decay: every alpha_timer without a CNP.
        self.alpha_elapsed += dt;
        while self.alpha_elapsed >= self.params.alpha_timer {
            self.alpha_elapsed -= self.params.alpha_timer;
            self.alpha *= 1.0 - self.params.g;
        }
        // Timer-driven increase events.
        self.timer_elapsed += dt;
        while self.timer_elapsed >= self.params.timer {
            self.timer_elapsed -= self.params.timer;
            self.increase_event(true);
        }
        // Byte-counter-driven increase events.
        self.bytes_since_event += bytes_sent;
        let b = self.params.byte_counter.as_bytes() as f64;
        while self.bytes_since_event >= b {
            self.bytes_since_event -= b;
            self.increase_event(false);
        }
    }

    fn increase_event(&mut self, from_timer: bool) {
        if from_timer {
            self.time_stage = self.time_stage.saturating_add(1);
        } else {
            self.byte_stage = self.byte_stage.saturating_add(1);
        }
        let f = self.params.fast_recovery;
        let line = self.params.line_rate.as_bps_f64();
        if self.time_stage > f && self.byte_stage > f {
            // Hyper increase. The adaptive boost applies here too: the
            // paper's formula names only R_AI, but hyper-increase dominates
            // recovery whenever CNPs are sparse, so a boost confined to
            // R_AI is numerically invisible (see EXPERIMENTS.md, §4.i).
            self.rt += self.params.r_hai.as_bps_f64() * self.boost;
        } else if self.time_stage > f || self.byte_stage > f {
            // Additive increase — the paper's stated boost target.
            self.rt += self.params.r_ai.as_bps_f64() * self.boost;
        }
        // Fast recovery (both stages ≤ F) leaves R_T untouched.
        self.rt = self.rt.min(line);
        self.rc = ((self.rc + self.rt) / 2.0).min(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Bandwidth;

    fn rp() -> DcqcnRp {
        DcqcnRp::new(DcqcnParams::testbed_default())
    }

    const LINE: f64 = 50e9;

    #[test]
    fn starts_at_line_rate() {
        let r = rp();
        assert_eq!(r.rate(), LINE);
        assert_eq!(r.alpha(), 1.0);
        assert_eq!(r.boost(), 1.0);
    }

    #[test]
    fn cnp_cuts_rate_by_half_alpha() {
        let mut r = rp();
        r.on_cnp();
        // alpha was 1 → cut by 50%.
        assert_eq!(r.rate(), LINE * 0.5);
        // alpha updated toward 1 (EWMA with g): (1−g)·1 + g = 1.
        assert_eq!(r.alpha(), 1.0);
        // Target remembers the pre-cut rate.
        r.advance(Dur::from_micros(125), 0.0); // one timer event: fast recovery
        assert_eq!(r.rate(), LINE * 0.75); // (0.5 + 1.0)/2 of line
    }

    #[test]
    fn fast_recovery_halves_toward_target() {
        let mut r = rp();
        r.on_cnp(); // rc = 0.5 line, rt = line
        let mut prev = r.rate();
        for _ in 0..5 {
            r.advance(Dur::from_micros(125), 0.0);
            let now = r.rate();
            assert!(now > prev, "recovery must be monotone");
            prev = now;
        }
        // After 5 fast-recovery steps: 1 − 0.5^6 of line ≈ 0.992.
        assert!((r.rate() / LINE - (1.0 - 0.5f64.powi(6))).abs() < 1e-9);
    }

    #[test]
    fn additive_increase_after_f_stages() {
        let mut r = rp();
        r.on_cnp();
        // 6 timer events: stages 1..=5 are fast recovery, 6th is additive.
        for _ in 0..6 {
            r.advance(Dur::from_micros(125), 0.0);
        }
        // rt should now exceed the original line-capped target only via
        // R_AI; since rt was already `line`, it remains capped.
        assert!(r.rate() <= LINE);
        // Drop rate first, then check AI actually moves rt upward.
        let mut low = rp();
        for _ in 0..20 {
            low.on_cnp(); // drive rc near min
        }
        let floor = low.rate();
        for _ in 0..6 {
            low.advance(Dur::from_micros(125), 0.0);
        }
        assert!(low.rate() > floor);
    }

    #[test]
    fn hyper_increase_needs_both_counters() {
        let p = DcqcnParams::testbed_default();
        let b = p.byte_counter.as_bytes() as f64;
        let mut r = DcqcnRp::new(p);
        // Crush the rate so increases are visible.
        for _ in 0..30 {
            r.on_cnp();
        }
        let start = r.rate();
        // Fire 6 byte events and 6 timer events → stages (6, 6): the last
        // events run hyper increase.
        for _ in 0..6 {
            r.advance(Dur::from_micros(125), b);
        }
        // With R_HAI = 10×R_AI the climb must dwarf pure-AI recovery.
        let mut ai_only = DcqcnRp::new(DcqcnParams::testbed_default());
        for _ in 0..30 {
            ai_only.on_cnp();
        }
        for _ in 0..6 {
            ai_only.advance(Dur::from_micros(125), 0.0);
        }
        assert!(
            r.rate() - start > (ai_only.rate() - start) * 1.5,
            "hyper {} vs ai {}",
            r.rate(),
            ai_only.rate()
        );
    }

    /// The unfairness knob: a smaller T recovers faster after identical
    /// cuts — the mechanism behind Fig. 1c's 30/15 Gbps split.
    #[test]
    fn smaller_timer_recovers_faster() {
        let mk = |t_us| {
            let mut r =
                DcqcnRp::new(DcqcnParams::testbed_default().with_timer(Dur::from_micros(t_us)));
            r.on_cnp();
            r.on_cnp(); // rc ≈ 0.25 line
            r
        };
        let mut aggressive = mk(100);
        let mut default = mk(125);
        // Same wall-clock recovery window, no traffic.
        for _ in 0..100 {
            aggressive.advance(Dur::from_micros(25), 0.0);
            default.advance(Dur::from_micros(25), 0.0);
        }
        assert!(
            aggressive.rate() > default.rate(),
            "T=100µs {} ≤ T=125µs {}",
            aggressive.rate(),
            default.rate()
        );
    }

    /// §4.i: a flow near the end of its phase (boost → 2) out-recovers one
    /// just starting (boost → 1), all else equal.
    #[test]
    fn adaptive_boost_accelerates_additive_increase() {
        let mk = |progress: f64| {
            let mut r = DcqcnRp::new(DcqcnParams::testbed_default());
            for _ in 0..20 {
                r.on_cnp();
            }
            r.set_phase_progress(progress);
            // Push past fast recovery into additive territory.
            for _ in 0..30 {
                r.advance(Dur::from_micros(125), 0.0);
            }
            r.rate()
        };
        let fresh = mk(0.0);
        let finishing = mk(1.0);
        assert!(finishing > fresh, "boosted {finishing} ≤ unboosted {fresh}");
    }

    #[test]
    fn boost_is_clamped_and_clearable() {
        let mut r = rp();
        r.set_phase_progress(7.5);
        assert_eq!(r.boost(), 2.0);
        r.set_phase_progress(-3.0);
        assert_eq!(r.boost(), 1.0);
        r.set_phase_progress(0.5);
        assert_eq!(r.boost(), 1.5);
        r.clear_boost();
        assert_eq!(r.boost(), 1.0);
    }

    #[test]
    fn rate_never_below_floor_or_above_line() {
        let mut r = rp();
        for _ in 0..1_000 {
            r.on_cnp();
        }
        assert!(r.rate() >= DcqcnParams::testbed_default().min_rate.as_bps_f64());
        for _ in 0..100_000 {
            r.advance(Dur::from_micros(125), 1e7);
        }
        assert!(r.rate() <= LINE);
    }

    /// Idle flows climb back substantially: timer-driven additive increase
    /// alone recovers R_AI per T = 40 Mbps / 125 µs = 320 Mbps per ms, so a
    /// 100 ms compute phase recovers ≳30 Gbps from the floor.
    #[test]
    fn idle_recovery_is_substantial() {
        let mut r = rp();
        for _ in 0..10 {
            r.on_cnp();
        }
        assert!(r.rate() < LINE * 0.01);
        // 100 ms of idle (a compute phase) with no CNPs.
        for _ in 0..20_000 {
            r.advance(Dur::from_micros(5), 0.0);
        }
        assert!(
            r.rate() > 30e9,
            "idle recovery reached only {:.2} Gbps",
            r.rate() / 1e9
        );
        // Alpha decays toward 0 meanwhile.
        assert!(r.alpha() < 0.05, "alpha {}", r.alpha());
    }

    /// A restart puts the flow back at a pristine line-rate state.
    #[test]
    fn restart_returns_to_line_rate() {
        let mut r = rp();
        for _ in 0..10 {
            r.on_cnp();
        }
        r.advance(Dur::from_micros(625), 1e6);
        assert!(r.rate() < LINE);
        r.restart();
        assert_eq!(r.rate(), LINE);
        assert_eq!(r.alpha(), 1.0);
        // Next timer event is a fresh fast-recovery stage (no stage carry-over):
        // at line rate it must not move the rate above line.
        r.advance(Dur::from_micros(125), 0.0);
        assert_eq!(r.rate(), LINE);
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut r = rp();
        let a0 = r.alpha();
        r.advance(Dur::from_micros(550), 0.0); // 10 alpha-timer periods
        assert!(r.alpha() < a0);
        let expected = (1.0 - 1.0 / 256.0f64).powi(10);
        assert!((r.alpha() - expected).abs() < 1e-12);
    }

    #[test]
    fn line_rate_parameterization() {
        let p = DcqcnParams::testbed_default().with_line_rate(Bandwidth::from_gbps(100));
        let r = DcqcnRp::new(p);
        assert_eq!(r.rate(), 100e9);
    }
}

#[cfg(test)]
mod stage_tests {
    use super::*;
    use simtime::Bandwidth;

    #[test]
    fn stage_tracks_increase_regimes() {
        let p = DcqcnParams::testbed_default().with_line_rate(Bandwidth::from_gbps(50));
        let f = p.fast_recovery;
        let timer = p.timer;
        let mut rp = DcqcnRp::new(p);
        rp.on_cnp();
        assert_eq!(rp.stage(), RpStage::FastRecovery);
        // Timer events alone push only the time stage past F.
        for _ in 0..=f {
            rp.advance(timer, 0.0);
        }
        assert_eq!(rp.stage(), RpStage::AdditiveIncrease);
        // Byte-counter events push the byte stage past F too.
        let b = rp.params().byte_counter.as_bytes() as f64;
        rp.advance(Dur::ZERO, b * (f as f64 + 1.0));
        assert_eq!(rp.stage(), RpStage::HyperIncrease);
        // A CNP resets both stages.
        rp.on_cnp();
        assert_eq!(rp.stage(), RpStage::FastRecovery);
    }
}
