//! [`SwiftRp`]: a delay-based companion congestion controller.
//!
//! The paper's related work lists RDMA congestion controllers beyond DCQCN
//! (IRN, RoCC) and notes none exploit ML periodicity. To show the
//! unfairness payoff is **transport-agnostic**, this module implements a
//! simplified delay-target controller in the style of TIMELY/Swift: the
//! sender measures fabric queueing delay and holds it at a per-flow
//! `target_delay` — additive increase below target, multiplicative
//! decrease proportional to the excess above it.
//!
//! The unfairness knob is the **target delay itself**: a flow with a
//! higher target tolerates a deeper queue and durably claims a larger
//! bandwidth share (in real Swift this is exactly how flow weighting is
//! implemented). Equal targets share fairly; unequal targets reproduce the
//! sliding payoff of §2 with no DCQCN machinery at all.

use crate::ParamError;
use simtime::{Bandwidth, Dur};

/// Parameters of the delay-based controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwiftParams {
    /// Line rate: cap and initial rate.
    pub line_rate: Bandwidth,
    /// Queueing-delay target the controller holds.
    pub target_delay: Dur,
    /// Additive increase per update interval while below target.
    pub ai: Bandwidth,
    /// Maximum multiplicative decrease per update (β).
    pub beta: f64,
    /// Control update interval (an RTT-scale clock).
    pub update_interval: Dur,
    /// Rate floor.
    pub min_rate: Bandwidth,
}

impl SwiftParams {
    /// Defaults for a 50 Gbps fabric: 30 µs delay target, 200 Mbps AI per
    /// 25 µs update, β = 0.4.
    pub fn fabric_default() -> SwiftParams {
        SwiftParams {
            line_rate: Bandwidth::from_gbps(50),
            target_delay: Dur::from_micros(30),
            ai: Bandwidth::from_mbps(200),
            beta: 0.4,
            update_interval: Dur::from_micros(25),
            min_rate: Bandwidth::from_mbps(40),
        }
    }

    /// The same parameters with a different delay target — the unfairness
    /// knob (a higher target wins bandwidth).
    pub fn with_target(self, target_delay: Dur) -> SwiftParams {
        SwiftParams {
            target_delay,
            ..self
        }
    }

    /// Checks parameter sanity, returning the first rejection instead of
    /// panicking.
    pub fn try_validate(&self) -> Result<(), ParamError> {
        if self.line_rate.is_zero() {
            return Err(ParamError::ZeroLineRate);
        }
        if self.target_delay.is_zero() {
            return Err(ParamError::ZeroTargetDelay);
        }
        if self.update_interval.is_zero() {
            return Err(ParamError::ZeroUpdateInterval);
        }
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return Err(ParamError::BetaOutOfRange { beta: self.beta });
        }
        if self.min_rate > self.line_rate {
            return Err(ParamError::MinAboveLine);
        }
        Ok(())
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    /// Panics on zero line rate / interval / target, or `beta` outside
    /// `(0, 1]` — the panicking wrapper around
    /// [`SwiftParams::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("SwiftParams: {e}");
        }
    }
}

impl Default for SwiftParams {
    fn default() -> SwiftParams {
        SwiftParams::fabric_default()
    }
}

/// The delay-based reaction point for one flow.
#[derive(Debug, Clone)]
pub struct SwiftRp {
    params: SwiftParams,
    rate: f64,
    since_update: Dur,
}

impl SwiftRp {
    /// A fresh flow at line rate.
    pub fn new(params: SwiftParams) -> SwiftRp {
        params.validate();
        SwiftRp {
            rate: params.line_rate.as_bps_f64(),
            params,
            since_update: Dur::ZERO,
        }
    }

    /// The parameters this controller runs with.
    pub fn params(&self) -> &SwiftParams {
        &self.params
    }

    /// Current sending rate in bits/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Resets to line rate (new communication phase).
    pub fn restart(&mut self) {
        self.rate = self.params.line_rate.as_bps_f64();
        self.since_update = Dur::ZERO;
    }

    /// Advances the controller by `dt` with the currently observed
    /// queueing `delay`; applies one AIMD step per elapsed update
    /// interval.
    pub fn advance(&mut self, dt: Dur, delay: Dur) {
        self.since_update += dt;
        while self.since_update >= self.params.update_interval {
            self.since_update -= self.params.update_interval;
            self.update(delay);
        }
    }

    fn update(&mut self, delay: Dur) {
        let target = self.params.target_delay.as_secs_f64();
        let d = delay.as_secs_f64();
        let line = self.params.line_rate.as_bps_f64();
        if d <= target {
            self.rate = (self.rate + self.params.ai.as_bps_f64()).min(line);
        } else {
            // Decrease proportional to the relative excess, capped at β.
            let excess = ((d - target) / d).min(1.0);
            let factor = 1.0 - self.params.beta * excess;
            self.rate = (self.rate * factor).max(self.params.min_rate.as_bps_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rp() -> SwiftRp {
        SwiftRp::new(SwiftParams::fabric_default())
    }

    const LINE: f64 = 50e9;

    #[test]
    fn starts_at_line_and_holds_below_target() {
        let mut r = rp();
        assert_eq!(r.rate(), LINE);
        // Below-target delay: stays at line (AI is capped there).
        r.advance(Dur::from_micros(250), Dur::from_micros(10));
        assert_eq!(r.rate(), LINE);
    }

    #[test]
    fn backs_off_above_target_and_recovers() {
        let mut r = rp();
        // 90 µs delay against a 30 µs target: strong decrease.
        r.advance(Dur::from_micros(25), Dur::from_micros(90));
        let after_one = r.rate();
        assert!(after_one < LINE);
        let expected = LINE * (1.0 - 0.4 * (60.0 / 90.0));
        assert!((after_one - expected).abs() < 1.0);
        // Sustained congestion keeps cutting.
        r.advance(Dur::from_micros(250), Dur::from_micros(90));
        assert!(r.rate() < after_one);
        // Relief: additive recovery, 200 Mbps per 25 µs.
        let low = r.rate();
        r.advance(Dur::from_micros(250), Dur::ZERO);
        assert!((r.rate() - (low + 10.0 * 200e6)).abs() < 1.0);
    }

    #[test]
    fn rate_floor_holds() {
        let mut r = rp();
        r.advance(Dur::from_millis(50), Dur::from_millis(10));
        assert!(r.rate() >= 40e6);
    }

    /// The unfairness knob: at a shared queue depth, the flow with the
    /// higher delay target keeps increasing while the lower-target flow
    /// backs off — the delay-based analogue of DCQCN's `T`.
    #[test]
    fn higher_target_wins_at_shared_queue() {
        let mut tolerant =
            SwiftRp::new(SwiftParams::fabric_default().with_target(Dur::from_micros(60)));
        let mut strict = rp(); // 30 µs target
        let shared_delay = Dur::from_micros(45);
        for _ in 0..40 {
            tolerant.advance(Dur::from_micros(25), shared_delay);
            strict.advance(Dur::from_micros(25), shared_delay);
        }
        assert!(
            tolerant.rate() > strict.rate() * 2.0,
            "tolerant {:.1}G vs strict {:.1}G",
            tolerant.rate() / 1e9,
            strict.rate() / 1e9
        );
    }

    #[test]
    fn restart_returns_to_line() {
        let mut r = rp();
        r.advance(Dur::from_millis(1), Dur::from_millis(1));
        assert!(r.rate() < LINE);
        r.restart();
        assert_eq!(r.rate(), LINE);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_rejected() {
        let mut p = SwiftParams::fabric_default();
        p.beta = 1.5;
        SwiftRp::new(p);
    }

    #[test]
    fn try_validate_rejects_each_inconsistency() {
        let base = SwiftParams::fabric_default();
        assert_eq!(base.try_validate(), Ok(()));

        let mut p = base;
        p.line_rate = Bandwidth::from_bps(0);
        assert_eq!(p.try_validate(), Err(ParamError::ZeroLineRate));

        assert_eq!(
            base.with_target(Dur::ZERO).try_validate(),
            Err(ParamError::ZeroTargetDelay)
        );

        let mut p = base;
        p.update_interval = Dur::ZERO;
        assert_eq!(p.try_validate(), Err(ParamError::ZeroUpdateInterval));

        let mut p = base;
        p.beta = 1.5;
        assert_eq!(
            p.try_validate(),
            Err(ParamError::BetaOutOfRange { beta: 1.5 })
        );
        p.beta = 0.0;
        assert_eq!(
            p.try_validate(),
            Err(ParamError::BetaOutOfRange { beta: 0.0 })
        );

        let mut p = base;
        p.min_rate = Bandwidth::from_gbps(100);
        assert_eq!(p.try_validate(), Err(ParamError::MinAboveLine));
    }
}
