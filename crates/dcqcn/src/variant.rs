//! [`CcVariant`]: the congestion-control zoo's serializable spec.
//!
//! A `CcVariant` is the *description* of a controller — `Copy`,
//! comparable, hashable into config keys. [`CcVariant::build`] turns it
//! into a live boxed [`CcAlgorithm`] for the engines to drive.

use crate::{
    CcAlgorithm, DcqcnParams, DcqcnRp, FairnessPolicy, MltcpRp, PolicyRp, SwiftParams, SwiftRp,
};
use simtime::Dur;

/// Which congestion-control behaviour a job's flows run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcVariant {
    /// Default DCQCN: every job uses the same timer `T` (fair sharing —
    /// the paper's scenario 1).
    Fair,
    /// Statically unfair DCQCN: this job's timer is overridden (the
    /// paper's scenario 2 sets the aggressive job to 100 µs vs the 125 µs
    /// default).
    StaticUnfair {
        /// The overridden rate-increase timer period.
        timer: Dur,
    },
    /// Adaptively unfair DCQCN (§4.i): `R_AI` is scaled by
    /// `1 + sent/total` of the current communication phase, so jobs closer
    /// to finishing are more aggressive.
    AdaptiveUnfair,
    /// Delay-based (TIMELY/Swift-style) control instead of DCQCN, holding
    /// the queue at the given per-flow delay target. Equal targets share
    /// fairly; a higher target is the unfairness knob.
    Swift {
        /// Queueing-delay target.
        target_delay: Dur,
    },
    /// MLTCP-style job-aware DCQCN ([`MltcpRp`]): the boost ramps with
    /// communication-phase progress, `boost = 1 + bonus · sent/total`.
    /// `bonus = 0` is bit-exact to [`CcVariant::Fair`].
    Mltcp {
        /// Slot-bonus slope (MLTCP's recommended strength is ≈1).
        bonus: f64,
    },
    /// DCQCN driven by an explicit fairness policy ([`PolicyRp`], the
    /// Fair-Aurora direction).
    Policy {
        /// The sharing intent this job's flows enforce.
        policy: FairnessPolicy,
    },
}

impl CcVariant {
    /// Builds the live controller for a job running this variant.
    ///
    /// `base` carries the engine's line rate (via
    /// [`DcqcnParams::with_line_rate`]); delay-based variants read it from
    /// there too.
    ///
    /// # Panics
    /// Panics if the variant's constants are invalid (see
    /// [`MltcpRp::new`], [`FairnessPolicy::validate`]).
    pub fn build(&self, base: DcqcnParams) -> Box<dyn CcAlgorithm> {
        match *self {
            CcVariant::Fair | CcVariant::AdaptiveUnfair => Box::new(DcqcnRp::new(base)),
            CcVariant::StaticUnfair { timer } => Box::new(DcqcnRp::new(base.with_timer(timer))),
            CcVariant::Swift { target_delay } => Box::new(SwiftRp::new(
                SwiftParams {
                    line_rate: base.line_rate,
                    ..SwiftParams::fabric_default()
                }
                .with_target(target_delay),
            )),
            CcVariant::Mltcp { bonus } => Box::new(MltcpRp::new(base, bonus)),
            CcVariant::Policy { policy } => Box::new(PolicyRp::new(base, policy)),
        }
    }
    /// Builds the reaction point for a job running this variant on top of
    /// `base` parameters.
    ///
    /// # Panics
    /// Panics for [`CcVariant::Swift`] — build a [`SwiftRp`] via
    /// [`CcVariant::build_swift`] instead (the engine dispatches on
    /// [`CcVariant::is_delay_based`]).
    pub fn build_rp(&self, base: DcqcnParams) -> DcqcnRp {
        match *self {
            CcVariant::Fair | CcVariant::AdaptiveUnfair => DcqcnRp::new(base),
            CcVariant::StaticUnfair { timer } => DcqcnRp::new(base.with_timer(timer)),
            CcVariant::Swift { .. } => {
                panic!("Swift variant uses build_swift, not build_rp")
            }
            CcVariant::Mltcp { .. } | CcVariant::Policy { .. } => {
                panic!("wrapped controller: use CcVariant::build, not build_rp")
            }
        }
    }

    /// Builds the delay-based controller for [`CcVariant::Swift`].
    ///
    /// # Panics
    /// Panics for the DCQCN variants.
    pub fn build_swift(&self, line_rate: simtime::Bandwidth) -> SwiftRp {
        match *self {
            CcVariant::Swift { target_delay } => SwiftRp::new(
                SwiftParams {
                    line_rate,
                    ..SwiftParams::fabric_default()
                }
                .with_target(target_delay),
            ),
            _ => panic!("build_swift on a DCQCN variant"),
        }
    }

    /// `true` for the paper's adaptively-unfair DCQCN (§4.i). Engines gate
    /// progress feeding on the broader [`CcVariant::wants_progress`].
    pub fn is_adaptive(&self) -> bool {
        matches!(self, CcVariant::AdaptiveUnfair)
    }

    /// `true` for the delay-based controller.
    pub fn is_delay_based(&self) -> bool {
        matches!(self, CcVariant::Swift { .. })
    }

    /// `true` if the engine should feed communication-phase progress into
    /// the controller each step
    /// ([`CcAlgorithm::on_phase_progress`]).
    pub fn wants_progress(&self) -> bool {
        match self {
            CcVariant::AdaptiveUnfair => true,
            CcVariant::Mltcp { bonus } => *bonus > 0.0,
            CcVariant::Policy { policy } => policy.wants_progress(),
            CcVariant::Fair | CcVariant::StaticUnfair { .. } | CcVariant::Swift { .. } => false,
        }
    }

    /// `true` if the controller consumes ECN marks / CNPs (the engines
    /// skip the marking path otherwise).
    pub fn reacts_to_marks(&self) -> bool {
        !self.is_delay_based()
    }

    /// The fluid engine's allocation weight for a job running this
    /// variant at communication-phase progress `p ∈ [0, 1]` — the
    /// idealized-sharing analogue of the packet/rate engines' emergent
    /// bandwidth split:
    ///
    /// * `Fair` → 1 (plain max-min);
    /// * `StaticUnfair { timer }` → `T_default / timer` (a faster timer
    ///   wins proportionally, e.g. 100 µs → 1.25);
    /// * `AdaptiveUnfair` → `1 + p` (§4.i's boost, applied as weight);
    /// * `Swift { target_delay }` → `target / target_default` (a deeper
    ///   delay budget claims a proportionally larger share);
    /// * `Mltcp { bonus }` → `1 + bonus · p`;
    /// * `Policy { policy }` → [`FairnessPolicy::boost`] at `p`.
    pub fn fluid_weight(&self, progress: f64) -> f64 {
        let p = progress.clamp(0.0, 1.0);
        match *self {
            CcVariant::Fair => 1.0,
            CcVariant::StaticUnfair { timer } => {
                let base = DcqcnParams::testbed_default().timer;
                base.as_secs_f64() / timer.as_secs_f64()
            }
            CcVariant::AdaptiveUnfair => 1.0 + p,
            CcVariant::Swift { target_delay } => {
                let base = SwiftParams::fabric_default().target_delay;
                target_delay.as_secs_f64() / base.as_secs_f64()
            }
            CcVariant::Mltcp { bonus } => 1.0 + bonus * p,
            CcVariant::Policy { policy } => policy.boost(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_uses_base_timer() {
        let base = DcqcnParams::testbed_default();
        let rp = CcVariant::Fair.build_rp(base);
        assert_eq!(rp.params().timer, Dur::from_micros(125));
        assert!(!CcVariant::Fair.is_adaptive());
    }

    #[test]
    fn static_unfair_overrides_timer() {
        let base = DcqcnParams::testbed_default();
        let rp = CcVariant::StaticUnfair {
            timer: Dur::from_micros(100),
        }
        .build_rp(base);
        assert_eq!(rp.params().timer, Dur::from_micros(100));
        assert_eq!(rp.params().line_rate, base.line_rate);
    }

    #[test]
    fn swift_variant_builds_delay_controller() {
        let v = CcVariant::Swift {
            target_delay: Dur::from_micros(60),
        };
        assert!(v.is_delay_based());
        assert!(!v.is_adaptive());
        let rp = v.build_swift(simtime::Bandwidth::from_gbps(50));
        assert_eq!(rp.params().target_delay, Dur::from_micros(60));
        assert_eq!(rp.rate(), 50e9);
    }

    #[test]
    #[should_panic(expected = "build_swift, not build_rp")]
    fn swift_rejects_dcqcn_builder() {
        CcVariant::Swift {
            target_delay: Dur::from_micros(30),
        }
        .build_rp(DcqcnParams::testbed_default());
    }

    #[test]
    fn adaptive_flags_progress_feeding() {
        assert!(CcVariant::AdaptiveUnfair.is_adaptive());
        let rp = CcVariant::AdaptiveUnfair.build_rp(DcqcnParams::testbed_default());
        assert_eq!(rp.boost(), 1.0); // engine raises it as the phase progresses
    }

    #[test]
    fn build_constructs_every_variant() {
        let base = DcqcnParams::testbed_default();
        let zoo = [
            CcVariant::Fair,
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
            CcVariant::AdaptiveUnfair,
            CcVariant::Swift {
                target_delay: Dur::from_micros(60),
            },
            CcVariant::Mltcp { bonus: 1.0 },
            CcVariant::Policy {
                policy: crate::FairnessPolicy::Proportional { weight: 1.5 },
            },
        ];
        for v in zoo {
            let cc = v.build(base);
            assert_eq!(cc.rate(), 50e9, "{v:?} starts at line rate");
            assert_eq!(cc.reacts_to_marks(), v.reacts_to_marks(), "{v:?}");
            assert_eq!(cc.stage().is_none(), v.is_delay_based(), "{v:?}");
        }
    }

    #[test]
    fn wants_progress_covers_job_aware_variants() {
        assert!(CcVariant::AdaptiveUnfair.wants_progress());
        assert!(CcVariant::Mltcp { bonus: 0.5 }.wants_progress());
        assert!(!CcVariant::Mltcp { bonus: 0.0 }.wants_progress());
        assert!(CcVariant::Policy {
            policy: crate::FairnessPolicy::BonusDecay {
                bonus: 1.0,
                decay: 2.0
            }
        }
        .wants_progress());
        assert!(!CcVariant::Policy {
            policy: crate::FairnessPolicy::Proportional { weight: 1.5 }
        }
        .wants_progress());
        assert!(!CcVariant::Fair.wants_progress());
        assert!(!CcVariant::Swift {
            target_delay: Dur::from_micros(30)
        }
        .wants_progress());
    }

    #[test]
    fn fluid_weights_mirror_aggressiveness() {
        assert_eq!(CcVariant::Fair.fluid_weight(0.5), 1.0);
        let unfair = CcVariant::StaticUnfair {
            timer: Dur::from_micros(100),
        };
        assert!((unfair.fluid_weight(0.0) - 1.25).abs() < 1e-12);
        assert_eq!(CcVariant::AdaptiveUnfair.fluid_weight(0.0), 1.0);
        assert_eq!(CcVariant::AdaptiveUnfair.fluid_weight(1.0), 2.0);
        assert_eq!(CcVariant::Mltcp { bonus: 2.0 }.fluid_weight(0.5), 2.0);
        let sw = CcVariant::Swift {
            target_delay: Dur::from_micros(60),
        };
        assert!((sw.fluid_weight(0.3) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "use CcVariant::build")]
    fn wrapped_variants_reject_build_rp() {
        CcVariant::Mltcp { bonus: 1.0 }.build_rp(DcqcnParams::testbed_default());
    }
}
