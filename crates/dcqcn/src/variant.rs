//! [`CcVariant`]: the three congestion-control flavours the paper compares.

use crate::{DcqcnParams, DcqcnRp, SwiftParams, SwiftRp};
use simtime::Dur;

/// Which congestion-control behaviour a job's flows run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcVariant {
    /// Default DCQCN: every job uses the same timer `T` (fair sharing —
    /// the paper's scenario 1).
    Fair,
    /// Statically unfair DCQCN: this job's timer is overridden (the
    /// paper's scenario 2 sets the aggressive job to 100 µs vs the 125 µs
    /// default).
    StaticUnfair {
        /// The overridden rate-increase timer period.
        timer: Dur,
    },
    /// Adaptively unfair DCQCN (§4.i): `R_AI` is scaled by
    /// `1 + sent/total` of the current communication phase, so jobs closer
    /// to finishing are more aggressive.
    AdaptiveUnfair,
    /// Delay-based (TIMELY/Swift-style) control instead of DCQCN, holding
    /// the queue at the given per-flow delay target. Equal targets share
    /// fairly; a higher target is the unfairness knob.
    Swift {
        /// Queueing-delay target.
        target_delay: Dur,
    },
}

impl CcVariant {
    /// Builds the reaction point for a job running this variant on top of
    /// `base` parameters.
    ///
    /// # Panics
    /// Panics for [`CcVariant::Swift`] — build a [`SwiftRp`] via
    /// [`CcVariant::build_swift`] instead (the engine dispatches on
    /// [`CcVariant::is_delay_based`]).
    pub fn build_rp(&self, base: DcqcnParams) -> DcqcnRp {
        match *self {
            CcVariant::Fair | CcVariant::AdaptiveUnfair => DcqcnRp::new(base),
            CcVariant::StaticUnfair { timer } => DcqcnRp::new(base.with_timer(timer)),
            CcVariant::Swift { .. } => {
                panic!("Swift variant uses build_swift, not build_rp")
            }
        }
    }

    /// Builds the delay-based controller for [`CcVariant::Swift`].
    ///
    /// # Panics
    /// Panics for the DCQCN variants.
    pub fn build_swift(&self, line_rate: simtime::Bandwidth) -> SwiftRp {
        match *self {
            CcVariant::Swift { target_delay } => SwiftRp::new(
                SwiftParams {
                    line_rate,
                    ..SwiftParams::fabric_default()
                }
                .with_target(target_delay),
            ),
            _ => panic!("build_swift on a DCQCN variant"),
        }
    }

    /// `true` if the engine should feed communication-phase progress into
    /// the RP each step.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, CcVariant::AdaptiveUnfair)
    }

    /// `true` for the delay-based controller.
    pub fn is_delay_based(&self) -> bool {
        matches!(self, CcVariant::Swift { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_uses_base_timer() {
        let base = DcqcnParams::testbed_default();
        let rp = CcVariant::Fair.build_rp(base);
        assert_eq!(rp.params().timer, Dur::from_micros(125));
        assert!(!CcVariant::Fair.is_adaptive());
    }

    #[test]
    fn static_unfair_overrides_timer() {
        let base = DcqcnParams::testbed_default();
        let rp = CcVariant::StaticUnfair {
            timer: Dur::from_micros(100),
        }
        .build_rp(base);
        assert_eq!(rp.params().timer, Dur::from_micros(100));
        assert_eq!(rp.params().line_rate, base.line_rate);
    }

    #[test]
    fn swift_variant_builds_delay_controller() {
        let v = CcVariant::Swift {
            target_delay: Dur::from_micros(60),
        };
        assert!(v.is_delay_based());
        assert!(!v.is_adaptive());
        let rp = v.build_swift(simtime::Bandwidth::from_gbps(50));
        assert_eq!(rp.params().target_delay, Dur::from_micros(60));
        assert_eq!(rp.rate(), 50e9);
    }

    #[test]
    #[should_panic(expected = "build_swift, not build_rp")]
    fn swift_rejects_dcqcn_builder() {
        CcVariant::Swift {
            target_delay: Dur::from_micros(30),
        }
        .build_rp(DcqcnParams::testbed_default());
    }

    #[test]
    fn adaptive_flags_progress_feeding() {
        assert!(CcVariant::AdaptiveUnfair.is_adaptive());
        let rp = CcVariant::AdaptiveUnfair.build_rp(DcqcnParams::testbed_default());
        assert_eq!(rp.boost(), 1.0); // engine raises it as the phase progresses
    }
}
