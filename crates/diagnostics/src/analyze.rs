//! The run analyzer: splits a trace into scenarios, runs every analyzer on
//! each, and distills the result into a [`RunSummary`] plus cross-scenario
//! speedup attribution.

use crate::attribution::{self, ContentionLedger};
use crate::events::{extract_tracks, median_dur, split_scenarios, ScenarioTracks};
use crate::fairness::{self, FairnessReport};
use crate::health::{self, HealthConfig, HealthReport};
use crate::interleave::{self, InterleaveReport};
use crate::summary::RunSummary;
use simtime::Dur;
use std::collections::BTreeMap;
use telemetry::TimedEvent;

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Fairness window; defaults to 10 ms (a few iterations of the
    /// paper's workloads).
    pub fairness_window: Dur,
    pub health: HealthConfig,
    /// The solver's predicted overlap fraction per scenario name, when the
    /// caller ran `geometry` (see [`geometry::overlap_fraction_of`]).
    pub predicted_overlap: BTreeMap<String, f64>,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            fairness_window: Dur::from_millis(10),
            health: HealthConfig::default(),
            predicted_overlap: BTreeMap::new(),
        }
    }
}

/// Every analyzer's verdict for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioAnalysis {
    pub name: String,
    pub tracks: ScenarioTracks,
    pub interleave: InterleaveReport,
    pub health: HealthReport,
    pub fairness: FairnessReport,
    /// Contention ledger built from the engines' typed iteration spans;
    /// empty for traces recorded before spans existed.
    pub ledger: ContentionLedger,
    /// Median iteration time per job, ms (jobs with ≥1 measured iteration).
    pub median_iter_ms: BTreeMap<u32, f64>,
}

/// A job's speedup in one scenario relative to the baseline scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpeedup {
    pub job: u32,
    /// `baseline_median / scenario_median`; > 1 means faster here.
    pub speedup: f64,
}

/// Who paid for whose speedup: one scenario measured against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// The non-baseline scenario being attributed.
    pub scenario: String,
    pub speedups: Vec<JobSpeedup>,
}

impl Attribution {
    /// Jobs that got faster / slower than baseline (beyond 1% noise).
    pub fn winners(&self) -> Vec<u32> {
        self.speedups
            .iter()
            .filter(|s| s.speedup > 1.01)
            .map(|s| s.job)
            .collect()
    }

    pub fn losers(&self) -> Vec<u32> {
        self.speedups
            .iter()
            .filter(|s| s.speedup < 0.99)
            .map(|s| s.job)
            .collect()
    }
}

/// The full analysis of one recorded run.
#[derive(Debug, Clone)]
pub struct RunAnalysis {
    pub name: String,
    pub scenarios: Vec<ScenarioAnalysis>,
    /// Per-job speedup of each later scenario vs. the first (the first
    /// scenario in the trace is the baseline). Empty for single-scenario
    /// runs.
    pub attribution: Vec<Attribution>,
}

/// Runs every analyzer over a recorded event stream.
pub fn analyze(name: &str, events: &[TimedEvent], cfg: &AnalysisConfig) -> RunAnalysis {
    let mut scenarios = Vec::new();
    for slice in split_scenarios(events) {
        let tracks = extract_tracks(slice.events);
        let interleave =
            interleave::audit(&tracks, cfg.predicted_overlap.get(&slice.name).copied());
        let health = health::analyze(&tracks, &cfg.health);
        let fairness = fairness::analyze(&tracks, cfg.fairness_window);
        let ledger = attribution::ledger(&tracks, cfg.predicted_overlap.get(&slice.name).copied());
        let median_iter_ms = tracks
            .jobs
            .iter()
            .filter(|(_, t)| !t.iteration_times.is_empty())
            .map(|(&job, t)| (job, median_dur(&t.iteration_times).as_millis_f64()))
            .collect();
        scenarios.push(ScenarioAnalysis {
            name: slice.name,
            tracks,
            interleave,
            health,
            fairness,
            ledger,
            median_iter_ms,
        });
    }

    let attribution = if scenarios.len() >= 2 {
        let base = &scenarios[0];
        scenarios[1..]
            .iter()
            .map(|s| Attribution {
                scenario: s.name.clone(),
                speedups: s
                    .median_iter_ms
                    .iter()
                    .filter_map(|(job, &ms)| {
                        let base_ms = *base.median_iter_ms.get(job)?;
                        (ms > 0.0).then_some(JobSpeedup {
                            job: *job,
                            speedup: base_ms / ms,
                        })
                    })
                    .collect(),
            })
            .collect()
    } else {
        Vec::new()
    };

    RunAnalysis {
        name: name.to_string(),
        scenarios,
        attribution,
    }
}

impl RunAnalysis {
    /// Flattens the analysis into the compact metric map used for
    /// regression diffing. Keys are `scenario.analyzer.metric`.
    pub fn summary(&self) -> RunSummary {
        let mut s = RunSummary::new(&self.name);
        for sc in &self.scenarios {
            let p = sanitize(&sc.name);
            s.put_under(
                &p,
                "interleave.overlap_fraction",
                sc.interleave.overlap_fraction,
            );
            if let Some(gap) = sc.interleave.prediction_gap() {
                s.put_under(&p, "interleave.prediction_gap", gap);
            }
            for link in &sc.interleave.links {
                s.put_under(
                    &p,
                    &format!("interleave.link{}.overlap_fraction", link.link),
                    link.overlap_fraction,
                );
                for (job, share) in &link.exclusive_share {
                    s.put_under(
                        &p,
                        &format!("interleave.link{}.job{job}.exclusive_share", link.link),
                        *share,
                    );
                }
            }
            s.put_under(&p, "fairness.mean_jain", sc.fairness.mean_jain);
            s.put_under(&p, "fairness.min_jain", sc.fairness.min_jain);
            s.put_under(&p, "fairness.long_term_jain", sc.fairness.long_term_jain);
            for f in &sc.health.flows {
                let fp = format!("health.flow{}", f.flow);
                s.put_under(&p, &format!("{fp}.mean_rate_gbps"), f.mean_rate_gbps);
                s.put_under(&p, &format!("{fp}.final_cv"), f.final_cv);
                s.put_under(&p, &format!("{fp}.ecn_marks_per_sec"), f.ecn_marks_per_sec);
                s.put_under(&p, &format!("{fp}.cnps_per_sec"), f.cnps_per_sec);
            }
            for q in &sc.health.queues {
                let qp = format!("health.queue{}", q.link);
                s.put_under(&p, &format!("{qp}.max_bytes"), q.max_bytes);
                s.put_under(&p, &format!("{qp}.mean_bytes"), q.mean_bytes);
            }
            for (job, ms) in &sc.median_iter_ms {
                s.put_under(&p, &format!("iters.job{job}.median_ms"), *ms);
            }
            if !sc.ledger.jobs.is_empty() {
                s.put_under(&p, "attr.measured_overlap", sc.ledger.measured_overlap());
                s.put_under(&p, "attr.max_residual", sc.ledger.max_residual);
                for (job, jl) in &sc.ledger.jobs {
                    let jp = format!("attr.job{job}");
                    s.put_under(&p, &format!("{jp}.compute_s"), jl.compute);
                    s.put_under(&p, &format!("{jp}.solo_s"), jl.solo);
                    s.put_under(&p, &format!("{jp}.inflation_s"), jl.inflation);
                    s.put_under(&p, &format!("{jp}.inflation_share"), jl.inflation_share());
                }
                for (link, lb) in &sc.ledger.links {
                    s.put_under(&p, &format!("attr.link{link}.inflation_s"), lb.inflation);
                }
            }
        }
        for attr in &self.attribution {
            let p = sanitize(&attr.scenario);
            for sp in &attr.speedups {
                s.put_under(&p, &format!("speedup.job{}", sp.job), sp.speedup);
            }
        }
        s
    }
}

/// Scenario names become metric-key segments: `/` and whitespace → `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == '/' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Time;
    use telemetry::{Event, Phase};

    fn ev(at: u64, event: Event) -> TimedEvent {
        TimedEvent {
            at: Time::from_nanos(at),
            event,
        }
    }

    fn comm(at: u64, job: u32, it: u64, enter: bool) -> TimedEvent {
        ev(
            at,
            if enter {
                Event::PhaseEnter {
                    job,
                    phase: Phase::Communicate,
                    iteration: it,
                }
            } else {
                Event::PhaseExit {
                    job,
                    phase: Phase::Communicate,
                    iteration: it,
                }
            },
        )
    }

    /// Two scenarios: "slow" where job iterations take 200 ns, "fast"
    /// where they take 100 ns — attribution sees the 2× speedup.
    #[test]
    fn attribution_measures_speedup_vs_first_scenario() {
        let mut events = vec![ev(
            0,
            Event::Scenario {
                name: "slow".into(),
            },
        )];
        for i in 0..5u64 {
            events.push(comm(i * 200, 0, i, true));
            events.push(comm(i * 200 + 50, 0, i, false));
        }
        events.push(ev(
            1_000,
            Event::Scenario {
                name: "fast".into(),
            },
        ));
        for i in 0..5u64 {
            events.push(comm(i * 100, 0, i, true));
            events.push(comm(i * 100 + 50, 0, i, false));
        }
        let a = analyze("test", &events, &AnalysisConfig::default());
        assert_eq!(a.scenarios.len(), 2);
        assert_eq!(a.attribution.len(), 1);
        let sp = &a.attribution[0].speedups[0];
        assert!((sp.speedup - 2.0).abs() < 1e-9, "speedup {}", sp.speedup);
        assert_eq!(a.attribution[0].winners(), vec![0]);
        assert!(a.attribution[0].losers().is_empty());
    }

    #[test]
    fn summary_contains_per_scenario_metrics() {
        let events = vec![
            ev(
                0,
                Event::Scenario {
                    name: "fig1/fair".into(),
                },
            ),
            comm(0, 0, 0, true),
            comm(100, 0, 0, false),
            comm(100, 1, 0, true),
            comm(200, 1, 0, false),
        ];
        let s = analyze("fig1", &events, &AnalysisConfig::default()).summary();
        assert_eq!(s.name, "fig1");
        assert_eq!(s.metrics["fig1_fair.interleave.overlap_fraction"], 0.0);
        assert!(s
            .metrics
            .contains_key("fig1_fair.interleave.link0.job0.exclusive_share"));
        assert_eq!(s.metrics["fig1_fair.fairness.mean_jain"], 1.0);
    }

    #[test]
    fn predicted_overlap_threads_through_to_the_gap_metric() {
        let events = vec![
            ev(0, Event::Scenario { name: "s".into() }),
            comm(0, 0, 0, true),
            comm(100, 0, 0, false),
            comm(0, 1, 0, true),
            comm(100, 1, 0, false),
        ];
        let mut cfg = AnalysisConfig::default();
        cfg.predicted_overlap.insert("s".into(), 0.0);
        let a = analyze("x", &events, &cfg);
        // Fully overlapped arcs vs. a promise of 0 → gap 1.
        assert_eq!(a.scenarios[0].interleave.prediction_gap(), Some(1.0));
        assert_eq!(a.summary().metrics["s.interleave.prediction_gap"], 1.0);
    }
}
