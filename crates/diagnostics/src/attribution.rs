//! Causal attribution: who made each iteration slow, and by how much?
//!
//! Folds the engines' typed iteration spans ([`crate::events::IterationSpan`])
//! with per-link communication occupancy into a **contention ledger**: every
//! job-iteration's wall time is decomposed as
//!
//! ```text
//! wall = compute + wait + solo_comm + inflation
//! ```
//!
//! where `solo_comm` is the communication time the job would have needed
//! with the link to itself and `inflation` is the extra time attributable
//! to sharing. The split uses occupancy shares: a communication
//! sub-segment of length `L` during which `n` jobs occupy the job's
//! bottleneck link contributes `L/n` to solo time and `L/n` of blame to
//! *each* of the `n−1` competitors, keyed by `(link, competitor)`. The
//! decomposition is conservation-exact by construction — `solo +
//! inflation` always sums to measured communication time — so the
//! reported residual only measures floating-point noise and span/phase
//! disagreement.
//!
//! The ledger also extracts the critical path per iteration (was the
//! iteration bound by compute or by a contended link?) and cross-checks
//! the measured contention against the `geometry` solver's predicted
//! overlap fraction when the caller has one.

use crate::events::{Interval, ScenarioTracks};
use std::collections::BTreeMap;

/// What bound one iteration's wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// Compute dominated the iteration.
    Compute,
    /// Communication dominated; `link` is the most-blamed (or only) link.
    Communicate { link: u32 },
}

impl Binding {
    pub fn label(&self) -> String {
        match self {
            Binding::Compute => "compute".to_string(),
            Binding::Communicate { link } => format!("link{link}"),
        }
    }
}

/// One job-iteration's decomposed wall time, all in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationLedger {
    pub job: u32,
    pub iteration: u64,
    /// Measured iteration span.
    pub wall: f64,
    /// Time inside compute sub-spans.
    pub compute: f64,
    /// Residual time in neither compute nor communication sub-spans.
    pub wait: f64,
    /// Communication time the job would have needed alone.
    pub solo: f64,
    /// Extra communication time attributable to link sharing.
    pub inflation: f64,
    /// Blame per `(link, competing job)`: seconds of this iteration's
    /// inflation attributed to that competitor on that link.
    pub blame: BTreeMap<(u32, u32), f64>,
    /// The binding component of this iteration.
    pub binding: Binding,
}

impl IterationLedger {
    /// `compute + wait + solo + inflation − wall`: how far the
    /// decomposition misses the measured span. Near zero by construction.
    pub fn residual(&self) -> f64 {
        self.compute + self.wait + self.solo + self.inflation - self.wall
    }
}

/// One job's ledger: per-iteration rows plus aggregates (seconds).
#[derive(Debug, Clone, Default)]
pub struct JobLedger {
    pub job: u32,
    pub iterations: Vec<IterationLedger>,
    pub wall: f64,
    pub compute: f64,
    pub wait: f64,
    pub solo: f64,
    pub inflation: f64,
    /// Summed blame per `(link, competing job)` across iterations.
    pub blame: BTreeMap<(u32, u32), f64>,
    /// Iterations bound by compute / by a link.
    pub bound_by_compute: usize,
    pub bound_by_comm: usize,
    /// Largest per-iteration |residual| seen.
    pub max_residual: f64,
}

impl JobLedger {
    /// `inflation / wall`: fraction of the job's time lost to contention.
    pub fn inflation_share(&self) -> f64 {
        if self.wall > 0.0 {
            self.inflation / self.wall
        } else {
            0.0
        }
    }

    /// Blame pairs sorted by blamed seconds, heaviest first (ties by key).
    pub fn top_blame(&self) -> Vec<((u32, u32), f64)> {
        let mut pairs: Vec<_> = self.blame.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs
    }
}

/// Contention totals for one link across all victims.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkBlame {
    pub link: u32,
    /// Total inflation seconds attributed on this link.
    pub inflation: f64,
    /// Blamed seconds per `(victim job, competing job)`.
    pub pairs: BTreeMap<(u32, u32), f64>,
}

/// The contention ledger of one scenario.
#[derive(Debug, Clone, Default)]
pub struct ContentionLedger {
    pub jobs: BTreeMap<u32, JobLedger>,
    /// Per-link contention totals, only links with nonzero blame.
    pub links: BTreeMap<u32, LinkBlame>,
    /// The geometry solver's predicted overlap fraction, when supplied.
    pub predicted_overlap: Option<f64>,
    /// Largest per-iteration |residual| across all jobs.
    pub max_residual: f64,
}

impl ContentionLedger {
    /// Total communication seconds (solo + inflation) across jobs.
    pub fn total_comm(&self) -> f64 {
        self.jobs.values().map(|j| j.solo + j.inflation).sum()
    }

    /// Total inflation seconds across jobs.
    pub fn total_inflation(&self) -> f64 {
        self.jobs.values().map(|j| j.inflation).sum()
    }

    /// Pairwise-equivalent measured overlap: `inflation / solo`, clamped
    /// to [0, 1]. For two jobs this equals the interleave auditor's
    /// contended-over-busy fraction; for more it saturates at 1.
    pub fn measured_overlap(&self) -> f64 {
        let solo = self.total_comm() - self.total_inflation();
        if solo <= 0.0 {
            if self.total_inflation() > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            (self.total_inflation() / solo).min(1.0)
        }
    }

    /// Verdict of the cross-check against the geometry prediction.
    pub fn verdict(&self) -> &'static str {
        const TOL: f64 = 0.15;
        match self.predicted_overlap {
            None => "no geometry prediction",
            Some(p) => {
                let m = self.measured_overlap();
                if m > p + TOL {
                    "contends more than geometry predicted"
                } else if m + TOL < p {
                    "contends less than geometry predicted"
                } else {
                    "consistent with geometry prediction"
                }
            }
        }
    }

    /// Worst `|residual| / wall` across every job-iteration row: how far
    /// the blame components stray from the measured iteration time,
    /// relative to that time. The conservation gate checks this against
    /// a 1% tolerance.
    pub fn worst_relative_residual(&self) -> f64 {
        self.jobs
            .values()
            .flat_map(|jl| jl.iterations.iter())
            .filter(|row| row.wall > 0.0)
            .map(|row| row.residual().abs() / row.wall)
            .fold(0.0, f64::max)
    }

    /// Links sorted by blamed inflation, heaviest first.
    pub fn top_links(&self) -> Vec<&LinkBlame> {
        let mut links: Vec<_> = self.links.values().collect();
        links.sort_by(|a, b| {
            b.inflation
                .total_cmp(&a.inflation)
                .then(a.link.cmp(&b.link))
        });
        links
    }
}

/// Effective link set of a job: `JobPath` links, or link 0 for engines
/// that never announced a path (matching the interleave auditor).
fn links_of(track: &crate::events::JobTrack) -> Vec<u32> {
    if track.links.is_empty() {
        vec![0]
    } else {
        track.links.clone()
    }
}

/// Builds the contention ledger for one scenario.
///
/// Only complete iterations enter the ledger: the dangling last iteration
/// of a stream has no defined wall time. Jobs without span events (traces
/// recorded before typed spans) simply contribute no rows.
pub fn ledger(tracks: &ScenarioTracks, predicted_overlap: Option<f64>) -> ContentionLedger {
    // Link → competitors (job, full-scenario comm intervals).
    let mut members: BTreeMap<u32, Vec<(u32, &[Interval])>> = BTreeMap::new();
    for (job, track) in &tracks.jobs {
        if track.comm.is_empty() {
            continue;
        }
        for link in links_of(track) {
            members
                .entry(link)
                .or_default()
                .push((*job, track.comm.as_slice()));
        }
    }

    let mut out = ContentionLedger {
        predicted_overlap,
        ..ContentionLedger::default()
    };
    for (&job, track) in &tracks.jobs {
        if track.iterations.is_empty() {
            continue;
        }
        let links = links_of(track);
        let mut jl = JobLedger {
            job,
            ..JobLedger::default()
        };
        for it in track.iterations.iter().filter(|it| it.complete) {
            let row = attribute_iteration(job, it, &links, &members);
            jl.wall += row.wall;
            jl.compute += row.compute;
            jl.wait += row.wait;
            jl.solo += row.solo;
            jl.inflation += row.inflation;
            for (&pair, &secs) in &row.blame {
                *jl.blame.entry(pair).or_insert(0.0) += secs;
                let lb = out.links.entry(pair.0).or_insert_with(|| LinkBlame {
                    link: pair.0,
                    ..LinkBlame::default()
                });
                lb.inflation += secs;
                *lb.pairs.entry((job, pair.1)).or_insert(0.0) += secs;
            }
            match row.binding {
                Binding::Compute => jl.bound_by_compute += 1,
                Binding::Communicate { .. } => jl.bound_by_comm += 1,
            }
            jl.max_residual = jl.max_residual.max(row.residual().abs());
            jl.iterations.push(row);
        }
        out.max_residual = out.max_residual.max(jl.max_residual);
        out.jobs.insert(job, jl);
    }
    out
}

/// Decomposes one iteration of `job` against everyone else's occupancy.
fn attribute_iteration(
    job: u32,
    it: &crate::events::IterationSpan,
    links: &[u32],
    members: &BTreeMap<u32, Vec<(u32, &[Interval])>>,
) -> IterationLedger {
    let wall = it.span.len().as_secs_f64();
    let compute: f64 = it.compute.iter().map(|iv| iv.len().as_secs_f64()).sum();
    let comm_total: f64 = it.comm.iter().map(|iv| iv.len().as_secs_f64()).sum();

    let mut solo = 0.0f64;
    let mut inflation = 0.0f64;
    let mut blame: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for c in &it.comm {
        if c.is_empty() {
            continue;
        }
        let (a0, b0) = (c.start.as_nanos(), c.end.as_nanos());
        // Cut the interval at every competitor edge inside it: between
        // consecutive cuts the active set on every link is constant.
        let mut cuts = vec![a0, b0];
        for &link in links {
            for (other, ivs) in members.get(&link).into_iter().flatten() {
                if *other == job {
                    continue;
                }
                for iv in *ivs {
                    for t in [iv.start.as_nanos(), iv.end.as_nanos()] {
                        if t > a0 && t < b0 {
                            cuts.push(t);
                        }
                    }
                }
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            let len = (b - a) as f64 * 1e-9;
            // Per link: competitors whose comm covers this whole segment.
            let mut binding_link = links.first().copied().unwrap_or(0);
            let mut binding_set: Vec<u32> = Vec::new();
            for &link in links {
                let active: Vec<u32> = members
                    .get(&link)
                    .into_iter()
                    .flatten()
                    .filter(|(other, ivs)| {
                        *other != job
                            && ivs
                                .iter()
                                .any(|iv| iv.start.as_nanos() <= a && iv.end.as_nanos() >= b)
                    })
                    .map(|(other, _)| *other)
                    .collect();
                if active.len() > binding_set.len() {
                    binding_link = link;
                    binding_set = active;
                }
            }
            let n = (binding_set.len() + 1) as f64;
            solo += len / n;
            if !binding_set.is_empty() {
                inflation += len * (n - 1.0) / n;
                for other in binding_set {
                    *blame.entry((binding_link, other)).or_insert(0.0) += len / n;
                }
            }
        }
    }

    let wait = wall - compute - comm_total;
    // Compare the two *measured* components (same rounding path) rather
    // than the derived solo+inflation sum, so exact ties bind to compute.
    let binding = if compute >= comm_total {
        Binding::Compute
    } else {
        // The most-blamed link binds; uncontended comm pins the first link.
        let link = blame
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0 .0.cmp(&a.0 .0)))
            .map(|((link, _), _)| *link)
            .unwrap_or_else(|| links.first().copied().unwrap_or(0));
        Binding::Communicate { link }
    };
    IterationLedger {
        job,
        iteration: it.index,
        wall,
        compute,
        wait,
        solo,
        inflation,
        blame,
        binding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{IterationSpan, JobTrack};
    use simtime::Time;

    fn iv(start: u64, end: u64) -> Interval {
        Interval {
            start: Time::from_nanos(start),
            end: Time::from_nanos(end),
        }
    }

    /// One job, one iteration: compute [s, c_start), comm [c_start, e).
    fn job_track(links: Vec<u32>, s: u64, c_start: u64, e: u64) -> JobTrack {
        JobTrack {
            comm: vec![iv(c_start, e)],
            iterations: vec![IterationSpan {
                index: 0,
                span: iv(s, e),
                compute: vec![iv(s, c_start)],
                comm: vec![iv(c_start, e)],
                complete: true,
            }],
            links,
            ..JobTrack::default()
        }
    }

    fn tracks(jobs: Vec<(u32, JobTrack)>) -> ScenarioTracks {
        let mut t = ScenarioTracks::default();
        for (id, track) in jobs {
            t.jobs.insert(id, track);
        }
        t
    }

    #[test]
    fn solo_job_has_zero_inflation_and_exact_conservation() {
        let t = tracks(vec![(0, job_track(vec![0], 0, 600, 1_000))]);
        let l = ledger(&t, None);
        let j = &l.jobs[&0];
        assert_eq!(j.inflation, 0.0);
        assert!((j.solo - 400e-9).abs() < 1e-15);
        assert!((j.compute - 600e-9).abs() < 1e-15);
        assert!(j.max_residual < 1e-15, "residual {}", j.max_residual);
        assert!(l.links.is_empty());
        assert_eq!(l.measured_overlap(), 0.0);
    }

    #[test]
    fn full_overlap_splits_comm_evenly_and_blames_the_peer() {
        // Both jobs communicate [500, 1000) on link 0.
        let t = tracks(vec![
            (0, job_track(vec![0], 0, 500, 1_000)),
            (1, job_track(vec![0], 0, 500, 1_000)),
        ]);
        let l = ledger(&t, None);
        for (job, peer) in [(0u32, 1u32), (1, 0)] {
            let j = &l.jobs[&job];
            assert!((j.solo - 250e-9).abs() < 1e-15);
            assert!((j.inflation - 250e-9).abs() < 1e-15);
            assert!((j.blame[&(0, peer)] - 250e-9).abs() < 1e-15);
            assert_eq!(j.bound_by_comm, 0); // compute 500 ≥ comm 500
            assert!(j.max_residual < 1e-15);
        }
        assert!((l.links[&0].inflation - 500e-9).abs() < 1e-15);
        assert!((l.measured_overlap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_blames_only_the_shared_span() {
        // Job 0 comm [100, 300), job 1 comm [200, 400): shared [200, 300).
        let t = tracks(vec![
            (0, job_track(vec![0], 0, 100, 300)),
            (1, job_track(vec![0], 100, 200, 400)),
        ]);
        let l = ledger(&t, None);
        let j0 = &l.jobs[&0];
        // 100 ns solo + 100 ns shared → solo 100+50, inflation 50.
        assert!((j0.solo - 150e-9).abs() < 1e-15);
        assert!((j0.inflation - 50e-9).abs() < 1e-15);
        assert!((j0.blame[&(0, 1)] - 50e-9).abs() < 1e-15);
        // Conservation: solo + inflation == measured comm.
        assert!((j0.solo + j0.inflation - 200e-9).abs() < 1e-15);
        // Interleave equivalence: contended 100 / busy 300.
        assert!((l.measured_overlap() - 100.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_links_never_blame_each_other() {
        let t = tracks(vec![
            (0, job_track(vec![0], 0, 500, 1_000)),
            (1, job_track(vec![1], 0, 500, 1_000)),
        ]);
        let l = ledger(&t, None);
        assert_eq!(l.jobs[&0].inflation, 0.0);
        assert_eq!(l.jobs[&1].inflation, 0.0);
        assert!(l.links.is_empty());
    }

    #[test]
    fn comm_bound_iteration_pins_the_contended_link() {
        // Tiny compute, long contended comm → bound by link 0.
        let t = tracks(vec![
            (0, job_track(vec![0], 0, 100, 1_000)),
            (1, job_track(vec![0], 0, 100, 1_000)),
        ]);
        let l = ledger(&t, None);
        let j = &l.jobs[&0];
        assert_eq!(j.bound_by_comm, 1);
        assert_eq!(
            j.iterations[0].binding,
            Binding::Communicate { link: 0 },
            "binding {:?}",
            j.iterations[0].binding
        );
        assert_eq!(j.iterations[0].binding.label(), "link0");
    }

    #[test]
    fn verdict_compares_measured_against_prediction() {
        let contended = tracks(vec![
            (0, job_track(vec![0], 0, 500, 1_000)),
            (1, job_track(vec![0], 0, 500, 1_000)),
        ]);
        let l = ledger(&contended, Some(0.0));
        assert_eq!(l.verdict(), "contends more than geometry predicted");
        let l = ledger(&contended, Some(1.0));
        assert_eq!(l.verdict(), "consistent with geometry prediction");
        let clean = tracks(vec![(0, job_track(vec![0], 0, 500, 1_000))]);
        let l = ledger(&clean, Some(0.9));
        assert_eq!(l.verdict(), "contends less than geometry predicted");
        let l = ledger(&clean, None);
        assert_eq!(l.verdict(), "no geometry prediction");
    }

    #[test]
    fn incomplete_iterations_stay_out_of_the_ledger() {
        let mut track = job_track(vec![0], 0, 500, 1_000);
        track.iterations[0].complete = false;
        let t = tracks(vec![(0, track)]);
        let l = ledger(&t, None);
        assert!(l.jobs[&0].iterations.is_empty());
        assert_eq!(l.jobs[&0].wall, 0.0);
    }

    #[test]
    fn three_way_contention_splits_by_occupancy_share() {
        let t = tracks(vec![
            (0, job_track(vec![0], 0, 0, 900)),
            (1, job_track(vec![0], 0, 0, 900)),
            (2, job_track(vec![0], 0, 0, 900)),
        ]);
        let l = ledger(&t, None);
        let j = &l.jobs[&0];
        assert!((j.solo - 300e-9).abs() < 1e-15);
        assert!((j.inflation - 600e-9).abs() < 1e-15);
        assert!((j.blame[&(0, 1)] - 300e-9).abs() < 1e-15);
        assert!((j.blame[&(0, 2)] - 300e-9).abs() < 1e-15);
        // Pairwise-equivalent overlap saturates at 1.
        assert_eq!(l.measured_overlap(), 1.0);
    }
}
