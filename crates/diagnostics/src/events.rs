//! Event-stream plumbing shared by the analyzers: scenario splitting and
//! per-job extraction of phase intervals, iteration times, and rate samples.

use simtime::{Dur, Time};
use std::collections::BTreeMap;
use telemetry::{Event, Phase, SpanKind, TimedEvent};

/// A named slice of the event stream between two `Scenario` markers.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSlice<'a> {
    /// The scenario's name, or `"run"` for events before the first marker.
    pub name: String,
    /// The events belonging to this scenario, marker excluded.
    pub events: &'a [TimedEvent],
}

/// Splits a recorded stream at its `Scenario` markers.
///
/// Events before the first marker (or the whole stream, if no markers
/// exist) form an implicit scenario named `"run"`; that slice is dropped
/// when empty.
pub fn split_scenarios(events: &[TimedEvent]) -> Vec<ScenarioSlice<'_>> {
    let mut out = Vec::new();
    let mut name = "run".to_string();
    let mut start = 0usize;
    for (i, te) in events.iter().enumerate() {
        if let Event::Scenario { name: next } = &te.event {
            if i > start {
                out.push(ScenarioSlice {
                    name: name.clone(),
                    events: &events[start..i],
                });
            }
            name = next.clone();
            start = i + 1;
        }
    }
    if events.len() > start || (out.is_empty() && events.is_empty()) {
        out.push(ScenarioSlice {
            name,
            events: &events[start..],
        });
    }
    out
}

/// A half-open occupancy interval `[enter, exit)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub start: Time,
    pub end: Time,
}

impl Interval {
    pub fn len(&self) -> Dur {
        self.end.saturating_since(self.start)
    }

    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// One iteration of one job, reconstructed from its span events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationSpan {
    /// The engine's iteration index (warmup iterations included).
    pub index: u64,
    /// Wall-clock extent of the iteration span.
    pub span: Interval,
    /// Compute sub-spans inside the iteration, in time order.
    pub compute: Vec<Interval>,
    /// Communication sub-spans inside the iteration, in time order
    /// (pipelined jobs may have several per iteration).
    pub comm: Vec<Interval>,
    /// False when the iteration span was still open at stream end (its
    /// extent is clipped to the last event's timestamp).
    pub complete: bool,
}

/// Per-job facts extracted from one scenario's events.
#[derive(Debug, Clone, Default)]
pub struct JobTrack {
    /// Communication-phase intervals, in time order. An interval left open
    /// at the end of the stream is closed at the last event's timestamp.
    pub comm: Vec<Interval>,
    /// Iteration spans reconstructed from `SpanBegin`/`SpanEnd` events,
    /// in iteration order. Empty for traces recorded before typed spans.
    pub iterations: Vec<IterationSpan>,
    /// Iteration times: spans between successive communicate-phase exits.
    pub iteration_times: Vec<Dur>,
    /// Links this job's traffic traverses (from `JobPath`), empty if the
    /// engine never announced a path.
    pub links: Vec<u32>,
    /// Rate samples `(at, bps)` from `RateChange` events, in time order.
    pub rates: Vec<(Time, f64)>,
    /// CNPs received, ECN marks seen (event counts).
    pub cnps: u64,
    pub ecn_marks: u64,
    /// Rate-change sample counts per congestion-control state label.
    pub cc_states: BTreeMap<&'static str, u64>,
}

/// Everything the analyzers need from one scenario, indexed by job.
#[derive(Debug, Clone, Default)]
pub struct ScenarioTracks {
    pub jobs: BTreeMap<u32, JobTrack>,
    /// Bottleneck queue-depth samples `(at, bytes)` per link.
    pub queues: BTreeMap<u32, Vec<(Time, f64)>>,
    /// Timestamp of the first and last event (both `Time::ZERO` when the
    /// scenario is empty).
    pub start: Time,
    pub end: Time,
}

impl ScenarioTracks {
    /// The scenario's observed span.
    pub fn span(&self) -> Dur {
        self.end.saturating_since(self.start)
    }
}

/// Builds per-job tracks from one scenario's events (one linear pass).
pub fn extract_tracks(events: &[TimedEvent]) -> ScenarioTracks {
    let mut tracks = ScenarioTracks {
        start: events.first().map(|e| e.at).unwrap_or(Time::ZERO),
        end: events.last().map(|e| e.at).unwrap_or(Time::ZERO),
        ..ScenarioTracks::default()
    };
    // Currently-open communicate interval per job.
    let mut open: BTreeMap<u32, Time> = BTreeMap::new();
    // Currently-open spans per job: (iteration under construction, open
    // phase-span start). Engines emit strictly nested spans, so one open
    // iteration and at most one open phase per job suffice.
    let mut open_iter: BTreeMap<u32, IterationSpan> = BTreeMap::new();
    let mut open_span: BTreeMap<u32, (SpanKind, Time)> = BTreeMap::new();
    for te in events {
        match &te.event {
            Event::PhaseEnter {
                job,
                phase: Phase::Communicate,
                ..
            } => {
                open.entry(*job).or_insert(te.at);
            }
            Event::PhaseExit {
                job,
                phase: Phase::Communicate,
                ..
            } => {
                let track = tracks.jobs.entry(*job).or_default();
                if let Some(start) = open.remove(job) {
                    track.comm.push(Interval { start, end: te.at });
                }
                if let Some(last) = track.comm.len().checked_sub(2) {
                    track
                        .iteration_times
                        .push(te.at.saturating_since(track.comm[last].end));
                }
            }
            Event::JobPath { job, links } => {
                tracks.jobs.entry(*job).or_default().links = links.clone();
            }
            Event::SpanBegin {
                job,
                kind,
                iteration,
            } => match kind {
                SpanKind::Iteration => {
                    open_iter.insert(
                        *job,
                        IterationSpan {
                            index: *iteration,
                            span: Interval {
                                start: te.at,
                                end: te.at,
                            },
                            compute: Vec::new(),
                            comm: Vec::new(),
                            complete: false,
                        },
                    );
                }
                SpanKind::Compute | SpanKind::Communicate => {
                    open_span.insert(*job, (*kind, te.at));
                }
            },
            Event::SpanEnd { job, kind, .. } => match kind {
                SpanKind::Iteration => {
                    if let Some(mut it) = open_iter.remove(job) {
                        it.span.end = te.at;
                        it.complete = true;
                        tracks.jobs.entry(*job).or_default().iterations.push(it);
                    }
                }
                SpanKind::Compute | SpanKind::Communicate => {
                    if let Some((open_kind, start)) = open_span.remove(job) {
                        if open_kind == *kind {
                            if let Some(it) = open_iter.get_mut(job) {
                                let iv = Interval { start, end: te.at };
                                match kind {
                                    SpanKind::Compute => it.compute.push(iv),
                                    _ => it.comm.push(iv),
                                }
                            }
                        }
                    }
                }
            },
            Event::RateChange { flow, bps, state } => {
                let track = tracks.jobs.entry(*flow).or_default();
                track.rates.push((te.at, *bps));
                *track.cc_states.entry(state.label()).or_insert(0) += 1;
            }
            Event::CnpReceived { flow } => {
                tracks.jobs.entry(*flow).or_default().cnps += 1;
            }
            Event::EcnMark { flow } => {
                tracks.jobs.entry(*flow).or_default().ecn_marks += 1;
            }
            Event::QueueDepth { link, bytes } => {
                tracks
                    .queues
                    .entry(*link)
                    .or_default()
                    .push((te.at, *bytes));
            }
            _ => {}
        }
    }
    // Close intervals left dangling at stream end.
    let end = tracks.end;
    for (job, start) in open {
        let interval = Interval { start, end };
        if !interval.is_empty() {
            tracks.jobs.entry(job).or_default().comm.push(interval);
        }
    }
    // Clip dangling spans (the last iteration of a stream legitimately
    // never closes) to the stream end, marked incomplete.
    for (job, (kind, start)) in open_span {
        if let Some(it) = open_iter.get_mut(&job) {
            let iv = Interval { start, end };
            if !iv.is_empty() {
                match kind {
                    SpanKind::Compute => it.compute.push(iv),
                    SpanKind::Communicate => it.comm.push(iv),
                    SpanKind::Iteration => {}
                }
            }
        }
    }
    for (job, mut it) in open_iter {
        it.span.end = end;
        if !it.span.is_empty() {
            tracks.jobs.entry(job).or_default().iterations.push(it);
        }
    }
    for track in tracks.jobs.values_mut() {
        track.comm.sort_by_key(|iv| iv.start);
        track.iterations.sort_by_key(|it| it.index);
    }
    tracks
}

/// Median of a duration sample, `Dur::ZERO` when empty.
pub fn median_dur(samples: &[Dur]) -> Dur {
    if samples.is_empty() {
        return Dur::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(at: u64, job: u32, it: u64) -> TimedEvent {
        TimedEvent {
            at: Time::from_nanos(at),
            event: Event::PhaseEnter {
                job,
                phase: Phase::Communicate,
                iteration: it,
            },
        }
    }

    fn exit(at: u64, job: u32, it: u64) -> TimedEvent {
        TimedEvent {
            at: Time::from_nanos(at),
            event: Event::PhaseExit {
                job,
                phase: Phase::Communicate,
                iteration: it,
            },
        }
    }

    fn scenario(name: &str) -> TimedEvent {
        TimedEvent {
            at: Time::ZERO,
            event: Event::Scenario { name: name.into() },
        }
    }

    #[test]
    fn scenarios_split_at_markers() {
        let ev = vec![
            scenario("a"),
            enter(10, 0, 0),
            exit(20, 0, 0),
            scenario("b"),
            enter(30, 0, 0),
        ];
        let slices = split_scenarios(&ev);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].name, "a");
        assert_eq!(slices[0].events.len(), 2);
        assert_eq!(slices[1].name, "b");
        assert_eq!(slices[1].events.len(), 1);
    }

    #[test]
    fn unmarked_stream_is_one_run_scenario() {
        let ev = vec![enter(10, 0, 0), exit(20, 0, 0)];
        let slices = split_scenarios(&ev);
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].name, "run");
        assert_eq!(slices[0].events.len(), 2);
    }

    #[test]
    fn tracks_pair_comm_intervals_and_iterations() {
        let ev = vec![
            enter(0, 0, 0),
            exit(100, 0, 0),
            enter(250, 0, 1),
            exit(300, 0, 1),
            enter(450, 0, 2),
            exit(500, 0, 2),
        ];
        let tracks = extract_tracks(&ev);
        let t = &tracks.jobs[&0];
        assert_eq!(t.comm.len(), 3);
        assert_eq!(t.comm[1].len(), Dur::from_nanos(50));
        // Iteration = exit-to-exit: 300−100 and 500−300.
        assert_eq!(
            t.iteration_times,
            vec![Dur::from_nanos(200), Dur::from_nanos(200)]
        );
    }

    #[test]
    fn dangling_interval_closes_at_stream_end() {
        let ev = vec![
            enter(0, 0, 0),
            exit(10, 0, 0),
            enter(20, 0, 1),
            exit(30, 1, 0),
        ];
        let tracks = extract_tracks(&ev);
        assert_eq!(
            tracks.jobs[&0].comm,
            vec![
                Interval {
                    start: Time::ZERO,
                    end: Time::from_nanos(10)
                },
                Interval {
                    start: Time::from_nanos(20),
                    end: Time::from_nanos(30)
                },
            ]
        );
    }

    fn span(at: u64, job: u32, kind: SpanKind, it: u64, begin: bool) -> TimedEvent {
        TimedEvent {
            at: Time::from_nanos(at),
            event: if begin {
                Event::SpanBegin {
                    job,
                    kind,
                    iteration: it,
                }
            } else {
                Event::SpanEnd {
                    job,
                    kind,
                    iteration: it,
                }
            },
        }
    }

    #[test]
    fn iteration_spans_reconstruct_from_span_events() {
        let k = SpanKind::Iteration;
        let c = SpanKind::Compute;
        let m = SpanKind::Communicate;
        let ev = vec![
            span(0, 0, k, 0, true),
            span(0, 0, c, 0, true),
            span(60, 0, c, 0, false),
            span(60, 0, m, 0, true),
            span(100, 0, m, 0, false),
            span(100, 0, k, 0, false),
            span(100, 0, k, 1, true),
            span(100, 0, c, 1, true),
            // Iteration 1 dangles open at stream end (t = 150).
            TimedEvent {
                at: Time::from_nanos(150),
                event: Event::QueueDepth {
                    link: 0,
                    bytes: 0.0,
                },
            },
        ];
        let tracks = extract_tracks(&ev);
        let its = &tracks.jobs[&0].iterations;
        assert_eq!(its.len(), 2);
        assert_eq!(its[0].index, 0);
        assert!(its[0].complete);
        assert_eq!(its[0].span.len(), Dur::from_nanos(100));
        assert_eq!(its[0].compute, vec![iv_at(0, 60)]);
        assert_eq!(its[0].comm, vec![iv_at(60, 100)]);
        assert_eq!(its[1].index, 1);
        assert!(!its[1].complete, "dangling iteration stays incomplete");
        assert_eq!(its[1].span, iv_at(100, 150));
        assert_eq!(its[1].compute, vec![iv_at(100, 150)]);
    }

    fn iv_at(start: u64, end: u64) -> Interval {
        Interval {
            start: Time::from_nanos(start),
            end: Time::from_nanos(end),
        }
    }

    #[test]
    fn median_of_even_and_odd_samples() {
        let d = Dur::from_nanos;
        assert_eq!(median_dur(&[d(3), d(1), d(2)]), d(2));
        assert_eq!(median_dur(&[d(4), d(1), d(3), d(2)]), d(3));
        assert_eq!(median_dur(&[]), Dur::ZERO);
    }
}
