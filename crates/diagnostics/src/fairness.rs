//! Fairness analyzer: windowed Jain index over flow rates.
//!
//! Jain's index `(Σx)² / (n·Σx²)` is 1 when all `n` flows get equal rates
//! and `1/n` when one flow takes everything. The paper's premise is that
//! *short-term* unfairness (deliberately letting jobs take turns) yields
//! long-term speedup, so the interesting signal is the windowed series:
//! interleaved jobs show low per-window Jain while their long-run average
//! throughput stays even.

use crate::events::ScenarioTracks;
use simtime::{Dur, Time};

/// Jain's fairness index of an allocation. 1.0 for the empty or all-zero
/// allocation (nobody is being treated unequally).
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|r| r * r).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (rates.len() as f64 * sq)
}

/// One fairness window.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessWindow {
    /// Window start.
    pub at: Time,
    /// Jain index of the flows' mean rates within the window.
    pub jain: f64,
}

/// Windowed fairness over one scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FairnessReport {
    pub windows: Vec<FairnessWindow>,
    /// Mean of the per-window indices.
    pub mean_jain: f64,
    /// The worst (most unfair) window.
    pub min_jain: f64,
    /// Jain index of whole-run mean rates — the long-term view that should
    /// stay high even when per-window fairness is deliberately low.
    pub long_term_jain: f64,
}

/// Computes windowed Jain fairness over the scenario's rate samples.
///
/// Each flow's rate within a window is the mean of its samples there,
/// carrying the last seen rate forward into sampleless windows (rates are
/// step functions: a flow that last set 10 Gbps is still sending at
/// 10 Gbps). Flows with no samples at all are excluded.
pub fn analyze(tracks: &ScenarioTracks, window: Dur) -> FairnessReport {
    let flows: Vec<&Vec<(Time, f64)>> = tracks
        .jobs
        .values()
        .filter(|t| !t.rates.is_empty())
        .map(|t| &t.rates)
        .collect();
    if flows.is_empty() || window.is_zero() || tracks.span().is_zero() {
        return FairnessReport {
            mean_jain: 1.0,
            min_jain: 1.0,
            long_term_jain: 1.0,
            ..FairnessReport::default()
        };
    }
    let n_windows = tracks.span().ratio(window).ceil() as usize;
    // Per-flow per-window mean rate, with last-value carry-forward.
    let mut means = vec![vec![0.0f64; flows.len()]; n_windows];
    for (f, samples) in flows.iter().enumerate() {
        let mut idx = 0usize; // next sample to consume
        let mut current = 0.0f64; // rate entering the window
        for (w, row) in means.iter_mut().enumerate() {
            let end = tracks.start + window.mul_f64((w + 1) as f64);
            let mut sum = 0.0;
            let mut count = 0usize;
            while idx < samples.len() && samples[idx].0 < end {
                sum += samples[idx].1;
                current = samples[idx].1;
                count += 1;
                idx += 1;
            }
            row[f] = if count > 0 {
                sum / count as f64
            } else {
                current
            };
        }
    }
    let windows: Vec<FairnessWindow> = means
        .iter()
        .enumerate()
        .map(|(w, row)| FairnessWindow {
            at: tracks.start + window.mul_f64(w as f64),
            jain: jain_index(row),
        })
        .collect();
    let mean_jain = windows.iter().map(|w| w.jain).sum::<f64>() / windows.len() as f64;
    let min_jain = windows.iter().map(|w| w.jain).fold(f64::INFINITY, f64::min);
    let long_rates: Vec<f64> = flows
        .iter()
        .map(|s| s.iter().map(|&(_, bps)| bps).sum::<f64>() / s.len() as f64)
        .collect();
    FairnessReport {
        windows,
        mean_jain,
        min_jain,
        long_term_jain: jain_index(&long_rates),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::JobTrack;

    #[test]
    fn jain_bounds_and_extremes() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
        assert_eq!(jain_index(&[3.0, 3.0, 3.0]), 1.0);
        // One flow hogs: index = 1/n.
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    fn tracks(rates: Vec<Vec<(Time, f64)>>, end: u64) -> ScenarioTracks {
        let mut tr = ScenarioTracks {
            start: Time::ZERO,
            end: t(end),
            ..ScenarioTracks::default()
        };
        for (i, r) in rates.into_iter().enumerate() {
            tr.jobs.insert(
                i as u32,
                JobTrack {
                    rates: r,
                    ..JobTrack::default()
                },
            );
        }
        tr
    }

    #[test]
    fn equal_flows_are_fair_everywhere() {
        let samples: Vec<(Time, f64)> = (0..10).map(|i| (t(i * 100), 10e9)).collect();
        let tr = tracks(vec![samples.clone(), samples], 1_000);
        let r = analyze(&tr, Dur::from_nanos(250));
        assert!((r.mean_jain - 1.0).abs() < 1e-12);
        assert!((r.long_term_jain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn taking_turns_is_unfair_short_term_fair_long_term() {
        // Flow 0 sends in the first half, flow 1 in the second.
        let a: Vec<(Time, f64)> = vec![(t(0), 20e9), (t(500), 0.0)];
        let b: Vec<(Time, f64)> = vec![(t(0), 0.0), (t(500), 20e9)];
        let tr = tracks(vec![a, b], 1_000);
        let r = analyze(&tr, Dur::from_nanos(500));
        // Each window has one active flow: Jain = 1/2.
        assert!(r.min_jain < 0.55, "min {}", r.min_jain);
        assert!(
            (r.long_term_jain - 1.0).abs() < 1e-9,
            "{}",
            r.long_term_jain
        );
    }

    #[test]
    fn carry_forward_fills_sampleless_windows() {
        // Flow sets a rate once; later windows still see it.
        let tr = tracks(vec![vec![(t(0), 10e9)], vec![(t(0), 10e9)]], 1_000);
        let r = analyze(&tr, Dur::from_nanos(100));
        assert_eq!(r.windows.len(), 10);
        assert!(r.windows.iter().all(|w| (w.jain - 1.0).abs() < 1e-12));
    }
}
