//! DCQCN health analyzer: convergence vs. oscillation, congestion-signal
//! rates, reaction-point stage residency, and queue pathology.
//!
//! Convergence is judged on windowed rate statistics: the flow's rate
//! samples are split into equal time windows and each window's coefficient
//! of variation (CV = stddev/mean) is computed. A converged flow's CV
//! shrinks toward ~0 in late windows; a persistently high late-window CV is
//! oscillation — the DCQCN failure mode the paper's Fig. 2 demonstrates
//! (rate cuts every CNP interval that never settle).

use crate::events::ScenarioTracks;
use simtime::{Dur, Time};
use std::collections::BTreeMap;

/// Analyzer knobs with sensible defaults for millisecond-scale runs.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Number of equal time windows for rate-variance analysis.
    pub windows: usize,
    /// A window with CV below this counts as steady.
    pub cv_steady: f64,
    /// A late window with CV above this counts as oscillating.
    pub cv_oscillating: f64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            windows: 8,
            cv_steady: 0.05,
            cv_oscillating: 0.25,
        }
    }
}

/// Convergence verdict for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Convergence {
    /// Late-window rate variation fell below the steady threshold.
    Converged,
    /// Late-window variation stayed above the oscillation threshold.
    Oscillating,
    /// In between, or too few samples to say.
    Indeterminate,
}

impl Convergence {
    pub fn label(self) -> &'static str {
        match self {
            Convergence::Converged => "converged",
            Convergence::Oscillating => "oscillating",
            Convergence::Indeterminate => "indeterminate",
        }
    }
}

/// Health report for one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowHealth {
    pub flow: u32,
    /// Mean of all rate samples, Gbps.
    pub mean_rate_gbps: f64,
    /// Coefficient of variation per window (empty windows are skipped).
    pub window_cv: Vec<f64>,
    /// CV of the last non-empty window; `f64::NAN`-free: 0 when unsampled.
    pub final_cv: f64,
    pub verdict: Convergence,
    /// ECN marks per second of scenario span.
    pub ecn_marks_per_sec: f64,
    /// CNPs received per second of scenario span.
    pub cnps_per_sec: f64,
    /// Fraction of rate-change samples per RP stage label
    /// (`cut`, `fast_recovery`, `additive_increase`, …).
    pub stage_fractions: BTreeMap<&'static str, f64>,
}

/// Queue-occupancy verdict for one link.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueHealth {
    pub link: u32,
    pub max_bytes: f64,
    pub mean_bytes: f64,
    /// Mean of the final quarter of samples.
    pub final_mean_bytes: f64,
    /// A standing queue persisted: the final-quarter mean exceeded half
    /// the observed maximum (the queue built up and never drained).
    pub standing_queue: bool,
}

/// The analyzer's verdict over one scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReport {
    pub flows: Vec<FlowHealth>,
    pub queues: Vec<QueueHealth>,
}

impl HealthReport {
    /// True when every sampled flow converged and no queue stood.
    pub fn is_healthy(&self) -> bool {
        self.flows
            .iter()
            .all(|f| f.verdict != Convergence::Oscillating)
            && self.queues.iter().all(|q| !q.standing_queue)
    }
}

/// Runs the health analysis over one scenario's tracks.
pub fn analyze(tracks: &ScenarioTracks, cfg: &HealthConfig) -> HealthReport {
    let span = tracks.span();
    let span_secs = span.as_secs_f64();
    let mut flows = Vec::new();
    for (flow, track) in &tracks.jobs {
        if track.rates.is_empty() && track.cnps == 0 && track.ecn_marks == 0 {
            continue;
        }
        let window_cv = windowed_cv(&track.rates, tracks.start, span, cfg.windows);
        let final_cv = window_cv.last().copied().unwrap_or(0.0);
        let verdict = if window_cv.is_empty() {
            Convergence::Indeterminate
        } else if final_cv <= cfg.cv_steady {
            Convergence::Converged
        } else if final_cv >= cfg.cv_oscillating {
            Convergence::Oscillating
        } else {
            Convergence::Indeterminate
        };
        let n = track.rates.len() as f64;
        let mean_rate_gbps = if track.rates.is_empty() {
            0.0
        } else {
            track.rates.iter().map(|&(_, bps)| bps).sum::<f64>() / n / 1e9
        };
        let samples: u64 = track.cc_states.values().sum();
        let stage_fractions = track
            .cc_states
            .iter()
            .map(|(&k, &v)| (k, v as f64 / samples.max(1) as f64))
            .collect();
        flows.push(FlowHealth {
            flow: *flow,
            mean_rate_gbps,
            window_cv,
            final_cv,
            verdict,
            ecn_marks_per_sec: per_sec(track.ecn_marks, span_secs),
            cnps_per_sec: per_sec(track.cnps, span_secs),
            stage_fractions,
        });
    }

    let queues = tracks
        .queues
        .iter()
        .filter(|(_, samples)| !samples.is_empty())
        .map(|(&link, samples)| queue_health(link, samples))
        .collect();

    HealthReport { flows, queues }
}

fn per_sec(count: u64, span_secs: f64) -> f64 {
    if span_secs <= 0.0 {
        0.0
    } else {
        count as f64 / span_secs
    }
}

/// CV (stddev/mean) of the rate samples in each of `n` equal windows over
/// `[start, start+span)`. Windows without samples are skipped.
fn windowed_cv(rates: &[(Time, f64)], start: Time, span: Dur, n: usize) -> Vec<f64> {
    if rates.is_empty() || span.is_zero() || n == 0 {
        return Vec::new();
    }
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); n];
    for &(at, bps) in rates {
        let frac = at.saturating_since(start).ratio(span);
        let idx = ((frac * n as f64) as usize).min(n - 1);
        buckets[idx].push(bps);
    }
    buckets
        .iter()
        .filter(|b| !b.is_empty())
        .map(|b| {
            let mean = b.iter().sum::<f64>() / b.len() as f64;
            if mean <= 0.0 {
                return 0.0;
            }
            let var = b.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / b.len() as f64;
            var.sqrt() / mean
        })
        .collect()
}

fn queue_health(link: u32, samples: &[(Time, f64)]) -> QueueHealth {
    let n = samples.len();
    let max_bytes = samples.iter().map(|&(_, b)| b).fold(0.0, f64::max);
    let mean_bytes = samples.iter().map(|&(_, b)| b).sum::<f64>() / n as f64;
    let tail = &samples[n - (n / 4).max(1)..];
    let final_mean_bytes = tail.iter().map(|&(_, b)| b).sum::<f64>() / tail.len() as f64;
    QueueHealth {
        link,
        max_bytes,
        mean_bytes,
        final_mean_bytes,
        standing_queue: max_bytes > 0.0 && final_mean_bytes > 0.5 * max_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::JobTrack;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    fn tracks_with_rates(rates: Vec<(Time, f64)>, end: u64) -> ScenarioTracks {
        let mut tr = ScenarioTracks {
            start: Time::ZERO,
            end: t(end),
            ..ScenarioTracks::default()
        };
        tr.jobs.insert(
            0,
            JobTrack {
                rates,
                ..JobTrack::default()
            },
        );
        tr
    }

    #[test]
    fn settling_rate_converges() {
        // Noisy early, flat late.
        let mut rates = Vec::new();
        for i in 0..50u64 {
            let bps = if i < 25 {
                10e9 + (i % 5) as f64 * 4e9
            } else {
                20e9
            };
            rates.push((t(i * 100), bps));
        }
        let r = analyze(&tracks_with_rates(rates, 5_000), &HealthConfig::default());
        assert_eq!(r.flows[0].verdict, Convergence::Converged);
        assert!(r.is_healthy());
    }

    #[test]
    fn sawtooth_rate_oscillates() {
        // Alternating hard cuts and recoveries to the very end.
        let rates = (0..64u64)
            .map(|i| (t(i * 100), if i % 2 == 0 { 40e9 } else { 10e9 }))
            .collect();
        let r = analyze(&tracks_with_rates(rates, 6_400), &HealthConfig::default());
        assert_eq!(r.flows[0].verdict, Convergence::Oscillating);
        assert!(!r.is_healthy());
    }

    #[test]
    fn signal_rates_are_per_second_of_span() {
        let mut tr = tracks_with_rates(vec![(t(0), 1e9)], 2_000_000_000);
        let track = tr.jobs.get_mut(&0).unwrap();
        track.ecn_marks = 10;
        track.cnps = 4;
        let r = analyze(&tr, &HealthConfig::default());
        assert!((r.flows[0].ecn_marks_per_sec - 5.0).abs() < 1e-12);
        assert!((r.flows[0].cnps_per_sec - 2.0).abs() < 1e-12);
    }

    #[test]
    fn standing_queue_is_flagged() {
        let mut tr = ScenarioTracks {
            start: Time::ZERO,
            end: t(1_000),
            ..ScenarioTracks::default()
        };
        // Ramp up and stay up.
        tr.queues
            .insert(0, (0..20).map(|i| (t(i * 50), (i * 1000) as f64)).collect());
        let r = analyze(&tr, &HealthConfig::default());
        assert!(r.queues[0].standing_queue);
        // Spike then drain back to zero.
        tr.queues.insert(
            0,
            (0..20)
                .map(|i| (t(i * 50), if i < 4 { 20_000.0 } else { 0.0 }))
                .collect(),
        );
        let r = analyze(&tr, &HealthConfig::default());
        assert!(!r.queues[0].standing_queue);
    }

    #[test]
    fn stage_fractions_sum_to_one() {
        let mut tr = tracks_with_rates(vec![(t(0), 1e9)], 1_000);
        let track = tr.jobs.get_mut(&0).unwrap();
        track.cc_states.insert("cut", 3);
        track.cc_states.insert("fast_recovery", 1);
        let r = analyze(&tr, &HealthConfig::default());
        let sum: f64 = r.flows[0].stage_fractions.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((r.flows[0].stage_fractions["cut"] - 0.75).abs() < 1e-12);
    }
}
