//! Cross-run trend warehouse: every benchmark / summary production
//! appends one [`HistoryRecord`] line to `bench/HISTORY.jsonl`, and
//! [`trend`] diffs the last K records per experiment to flag wall-clock
//! or quality regressions beyond tolerance.
//!
//! The line format is the same flat-JSON-object shape as [`RunSummary`],
//! one record per line:
//!
//! ```text
//! {"experiment":"fig1","kind":"bench","parallel.jobs":4.0,"wall_clock_secs":1.25}
//! ```
//!
//! `experiment` and `kind` are reserved string keys; everything else is a
//! numeric metric. Records carry **no wall-clock timestamps** — ordering
//! is the append order of the file — so two identical runs append
//! byte-identical records and the trend verdict over them is
//! deterministic.

use crate::summary::{fmt_f64, RunSummary};
use std::collections::BTreeMap;
use telemetry::replay::{parse_flat_object, JsonValue};

/// One appended run: which experiment, what produced it, and its metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistoryRecord {
    /// Experiment name (`fig1`, `chaos`, …).
    pub experiment: String,
    /// What produced the record: `"bench"` (BENCH_*.json path) or
    /// `"summary"` (run summary path).
    pub kind: String,
    /// Flat metric map; `wall_clock_secs` is the conventional key for
    /// elapsed wall time.
    pub metrics: BTreeMap<String, f64>,
}

impl HistoryRecord {
    pub fn new(experiment: &str, kind: &str) -> HistoryRecord {
        HistoryRecord {
            experiment: experiment.to_string(),
            kind: kind.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Builds a record from a [`RunSummary`] (its name becomes the
    /// experiment).
    pub fn from_summary(summary: &RunSummary, kind: &str) -> HistoryRecord {
        HistoryRecord {
            experiment: summary.name.clone(),
            kind: kind.to_string(),
            metrics: summary.metrics.clone(),
        }
    }

    /// Serializes to one flat JSON line (deterministic: sorted keys,
    /// shortest-round-trip floats, trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!(
            "{{\"experiment\":\"{}\",\"kind\":\"{}\"",
            esc(&self.experiment),
            esc(&self.kind)
        );
        for (k, v) in &self.metrics {
            out.push_str(&format!(",\"{}\":{}", esc(k), fmt_f64(*v)));
        }
        out.push_str("}\n");
        out
    }

    /// Parses one line of the format produced by [`HistoryRecord::to_line`].
    pub fn from_line(line: &str) -> Result<HistoryRecord, String> {
        let map = parse_flat_object(line).map_err(|e| e.to_string())?;
        let mut rec = HistoryRecord::default();
        for (k, v) in map {
            match (k.as_str(), v) {
                ("experiment", JsonValue::Str(s)) => rec.experiment = s,
                ("kind", JsonValue::Str(s)) => rec.kind = s,
                ("experiment" | "kind", _) => {
                    return Err(format!("reserved key {k:?} must be a string"));
                }
                (_, JsonValue::Num(n)) => {
                    rec.metrics.insert(k, n);
                }
                (k, v) => return Err(format!("metric {k:?} has non-numeric value {v:?}")),
            }
        }
        if rec.experiment.is_empty() {
            return Err("record is missing the `experiment` key".into());
        }
        Ok(rec)
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses a whole HISTORY.jsonl text (blank lines skipped), preserving
/// append order. Errors carry the 1-based line number.
pub fn parse_history(text: &str) -> Result<Vec<HistoryRecord>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            HistoryRecord::from_line(line).map_err(|e| format!("history line {}: {e}", ln + 1))?,
        );
    }
    Ok(out)
}

/// Tolerances for [`trend`].
#[derive(Debug, Clone, Copy)]
pub struct TrendConfig {
    /// How many most-recent records per experiment to consider.
    pub last: usize,
    /// Two-sided relative tolerance for quality metrics.
    pub rel_tol: f64,
    /// Absolute tolerance floor (shifts below it never flag).
    pub abs_tol: f64,
    /// One-sided relative tolerance for `wall_clock_secs` — only
    /// *increases* beyond it flag. Wall clock is inherently noisy, so the
    /// default is loose.
    pub wall_rel_tol: f64,
}

impl Default for TrendConfig {
    fn default() -> TrendConfig {
        TrendConfig {
            last: 5,
            rel_tol: 0.1,
            abs_tol: 1e-9,
            wall_rel_tol: 0.5,
        }
    }
}

/// Conventional metric key for elapsed wall time.
pub const WALL_CLOCK_KEY: &str = "wall_clock_secs";

/// One metric in the latest record that regressed beyond tolerance
/// against the baseline (median of the prior records in the window).
#[derive(Debug, Clone, PartialEq)]
pub struct TrendFlag {
    pub key: String,
    /// Median of the metric over the prior records in the window.
    pub baseline: f64,
    /// The latest record's value.
    pub latest: f64,
    /// `(latest − baseline) / |baseline|`, or infinity when baseline is 0.
    pub rel_delta: f64,
}

/// Trend verdict for one experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentTrend {
    pub experiment: String,
    /// Records considered (≤ `cfg.last`), oldest first.
    pub records: usize,
    /// Metrics compared between the latest record and the baseline.
    pub compared: usize,
    /// Metrics that moved beyond tolerance.
    pub flags: Vec<TrendFlag>,
}

/// Verdicts for every experiment found in the history, name-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrendReport {
    pub experiments: Vec<ExperimentTrend>,
}

impl TrendReport {
    /// Clean = no experiment flagged any metric.
    pub fn is_clean(&self) -> bool {
        self.experiments.iter().all(|e| e.flags.is_empty())
    }

    /// Deterministic human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.experiments {
            if e.records < 2 {
                out.push_str(&format!(
                    "{}: {} record(s), nothing to compare\n",
                    e.experiment, e.records
                ));
                continue;
            }
            if e.flags.is_empty() {
                out.push_str(&format!(
                    "{}: ok ({} records, {} metrics stable)\n",
                    e.experiment, e.records, e.compared
                ));
                continue;
            }
            out.push_str(&format!(
                "{}: {} regression(s) over {} records\n",
                e.experiment,
                e.flags.len(),
                e.records
            ));
            for f in &e.flags {
                out.push_str(&format!(
                    "  {}: {} -> {} ({:+.1}%)\n",
                    f.key,
                    fmt_f64(f.baseline),
                    fmt_f64(f.latest),
                    f.rel_delta * 100.0
                ));
            }
        }
        out
    }
}

fn median(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Diffs the latest record per experiment against the median of the
/// prior records within the last-K window. `wall_clock_secs` is judged
/// one-sided (only slowdowns flag, `wall_rel_tol`); every other metric is
/// judged two-sided (`rel_tol`). Experiments with fewer than two records
/// in the window are reported but cannot flag.
pub fn trend(records: &[HistoryRecord], cfg: &TrendConfig) -> TrendReport {
    let mut by_exp: BTreeMap<&str, Vec<&HistoryRecord>> = BTreeMap::new();
    for rec in records {
        by_exp.entry(&rec.experiment).or_default().push(rec);
    }
    let mut report = TrendReport::default();
    for (experiment, mut recs) in by_exp {
        let keep = cfg.last.max(2);
        if recs.len() > keep {
            recs.drain(..recs.len() - keep);
        }
        let mut exp = ExperimentTrend {
            experiment: experiment.to_string(),
            records: recs.len(),
            ..ExperimentTrend::default()
        };
        if let Some((latest, prior)) = recs.split_last() {
            if !prior.is_empty() {
                for (key, &value) in &latest.metrics {
                    let mut base: Vec<f64> = prior
                        .iter()
                        .filter_map(|r| r.metrics.get(key).copied())
                        .collect();
                    if base.is_empty() {
                        continue;
                    }
                    exp.compared += 1;
                    let baseline = median(&mut base);
                    let delta = value - baseline;
                    // Tolerance is relative to the *baseline* — "50%
                    // slower" means latest > 1.5 × baseline. A zero
                    // baseline flags on any shift beyond the floor.
                    let (breach, tol) = if key == WALL_CLOCK_KEY {
                        (delta > cfg.abs_tol, cfg.wall_rel_tol)
                    } else {
                        (delta.abs() > cfg.abs_tol, cfg.rel_tol)
                    };
                    if breach && delta.abs() > tol * baseline.abs() {
                        exp.flags.push(TrendFlag {
                            key: key.clone(),
                            baseline,
                            latest: value,
                            rel_delta: if baseline == 0.0 {
                                f64::INFINITY
                            } else {
                                delta / baseline.abs()
                            },
                        });
                    }
                }
            }
        }
        report.experiments.push(exp);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(exp: &str, wall: f64, quality: f64) -> HistoryRecord {
        let mut r = HistoryRecord::new(exp, "bench");
        r.metrics.insert(WALL_CLOCK_KEY.to_string(), wall);
        r.metrics.insert("quality.jain".to_string(), quality);
        r
    }

    #[test]
    fn line_round_trips_exactly() {
        let r = rec("fig1", 1.25, 0.875);
        let line = r.to_line();
        assert!(line.ends_with("}\n"));
        let back = HistoryRecord::from_line(&line).unwrap();
        assert_eq!(r, back);
        assert_eq!(line, back.to_line(), "serialization is a fixed point");
        assert!(HistoryRecord::from_line("{\"kind\":\"bench\"}").is_err());
        assert!(HistoryRecord::from_line("{\"experiment\":3}").is_err());
    }

    #[test]
    fn parse_history_reports_line_numbers() {
        let text = format!("{}not json\n", rec("a", 1.0, 1.0).to_line());
        let err = parse_history(&text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let ok = parse_history(&format!(
            "{}\n\n{}",
            rec("a", 1.0, 1.0).to_line().trim_end(),
            rec("b", 2.0, 1.0).to_line()
        ))
        .unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn identical_runs_trend_clean_and_deterministically() {
        let records = vec![rec("fig1", 1.0, 0.9), rec("fig1", 1.0, 0.9)];
        let report = trend(&records, &TrendConfig::default());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(
            report.render(),
            trend(&records, &TrendConfig::default()).render()
        );
    }

    #[test]
    fn wall_clock_regression_flags_one_sided() {
        let mut records = vec![
            rec("fig1", 1.0, 0.9),
            rec("fig1", 1.1, 0.9),
            rec("fig1", 0.9, 0.9),
        ];
        // 3x slower than the 1.0 median: flags.
        records.push(rec("fig1", 3.0, 0.9));
        let report = trend(&records, &TrendConfig::default());
        assert!(!report.is_clean());
        let flags = &report.experiments[0].flags;
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].key, WALL_CLOCK_KEY);
        assert!(flags[0].rel_delta > 1.0);
        // 3x *faster* does not flag — wall clock is one-sided.
        let last = records.len() - 1;
        records[last] = rec("fig1", 0.3, 0.9);
        assert!(trend(&records, &TrendConfig::default()).is_clean());
    }

    #[test]
    fn quality_regression_flags_two_sided() {
        let records = vec![
            rec("fig1", 1.0, 0.9),
            rec("fig1", 1.0, 0.9),
            rec("fig1", 1.0, 0.5),
        ];
        let report = trend(&records, &TrendConfig::default());
        let flags = &report.experiments[0].flags;
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].key, "quality.jain");
        assert!(flags[0].rel_delta < -0.1);
        // Improvements beyond tolerance also flag (quality drift is
        // two-sided: an unexplained jump is still a surprise).
        let up = vec![
            rec("fig1", 1.0, 0.5),
            rec("fig1", 1.0, 0.5),
            rec("fig1", 1.0, 0.9),
        ];
        assert!(!trend(&up, &TrendConfig::default()).is_clean());
    }

    #[test]
    fn window_limits_how_far_back_baselines_reach() {
        // Ancient slow runs outside the window must not mask a regression
        // against the recent fast baseline.
        let mut records = vec![rec("fig1", 9.0, 0.9); 10];
        records.extend(vec![rec("fig1", 1.0, 0.9); 4]);
        records.push(rec("fig1", 2.0, 0.9));
        let report = trend(&records, &TrendConfig::default());
        assert!(!report.is_clean(), "{}", report.render());
        assert_eq!(report.experiments[0].records, 5);
        assert_eq!(report.experiments[0].flags[0].baseline, 1.0);
    }

    #[test]
    fn single_record_and_unknown_metrics_cannot_flag() {
        let report = trend(&[rec("solo", 1.0, 0.9)], &TrendConfig::default());
        assert!(report.is_clean());
        assert!(report.render().contains("nothing to compare"));
        // A metric present only in the latest record has no baseline.
        let mut latest = rec("fig1", 1.0, 0.9);
        latest.metrics.insert("new.metric".into(), 42.0);
        let report = trend(&[rec("fig1", 1.0, 0.9), latest], &TrendConfig::default());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn experiments_are_judged_independently_and_name_sorted() {
        let records = vec![
            rec("zeta", 1.0, 0.9),
            rec("alpha", 1.0, 0.9),
            rec("zeta", 1.0, 0.9),
            rec("alpha", 1.0, 0.1),
        ];
        let report = trend(&records, &TrendConfig::default());
        let names: Vec<&str> = report
            .experiments
            .iter()
            .map(|e| e.experiment.as_str())
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert!(!report.experiments[0].flags.is_empty());
        assert!(report.experiments[1].flags.is_empty());
    }
}
