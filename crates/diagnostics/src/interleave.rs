//! Interleaving auditor: did communication phases actually take turns?
//!
//! Reconstructs per-link communication-arc occupancy from the jobs' phase
//! intervals and measures how much of the busy time was double-booked.
//! The paper's thesis is that compatible jobs can interleave perfectly —
//! overlap fraction near 0 — while incompatible or unmanaged jobs collide;
//! this module turns a trace into that number, and (when the `geometry`
//! solver's prediction is supplied) reports the gap between promised and
//! measured interleaving.

use crate::events::{Interval, ScenarioTracks};
use simtime::Dur;
use std::collections::BTreeMap;

/// Occupancy audit of one link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkAudit {
    pub link: u32,
    /// Jobs whose traffic traverses this link.
    pub jobs: Vec<u32>,
    /// Time at least one job was communicating on the link.
    pub busy: Dur,
    /// Time two or more jobs were communicating simultaneously.
    pub contended: Dur,
    /// `contended / busy` ∈ [0, 1]; 0 when never busy.
    pub overlap_fraction: f64,
    /// Per-job exclusive share: fraction of the job's own communication
    /// time during which it had the link to itself.
    pub exclusive_share: BTreeMap<u32, f64>,
}

/// The auditor's verdict over every link of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleaveReport {
    pub links: Vec<LinkAudit>,
    /// Busy-time-weighted mean overlap fraction across links.
    pub overlap_fraction: f64,
    /// The `geometry` solver's predicted overlap for this job set, when
    /// the caller has one (e.g. from [`geometry::overlap_fraction_of`]).
    pub predicted_overlap: Option<f64>,
}

impl InterleaveReport {
    /// Measured minus predicted overlap; `None` without a prediction.
    /// Positive means the run interleaved worse than the solver promised.
    pub fn prediction_gap(&self) -> Option<f64> {
        self.predicted_overlap.map(|p| self.overlap_fraction - p)
    }
}

/// Audits per-link occupancy for one scenario's tracks.
///
/// Jobs that never announced a path (`JobPath` absent) are attributed to
/// link 0, the single-bottleneck default, so traces from engines predating
/// the event still audit correctly.
pub fn audit(tracks: &ScenarioTracks, predicted_overlap: Option<f64>) -> InterleaveReport {
    // Link → members (job, comm intervals).
    let mut by_link: BTreeMap<u32, Vec<(u32, &[Interval])>> = BTreeMap::new();
    for (job, track) in &tracks.jobs {
        if track.comm.is_empty() {
            continue;
        }
        let links: &[u32] = if track.links.is_empty() {
            &[0]
        } else {
            &track.links
        };
        for &link in links {
            by_link
                .entry(link)
                .or_default()
                .push((*job, track.comm.as_slice()));
        }
    }

    let mut links = Vec::with_capacity(by_link.len());
    let mut busy_sum = Dur::ZERO;
    let mut contended_sum = Dur::ZERO;
    for (link, members) in by_link {
        let audit = audit_link(link, &members);
        busy_sum += audit.busy;
        contended_sum += audit.contended;
        links.push(audit);
    }
    let overlap_fraction = if busy_sum.is_zero() {
        0.0
    } else {
        contended_sum.ratio(busy_sum)
    };
    InterleaveReport {
        links,
        overlap_fraction,
        predicted_overlap,
    }
}

/// Sweep-line occupancy audit of one link's members.
fn audit_link(link: u32, members: &[(u32, &[Interval])]) -> LinkAudit {
    // Edge list: (time_ns, +1/-1, job). Exits sort before entries at the
    // same instant so touching intervals don't count as overlap.
    let mut edges: Vec<(u64, i32, u32)> = Vec::new();
    for (job, intervals) in members {
        for iv in *intervals {
            if iv.is_empty() {
                continue;
            }
            edges.push((iv.start.as_nanos(), 1, *job));
            edges.push((iv.end.as_nanos(), -1, *job));
        }
    }
    edges.sort_by_key(|&(t, delta, _)| (t, delta));

    let mut active = 0i32;
    let mut last_t = 0u64;
    let mut busy_ns = 0u64;
    let mut contended_ns = 0u64;
    // Exclusive time per job: accumulated while exactly that job is active.
    let mut sole_job: Option<u32> = None;
    let mut exclusive_ns: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total_ns: BTreeMap<u32, u64> = BTreeMap::new();
    let mut active_jobs: BTreeMap<u32, u32> = BTreeMap::new();

    for (t, delta, job) in edges {
        let span = t - last_t;
        if span > 0 {
            if active >= 1 {
                busy_ns += span;
            }
            if active >= 2 {
                contended_ns += span;
            }
            if let Some(j) = sole_job {
                *exclusive_ns.entry(j).or_insert(0) += span;
            }
            for &j in active_jobs.keys() {
                *total_ns.entry(j).or_insert(0) += span;
            }
        }
        last_t = t;
        active += delta;
        if delta > 0 {
            *active_jobs.entry(job).or_insert(0) += 1;
        } else if let Some(n) = active_jobs.get_mut(&job) {
            *n -= 1;
            if *n == 0 {
                active_jobs.remove(&job);
            }
        }
        sole_job = if active_jobs.len() == 1 {
            active_jobs.keys().next().copied()
        } else {
            None
        };
    }

    let exclusive_share = members
        .iter()
        .map(|(job, _)| {
            let total = *total_ns.get(job).unwrap_or(&0);
            let excl = *exclusive_ns.get(job).unwrap_or(&0);
            let share = if total == 0 {
                0.0
            } else {
                excl as f64 / total as f64
            };
            (*job, share)
        })
        .collect();

    LinkAudit {
        link,
        jobs: members.iter().map(|(j, _)| *j).collect(),
        busy: Dur::from_nanos(busy_ns),
        contended: Dur::from_nanos(contended_ns),
        overlap_fraction: if busy_ns == 0 {
            0.0
        } else {
            contended_ns as f64 / busy_ns as f64
        },
        exclusive_share,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::JobTrack;
    use simtime::Time;

    fn iv(start: u64, end: u64) -> Interval {
        Interval {
            start: Time::from_nanos(start),
            end: Time::from_nanos(end),
        }
    }

    fn tracks(jobs: Vec<(u32, Vec<Interval>, Vec<u32>)>) -> ScenarioTracks {
        let mut t = ScenarioTracks::default();
        for (job, comm, links) in jobs {
            t.jobs.insert(
                job,
                JobTrack {
                    comm,
                    links,
                    ..JobTrack::default()
                },
            );
        }
        t
    }

    #[test]
    fn disjoint_arcs_have_zero_overlap_and_full_exclusivity() {
        let t = tracks(vec![
            (0, vec![iv(0, 100), iv(200, 300)], vec![0]),
            (1, vec![iv(100, 200), iv(300, 400)], vec![0]),
        ]);
        let r = audit(&t, None);
        assert_eq!(r.overlap_fraction, 0.0);
        let link = &r.links[0];
        assert_eq!(link.busy, Dur::from_nanos(400));
        assert_eq!(link.contended, Dur::ZERO);
        assert_eq!(link.exclusive_share[&0], 1.0);
        assert_eq!(link.exclusive_share[&1], 1.0);
    }

    #[test]
    fn identical_arcs_fully_overlap() {
        let t = tracks(vec![
            (0, vec![iv(0, 100)], vec![0]),
            (1, vec![iv(0, 100)], vec![0]),
        ]);
        let r = audit(&t, None);
        assert_eq!(r.overlap_fraction, 1.0);
        assert_eq!(r.links[0].exclusive_share[&0], 0.0);
    }

    #[test]
    fn partial_overlap_measures_the_shared_span() {
        // Job 0 busy [0,100), job 1 busy [50,150): union 150, shared 50.
        let t = tracks(vec![
            (0, vec![iv(0, 100)], vec![0]),
            (1, vec![iv(50, 150)], vec![0]),
        ]);
        let r = audit(&t, None);
        let link = &r.links[0];
        assert_eq!(link.busy, Dur::from_nanos(150));
        assert_eq!(link.contended, Dur::from_nanos(50));
        assert!((r.overlap_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((link.exclusive_share[&0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jobs_without_paths_default_to_link_zero() {
        let t = tracks(vec![
            (0, vec![iv(0, 10)], vec![]),
            (1, vec![iv(0, 10)], vec![]),
        ]);
        let r = audit(&t, None);
        assert_eq!(r.links.len(), 1);
        assert_eq!(r.links[0].link, 0);
        assert_eq!(r.overlap_fraction, 1.0);
    }

    #[test]
    fn multi_link_jobs_are_audited_per_link() {
        // Jobs share link 1 but keep links 0 and 2 private.
        let t = tracks(vec![
            (0, vec![iv(0, 10)], vec![0, 1]),
            (1, vec![iv(0, 10)], vec![1, 2]),
        ]);
        let r = audit(&t, None);
        assert_eq!(r.links.len(), 3);
        assert_eq!(r.links[0].overlap_fraction, 0.0);
        assert_eq!(r.links[1].overlap_fraction, 1.0);
        assert_eq!(r.links[2].overlap_fraction, 0.0);
    }

    #[test]
    fn prediction_gap_is_measured_minus_promised() {
        let t = tracks(vec![
            (0, vec![iv(0, 100)], vec![0]),
            (1, vec![iv(0, 100)], vec![0]),
        ]);
        let r = audit(&t, Some(0.25));
        assert_eq!(r.prediction_gap(), Some(0.75));
        let r = audit(&t, None);
        assert_eq!(r.prediction_gap(), None);
    }
}
