//! Streaming analyzers over the `telemetry` event stream, answering the
//! questions the paper's thesis lives on:
//!
//! - **Did communication phases interleave?** The [`interleave`] auditor
//!   reconstructs per-link occupancy from phase events and measures the
//!   overlap fraction — comparable against the `geometry` solver's
//!   prediction ([`geometry::overlap_fraction_of`]).
//! - **Did DCQCN converge or oscillate?** The [`health`] analyzer windows
//!   per-flow rate variance, counts ECN/CNP signal rates, and flags
//!   standing queues.
//! - **Who made each iteration slow?** The [`attribution`] analyzer folds
//!   the engines' typed iteration spans with link occupancy into a
//!   contention ledger: per job-iteration wall time decomposed into
//!   compute, solo communication, and contention inflation blamed per
//!   `(link, competing job)` pair, with critical-path extraction and a
//!   cross-check against the geometry prediction.
//! - **Who paid for whose speedup?** The [`fairness`] analyzer computes
//!   windowed Jain indices (deliberate short-term unfairness with high
//!   long-term fairness is the paper's signature), and [`analyze`]
//!   attributes per-job speedups across scenarios.
//!
//! The [`analyze::RunAnalysis`] front door consumes either a live
//! `BufferRecorder`'s events or a JSONL replay ([`telemetry::replay`]),
//! and distills into:
//!
//! - a [`summary::RunSummary`] — a flat metric map with deterministic JSON
//!   serialization, diffable against a previous run with tolerance
//!   ([`summary::diff`]) as a regression gate;
//! - a self-contained HTML page ([`report::html`]) with SVG phase
//!   timelines, rate sparklines, and verdict tables.

pub mod analyze;
pub mod attribution;
pub mod events;
pub mod fairness;
pub mod health;
pub mod history;
pub mod interleave;
pub mod recovery;
pub mod report;
pub mod summary;
pub mod watchdog;

pub use analyze::{analyze, AnalysisConfig, Attribution, RunAnalysis, ScenarioAnalysis};
pub use attribution::{ledger, Binding, ContentionLedger, IterationLedger, JobLedger, LinkBlame};
pub use events::{
    extract_tracks, split_scenarios, Interval, IterationSpan, JobTrack, ScenarioTracks,
};
pub use fairness::{jain_index, FairnessReport};
pub use health::{Convergence, FlowHealth, HealthConfig, HealthReport, QueueHealth};
pub use history::{parse_history, trend, ExperimentTrend, HistoryRecord, TrendConfig, TrendReport};
pub use interleave::{audit, InterleaveReport, LinkAudit};
pub use recovery::{recovery, FaultWindow, Incident, JobRecovery, RecoveryConfig, RecoveryReport};
pub use report::html;
pub use summary::{diff, DiffConfig, DiffReport, MetricShift, RunSummary};
pub use watchdog::{slo_from_toml_str, Alert, AlertKind, SloRules, Watchdog, WatchdogBank};
