//! Recovery analysis for fault-injected runs: how deep did a
//! perturbation cut, how long until iteration times re-normalized, and
//! did the fault break the jobs' interleaved equilibrium for good?
//!
//! Works from the same telemetry stream as every other analyzer. Fault
//! windows come from `link_capacity` events (emitted by the engines
//! whenever a [`topology::LinkSchedule`] multiplier takes effect),
//! departures from `job_depart`, and the per-job impact from iteration
//! durations reconstructed out of communicate-phase exits.

use crate::events::median_dur;
use simtime::{Dur, Time};
use std::collections::BTreeMap;
use telemetry::{Event, Phase, TimedEvent};

/// Tunables for incident detection.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// An iteration counts as degraded when its duration exceeds
    /// `slow_factor ×` the job's median iteration time.
    pub slow_factor: f64,
    /// Overlap-fraction increase (after the last fault clears, versus
    /// before the first fault hits) that flags a compatibility break:
    /// jobs that used to interleave are now colliding and stay that way.
    pub break_overlap_delta: f64,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            slow_factor: 1.4,
            break_overlap_delta: 0.25,
        }
    }
}

/// One contiguous run of degraded iterations for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incident {
    /// Start of the first degraded iteration.
    pub start: Time,
    /// End of the first normal iteration after the degraded run, or
    /// `None` if the job never re-normalized before the stream ended.
    pub recovered_at: Option<Time>,
    /// Worst iteration duration in the incident over the baseline.
    pub depth: f64,
    /// Degraded iterations in the run.
    pub iterations: usize,
}

impl Incident {
    /// `recovered_at − start`, when recovery happened.
    pub fn time_to_recover(&self) -> Option<Dur> {
        self.recovered_at.map(|t| t.saturating_since(self.start))
    }
}

/// Recovery facts for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecovery {
    pub job: u32,
    /// Median iteration duration (the normality baseline).
    pub baseline: Dur,
    /// Degraded runs, in time order.
    pub incidents: Vec<Incident>,
    /// When the job departed the cluster, if it did.
    pub departed_at: Option<Time>,
}

impl JobRecovery {
    /// The longest recovery among this job's incidents, if every incident
    /// recovered; `None` if any is still open at stream end (or there are
    /// no incidents — nothing to recover from).
    pub fn worst_recovery(&self) -> Option<Dur> {
        if self.incidents.is_empty() || self.incidents.iter().any(|i| i.recovered_at.is_none()) {
            return None;
        }
        self.incidents
            .iter()
            .filter_map(Incident::time_to_recover)
            .max()
    }
}

/// One link's capacity excursion: from the first non-nominal multiplier
/// to the return to nominal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    pub link: u32,
    pub start: Time,
    /// `None` when the stream ends with the link still degraded.
    pub end: Option<Time>,
    /// The deepest multiplier observed inside the window.
    pub min_fraction: f64,
}

/// The full recovery report for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Link capacity excursions, in order of onset.
    pub fault_windows: Vec<FaultWindow>,
    /// Per-job recovery facts, ordered by job id.
    pub jobs: Vec<JobRecovery>,
    /// Communication overlap fraction before the first fault window
    /// (`None` when there are no fault windows or no overlap-eligible
    /// time there).
    pub pre_overlap: Option<f64>,
    /// Same, after the last fault window clears.
    pub post_overlap: Option<f64>,
    /// Jobs that interleaved before the faults are still colliding after
    /// them: the perturbation pushed the system out of its compatible
    /// equilibrium (the geometric prediction no longer holds).
    pub compatibility_break: bool,
}

impl RecoveryReport {
    /// `true` when every job that had incidents fully recovered.
    pub fn all_recovered(&self) -> bool {
        self.jobs
            .iter()
            .flat_map(|j| j.incidents.iter())
            .all(|i| i.recovered_at.is_some())
    }
}

/// Fraction of communicating time during `[from, to)` where two or more
/// jobs communicate at once. `None` when nobody communicates there.
fn overlap_fraction(comms: &BTreeMap<u32, Vec<(Time, Time)>>, from: Time, to: Time) -> Option<f64> {
    if to <= from {
        return None;
    }
    // Sweep over clipped interval endpoints.
    let mut edges: Vec<(Time, i32)> = Vec::new();
    for spans in comms.values() {
        for &(s, e) in spans {
            let s = s.max(from);
            let e = e.min(to);
            if s < e {
                edges.push((s, 1));
                edges.push((e, -1));
            }
        }
    }
    if edges.is_empty() {
        return None;
    }
    edges.sort();
    let mut depth = 0i32;
    let mut busy = Dur::ZERO;
    let mut shared = Dur::ZERO;
    let mut prev = edges[0].0;
    for (at, delta) in edges {
        let span = at.saturating_since(prev);
        if depth >= 1 {
            busy += span;
        }
        if depth >= 2 {
            shared += span;
        }
        depth += delta;
        prev = at;
    }
    if busy.is_zero() {
        None
    } else {
        Some(shared.as_secs_f64() / busy.as_secs_f64())
    }
}

/// Analyzes one scenario's events for fault impact and recovery.
pub fn recovery(events: &[TimedEvent], cfg: &RecoveryConfig) -> RecoveryReport {
    // Pass 1: collect raw material.
    let mut iter_ends: BTreeMap<u32, Vec<Time>> = BTreeMap::new();
    let mut comms: BTreeMap<u32, Vec<(Time, Time)>> = BTreeMap::new();
    let mut open_comm: BTreeMap<u32, Time> = BTreeMap::new();
    let mut departs: BTreeMap<u32, Time> = BTreeMap::new();
    let mut open_faults: BTreeMap<u32, FaultWindow> = BTreeMap::new();
    let mut fault_windows: Vec<FaultWindow> = Vec::new();
    let stream_start = events.first().map(|e| e.at).unwrap_or(Time::ZERO);
    let stream_end = events.last().map(|e| e.at).unwrap_or(Time::ZERO);
    for te in events {
        match &te.event {
            Event::PhaseEnter {
                job,
                phase: Phase::Communicate,
                ..
            } => {
                open_comm.entry(*job).or_insert(te.at);
            }
            Event::PhaseExit {
                job,
                phase: Phase::Communicate,
                ..
            } => {
                iter_ends.entry(*job).or_default().push(te.at);
                if let Some(s) = open_comm.remove(job) {
                    comms.entry(*job).or_default().push((s, te.at));
                }
            }
            Event::JobDepart { job } => {
                departs.insert(*job, te.at);
            }
            Event::LinkCapacity { link, fraction } => {
                if *fraction < 1.0 {
                    open_faults
                        .entry(*link)
                        .and_modify(|w| w.min_fraction = w.min_fraction.min(*fraction))
                        .or_insert(FaultWindow {
                            link: *link,
                            start: te.at,
                            end: None,
                            min_fraction: *fraction,
                        });
                } else if let Some(mut w) = open_faults.remove(link) {
                    w.end = Some(te.at);
                    fault_windows.push(w);
                }
            }
            _ => {}
        }
    }
    fault_windows.extend(open_faults.into_values());
    fault_windows.sort_by_key(|w| (w.start, w.link));

    // Pass 2: per-job incident detection against the median baseline.
    let mut jobs = Vec::new();
    for (&job, ends) in &iter_ends {
        let durations: Vec<Dur> = ends
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]))
            .collect();
        let baseline = median_dur(&durations);
        let mut incidents: Vec<Incident> = Vec::new();
        let mut current: Option<Incident> = None;
        let threshold = baseline.as_secs_f64() * cfg.slow_factor;
        for (k, d) in durations.iter().enumerate() {
            let slow = !baseline.is_zero() && d.as_secs_f64() > threshold;
            if slow {
                let start = ends[k]; // iteration k spans ends[k]..ends[k+1]
                let depth = d.as_secs_f64() / baseline.as_secs_f64();
                match &mut current {
                    Some(inc) => {
                        inc.depth = inc.depth.max(depth);
                        inc.iterations += 1;
                    }
                    None => {
                        current = Some(Incident {
                            start,
                            recovered_at: None,
                            depth,
                            iterations: 1,
                        });
                    }
                }
            } else if let Some(mut inc) = current.take() {
                inc.recovered_at = Some(ends[k + 1]);
                incidents.push(inc);
            }
        }
        incidents.extend(current);
        jobs.push(JobRecovery {
            job,
            baseline,
            incidents,
            departed_at: departs.get(&job).copied(),
        });
    }
    // Jobs that departed without ever exiting a communication phase still
    // deserve a row.
    for (&job, &at) in &departs {
        if !iter_ends.contains_key(&job) {
            jobs.push(JobRecovery {
                job,
                baseline: Dur::ZERO,
                incidents: Vec::new(),
                departed_at: Some(at),
            });
        }
    }
    jobs.sort_by_key(|j| j.job);

    // Pass 3: interleaving before vs after the fault era.
    let (pre_overlap, post_overlap) = match (fault_windows.first(), fault_windows.last()) {
        (Some(first), Some(last)) => {
            let pre = overlap_fraction(&comms, stream_start, first.start);
            let post_from = last.end.unwrap_or(stream_end);
            let post = overlap_fraction(&comms, post_from, stream_end);
            (pre, post)
        }
        _ => (None, None),
    };
    let compatibility_break = match (pre_overlap, post_overlap) {
        (Some(pre), Some(post)) => post > pre + cfg.break_overlap_delta,
        _ => false,
    };

    RecoveryReport {
        fault_windows,
        jobs,
        pre_overlap,
        post_overlap,
        compatibility_break,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(at_ms: u64, job: u32) -> TimedEvent {
        TimedEvent {
            at: Time::ZERO + Dur::from_millis(at_ms),
            event: Event::PhaseEnter {
                job,
                phase: Phase::Communicate,
                iteration: 0,
            },
        }
    }

    fn exit(at_ms: u64, job: u32) -> TimedEvent {
        TimedEvent {
            at: Time::ZERO + Dur::from_millis(at_ms),
            event: Event::PhaseExit {
                job,
                phase: Phase::Communicate,
                iteration: 0,
            },
        }
    }

    fn cap(at_ms: u64, link: u32, fraction: f64) -> TimedEvent {
        TimedEvent {
            at: Time::ZERO + Dur::from_millis(at_ms),
            event: Event::LinkCapacity { link, fraction },
        }
    }

    /// Exits every 100 ms except one 250 ms iteration; the analyzer finds
    /// one incident with finite recovery.
    #[test]
    fn finds_single_incident_and_recovery() {
        let mut evs = Vec::new();
        let mut t = 0;
        for k in 0..10 {
            t += if k == 5 { 250 } else { 100 };
            evs.push(exit(t, 0));
        }
        let r = recovery(&evs, &RecoveryConfig::default());
        assert_eq!(r.jobs.len(), 1);
        let j = &r.jobs[0];
        assert_eq!(j.baseline, Dur::from_millis(100));
        assert_eq!(j.incidents.len(), 1);
        let inc = j.incidents[0];
        assert_eq!(inc.iterations, 1);
        assert!((inc.depth - 2.5).abs() < 1e-9);
        assert_eq!(inc.time_to_recover(), Some(Dur::from_millis(350)));
        assert!(r.all_recovered());
        assert_eq!(j.worst_recovery(), Some(Dur::from_millis(350)));
    }

    #[test]
    fn open_incident_counts_as_unrecovered() {
        let mut evs = Vec::new();
        let mut t = 0;
        for k in 0..6 {
            t += if k >= 4 { 300 } else { 100 };
            evs.push(exit(t, 0));
        }
        let r = recovery(&evs, &RecoveryConfig::default());
        assert!(!r.all_recovered());
        assert_eq!(r.jobs[0].worst_recovery(), None);
    }

    #[test]
    fn fault_windows_reconstructed_from_capacity_events() {
        let evs = vec![
            exit(10, 0),
            cap(50, 2, 0.25),
            cap(80, 2, 0.1),
            cap(120, 2, 1.0),
            cap(200, 3, 0.5),
            exit(300, 0),
        ];
        let r = recovery(&evs, &RecoveryConfig::default());
        assert_eq!(r.fault_windows.len(), 2);
        let w = r.fault_windows[0];
        assert_eq!((w.link, w.min_fraction), (2, 0.1));
        assert_eq!(w.start, Time::ZERO + Dur::from_millis(50));
        assert_eq!(w.end, Some(Time::ZERO + Dur::from_millis(120)));
        assert_eq!(r.fault_windows[1].end, None, "still degraded at stream end");
    }

    #[test]
    fn departure_recorded_even_without_iterations() {
        let evs = vec![TimedEvent {
            at: Time::ZERO + Dur::from_millis(40),
            event: Event::JobDepart { job: 7 },
        }];
        let r = recovery(&evs, &RecoveryConfig::default());
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].job, 7);
        assert_eq!(
            r.jobs[0].departed_at,
            Some(Time::ZERO + Dur::from_millis(40))
        );
    }

    /// Two jobs interleave cleanly before a fault and collide afterwards:
    /// the report flags a compatibility break.
    #[test]
    fn detects_compatibility_break() {
        let mut evs = Vec::new();
        // Pre-fault: disjoint comm phases (0–40 vs 50–90, each 100 period).
        for k in 0..3u64 {
            evs.push(enter(k * 100, 0));
            evs.push(exit(k * 100 + 40, 0));
            evs.push(enter(k * 100 + 50, 1));
            evs.push(exit(k * 100 + 90, 1));
        }
        evs.push(cap(300, 0, 0.5));
        evs.push(cap(400, 0, 1.0));
        // Post-fault: fully overlapped comm phases.
        for k in 4..7u64 {
            evs.push(enter(k * 100, 0));
            evs.push(enter(k * 100, 1));
            evs.push(exit(k * 100 + 40, 0));
            evs.push(exit(k * 100 + 40, 1));
        }
        let r = recovery(&evs, &RecoveryConfig::default());
        assert_eq!(r.pre_overlap, Some(0.0));
        assert_eq!(r.post_overlap, Some(1.0));
        assert!(r.compatibility_break);
    }
}
