//! Self-contained HTML run report: inline SVG phase timelines, rate
//! sparklines, and analyzer verdict tables. No external assets, scripts,
//! or stylesheets — the file opens anywhere, forever.

use crate::analyze::{RunAnalysis, ScenarioAnalysis};
use crate::health::Convergence;
use std::fmt::Write as _;

/// Colors for job timeline rows, cycled.
const PALETTE: &[&str] = &[
    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2", "#9d755d", "#eeca3b",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the full report page.
pub fn html(analysis: &RunAnalysis) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(
        out,
        "<title>mlcc run report: {}</title>",
        esc(&analysis.name)
    );
    out.push_str(
        "<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:72em;color:#222}\n\
         h1,h2,h3{font-weight:600}\n\
         table{border-collapse:collapse;margin:1em 0}\n\
         th,td{border:1px solid #ccc;padding:.3em .7em;text-align:left}\n\
         th{background:#f3f3f3}\n\
         .ok{color:#1a7f37;font-weight:600}\n\
         .warn{color:#b35900;font-weight:600}\n\
         .bad{color:#c62828;font-weight:600}\n\
         .muted{color:#777}\n\
         svg{background:#fafafa;border:1px solid #ddd;margin:.5em 0}\n\
         </style></head><body>\n",
    );
    let _ = writeln!(out, "<h1>Run report: {}</h1>", esc(&analysis.name));

    for sc in &analysis.scenarios {
        let _ = writeln!(out, "<h2>Scenario: {}</h2>", esc(&sc.name));
        verdict_table(&mut out, sc);
        attribution_section(&mut out, sc);
        timeline_svg(&mut out, sc);
        sparklines_svg(&mut out, sc);
    }

    if !analysis.attribution.is_empty() {
        out.push_str("<h2>Speedup attribution</h2>\n");
        let base = &analysis.scenarios[0].name;
        let _ = writeln!(
            out,
            "<p class=\"muted\">Baseline scenario: {}</p>",
            esc(base)
        );
        out.push_str("<table><tr><th>scenario</th><th>job</th><th>speedup vs baseline</th></tr>\n");
        for attr in &analysis.attribution {
            for sp in &attr.speedups {
                let cls = if sp.speedup > 1.01 {
                    "ok"
                } else if sp.speedup < 0.99 {
                    "bad"
                } else {
                    "muted"
                };
                let _ = writeln!(
                    out,
                    "<tr><td>{}</td><td>job {}</td><td class=\"{cls}\">{:.3}&times;</td></tr>",
                    esc(&attr.scenario),
                    sp.job,
                    sp.speedup
                );
            }
        }
        out.push_str("</table>\n");
    }

    out.push_str("</body></html>\n");
    out
}

/// The analyzer verdicts for one scenario, as a table.
fn verdict_table(out: &mut String, sc: &ScenarioAnalysis) {
    out.push_str("<table><tr><th>check</th><th>value</th><th>verdict</th></tr>\n");
    let ov = sc.interleave.overlap_fraction;
    let (cls, verdict) = if ov < 0.05 {
        ("ok", "interleaved")
    } else if ov < 0.25 {
        ("warn", "partial overlap")
    } else {
        ("bad", "contended")
    };
    let _ = writeln!(
        out,
        "<tr><td>communication overlap fraction</td><td>{ov:.4}</td>\
         <td class=\"{cls}\">{verdict}</td></tr>"
    );
    if let Some(gap) = sc.interleave.prediction_gap() {
        let cls = if gap.abs() < 0.05 { "ok" } else { "warn" };
        let _ = writeln!(
            out,
            "<tr><td>gap vs solver prediction</td><td>{gap:+.4}</td>\
             <td class=\"{cls}\">{}</td></tr>",
            if gap.abs() < 0.05 {
                "as predicted"
            } else {
                "diverges from prediction"
            }
        );
    }
    for f in &sc.health.flows {
        let cls = match f.verdict {
            Convergence::Converged => "ok",
            Convergence::Oscillating => "bad",
            Convergence::Indeterminate => "muted",
        };
        let _ = writeln!(
            out,
            "<tr><td>flow {} rate (mean {:.2} Gbps, final CV {:.3})</td>\
             <td>{:.1} ECN/s, {:.1} CNP/s</td><td class=\"{cls}\">{}</td></tr>",
            f.flow,
            f.mean_rate_gbps,
            f.final_cv,
            f.ecn_marks_per_sec,
            f.cnps_per_sec,
            f.verdict.label()
        );
    }
    for q in &sc.health.queues {
        let cls = if q.standing_queue { "bad" } else { "ok" };
        let _ = writeln!(
            out,
            "<tr><td>queue on link {} (max {:.0} B)</td><td>final mean {:.0} B</td>\
             <td class=\"{cls}\">{}</td></tr>",
            q.link,
            q.max_bytes,
            q.final_mean_bytes,
            if q.standing_queue {
                "standing queue"
            } else {
                "drains"
            }
        );
    }
    let fj = &sc.fairness;
    let cls = if fj.long_term_jain > 0.9 {
        "ok"
    } else {
        "warn"
    };
    let _ = writeln!(
        out,
        "<tr><td>fairness (Jain)</td><td>windowed mean {:.3}, min {:.3}</td>\
         <td class=\"{cls}\">long-term {:.3}</td></tr>",
        fj.mean_jain, fj.min_jain, fj.long_term_jain
    );
    out.push_str("</table>\n");
}

/// Contention-attribution ledger: per-job time decomposition, the blame
/// matrix per (victim, link, competitor), and the critical-path verdict.
/// Silent for traces without span events.
fn attribution_section(out: &mut String, sc: &ScenarioAnalysis) {
    let ledger = &sc.ledger;
    if ledger.jobs.is_empty() {
        return;
    }
    out.push_str("<h3>Contention attribution</h3>\n");
    let _ = writeln!(
        out,
        "<p class=\"muted\">Per-job wall time decomposed from iteration spans; \
         geometry cross-check: <b>{}</b> (measured pairwise overlap {:.3}{}; \
         max conservation residual {:.1} ns)</p>",
        esc(ledger.verdict()),
        ledger.measured_overlap(),
        match ledger.predicted_overlap {
            Some(p) => format!(", predicted {p:.3}"),
            None => String::new(),
        },
        ledger.max_residual * 1e9
    );
    out.push_str(
        "<table><tr><th>job</th><th>wall ms</th><th>compute ms</th><th>solo comm ms</th>\
         <th>inflation ms</th><th>inflation share</th><th>critical path</th></tr>\n",
    );
    for (job, jl) in &ledger.jobs {
        let share = jl.inflation_share();
        let cls = if share < 0.05 {
            "ok"
        } else if share < 0.25 {
            "warn"
        } else {
            "bad"
        };
        let critical = if jl.bound_by_comm > jl.bound_by_compute {
            let link = jl
                .top_blame()
                .first()
                .map(|((link, _), _)| format!("link {link}"))
                .unwrap_or_else(|| "network".to_string());
            format!(
                "{} ({} of {} iterations)",
                link,
                jl.bound_by_comm,
                jl.iterations.len()
            )
        } else {
            format!(
                "compute ({} of {} iterations)",
                jl.bound_by_compute,
                jl.iterations.len()
            )
        };
        let _ = writeln!(
            out,
            "<tr><td>job {job}</td><td>{:.3}</td><td>{:.3}</td><td>{:.3}</td>\
             <td>{:.3}</td><td class=\"{cls}\">{:.1}%</td><td>{critical}</td></tr>",
            jl.wall * 1e3,
            jl.compute * 1e3,
            jl.solo * 1e3,
            jl.inflation * 1e3,
            share * 100.0
        );
    }
    out.push_str("</table>\n");

    let has_blame = ledger.jobs.values().any(|jl| !jl.blame.is_empty());
    if has_blame {
        out.push_str(
            "<table><tr><th>victim</th><th>link</th><th>blamed on</th>\
             <th>blamed ms</th></tr>\n",
        );
        for (job, jl) in &ledger.jobs {
            for ((link, other), secs) in jl.top_blame() {
                let _ = writeln!(
                    out,
                    "<tr><td>job {job}</td><td>link {link}</td><td>job {other}</td>\
                     <td>{:.3}</td></tr>",
                    secs * 1e3
                );
            }
        }
        out.push_str("</table>\n");
    }
}

/// Per-job communicate-phase occupancy bars over scenario time.
fn timeline_svg(out: &mut String, sc: &ScenarioAnalysis) {
    let span_ns = sc.tracks.span().as_nanos().max(1) as f64;
    let start_ns = sc.tracks.start.as_nanos() as f64;
    const W: f64 = 960.0;
    const ROW: f64 = 22.0;
    const LEFT: f64 = 70.0;
    let jobs: Vec<u32> = sc.tracks.jobs.keys().copied().collect();
    if jobs.is_empty() {
        return;
    }
    let h = ROW * jobs.len() as f64 + 24.0;
    out.push_str("<h3>Communication phases</h3>\n");
    let _ = writeln!(
        out,
        "<svg width=\"{:.0}\" height=\"{h:.0}\" viewBox=\"0 0 {:.0} {h:.0}\" \
         role=\"img\" aria-label=\"phase timeline\">",
        W + LEFT,
        W + LEFT
    );
    for (row, job) in jobs.iter().enumerate() {
        let y = row as f64 * ROW + 16.0;
        let color = PALETTE[row % PALETTE.len()];
        let _ = writeln!(
            out,
            "<text x=\"4\" y=\"{:.0}\" font-size=\"12\">job {job}</text>",
            y + ROW * 0.55
        );
        for iv in &sc.tracks.jobs[job].comm {
            let x = LEFT + (iv.start.as_nanos() as f64 - start_ns) / span_ns * W;
            let w = (iv.len().as_nanos() as f64 / span_ns * W).max(0.5);
            let _ = writeln!(
                out,
                "<rect x=\"{x:.1}\" y=\"{:.0}\" width=\"{w:.1}\" height=\"{:.0}\" \
                 fill=\"{color}\"/>",
                y + 2.0,
                ROW - 6.0
            );
        }
    }
    let _ = writeln!(
        out,
        "<text x=\"{LEFT:.0}\" y=\"12\" font-size=\"11\" fill=\"#777\">0 ms</text>\
         <text x=\"{:.0}\" y=\"12\" font-size=\"11\" fill=\"#777\" \
         text-anchor=\"end\">{:.1} ms</text>",
        W + LEFT - 4.0,
        span_ns / 1e6
    );
    out.push_str("</svg>\n");
}

/// One rate sparkline per flow.
fn sparklines_svg(out: &mut String, sc: &ScenarioAnalysis) {
    let flows: Vec<u32> = sc
        .tracks
        .jobs
        .iter()
        .filter(|(_, t)| t.rates.len() >= 2)
        .map(|(&f, _)| f)
        .collect();
    if flows.is_empty() {
        return;
    }
    let span_ns = sc.tracks.span().as_nanos().max(1) as f64;
    let start_ns = sc.tracks.start.as_nanos() as f64;
    let max_bps = flows
        .iter()
        .flat_map(|f| sc.tracks.jobs[f].rates.iter().map(|&(_, b)| b))
        .fold(1.0f64, f64::max);
    const W: f64 = 960.0;
    const H: f64 = 80.0;
    const LEFT: f64 = 70.0;
    out.push_str("<h3>Flow rates</h3>\n");
    for (row, flow) in flows.iter().enumerate() {
        let color = PALETTE[row % PALETTE.len()];
        let _ = writeln!(
            out,
            "<svg width=\"{:.0}\" height=\"{H:.0}\" viewBox=\"0 0 {:.0} {H:.0}\" \
             role=\"img\" aria-label=\"rate sparkline flow {flow}\">",
            W + LEFT,
            W + LEFT
        );
        let _ = writeln!(
            out,
            "<text x=\"4\" y=\"{:.0}\" font-size=\"12\">flow {flow}</text>",
            H * 0.55
        );
        let mut points = String::new();
        for &(at, bps) in &sc.tracks.jobs[flow].rates {
            let x = LEFT + (at.as_nanos() as f64 - start_ns) / span_ns * W;
            let y = H - 6.0 - (bps / max_bps) * (H - 14.0);
            let _ = write!(points, "{x:.1},{y:.1} ");
        }
        let _ = writeln!(
            out,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.2\"/>",
            points.trim_end()
        );
        let _ = writeln!(
            out,
            "<text x=\"{:.0}\" y=\"12\" font-size=\"11\" fill=\"#777\" \
             text-anchor=\"end\">{:.1} Gbps max</text>",
            W + LEFT - 4.0,
            max_bps / 1e9
        );
        out.push_str("</svg><br>\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalysisConfig};
    use simtime::Time;
    use telemetry::{CcState, Event, Phase, TimedEvent};

    fn sample_analysis() -> RunAnalysis {
        let mut events = vec![TimedEvent {
            at: Time::ZERO,
            event: Event::Scenario {
                name: "fig<1>/fair".into(),
            },
        }];
        for i in 0..4u64 {
            for job in 0..2u32 {
                let base = i * 1_000 + job as u64 * 500;
                events.push(TimedEvent {
                    at: Time::from_nanos(base),
                    event: Event::PhaseEnter {
                        job,
                        phase: Phase::Communicate,
                        iteration: i,
                    },
                });
                events.push(TimedEvent {
                    at: Time::from_nanos(base + 400),
                    event: Event::PhaseExit {
                        job,
                        phase: Phase::Communicate,
                        iteration: i,
                    },
                });
                events.push(TimedEvent {
                    at: Time::from_nanos(base),
                    event: Event::RateChange {
                        flow: job,
                        bps: 10e9 + i as f64 * 1e9,
                        state: CcState::AdditiveIncrease,
                    },
                });
            }
        }
        analyze("demo", &events, &AnalysisConfig::default())
    }

    #[test]
    fn report_is_a_self_contained_page() {
        let page = html(&sample_analysis());
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.ends_with("</body></html>\n"));
        // No external references of any kind.
        assert!(!page.contains("http://") && !page.contains("https://"));
        assert!(!page.contains("<script"));
        // Scenario name is escaped.
        assert!(page.contains("fig&lt;1&gt;/fair"));
        // Timeline and sparkline SVGs are present.
        assert!(page.contains("phase timeline"));
        assert!(page.contains("rate sparkline"));
        assert!(page.contains("<polyline"));
        // Verdict table carries the overlap check.
        assert!(page.contains("communication overlap fraction"));
    }

    #[test]
    fn report_is_deterministic() {
        let a = sample_analysis();
        assert_eq!(html(&a), html(&a));
    }

    #[test]
    fn spanful_traces_render_the_attribution_section() {
        use telemetry::SpanKind;
        let t = Time::from_nanos;
        let mut events = vec![TimedEvent {
            at: Time::ZERO,
            event: Event::Scenario {
                name: "contended".into(),
            },
        }];
        // Two jobs: compute [0,500), fully-overlapped comm [500,1000),
        // then iteration 1 opens so iteration 0 closes.
        for job in 0..2u32 {
            let span = |at: u64, kind: SpanKind, it: u64, begin: bool| TimedEvent {
                at: t(at),
                event: if begin {
                    Event::SpanBegin {
                        job,
                        kind,
                        iteration: it,
                    }
                } else {
                    Event::SpanEnd {
                        job,
                        kind,
                        iteration: it,
                    }
                },
            };
            events.extend([
                span(0, SpanKind::Iteration, 0, true),
                span(0, SpanKind::Compute, 0, true),
                span(500, SpanKind::Compute, 0, false),
                span(500, SpanKind::Communicate, 0, true),
                TimedEvent {
                    at: t(500),
                    event: Event::PhaseEnter {
                        job,
                        phase: Phase::Communicate,
                        iteration: 0,
                    },
                },
                TimedEvent {
                    at: t(1_000),
                    event: Event::PhaseExit {
                        job,
                        phase: Phase::Communicate,
                        iteration: 0,
                    },
                },
                span(1_000, SpanKind::Communicate, 0, false),
                span(1_000, SpanKind::Iteration, 0, false),
                span(1_000, SpanKind::Iteration, 1, true),
            ]);
        }
        let a = analyze("attr", &events, &AnalysisConfig::default());
        let page = html(&a);
        assert!(page.contains("Contention attribution"));
        assert!(page.contains("blamed on"));
        assert!(
            page.contains("<td>job 1</td>"),
            "blame matrix names the peer"
        );
        // The plain sample (no span events) renders no attribution section.
        assert!(!html(&sample_analysis()).contains("Contention attribution"));
    }
}
