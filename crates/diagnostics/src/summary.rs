//! `RunSummary`: the compact machine-readable distillation of a run, and
//! the tolerance-based diff between two summaries — the regression gate.
//!
//! The serialized form is a single flat JSON object, one metric per line,
//! keys sorted (BTreeMap order), values printed with Rust's shortest
//! round-trip `f64` formatting — so identical runs produce byte-identical
//! files and `diff(a, a)` is exactly clean.

use std::collections::BTreeMap;
use telemetry::replay::{parse_flat_object, JsonValue};

/// A run's name plus a flat map of metric name → value.
///
/// Metric keys are dotted paths (`fair.interleave.overlap_fraction`); the
/// flat shape keeps the diff generic — any analyzer can add metrics without
/// the diff code changing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    pub name: String,
    pub metrics: BTreeMap<String, f64>,
}

impl RunSummary {
    pub fn new(name: &str) -> RunSummary {
        RunSummary {
            name: name.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Records one metric. Non-finite values are clamped to 0 (JSON cannot
    /// carry them, and a NaN in a summary would poison every later diff).
    pub fn put(&mut self, key: &str, value: f64) {
        self.metrics
            .insert(key.to_string(), if value.is_finite() { value } else { 0.0 });
    }

    /// Records one metric under a dotted `prefix.key` path.
    pub fn put_under(&mut self, prefix: &str, key: &str, value: f64) {
        self.put(&format!("{prefix}.{key}"), value);
    }

    /// Serializes to the flat JSON object format (deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.metrics.len() * 48);
        out.push_str("{\n");
        out.push_str(&format!("\"name\":\"{}\"", esc(&self.name)));
        for (k, v) in &self.metrics {
            out.push_str(",\n");
            out.push_str(&format!("\"{}\":{}", esc(k), fmt_f64(*v)));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses the format produced by [`RunSummary::to_json`].
    pub fn from_json(text: &str) -> Result<RunSummary, String> {
        let map = parse_flat_object(text).map_err(|e| e.to_string())?;
        let mut summary = RunSummary::default();
        for (k, v) in map {
            match (k.as_str(), v) {
                ("name", JsonValue::Str(s)) => summary.name = s,
                ("name", _) => return Err("name must be a string".into()),
                (_, JsonValue::Num(n)) => {
                    summary.metrics.insert(k, n);
                }
                (k, v) => return Err(format!("metric {k:?} has non-numeric value {v:?}")),
            }
        }
        Ok(summary)
    }
}

/// JSON numbers can't be NaN/inf; Display of f64 round-trips exactly.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral values integral-with-.0 so the file stays
        // unambiguous about being a float field.
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Tolerances for [`diff`]. A metric shift is flagged when it exceeds
/// **both** the absolute and the relative bound — so near-zero metrics
/// aren't flagged for tiny absolute wiggles, and large metrics aren't
/// flagged for sub-tolerance relative drift.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative tolerance, as a fraction of `max(|a|, |b|)`.
    pub rel_tol: f64,
    /// Absolute tolerance floor.
    pub abs_tol: f64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            rel_tol: 0.05,
            abs_tol: 1e-9,
        }
    }
}

/// One metric that moved beyond tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricShift {
    pub key: String,
    pub a: f64,
    pub b: f64,
    /// `(b − a) / |a|`, or infinity when `a` is 0.
    pub rel_delta: f64,
}

/// The outcome of comparing two summaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Metrics whose values moved beyond tolerance.
    pub shifted: Vec<MetricShift>,
    /// Keys present only in the first summary.
    pub only_in_a: Vec<String>,
    /// Keys present only in the second summary.
    pub only_in_b: Vec<String>,
    /// Metrics compared (present in both).
    pub compared: usize,
}

impl DiffReport {
    /// Clean = no shifts and identical key sets.
    pub fn is_clean(&self) -> bool {
        self.shifted.is_empty() && self.only_in_a.is_empty() && self.only_in_b.is_empty()
    }

    /// Human-readable multi-line rendering (empty string when clean).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.shifted {
            out.push_str(&format!(
                "  {}: {} -> {} ({:+.2}%)\n",
                s.key,
                fmt_f64(s.a),
                fmt_f64(s.b),
                s.rel_delta * 100.0
            ));
        }
        for k in &self.only_in_a {
            out.push_str(&format!("  {k}: only in first summary\n"));
        }
        for k in &self.only_in_b {
            out.push_str(&format!("  {k}: only in second summary\n"));
        }
        out
    }
}

/// Compares two summaries metric-by-metric under `cfg` tolerances.
pub fn diff(a: &RunSummary, b: &RunSummary, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    for (k, &va) in &a.metrics {
        match b.metrics.get(k) {
            None => report.only_in_a.push(k.clone()),
            Some(&vb) => {
                report.compared += 1;
                let delta = (vb - va).abs();
                let scale = va.abs().max(vb.abs());
                if delta > cfg.abs_tol && delta > cfg.rel_tol * scale {
                    report.shifted.push(MetricShift {
                        key: k.clone(),
                        a: va,
                        b: vb,
                        rel_delta: if va == 0.0 {
                            f64::INFINITY
                        } else {
                            (vb - va) / va.abs()
                        },
                    });
                }
            }
        }
    }
    for k in b.metrics.keys() {
        if !a.metrics.contains_key(k) {
            report.only_in_b.push(k.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        let mut s = RunSummary::new("fig1");
        s.put("fair.overlap_fraction", 0.015625);
        s.put("fair.jain.mean", 0.875);
        s.put("unfair.overlap_fraction", 0.5);
        s.put("iters.job0.median_ms", 297.0);
        s
    }

    #[test]
    fn json_round_trips_exactly() {
        let s = sample();
        let text = s.to_json();
        let back = RunSummary::from_json(&text).unwrap();
        assert_eq!(s, back);
        assert_eq!(text, back.to_json(), "serialization is a fixed point");
    }

    #[test]
    fn json_is_deterministic_and_one_metric_per_line() {
        let s = sample();
        assert_eq!(s.to_json(), s.to_json());
        // name + 4 metrics + braces = 7 lines.
        assert_eq!(s.to_json().lines().count(), 7);
    }

    #[test]
    fn identical_summaries_diff_clean() {
        let s = sample();
        let r = diff(&s, &s.clone(), &DiffConfig::default());
        assert!(r.is_clean());
        assert_eq!(r.compared, 4);
    }

    #[test]
    fn shifts_beyond_tolerance_are_flagged() {
        let a = sample();
        let mut b = sample();
        b.put("fair.jain.mean", 0.7); // −20%: beyond 5%
        let r = diff(&a, &b, &DiffConfig::default());
        assert!(!r.is_clean());
        assert_eq!(r.shifted.len(), 1);
        assert_eq!(r.shifted[0].key, "fair.jain.mean");
        assert!(r.shifted[0].rel_delta < -0.15);
        // Within tolerance: clean.
        let mut c = sample();
        c.put("fair.jain.mean", 0.874);
        assert!(diff(&a, &c, &DiffConfig::default()).is_clean());
    }

    #[test]
    fn near_zero_metrics_need_absolute_shift_too() {
        let mut a = RunSummary::new("x");
        a.put("overlap", 0.0);
        let mut b = RunSummary::new("x");
        b.put("overlap", 1e-12); // relatively infinite, absolutely nothing
        assert!(diff(&a, &b, &DiffConfig::default()).is_clean());
        let mut c = RunSummary::new("x");
        c.put("overlap", 0.3);
        let r = diff(&a, &c, &DiffConfig::default());
        assert_eq!(r.shifted.len(), 1);
        assert_eq!(r.shifted[0].rel_delta, f64::INFINITY);
    }

    #[test]
    fn missing_keys_are_reported_both_ways() {
        let mut a = RunSummary::new("x");
        a.put("m1", 1.0);
        a.put("m2", 2.0);
        let mut b = RunSummary::new("x");
        b.put("m2", 2.0);
        b.put("m3", 3.0);
        let r = diff(&a, &b, &DiffConfig::default());
        assert!(!r.is_clean());
        assert_eq!(r.only_in_a, vec!["m1"]);
        assert_eq!(r.only_in_b, vec!["m3"]);
        assert_eq!(r.compared, 1);
        assert!(r.render().contains("m1"));
    }

    #[test]
    fn non_finite_metrics_are_clamped() {
        let mut s = RunSummary::new("x");
        s.put("bad", f64::NAN);
        s.put("worse", f64::INFINITY);
        assert_eq!(s.metrics["bad"], 0.0);
        assert_eq!(s.metrics["worse"], 0.0);
    }
}
