//! Online SLO watchdog: the offline analyzers (rate health, Jain
//! fairness, interleaving recovery) repackaged as incremental monitors
//! that run *while* a simulation streams events, firing typed [`Alert`]s
//! the moment a declarative rule is breached.
//!
//! Rules load from a flat TOML file ([`slo_from_toml_str`]):
//!
//! ```toml
//! # evaluation window, in simulated milliseconds
//! window_ms = 10
//!
//! rate_cv_max = 0.8                 # per-flow rate CV per window
//! min_jain = 0.3                    # per-window Jain index across flows
//! max_queue_bytes = 2000000         # instantaneous queue-depth ceiling
//! max_time_to_reinterleave_s = 0.2  # fault onset -> all jobs back to
//!                                   # <= slow_factor x baseline iterations
//! slow_factor = 1.4
//! min_rate_samples = 4              # CV needs this many samples to judge
//! context_events = 32               # flight-ring capacity per category
//! ```
//!
//! Every monitor is windowed on *simulated* time, so verdicts are
//! deterministic: the same event stream produces the same alerts in the
//! same order regardless of wall clock, thread count, or arrival jitter
//! (a [`WatchdogBank`] keys monitors by scenario, and each scenario's
//! stream is deterministic by construction). Each alert captures the
//! scenario's flight-recorder ring at the moment it fired — the last-N
//! events per category around the trigger.

use crate::events::median_dur;
use crate::fairness::jain_index;
use crate::summary::fmt_f64;
use simtime::{Dur, Time};
use std::collections::{BTreeMap, BTreeSet};
use telemetry::live::FlightRing;
use telemetry::{export, Event, Phase, TimedEvent};

/// Declarative SLO thresholds. `None` disables a monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRules {
    /// Evaluation window, in simulated time.
    pub window: Dur,
    /// Max per-flow coefficient of variation of rate samples per window.
    pub rate_cv_max: Option<f64>,
    /// Min per-window Jain fairness index across flows.
    pub min_jain: Option<f64>,
    /// Max instantaneous bottleneck queue depth, in bytes.
    pub max_queue_bytes: Option<f64>,
    /// Max simulated time from fault onset until every job with an
    /// established baseline is iterating at `<= slow_factor × baseline`
    /// again with all links restored.
    pub max_time_to_reinterleave: Option<Dur>,
    /// Recovery threshold multiplier over the pre-fault median iteration.
    pub slow_factor: f64,
    /// Minimum rate samples in a window before CV is judged.
    pub min_rate_samples: usize,
    /// Flight-ring capacity per event category (alert context size).
    pub context_events: usize,
}

impl Default for SloRules {
    fn default() -> SloRules {
        SloRules {
            window: Dur::from_millis(10),
            rate_cv_max: None,
            min_jain: None,
            max_queue_bytes: None,
            max_time_to_reinterleave: None,
            slow_factor: 1.4,
            min_rate_samples: 4,
            context_events: 32,
        }
    }
}

/// Parses SLO rules from flat `key = value` TOML (schema in the module
/// docs). Unknown keys are errors — they are always typos.
pub fn slo_from_toml_str(text: &str) -> Result<SloRules, String> {
    let mut rules = SloRules::default();
    for (ln, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: `{raw}`", ln + 1);
        if line.starts_with('[') {
            return Err(err("SLO rules are flat; sections are not supported"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`"))?;
        let key = key.trim();
        let num: f64 = value
            .trim()
            .parse()
            .map_err(|_| err("expected a numeric value"))?;
        let uint = |num: f64| -> Result<usize, String> {
            if num < 0.0 || num.fract() != 0.0 {
                return Err(err("expected a non-negative integer"));
            }
            Ok(num as usize)
        };
        match key {
            "window_ms" => {
                if num <= 0.0 {
                    return Err(err("window_ms must be positive"));
                }
                rules.window = Dur::from_millis_f64(num);
            }
            "rate_cv_max" => rules.rate_cv_max = Some(num),
            "min_jain" => rules.min_jain = Some(num),
            "max_queue_bytes" => rules.max_queue_bytes = Some(num),
            "max_time_to_reinterleave_s" => {
                if num <= 0.0 {
                    return Err(err("max_time_to_reinterleave_s must be positive"));
                }
                rules.max_time_to_reinterleave = Some(Dur::from_secs_f64(num));
            }
            "slow_factor" => rules.slow_factor = num,
            "min_rate_samples" => rules.min_rate_samples = uint(num)?,
            "context_events" => rules.context_events = uint(num)?.max(1),
            _ => return Err(err("unknown key")),
        }
    }
    Ok(rules)
}

/// Which SLO a violation breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// Per-flow rate CV exceeded `rate_cv_max` in a window.
    RateCv,
    /// Window Jain index fell below `min_jain`.
    Fairness,
    /// Instantaneous queue depth exceeded `max_queue_bytes`.
    QueueDepth,
    /// Jobs failed to re-interleave within `max_time_to_reinterleave`
    /// of a fault's onset.
    RecoveryStall,
}

impl AlertKind {
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::RateCv => "rate_cv",
            AlertKind::Fairness => "fairness",
            AlertKind::QueueDepth => "queue_depth",
            AlertKind::RecoveryStall => "recovery_stall",
        }
    }
}

/// One SLO violation, with the flight-recorder context around the trigger.
#[derive(Debug, Clone)]
pub struct Alert {
    pub kind: AlertKind,
    /// Scenario the violation occurred in.
    pub scenario: String,
    /// Simulated time of the trigger (window end for windowed monitors).
    pub at: Time,
    /// What breached: `flow=N`, `link=N`, or `fault@Tns`.
    pub subject: String,
    /// The observed value.
    pub value: f64,
    /// The configured threshold it crossed.
    pub threshold: f64,
    /// Human-readable one-liner.
    pub message: String,
    /// The most contended `(link, job pair)` at trigger time, from the
    /// watchdog's streaming pair-overlap accumulator — `None` when no two
    /// jobs had overlapped on a shared link yet.
    pub blamed: Option<String>,
    /// Snapshot of the scenario's flight ring when the alert fired — the
    /// last-N events per category, including the triggering events.
    pub context: Vec<TimedEvent>,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Alert {
    /// One flat-JSON header line describing the violation, followed by
    /// the captured context events in [`export::jsonl`] form. Both line
    /// shapes are flat JSON objects, so the dump stays grep- and
    /// machine-readable (`"alert":` selects headers, `"type":` events).
    pub fn to_jsonl(&self) -> String {
        let blamed = match &self.blamed {
            Some(b) => format!(",\"blamed\":\"{}\"", esc(b)),
            None => String::new(),
        };
        let mut out = format!(
            "{{\"alert\":\"{}\",\"scenario\":\"{}\",\"t_ns\":{},\"subject\":\"{}\",\
             \"value\":{},\"threshold\":{},\"message\":\"{}\"{blamed},\"context_events\":{}}}\n",
            self.kind.label(),
            esc(&self.scenario),
            self.at.as_nanos(),
            esc(&self.subject),
            fmt_f64(self.value),
            fmt_f64(self.threshold),
            esc(&self.message),
            self.context.len()
        );
        out.push_str(&export::jsonl(&self.context));
        out
    }

    /// Compact single-line rendering for terminals.
    pub fn render(&self) -> String {
        let blamed = match &self.blamed {
            Some(b) => format!(" [most contended: {b}]"),
            None => String::new(),
        };
        format!(
            "[{}] {} at {:.3}ms ({}): {}{blamed}",
            self.kind.label(),
            self.scenario,
            self.at.as_millis_f64(),
            self.subject,
            self.message
        )
    }
}

/// Incremental SLO monitor for one scenario's event stream.
///
/// Feed it events in recording order via [`Watchdog::observe`]; call
/// [`Watchdog::finish`] once the stream ends to evaluate the final
/// partial window. Each (kind, subject) pair fires at most once per
/// scenario (per fault window for recovery stalls), so alert counts stay
/// small and stable for golden-count gates.
pub struct Watchdog {
    rules: SloRules,
    scenario: String,
    ring: FlightRing,
    window_end: Option<Time>,
    last_at: Time,
    // rate + fairness monitors
    rate_samples: BTreeMap<u32, Vec<f64>>,
    last_rate: BTreeMap<u32, f64>,
    // recovery monitor
    link_down: BTreeSet<u32>,
    fault_started_at: Option<Time>,
    iter_baseline: BTreeMap<u32, Vec<Dur>>,
    last_comm_exit: BTreeMap<u32, Time>,
    recovered: BTreeSet<u32>,
    stall_fired: bool,
    fired: BTreeSet<(&'static str, String)>,
    alerts: Vec<Alert>,
    // Streaming pair-overlap accumulator: which jobs are communicating
    // right now, since when the active set last changed, which links each
    // job traverses, and overlapped seconds per (link, job, job) triple.
    comm_active: BTreeSet<u32>,
    comm_seg_start: Time,
    job_links: BTreeMap<u32, Vec<u32>>,
    pair_overlap: BTreeMap<(u32, u32, u32), f64>,
}

/// Iteration samples retained per job for the recovery baseline median.
const BASELINE_CAP: usize = 64;

impl Watchdog {
    pub fn new(scenario: &str, rules: SloRules) -> Watchdog {
        let ring = FlightRing::new(rules.context_events);
        Watchdog {
            rules,
            scenario: scenario.to_string(),
            ring,
            window_end: None,
            last_at: Time::ZERO,
            rate_samples: BTreeMap::new(),
            last_rate: BTreeMap::new(),
            link_down: BTreeSet::new(),
            fault_started_at: None,
            iter_baseline: BTreeMap::new(),
            last_comm_exit: BTreeMap::new(),
            recovered: BTreeSet::new(),
            stall_fired: false,
            fired: BTreeSet::new(),
            alerts: Vec::new(),
            comm_active: BTreeSet::new(),
            comm_seg_start: Time::ZERO,
            job_links: BTreeMap::new(),
            pair_overlap: BTreeMap::new(),
        }
    }

    /// Accrues the overlap segment `[comm_seg_start, now)` for every pair
    /// of currently-communicating jobs sharing a link, then restarts the
    /// segment at `now`. Jobs without a `JobPath` default to link 0.
    fn accrue_overlap(&mut self, now: Time) {
        let dt = now.saturating_since(self.comm_seg_start).as_secs_f64();
        if dt > 0.0 && self.comm_active.len() >= 2 {
            let jobs: Vec<u32> = self.comm_active.iter().copied().collect();
            for (i, &a) in jobs.iter().enumerate() {
                for &b in &jobs[i + 1..] {
                    let la = self.job_links.get(&a).cloned().unwrap_or_else(|| vec![0]);
                    let lb = self.job_links.get(&b).cloned().unwrap_or_else(|| vec![0]);
                    for &l in la.iter().filter(|l| lb.contains(l)) {
                        *self.pair_overlap.entry((l, a, b)).or_insert(0.0) += dt;
                    }
                }
            }
        }
        self.comm_seg_start = now;
    }

    /// The most-overlapped `(link, job pair)` so far, rendered for alerts.
    fn top_blamed(&self) -> Option<String> {
        self.pair_overlap
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&(link, a, b), &secs)| format!("link{link} job{a}+job{b} ({:.3}ms)", secs * 1e3))
    }

    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    fn fire(
        &mut self,
        kind: AlertKind,
        at: Time,
        subject: String,
        value: f64,
        threshold: f64,
        message: String,
    ) {
        if !self.fired.insert((kind.label(), subject.clone())) {
            return;
        }
        self.accrue_overlap(at);
        self.alerts.push(Alert {
            kind,
            scenario: self.scenario.clone(),
            at,
            subject,
            value,
            threshold,
            message,
            blamed: self.top_blamed(),
            context: self.ring.snapshot(),
        });
    }

    fn close_window(&mut self, end: Time) {
        if let Some(cv_max) = self.rules.rate_cv_max {
            let judged: Vec<(u32, f64)> = self
                .rate_samples
                .iter()
                .filter(|(_, s)| s.len() >= self.rules.min_rate_samples)
                .map(|(&flow, s)| {
                    let mean = s.iter().sum::<f64>() / s.len() as f64;
                    let var = s.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / s.len() as f64;
                    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
                    (flow, cv)
                })
                .collect();
            for (flow, cv) in judged {
                if cv > cv_max {
                    self.fire(
                        AlertKind::RateCv,
                        end,
                        format!("flow={flow}"),
                        cv,
                        cv_max,
                        format!("rate CV {cv:.3} exceeds {cv_max} for flow {flow}"),
                    );
                }
            }
        }
        if let Some(min_jain) = self.rules.min_jain {
            // Flows without a sample this window carry their last rate
            // forward, mirroring the offline fairness analyzer.
            let means: Vec<f64> = self
                .last_rate
                .iter()
                .map(|(flow, &last)| match self.rate_samples.get(flow) {
                    Some(s) if !s.is_empty() => s.iter().sum::<f64>() / s.len() as f64,
                    _ => last,
                })
                .collect();
            if means.len() >= 2 {
                let j = jain_index(&means);
                if j < min_jain {
                    self.fire(
                        AlertKind::Fairness,
                        end,
                        "jain".to_string(),
                        j,
                        min_jain,
                        format!("window Jain index {j:.3} below {min_jain}"),
                    );
                }
            }
        }
        self.rate_samples.clear();
    }

    /// All jobs that had a pre-fault baseline have shown a normal-speed
    /// iteration since the fault, and every link is back at capacity.
    fn all_recovered(&self) -> bool {
        self.link_down.is_empty()
            && self
                .iter_baseline
                .keys()
                .all(|job| self.recovered.contains(job))
    }

    /// Feeds one event. Events must arrive in nondecreasing simulated
    /// time (recording order within a scenario guarantees this).
    pub fn observe(&mut self, te: &TimedEvent) {
        self.last_at = self.last_at.max(te.at);
        match self.window_end {
            None => self.window_end = Some(te.at + self.rules.window),
            Some(mut end) => {
                while te.at >= end {
                    self.close_window(end);
                    end += self.rules.window;
                }
                self.window_end = Some(end);
            }
        }
        self.ring.push(te.clone());
        match &te.event {
            Event::RateChange { flow, bps, .. } => {
                let gbps = bps / 1e9;
                self.rate_samples.entry(*flow).or_default().push(gbps);
                self.last_rate.insert(*flow, gbps);
            }
            Event::QueueDepth { link, bytes } => {
                if let Some(max) = self.rules.max_queue_bytes {
                    if *bytes > max {
                        self.fire(
                            AlertKind::QueueDepth,
                            te.at,
                            format!("link={link}"),
                            *bytes,
                            max,
                            format!("queue depth {bytes:.0} B exceeds {max:.0} B on link {link}"),
                        );
                    }
                }
            }
            Event::LinkCapacity { link, fraction } => {
                if *fraction < 0.999 {
                    if self.link_down.is_empty() && self.fault_started_at.is_none() {
                        self.fault_started_at = Some(te.at);
                        self.recovered.clear();
                        self.stall_fired = false;
                    }
                    self.link_down.insert(*link);
                } else {
                    self.link_down.remove(link);
                }
            }
            Event::JobPath { job, links } => {
                self.job_links.insert(*job, links.clone());
            }
            Event::PhaseEnter {
                job,
                phase: Phase::Communicate,
                ..
            } => {
                self.accrue_overlap(te.at);
                self.comm_active.insert(*job);
            }
            Event::PhaseExit {
                job,
                phase: Phase::Communicate,
                ..
            } => {
                self.accrue_overlap(te.at);
                self.comm_active.remove(job);
                if let Some(prev) = self.last_comm_exit.insert(*job, te.at) {
                    let dur = te.at.saturating_since(prev);
                    if self.fault_started_at.is_none() && self.link_down.is_empty() {
                        let base = self.iter_baseline.entry(*job).or_default();
                        if base.len() == BASELINE_CAP {
                            base.remove(0);
                        }
                        base.push(dur);
                    } else if self.link_down.is_empty() {
                        let base = self
                            .iter_baseline
                            .get(job)
                            .map(|b| median_dur(b))
                            .unwrap_or(Dur::ZERO);
                        if base.is_zero() || dur <= base.mul_f64(self.rules.slow_factor) {
                            self.recovered.insert(*job);
                            if self.all_recovered() {
                                self.fault_started_at = None;
                                self.recovered.clear();
                                self.stall_fired = false;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        if let (Some(deadline), Some(started)) =
            (self.rules.max_time_to_reinterleave, self.fault_started_at)
        {
            let elapsed = te.at.saturating_since(started);
            if !self.stall_fired && elapsed > deadline {
                let lagging: Vec<String> = self
                    .iter_baseline
                    .keys()
                    .filter(|j| !self.recovered.contains(j))
                    .map(|j| j.to_string())
                    .collect();
                self.fire(
                    AlertKind::RecoveryStall,
                    te.at,
                    format!("fault@{}ns", started.as_nanos()),
                    elapsed.as_secs_f64(),
                    deadline.as_secs_f64(),
                    format!(
                        "jobs [{}] not re-interleaved {:.1}ms after fault at {:.1}ms \
                         (deadline {:.1}ms)",
                        lagging.join(","),
                        elapsed.as_millis_f64(),
                        started.as_millis_f64(),
                        deadline.as_millis_f64()
                    ),
                );
                self.stall_fired = true;
            }
        }
    }

    /// Evaluates the final partial window. Call once, after the stream.
    pub fn finish(&mut self) {
        if let Some(end) = self.window_end.take() {
            self.close_window(end);
        }
    }
}

/// A set of per-scenario [`Watchdog`]s sharing one rule set.
///
/// Feed it `(scenario, event)` pairs in any cross-scenario interleaving —
/// per-scenario order is all that matters — or a whole recorded stream
/// via [`WatchdogBank::observe_stream`], which tracks `Scenario` markers
/// itself. [`WatchdogBank::into_alerts`] returns every alert in a
/// deterministic order regardless of how scenarios' batches interleaved.
pub struct WatchdogBank {
    rules: SloRules,
    dogs: BTreeMap<String, Watchdog>,
}

impl WatchdogBank {
    pub fn new(rules: SloRules) -> WatchdogBank {
        WatchdogBank {
            rules,
            dogs: BTreeMap::new(),
        }
    }

    pub fn observe(&mut self, scenario: &str, te: &TimedEvent) {
        if let Some(dog) = self.dogs.get_mut(scenario) {
            dog.observe(te);
        } else {
            let mut dog = Watchdog::new(scenario, self.rules.clone());
            dog.observe(te);
            self.dogs.insert(scenario.to_string(), dog);
        }
    }

    /// Feeds a recorded stream, splitting on `Scenario` markers (events
    /// before the first marker land in a scenario named `"run"`, matching
    /// [`crate::events::split_scenarios`]).
    pub fn observe_stream(&mut self, events: &[TimedEvent]) {
        let mut current = "run".to_string();
        for te in events {
            if let Event::Scenario { name } = &te.event {
                current = name.clone();
            }
            self.observe(&current, te);
        }
    }

    /// Alerts fired so far (monitoring may still be in flight).
    pub fn alert_count(&self) -> usize {
        self.dogs.values().map(|d| d.alerts.len()).sum()
    }

    /// Finishes every watchdog and returns all alerts, sorted by
    /// (scenario, time, kind, subject) — a deterministic order even when
    /// scenario batches arrived interleaved from parallel workers.
    pub fn into_alerts(mut self) -> Vec<Alert> {
        let mut out = Vec::new();
        for dog in self.dogs.values_mut() {
            dog.finish();
        }
        for (_, dog) in std::mem::take(&mut self.dogs) {
            out.extend(dog.alerts);
        }
        out.sort_by(|a, b| {
            (
                a.scenario.as_str(),
                a.at.as_nanos(),
                a.kind,
                a.subject.as_str(),
            )
                .cmp(&(
                    b.scenario.as_str(),
                    b.at.as_nanos(),
                    b.kind,
                    b.subject.as_str(),
                ))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::CcState;

    fn te(ns: u64, event: Event) -> TimedEvent {
        TimedEvent {
            at: Time::from_nanos(ns),
            event,
        }
    }

    fn rate(ns: u64, flow: u32, gbps: f64) -> TimedEvent {
        te(
            ns,
            Event::RateChange {
                flow,
                bps: gbps * 1e9,
                state: CcState::Alloc,
            },
        )
    }

    fn comm_exit(ns: u64, job: u32, iteration: u64) -> TimedEvent {
        te(
            ns,
            Event::PhaseExit {
                job,
                phase: Phase::Communicate,
                iteration,
            },
        )
    }

    #[test]
    fn toml_round_trip_and_rejections() {
        let rules = slo_from_toml_str(
            "# slo\nwindow_ms = 5\nrate_cv_max = 0.5\nmin_jain = 0.3\n\
             max_queue_bytes = 1e6\nmax_time_to_reinterleave_s = 0.25\n\
             slow_factor = 1.5\nmin_rate_samples = 6\ncontext_events = 8\n",
        )
        .unwrap();
        assert_eq!(rules.window, Dur::from_millis(5));
        assert_eq!(rules.rate_cv_max, Some(0.5));
        assert_eq!(rules.min_jain, Some(0.3));
        assert_eq!(rules.max_queue_bytes, Some(1e6));
        assert_eq!(rules.max_time_to_reinterleave, Some(Dur::from_millis(250)));
        assert_eq!(rules.slow_factor, 1.5);
        assert_eq!(rules.min_rate_samples, 6);
        assert_eq!(rules.context_events, 8);

        assert!(slo_from_toml_str("bogus = 1\n").is_err());
        assert!(slo_from_toml_str("[section]\n").is_err());
        assert!(slo_from_toml_str("window_ms = nope\n").is_err());
        assert!(slo_from_toml_str("window_ms = -1\n").is_err());
        assert_eq!(slo_from_toml_str("").unwrap(), SloRules::default());
    }

    #[test]
    fn default_rules_fire_nothing() {
        let mut dog = Watchdog::new("s", SloRules::default());
        for i in 0..200u64 {
            dog.observe(&rate(
                i * 100_000,
                (i % 2) as u32,
                if i % 2 == 0 { 50.0 } else { 0.1 },
            ));
        }
        dog.finish();
        assert!(dog.alerts().is_empty());
    }

    #[test]
    fn rate_cv_blowup_fires_once_per_flow() {
        let rules = SloRules {
            rate_cv_max: Some(0.3),
            ..SloRules::default()
        };
        let mut dog = Watchdog::new("s", rules);
        // Flow 0 oscillates wildly; flow 1 holds steady.
        for w in 0..4u64 {
            for i in 0..8u64 {
                let ns = w * 10_000_000 + i * 1_000_000;
                dog.observe(&rate(ns, 0, if i % 2 == 0 { 90.0 } else { 5.0 }));
                dog.observe(&rate(ns + 1, 1, 40.0));
            }
        }
        dog.finish();
        let alerts = dog.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::RateCv);
        assert_eq!(alerts[0].subject, "flow=0");
        assert!(alerts[0].value > 0.3);
        assert!(
            !alerts[0].context.is_empty(),
            "alert must carry flight-ring context"
        );
    }

    #[test]
    fn jain_collapse_fires_with_carry_forward() {
        let rules = SloRules {
            min_jain: Some(0.6),
            ..SloRules::default()
        };
        let mut dog = Watchdog::new("s", rules);
        // Both flows seen in window 0 (jain = 1); then flow 1 starves at a
        // carried-forward trickle while flow 0 hogs.
        dog.observe(&rate(0, 0, 50.0));
        dog.observe(&rate(1, 1, 50.0));
        dog.observe(&rate(10_000_000, 1, 0.5));
        for i in 0..6u64 {
            dog.observe(&rate(20_000_000 + i * 1_000_000, 0, 99.0));
        }
        dog.finish();
        let alerts = dog.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::Fairness);
        assert!(alerts[0].value < 0.6);
    }

    #[test]
    fn queue_ceiling_fires_immediately_and_dedupes() {
        let rules = SloRules {
            max_queue_bytes: Some(1000.0),
            ..SloRules::default()
        };
        let mut dog = Watchdog::new("s", rules);
        dog.observe(&te(
            0,
            Event::QueueDepth {
                link: 0,
                bytes: 500.0,
            },
        ));
        dog.observe(&te(
            10,
            Event::QueueDepth {
                link: 0,
                bytes: 2500.0,
            },
        ));
        dog.observe(&te(
            20,
            Event::QueueDepth {
                link: 0,
                bytes: 9000.0,
            },
        ));
        dog.observe(&te(
            30,
            Event::QueueDepth {
                link: 1,
                bytes: 3000.0,
            },
        ));
        dog.finish();
        let alerts = dog.alerts();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].subject, "link=0");
        assert_eq!(alerts[0].value, 2500.0);
        assert_eq!(alerts[1].subject, "link=1");
    }

    #[test]
    fn recovery_stall_fires_after_deadline_and_clears_on_recovery() {
        let ms = 1_000_000u64;
        let rules = SloRules {
            max_time_to_reinterleave: Some(Dur::from_millis(50)),
            ..SloRules::default()
        };
        // Baseline: 10ms iterations for jobs 0 and 1.
        let mut dog = Watchdog::new("s", rules.clone());
        for i in 0..6u64 {
            dog.observe(&comm_exit(i * 10 * ms, 0, i));
            dog.observe(&comm_exit(i * 10 * ms + 1, 1, i));
        }
        // Fault at 60ms; link restored at 70ms; job 1 recovers quickly but
        // job 0 crawls at 40ms/iteration well past the 50ms deadline.
        dog.observe(&te(
            60 * ms,
            Event::LinkCapacity {
                link: 0,
                fraction: 0.25,
            },
        ));
        dog.observe(&te(
            70 * ms,
            Event::LinkCapacity {
                link: 0,
                fraction: 1.0,
            },
        ));
        dog.observe(&comm_exit(80 * ms, 1, 6));
        dog.observe(&comm_exit(100 * ms, 0, 6));
        dog.observe(&comm_exit(140 * ms, 0, 7));
        dog.finish();
        let alerts = dog.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::RecoveryStall);
        assert!(alerts[0].subject.starts_with("fault@"));
        assert!(
            alerts[0]
                .context
                .iter()
                .any(|te| te.event.kind() == "link_capacity"),
            "context must contain the triggering fault event"
        );

        // Same fault but the jobs snap back inside the deadline: clean.
        let mut ok = Watchdog::new("s", rules);
        for i in 0..6u64 {
            ok.observe(&comm_exit(i * 10 * ms, 0, i));
            ok.observe(&comm_exit(i * 10 * ms + 1, 1, i));
        }
        ok.observe(&te(
            60 * ms,
            Event::LinkCapacity {
                link: 0,
                fraction: 0.25,
            },
        ));
        ok.observe(&te(
            65 * ms,
            Event::LinkCapacity {
                link: 0,
                fraction: 1.0,
            },
        ));
        // First post-restore iterations are long (20ms) — not yet
        // recovered — but the next land back at the 10ms baseline well
        // inside the 50ms deadline.
        ok.observe(&comm_exit(70 * ms, 0, 6));
        ok.observe(&comm_exit(70 * ms + 1, 1, 6));
        ok.observe(&comm_exit(80 * ms, 0, 7));
        ok.observe(&comm_exit(80 * ms + 1, 1, 7));
        ok.observe(&comm_exit(200 * ms, 0, 8));
        ok.finish();
        assert!(ok.alerts().is_empty(), "{:?}", ok.alerts());
    }

    fn comm_enter(ns: u64, job: u32, iteration: u64) -> TimedEvent {
        te(
            ns,
            Event::PhaseEnter {
                job,
                phase: Phase::Communicate,
                iteration,
            },
        )
    }

    #[test]
    fn alerts_carry_the_most_contended_pair() {
        let rules = SloRules {
            max_queue_bytes: Some(1000.0),
            ..SloRules::default()
        };
        let ms = 1_000_000u64;
        let mut dog = Watchdog::new("s", rules.clone());
        // Jobs 0 and 1 overlap on link 0 for 2 ms; job 2 stays solo.
        dog.observe(&comm_enter(0, 0, 0));
        dog.observe(&comm_enter(ms, 1, 0));
        dog.observe(&comm_exit(3 * ms, 0, 0));
        dog.observe(&comm_exit(3 * ms, 1, 0));
        dog.observe(&comm_enter(4 * ms, 2, 0));
        dog.observe(&te(
            5 * ms,
            Event::QueueDepth {
                link: 0,
                bytes: 5000.0,
            },
        ));
        dog.finish();
        let alerts = dog.alerts();
        assert_eq!(alerts.len(), 1);
        let blamed = alerts[0].blamed.as_deref().expect("blamed pair");
        assert_eq!(blamed, "link0 job0+job1 (2.000ms)");
        assert!(alerts[0]
            .to_jsonl()
            .contains("\"blamed\":\"link0 job0+job1"));
        assert!(alerts[0].render().contains("[most contended: link0"));

        // No overlap observed → no blame on the alert.
        let mut solo = Watchdog::new("s", rules);
        solo.observe(&comm_enter(0, 0, 0));
        solo.observe(&te(
            ms,
            Event::QueueDepth {
                link: 0,
                bytes: 5000.0,
            },
        ));
        solo.finish();
        assert_eq!(solo.alerts()[0].blamed, None);
        assert!(!solo.alerts()[0].to_jsonl().contains("\"blamed\""));
    }

    #[test]
    fn disjoint_paths_accumulate_no_pair_overlap() {
        let rules = SloRules {
            max_queue_bytes: Some(1000.0),
            ..SloRules::default()
        };
        let ms = 1_000_000u64;
        let mut dog = Watchdog::new("s", rules);
        dog.observe(&te(
            0,
            Event::JobPath {
                job: 0,
                links: vec![1],
            },
        ));
        dog.observe(&te(
            0,
            Event::JobPath {
                job: 1,
                links: vec![2],
            },
        ));
        dog.observe(&comm_enter(0, 0, 0));
        dog.observe(&comm_enter(0, 1, 0));
        dog.observe(&te(
            2 * ms,
            Event::QueueDepth {
                link: 1,
                bytes: 5000.0,
            },
        ));
        dog.finish();
        assert_eq!(dog.alerts()[0].blamed, None);
    }

    #[test]
    fn bank_orders_alerts_deterministically() {
        let rules = SloRules {
            max_queue_bytes: Some(100.0),
            ..SloRules::default()
        };
        let stream_b = te(
            5,
            Event::QueueDepth {
                link: 0,
                bytes: 500.0,
            },
        );
        let stream_a = te(
            9,
            Event::QueueDepth {
                link: 2,
                bytes: 900.0,
            },
        );
        // Arrival order b-then-a; output is scenario-sorted a-then-b.
        let mut bank = WatchdogBank::new(rules.clone());
        bank.observe("b", &stream_b);
        bank.observe("a", &stream_a);
        let alerts = bank.into_alerts();
        let order: Vec<&str> = alerts.iter().map(|a| a.scenario.as_str()).collect();
        assert_eq!(order, vec!["a", "b"]);

        let mut bank2 = WatchdogBank::new(rules);
        bank2.observe_stream(&[
            te(0, Event::Scenario { name: "a".into() }),
            stream_a.clone(),
            te(0, Event::Scenario { name: "b".into() }),
            stream_b.clone(),
        ]);
        assert_eq!(bank2.alert_count(), 2);
        let alerts2 = bank2.into_alerts();
        assert_eq!(alerts2.len(), 2);
        assert!(alerts2[0].to_jsonl().contains("\"alert\":\"queue_depth\""));
    }
}
