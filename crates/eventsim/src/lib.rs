//! Deterministic discrete-event simulation engine.
//!
//! The network simulators in this workspace (`netsim`'s fluid and rate-based
//! engines) are built on three small, independently testable pieces:
//!
//! * [`EventQueue`] — a time-ordered priority queue of typed events with a
//!   **deterministic tie-break**: events scheduled for the same instant pop
//!   in scheduling order, so a simulation is a pure function of its inputs.
//!   Backed by a hierarchical timing wheel; the original binary-heap
//!   implementation survives as [`queue::reference::EventQueue`] for
//!   differential testing.
//! * [`Rng`] — a seeded xoshiro256++ generator. All stochastic behaviour
//!   (ECN marking coin flips, randomized solver restarts) draws from here;
//!   the same seed reproduces a byte-identical run on any platform.
//! * [`TimeSeries`] — a simple `(Time, f64)` trace recorder with the
//!   aggregation helpers the experiments need (step integration, resampling,
//!   time-weighted means).
//!
//! The engine is intentionally synchronous and single-threaded: a simulation
//! step is CPU-bound and deterministic, which is exactly the workload the
//! async-runtime guides tell you *not* to put on an async executor.
//! Parallelism in this workspace happens across independent simulations
//! (e.g. parameter sweeps in the benches), never inside one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
mod rng;
mod trace;

pub use queue::{EventQueue, ScheduleError, ScheduledEvent};
pub use rng::Rng;
pub use trace::{Cdf, TimeSeries};
