//! Time-ordered event queue with deterministic tie-breaking.
//!
//! The production [`EventQueue`] is a hierarchical timing wheel (Varghese &
//! Lauck): [`LEVELS`] levels of [`SLOTS`] slots each, level `k` covering
//! `64^k` ns per slot, with a sorted overflow map for events beyond the
//! wheel's ~68 s horizon. Scheduling and popping are O(1) amortized instead
//! of the binary heap's O(log n), which is what makes packet-level
//! simulations with 10⁵–10⁶ pending events affordable.
//!
//! The original heap-backed implementation survives unchanged as
//! [`reference::EventQueue`] — the differential oracle (mirroring
//! `netsim::alloc::reference`): property tests drive both queues with the
//! same interleaving of schedules and pops and assert identical output,
//! including same-instant FIFO ties.

use simtime::{Dur, Time};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Error returned by [`EventQueue::try_schedule_at`] when the requested
/// timestamp is earlier than the queue's clock.
///
/// Scheduling into the past would silently misorder the event stream (the
/// queue's contract is non-decreasing pop times), so it is rejected up
/// front. [`EventQueue::schedule_at`] keeps the historical panicking
/// behaviour for call sites where a past timestamp is a logic bug; callers
/// that derive timestamps from external input (snapshots, replayed traces,
/// cross-shard merges) should prefer the fallible form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleError {
    /// The rejected timestamp.
    pub at: Time,
    /// The queue clock at the time of the attempt.
    pub now: Time,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EventQueue: scheduling into the past ({:?} < now {:?})",
            self.at, self.now
        )
    }
}

impl std::error::Error for ScheduleError {}

/// An event popped from an [`EventQueue`]: when it fires and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub at: Time,
    /// The caller-defined payload.
    pub event: E,
}

#[derive(Clone)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `k` slots are `64^k` ns wide; the whole wheel spans
/// `64^LEVELS` ns ≈ 68.7 s past the cursor. Events farther out go to the
/// sorted overflow map and are pulled in by timestamp comparison at pop.
const LEVELS: usize = 6;

/// The wheel level an event `diff = at ^ cursor` belongs to: the highest
/// 6-bit digit in which the timestamps differ. `LEVELS` or more means the
/// event is beyond the wheel horizon (overflow).
#[inline]
fn level_of(diff: u64) -> usize {
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
    }
}

#[inline]
fn slot_of(at: u64, level: usize) -> usize {
    ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

/// A priority queue of future events, keyed by simulation time.
///
/// Two guarantees make simulations reproducible:
///
/// 1. events pop in non-decreasing time order;
/// 2. events scheduled for the *same* instant pop in the order they were
///    scheduled (FIFO tie-break), independent of payload type or queue
///    internals.
///
/// The queue also tracks the current simulation clock: [`EventQueue::now`]
/// advances to each popped event's timestamp, and scheduling in the past
/// panics (an event sourced from stale state is a logic bug, not a
/// recoverable condition).
///
/// Internally a hierarchical timing wheel; behaviourally identical (by
/// contract and by differential property test) to [`reference::EventQueue`].
///
/// Cloning (for `E: Clone`) captures the complete queue state — clock,
/// pending events, *and* the internal sequence counter — so a clone pops
/// the exact same event order as the original, including same-instant
/// FIFO ties and ties against events scheduled after the clone. This is
/// what engine snapshots lean on.
#[derive(Clone)]
pub struct EventQueue<E> {
    /// Remaining entries of the timestamp group currently being popped,
    /// FIFO by sequence number. All share one timestamp.
    head: VecDeque<Entry<E>>,
    /// `LEVELS × SLOTS` wheel slots, flattened.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level slot-occupancy bitmask (bit `j` = slot `j` non-empty).
    occupancy: [u64; LEVELS],
    /// Events beyond the wheel horizon, sorted by timestamp; each bucket
    /// holds its entries in scheduling order.
    overflow: BTreeMap<u64, Vec<Entry<E>>>,
    /// Wheel alignment instant. Equals `now` whenever control is outside
    /// `pop` — every entry's wheel placement is relative to it.
    cursor: u64,
    now: Time,
    next_seq: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> EventQueue<E> {
        EventQueue {
            head: VecDeque::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            overflow: BTreeMap::new(),
            cursor: 0,
            now: Time::ZERO,
            next_seq: 0,
            len: 0,
        }
    }

    /// The current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock. Use
    /// [`EventQueue::try_schedule_at`] to get a typed error instead.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        if let Err(e) = self.try_schedule_at(at, event) {
            panic!("{e}");
        }
    }

    /// Schedules `event` to fire at absolute time `at`, rejecting past
    /// timestamps with a typed [`ScheduleError`] instead of panicking.
    /// On error the queue is unchanged (the event is not enqueued and the
    /// sequence counter does not advance).
    pub fn try_schedule_at(&mut self, at: Time, event: E) -> Result<(), ScheduleError> {
        if at < self.now {
            return Err(ScheduleError { at, now: self.now });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.insert(Entry { at, seq, event });
        Ok(())
    }

    /// Schedules `event` to fire `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: Dur, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Places an entry into the wheel or overflow, relative to the cursor.
    fn insert(&mut self, e: Entry<E>) {
        let at = e.at.as_nanos();
        debug_assert!(at >= self.cursor, "insert behind the wheel cursor");
        let level = level_of(at ^ self.cursor);
        if level >= LEVELS {
            self.overflow.entry(at).or_default().push(e);
        } else {
            let slot = slot_of(at, level);
            self.slots[level * SLOTS + slot].push(e);
            self.occupancy[level] |= 1 << slot;
        }
    }

    /// The earliest pending wheel timestamp, without mutating anything.
    ///
    /// Correctness rests on the refill invariant: every wheel entry sits at
    /// its true level relative to the current cursor, so levels scan in
    /// time order and within a level the first occupied slot at or past the
    /// cursor's own index is the earliest.
    fn wheel_min(&self) -> Option<u64> {
        for level in 0..LEVELS {
            let idx = slot_of(self.cursor, level);
            let pending = self.occupancy[level] & (u64::MAX << idx);
            if pending != 0 {
                let j = pending.trailing_zeros() as usize;
                if level == 0 {
                    // A level-0 slot holds exactly one timestamp.
                    let window = self.cursor & !(SLOTS as u64 - 1);
                    return Some(window | j as u64);
                }
                // Coarse slots span 64^level ns: scan for the earliest.
                return self.slots[level * SLOTS + j]
                    .iter()
                    .map(|e| e.at.as_nanos())
                    .min();
            }
        }
        None
    }

    /// Drains the earliest pending timestamp group into `head` (FIFO by
    /// sequence number) and advances the cursor to it. Caller guarantees
    /// the queue is non-empty and `head` is empty.
    fn refill(&mut self) {
        let t = match (self.wheel_min(), self.overflow.keys().next().copied()) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => unreachable!("refill on an empty queue"),
        };
        let jump = level_of(self.cursor ^ t);
        self.cursor = t;
        if jump >= LEVELS {
            // The clock leapt past the whole wheel horizon: every remaining
            // wheel entry is now beyond it too. Re-key them into overflow.
            for level in 0..LEVELS {
                let mut occ = self.occupancy[level];
                self.occupancy[level] = 0;
                while occ != 0 {
                    let j = occ.trailing_zeros() as usize;
                    occ &= occ - 1;
                    for e in self.slots[level * SLOTS + j].drain(..) {
                        self.overflow.entry(e.at.as_nanos()).or_default().push(e);
                    }
                }
            }
        } else {
            // Cascade the cursor's own slot at each coarse level: entries
            // that have drifted into `t`'s windows re-land at their true
            // level relative to the new cursor (always strictly lower, so
            // this terminates and restores the placement invariant).
            for level in (1..LEVELS).rev() {
                let slot = slot_of(t, level);
                if self.occupancy[level] & (1 << slot) == 0 {
                    continue;
                }
                self.occupancy[level] &= !(1 << slot);
                let entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                for e in entries {
                    debug_assert!(level_of(e.at.as_nanos() ^ t) < level);
                    self.insert(e);
                }
            }
        }
        // After the cascade, every entry at exactly `t` sits in the level-0
        // slot; merge with any overflow bucket at `t` and restore FIFO.
        let slot = slot_of(t, 0);
        let mut group = std::mem::take(&mut self.slots[slot]);
        self.occupancy[0] &= !(1 << slot);
        if let Some(extra) = self.overflow.remove(&t) {
            group.extend(extra);
        }
        debug_assert!(group.iter().all(|e| e.at.as_nanos() == t));
        group.sort_by_key(|e| e.seq);
        self.head.extend(group);
        debug_assert!(!self.head.is_empty());
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(front) = self.head.front() {
            return Some(front.at);
        }
        let wheel = self.wheel_min();
        let over = self.overflow.keys().next().copied();
        match (wheel, over) {
            (Some(w), Some(o)) => Some(Time::from_nanos(w.min(o))),
            (Some(w), None) => Some(Time::from_nanos(w)),
            (None, Some(o)) => Some(Time::from_nanos(o)),
            (None, None) => None,
        }
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.len == 0 {
            return None;
        }
        if self.head.is_empty() {
            self.refill();
        }
        let entry = self.head.pop_front()?;
        debug_assert!(entry.at >= self.now, "wheel returned an out-of-order event");
        self.len -= 1;
        self.now = entry.at;
        Some(ScheduledEvent {
            at: entry.at,
            event: entry.event,
        })
    }

    /// Pops the next event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: Time) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Drops all pending events, keeping the clock.
    pub fn clear(&mut self) {
        self.head.clear();
        for v in &mut self.slots {
            v.clear();
        }
        self.occupancy = [0; LEVELS];
        self.overflow.clear();
        self.len = 0;
    }
}

pub mod reference {
    //! The original binary-heap [`EventQueue`], kept verbatim as the
    //! differential oracle for the timing wheel: same API, same documented
    //! contract, O(log n) operations.

    use super::{ScheduleError, ScheduledEvent};
    use simtime::{Dur, Time};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Clone)]
    struct Entry<E> {
        at: Time,
        seq: u64,
        event: E,
    }

    // Order for a *max*-heap: we invert so the earliest time pops first, and
    // among equal times the lowest sequence number (scheduled first) pops
    // first.
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }

    impl<E> Eq for Entry<E> {}

    /// Heap-backed event queue with the same determinism contract as the
    /// wheel-backed [`super::EventQueue`]. Clones carry the sequence
    /// counter too, so a clone's pop order matches the original exactly.
    #[derive(Clone)]
    pub struct EventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        now: Time,
        next_seq: u64,
    }

    impl<E> Default for EventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> EventQueue<E> {
        /// An empty queue with the clock at [`Time::ZERO`].
        pub fn new() -> EventQueue<E> {
            EventQueue {
                heap: BinaryHeap::new(),
                now: Time::ZERO,
                next_seq: 0,
            }
        }

        /// The current simulation time (timestamp of the last popped event).
        #[inline]
        pub fn now(&self) -> Time {
            self.now
        }

        /// The number of pending events.
        #[inline]
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// `true` if no events are pending.
        #[inline]
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Schedules `event` to fire at absolute time `at`.
        ///
        /// # Panics
        /// Panics if `at` is earlier than the current clock. Use
        /// [`EventQueue::try_schedule_at`] to get a typed error instead.
        pub fn schedule_at(&mut self, at: Time, event: E) {
            if let Err(e) = self.try_schedule_at(at, event) {
                panic!("{e}");
            }
        }

        /// Schedules `event` to fire at absolute time `at`, rejecting past
        /// timestamps with a typed [`ScheduleError`] instead of panicking.
        /// On error the queue is unchanged.
        pub fn try_schedule_at(&mut self, at: Time, event: E) -> Result<(), ScheduleError> {
            if at < self.now {
                return Err(ScheduleError { at, now: self.now });
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, event });
            Ok(())
        }

        /// Schedules `event` to fire `delay` after the current clock.
        pub fn schedule_in(&mut self, delay: Dur, event: E) {
            self.schedule_at(self.now + delay, event);
        }

        /// The timestamp of the next event without popping it.
        pub fn peek_time(&self) -> Option<Time> {
            self.heap.peek().map(|e| e.at)
        }

        /// Pops the next event and advances the clock to its timestamp.
        pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
            let entry = self.heap.pop()?;
            debug_assert!(entry.at >= self.now, "heap returned an out-of-order event");
            self.now = entry.at;
            Some(ScheduledEvent {
                at: entry.at,
                event: entry.event,
            })
        }

        /// Pops the next event only if it fires at or before `horizon`.
        pub fn pop_until(&mut self, horizon: Time) -> Option<ScheduledEvent<E>> {
            match self.peek_time() {
                Some(t) if t <= horizon => self.pop(),
                _ => None,
            }
        }

        /// Drops all pending events, keeping the clock.
        pub fn clear(&mut self) {
            self.heap.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_nanos(30), "c");
        q.schedule_at(Time::from_nanos(10), "a");
        q.schedule_at(Time::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(Dur::from_micros(125), ());
        assert_eq!(q.now(), Time::ZERO);
        let e = q.pop().unwrap();
        assert_eq!(e.at, Time::from_nanos(125_000));
        assert_eq!(q.now(), e.at);
        // schedule_in is now relative to the advanced clock.
        q.schedule_in(Dur::from_micros(125), ());
        assert_eq!(q.peek_time(), Some(Time::from_nanos(250_000)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_nanos(100), ());
        q.pop();
        q.schedule_at(Time::from_nanos(50), ());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn reference_scheduling_into_past_panics() {
        let mut q = reference::EventQueue::new();
        q.schedule_at(Time::from_nanos(100), ());
        q.pop();
        q.schedule_at(Time::from_nanos(50), ());
    }

    /// Regression: a past timestamp surfaces as a typed error (not a panic,
    /// not a silently misordered event), leaves the queue untouched, and
    /// both backends agree on the error value.
    #[test]
    fn try_schedule_into_past_returns_typed_error() {
        let mut wheel = EventQueue::new();
        let mut heap = reference::EventQueue::new();
        wheel.schedule_at(Time::from_nanos(100), 0u32);
        wheel.pop();
        heap.schedule_at(Time::from_nanos(100), 0u32);
        heap.pop();
        let expected = ScheduleError {
            at: Time::from_nanos(50),
            now: Time::from_nanos(100),
        };
        assert_eq!(
            wheel.try_schedule_at(Time::from_nanos(50), 1),
            Err(expected)
        );
        assert_eq!(heap.try_schedule_at(Time::from_nanos(50), 1), Err(expected));
        // The failed attempt enqueued nothing and did not burn a sequence
        // number: a subsequent valid schedule still pops first among ties.
        assert!(wheel.is_empty());
        assert!(heap.is_empty());
        wheel.try_schedule_at(Time::from_nanos(200), 2).unwrap();
        wheel.schedule_at(Time::from_nanos(200), 3);
        let order: Vec<u32> = std::iter::from_fn(|| wheel.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![2, 3]);
        assert!(expected.to_string().contains("scheduling into the past"));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_nanos(10), 1);
        q.schedule_at(Time::from_nanos(20), 2);
        assert_eq!(q.pop_until(Time::from_nanos(15)).map(|e| e.event), Some(1));
        assert_eq!(q.pop_until(Time::from_nanos(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(Time::from_nanos(20)).map(|e| e.event), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_nanos(10), ());
        q.pop();
        q.schedule_at(Time::from_nanos(99), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), Time::from_nanos(10));
    }

    /// Events beyond the wheel horizon live in the overflow level and still
    /// pop in order, including mixes of near and far timestamps.
    #[test]
    fn overflow_level_preserves_order() {
        let mut q = EventQueue::new();
        let far = 200_000_000_000; // 200 s, past the ~68.7 s wheel span
        q.schedule_at(Time::from_nanos(far), "far");
        q.schedule_at(Time::from_nanos(10), "near");
        q.schedule_at(Time::from_nanos(far + 1), "far+1");
        q.schedule_at(Time::from_nanos(far), "far-tie");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["near", "far", "far-tie", "far+1"]);
        assert_eq!(q.now(), Time::from_nanos(far + 1));
    }

    /// A jump past the whole wheel horizon re-keys pending wheel entries
    /// into overflow without losing or reordering them.
    #[test]
    fn horizon_jump_rekeys_wheel() {
        let mut q = EventQueue::new();
        let far = 100_000_000_000u64;
        // One event soon, several clustered far out (they sit in the wheel
        // relative to cursor 0? no — far beyond the span, so overflow), and
        // one in between that lands in a high wheel level.
        q.schedule_at(Time::from_nanos(5), 0u64);
        q.schedule_at(Time::from_nanos(60_000_000_000), 1); // level 5
        q.schedule_at(Time::from_nanos(far), 2);
        q.schedule_at(Time::from_nanos(far + 70_000_000_000), 3);
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.at.as_nanos(), e.event));
        }
        assert_eq!(
            got,
            vec![
                (5, 0),
                (60_000_000_000, 1),
                (far, 2),
                (far + 70_000_000_000, 3)
            ]
        );
    }

    /// A mid-stream clone is indistinguishable from the original: same
    /// clock, same pending events, and — because the sequence counter is
    /// cloned too — same FIFO tie order even against events scheduled
    /// *after* the clone.
    #[test]
    fn clone_preserves_pop_order_and_ties() {
        let mut q = EventQueue::new();
        for i in 0..20 {
            q.schedule_at(Time::from_nanos(100 + (i % 3)), i);
        }
        for _ in 0..7 {
            q.pop();
        }
        let mut clone = q.clone();
        assert_eq!(clone.now(), q.now());
        assert_eq!(clone.len(), q.len());
        // Both sides schedule the same tie-heavy tail.
        for i in 100..105 {
            q.schedule_at(Time::from_nanos(102), i);
            clone.schedule_at(Time::from_nanos(102), i);
        }
        loop {
            let a = q.pop();
            let b = clone.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Interleaved schedules at the current instant (from an event handler)
    /// pop after the rest of the current group, preserving FIFO.
    #[test]
    fn same_instant_schedule_during_drain() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(40);
        q.schedule_at(t, 0);
        q.schedule_at(t, 1);
        assert_eq!(q.pop().map(|e| e.event), Some(0));
        // Handler schedules two more for the same instant mid-group.
        q.schedule_at(t, 2);
        q.schedule_at(t, 3);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(rest, vec![1, 2, 3]);
        assert_eq!(q.now(), t);
    }

    // Drive the wheel and the reference heap with an identical interleaving
    // of schedules and pops; every observable (pop order, timestamps,
    // clock, peek, length) must match exactly — including same-instant
    // FIFO ties, which the generator makes likely by quantizing delays.
    proptest! {
        #[test]
        fn wheel_matches_reference_on_arbitrary_interleavings(
            ops in proptest::collection::vec((0u64..100, 0u64..50), 1..400),
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = reference::EventQueue::new();
            let mut payload = 0u64;
            for &(kind, delay) in &ops {
                if kind < 70 {
                    // Quantized delays force plenty of exact ties; the
                    // occasional huge delay exercises the overflow level.
                    let ns = match kind % 7 {
                        0 => 0,
                        1..=4 => delay * 64,
                        5 => delay * 4096,
                        _ => 70_000_000_000 + delay,
                    };
                    let at = Time::from_nanos(wheel.now().as_nanos() + ns);
                    wheel.schedule_at(at, payload);
                    heap.schedule_at(at, payload);
                    payload += 1;
                } else {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(wheel.now(), heap.now());
                }
                prop_assert_eq!(wheel.len(), heap.len());
            }
            // Drain both completely; order must stay identical.
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }

        #[test]
        fn never_pops_out_of_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule_at(Time::from_nanos(t), t);
            }
            let mut last = 0;
            while let Some(e) = q.pop() {
                prop_assert!(e.at.as_nanos() >= last);
                prop_assert_eq!(e.at.as_nanos(), e.event);
                last = e.at.as_nanos();
            }
        }

        #[test]
        fn stable_among_equal_times(n in 1usize..100) {
            let mut q = EventQueue::new();
            // Interleave two timestamps; within each, order must be FIFO.
            for i in 0..n {
                q.schedule_at(Time::from_nanos((i % 2) as u64), i);
            }
            let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            let evens: Vec<usize> = popped.iter().copied().filter(|i| i % 2 == 0).collect();
            let odds: Vec<usize> = popped.iter().copied().filter(|i| i % 2 == 1).collect();
            prop_assert!(evens.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(odds.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
