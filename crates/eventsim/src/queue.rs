//! Time-ordered event queue with deterministic tie-breaking.

use simtime::{Dur, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event popped from an [`EventQueue`]: when it fires and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub at: Time,
    /// The caller-defined payload.
    pub event: E,
}

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

// Order for a *max*-heap: we invert so the earliest time pops first, and
// among equal times the lowest sequence number (scheduled first) pops first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A priority queue of future events, keyed by simulation time.
///
/// Two guarantees make simulations reproducible:
///
/// 1. events pop in non-decreasing time order;
/// 2. events scheduled for the *same* instant pop in the order they were
///    scheduled (FIFO tie-break), independent of payload type or heap
///    internals.
///
/// The queue also tracks the current simulation clock: [`EventQueue::now`]
/// advances to each popped event's timestamp, and scheduling in the past
/// panics (an event sourced from stale state is a logic bug, not a
/// recoverable condition).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Time,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            next_seq: 0,
        }
    }

    /// The current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "EventQueue: scheduling into the past ({at:?} < now {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: Dur, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "heap returned an out-of-order event");
        self.now = entry.at;
        Some(ScheduledEvent {
            at: entry.at,
            event: entry.event,
        })
    }

    /// Pops the next event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: Time) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Drops all pending events, keeping the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_nanos(30), "c");
        q.schedule_at(Time::from_nanos(10), "a");
        q.schedule_at(Time::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(Dur::from_micros(125), ());
        assert_eq!(q.now(), Time::ZERO);
        let e = q.pop().unwrap();
        assert_eq!(e.at, Time::from_nanos(125_000));
        assert_eq!(q.now(), e.at);
        // schedule_in is now relative to the advanced clock.
        q.schedule_in(Dur::from_micros(125), ());
        assert_eq!(q.peek_time(), Some(Time::from_nanos(250_000)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_nanos(100), ());
        q.pop();
        q.schedule_at(Time::from_nanos(50), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_nanos(10), 1);
        q.schedule_at(Time::from_nanos(20), 2);
        assert_eq!(q.pop_until(Time::from_nanos(15)).map(|e| e.event), Some(1));
        assert_eq!(q.pop_until(Time::from_nanos(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(Time::from_nanos(20)).map(|e| e.event), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_nanos(10), ());
        q.pop();
        q.schedule_at(Time::from_nanos(99), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), Time::from_nanos(10));
    }

    proptest! {
        #[test]
        fn never_pops_out_of_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule_at(Time::from_nanos(t), t);
            }
            let mut last = 0;
            while let Some(e) = q.pop() {
                prop_assert!(e.at.as_nanos() >= last);
                prop_assert_eq!(e.at.as_nanos(), e.event);
                last = e.at.as_nanos();
            }
        }

        #[test]
        fn stable_among_equal_times(n in 1usize..100) {
            let mut q = EventQueue::new();
            // Interleave two timestamps; within each, order must be FIFO.
            for i in 0..n {
                q.schedule_at(Time::from_nanos((i % 2) as u64), i);
            }
            let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            let evens: Vec<usize> = popped.iter().copied().filter(|i| i % 2 == 0).collect();
            let odds: Vec<usize> = popped.iter().copied().filter(|i| i % 2 == 1).collect();
            prop_assert!(evens.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(odds.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
