//! Seeded, portable pseudo-random number generation.
//!
//! xoshiro256++ seeded through SplitMix64, following Blackman & Vigna's
//! reference construction. We implement it directly (≈40 lines) rather than
//! pulling a crate so that simulation reproducibility depends only on this
//! workspace: the bit stream for a given seed is frozen by the tests below.

/// A deterministic xoshiro256++ generator.
///
/// Cloning an `Rng` forks the stream: both copies produce the same future
/// values. Use [`Rng::split`] to derive an independent stream (e.g. one per
/// flow) from a parent seed.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
const fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// A generator seeded from a single 64-bit value.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent generator from this one, keyed by `stream`.
    ///
    /// Two splits with different `stream` values (or successive splits)
    /// produce statistically independent sequences; the parent advances by
    /// one draw per call.
    pub fn split(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)` via Lemire's multiply-shift (slightly
    /// biased for astronomically large `n`, which is irrelevant here).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below: empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range: lo {lo} >= hi {hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniform float in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Freezes the bit stream: if this test ever fails, reproducibility of
    /// every experiment in the workspace has silently changed.
    #[test]
    fn stream_is_frozen() {
        let mut rng = Rng::new(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = Rng::new(42);
        let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again, "same seed must give same stream");
        let mut other = Rng::new(43);
        assert_ne!(first[0], other.next_u64(), "different seeds must differ");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
            let x = rng.range(10, 20);
            assert!((10..20).contains(&x));
        }
        // Each value in a small range appears (coverage).
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = Rng::new(9);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(11);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something (overwhelmingly likely).
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::new(5);
        let mut a = parent.split(0);
        let mut b = parent.split(1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // Splitting with the same stream id from the same parent state
        // reproduces the child.
        let mut parent2 = Rng::new(5);
        let mut a2 = parent2.split(0);
        let xs2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(xs, xs2);
    }
}
