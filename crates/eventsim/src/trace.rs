//! Time-series traces and empirical CDFs for experiment output.
//!
//! The paper's evaluation artifacts are (a) link-utilization time series
//! (Fig. 1b/1c, Fig. 2) and (b) CDFs of training iteration times (Fig. 1d).
//! [`TimeSeries`] and [`Cdf`] are the in-memory forms both are produced in.

use simtime::{Dur, Time};

/// A piecewise-constant (step-function) time series.
///
/// A sample `(t, v)` means "the value is `v` from `t` until the next
/// sample". This matches how a rate-based simulator naturally emits data:
/// a flow's rate changes at discrete instants and holds between them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<(Time, f64)>,
}

impl TimeSeries {
    /// An empty trace.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Appends a sample. Out-of-order samples panic; a sample at the same
    /// timestamp as the last one overwrites it (the final value at an
    /// instant wins, matching event-queue semantics).
    pub fn push(&mut self, t: Time, v: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.samples.last_mut() {
            assert!(t >= last_t, "TimeSeries: out-of-order sample at {t:?}");
            if t == last_t {
                *last_v = v;
                return;
            }
        }
        self.samples.push((t, v));
    }

    /// Appends a sample only if the value differs from the current last
    /// value (run-length compression for long steady states).
    pub fn push_compressed(&mut self, t: Time, v: f64) {
        if self.samples.last().map(|&(_, lv)| lv) == Some(v) {
            return;
        }
        self.push(t, v);
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// The value at instant `t` (the last sample at or before `t`), or
    /// `None` if `t` precedes the first sample.
    pub fn value_at(&self, t: Time) -> Option<f64> {
        match self.samples.binary_search_by(|&(st, _)| st.cmp(&t)) {
            Ok(i) => Some(self.samples[i].1),
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].1),
        }
    }

    /// The integral `∫ v dt` over `[from, to)`, treating the series as a
    /// step function and the value before the first sample as 0.
    pub fn integrate(&self, from: Time, to: Time) -> f64 {
        if to <= from || self.samples.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, &(t, v)) in self.samples.iter().enumerate() {
            let seg_start = t.max(from);
            let seg_end = self
                .samples
                .get(i + 1)
                .map(|&(nt, _)| nt)
                .unwrap_or(Time::MAX)
                .min(to);
            if seg_end > seg_start {
                acc += v * (seg_end - seg_start).as_secs_f64();
            }
            if t >= to {
                break;
            }
        }
        acc
    }

    /// The time-weighted mean over `[from, to)`.
    pub fn mean(&self, from: Time, to: Time) -> f64 {
        let span = (to.saturating_since(from)).as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.integrate(from, to) / span
    }

    /// Resamples onto a regular grid of period `dt` over `[from, to)`,
    /// yielding the step-function value at each grid point (0 before the
    /// first sample). Useful for plotting and for comparing traces.
    pub fn resample(&self, from: Time, to: Time, dt: Dur) -> Vec<f64> {
        assert!(!dt.is_zero(), "TimeSeries::resample: zero step");
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            out.push(self.value_at(t).unwrap_or(0.0));
            t += dt;
        }
        out
    }

    /// The maximum sampled value, or `None` if empty.
    pub fn max_value(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// The timestamp of the last sample, or `None` if empty.
    pub fn last_time(&self) -> Option<Time> {
        self.samples.last().map(|&(t, _)| t)
    }
}

/// An empirical cumulative distribution over duration samples.
///
/// Built from iteration-time measurements; answers the Fig. 1d questions:
/// median, arbitrary percentiles, and full curve export.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<Dur>,
}

impl Cdf {
    /// Builds a CDF from unordered samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty — an empty distribution has no
    /// percentiles, and every experiment produces at least one iteration.
    pub fn from_samples(mut samples: Vec<Dur>) -> Cdf {
        assert!(!samples.is_empty(), "Cdf: no samples");
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the CDF holds no samples (unreachable via constructor).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Dur {
        assert!((0.0..=100.0).contains(&p), "Cdf::percentile: p={p}");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = (p / 100.0 * (self.sorted.len() - 1) as f64).round() as usize;
        self.sorted[rank]
    }

    /// The median (50th percentile).
    pub fn median(&self) -> Dur {
        self.percentile(50.0)
    }

    /// The arithmetic mean.
    pub fn mean(&self) -> Dur {
        let total: u128 = self.sorted.iter().map(|d| d.as_nanos() as u128).sum();
        Dur::from_nanos((total / self.sorted.len() as u128) as u64)
    }

    /// The minimum sample.
    pub fn min(&self) -> Dur {
        self.sorted[0]
    }

    /// The maximum sample.
    pub fn max(&self) -> Dur {
        *self.sorted.last().unwrap()
    }

    /// The fraction of samples ≤ `d`, in `[0, 1]`.
    pub fn fraction_below(&self, d: Dur) -> f64 {
        let idx = self.sorted.partition_point(|&x| x <= d);
        idx as f64 / self.sorted.len() as f64
    }

    /// Exports `(value, cumulative_fraction)` points for plotting.
    pub fn curve(&self) -> Vec<(Dur, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> Time {
        Time::ZERO + Dur::from_millis(v)
    }

    #[test]
    fn value_at_step_semantics() {
        let mut ts = TimeSeries::new();
        ts.push(ms(10), 1.0);
        ts.push(ms(20), 2.0);
        assert_eq!(ts.value_at(ms(5)), None);
        assert_eq!(ts.value_at(ms(10)), Some(1.0));
        assert_eq!(ts.value_at(ms(15)), Some(1.0));
        assert_eq!(ts.value_at(ms(20)), Some(2.0));
        assert_eq!(ts.value_at(ms(99)), Some(2.0));
    }

    #[test]
    fn same_timestamp_overwrites() {
        let mut ts = TimeSeries::new();
        ts.push(ms(10), 1.0);
        ts.push(ms(10), 3.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(ms(10)), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_panics() {
        let mut ts = TimeSeries::new();
        ts.push(ms(10), 1.0);
        ts.push(ms(5), 2.0);
    }

    #[test]
    fn push_compressed_skips_repeats() {
        let mut ts = TimeSeries::new();
        ts.push_compressed(ms(1), 5.0);
        ts.push_compressed(ms(2), 5.0);
        ts.push_compressed(ms(3), 6.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn integrate_step_function() {
        let mut ts = TimeSeries::new();
        ts.push(ms(0), 10.0); // 10 for [0, 100) ms
        ts.push(ms(100), 20.0); // 20 for [100, ...) ms
                                // ∫ over [0, 200 ms) = 10*0.1 + 20*0.1 = 3.0
        let integral = ts.integrate(ms(0), ms(200));
        assert!((integral - 3.0).abs() < 1e-12);
        // Partial window [50, 150) = 10*0.05 + 20*0.05 = 1.5
        let partial = ts.integrate(ms(50), ms(150));
        assert!((partial - 1.5).abs() < 1e-12);
        // Window before first sample integrates to zero contribution.
        let mut ts2 = TimeSeries::new();
        ts2.push(ms(100), 1.0);
        assert_eq!(ts2.integrate(ms(0), ms(100)), 0.0);
    }

    #[test]
    fn mean_is_time_weighted() {
        let mut ts = TimeSeries::new();
        ts.push(ms(0), 0.0);
        ts.push(ms(90), 10.0); // only the last 10% of [0,100) is at 10
        let m = ts.mean(ms(0), ms(100));
        assert!((m - 1.0).abs() < 1e-12, "mean {m}");
    }

    #[test]
    fn resample_grid() {
        let mut ts = TimeSeries::new();
        ts.push(ms(10), 1.0);
        ts.push(ms(30), 2.0);
        let grid = ts.resample(ms(0), ms(50), Dur::from_millis(10));
        assert_eq!(grid, vec![0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn cdf_percentiles() {
        let samples: Vec<Dur> = (1..=100).map(Dur::from_millis).collect();
        let cdf = Cdf::from_samples(samples);
        // Nearest-rank on 100 samples: index round(0.5 * 99) = 50 → value 51.
        assert_eq!(cdf.median(), Dur::from_millis(51));
        assert_eq!(cdf.percentile(0.0), Dur::from_millis(1));
        assert_eq!(cdf.percentile(100.0), Dur::from_millis(100));
        assert_eq!(cdf.percentile(99.0), Dur::from_millis(99));
        assert_eq!(cdf.min(), Dur::from_millis(1));
        assert_eq!(cdf.max(), Dur::from_millis(100));
        assert_eq!(cdf.mean(), Dur::from_micros(50_500));
    }

    #[test]
    fn cdf_fraction_below() {
        let cdf = Cdf::from_samples(vec![
            Dur::from_millis(10),
            Dur::from_millis(20),
            Dur::from_millis(30),
            Dur::from_millis(40),
        ]);
        assert_eq!(cdf.fraction_below(Dur::from_millis(5)), 0.0);
        assert_eq!(cdf.fraction_below(Dur::from_millis(20)), 0.5);
        assert_eq!(cdf.fraction_below(Dur::from_millis(100)), 1.0);
    }

    #[test]
    fn cdf_curve_monotone() {
        let cdf = Cdf::from_samples(vec![
            Dur::from_millis(3),
            Dur::from_millis(1),
            Dur::from_millis(2),
        ]);
        let curve = cdf.curve();
        assert_eq!(curve.len(), 3);
        assert!(curve
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    proptest! {
        #[test]
        fn integrate_additive(splits in 1u64..99, vals in proptest::collection::vec(0.0f64..100.0, 1..10)) {
            let mut ts = TimeSeries::new();
            for (i, &v) in vals.iter().enumerate() {
                ts.push(ms(i as u64 * 10), v);
            }
            let mid = ms(splits);
            let whole = ts.integrate(ms(0), ms(100));
            let parts = ts.integrate(ms(0), mid) + ts.integrate(mid, ms(100));
            prop_assert!((whole - parts).abs() < 1e-9);
        }

        #[test]
        fn percentiles_monotone(mut xs in proptest::collection::vec(1u64..100_000, 2..100)) {
            xs.sort_unstable();
            let cdf = Cdf::from_samples(xs.iter().map(|&x| Dur::from_nanos(x)).collect());
            let mut last = Dur::ZERO;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let v = cdf.percentile(p);
                prop_assert!(v >= last);
                last = v;
            }
        }
    }
}
