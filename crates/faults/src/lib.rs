//! Deterministic fault injection for the simulation stack.
//!
//! A [`ChaosConfig`] is a small, declarative description of *how much* of
//! each perturbation class to apply — phase jitter and stragglers in the
//! workload, capacity degradation and flaps on links, mid-run job churn,
//! and congestion-signal loss in DCQCN's control loop. [`ChaosConfig::compile`]
//! expands it, for a concrete cluster shape, into the exact per-job and
//! per-link fault primitives the engines consume
//! ([`workload::PhaseNoise`], [`topology::LinkSchedule`],
//! [`dcqcn::SignalLoss`], arrival delays and departure deadlines).
//!
//! Everything is keyed off one `seed`: each perturbation layer draws from
//! its own splitmix-derived PRNG stream, so enabling one layer never
//! shifts another layer's draws, and a compiled chaos plan is a pure
//! function of `(config, jobs, links, horizon)` — identical across
//! engines, runs, and `--jobs N` parallelism.
//!
//! [`ChaosConfig::none`] is the identity: it compiles to no noise, no
//! schedules, no churn, and no loss, and engines run bit-for-bit as if no
//! chaos plumbing existed.

use dcqcn::SignalLoss;
use eventsim::Rng;
use simtime::{Dur, Time};
use topology::LinkSchedule;
use workload::PhaseNoise;

/// Workload-layer perturbations: per-iteration phase jitter and
/// occasional stragglers, applied to every job (decorrelated per job and
/// per iteration by the keyed [`PhaseNoise`] draws).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseChaos {
    /// Uniform relative jitter on compute durations (0.1 = ±10 %).
    pub compute_jitter: f64,
    /// Uniform relative jitter on communication volume (0.1 = ±10 %).
    pub comm_jitter: f64,
    /// Per-iteration probability that a job straggles.
    pub straggler_prob: f64,
    /// Compute-time multiplier of a straggling iteration (≥ 1).
    pub straggler_factor: f64,
}

impl PhaseChaos {
    fn is_none(&self) -> bool {
        self.compute_jitter <= 0.0 && self.comm_jitter <= 0.0 && self.straggler_prob <= 0.0
    }
}

/// Link-layer perturbations: sustained degradation windows ("an optic
/// running hot") and up/down flap trains ("a port bouncing").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkChaos {
    /// Probability a given link receives one degradation window.
    pub degrade_prob: f64,
    /// Capacity multiplier inside a degradation window.
    pub degrade_factor: f64,
    /// Probability a given link (not already degraded) receives a flap
    /// train.
    pub flap_prob: f64,
    /// Down-windows per flap train.
    pub flap_count: u32,
}

impl LinkChaos {
    fn is_none(&self) -> bool {
        self.degrade_prob <= 0.0 && self.flap_prob <= 0.0
    }
}

/// Cluster churn: jobs arriving late and departing mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChurnChaos {
    /// Probability a job's start is delayed (a "late arrival").
    pub arrival_prob: f64,
    /// Maximum arrival delay, as a fraction of the horizon.
    pub max_arrival_frac: f64,
    /// Probability a job departs mid-run.
    pub departure_prob: f64,
}

impl ChurnChaos {
    fn is_none(&self) -> bool {
        self.arrival_prob <= 0.0 && self.departure_prob <= 0.0
    }
}

/// Congestion-signal loss (see [`dcqcn::SignalLoss`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SignalChaos {
    /// Probability an ECN mark is stripped before the NP sees it.
    pub mark_loss: f64,
    /// Probability a CNP is dropped before the RP reacts.
    pub cnp_loss: f64,
}

impl SignalChaos {
    fn is_none(&self) -> bool {
        self.mark_loss <= 0.0 && self.cnp_loss <= 0.0
    }
}

/// The top-level chaos description: one seed plus per-layer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosConfig {
    /// Master seed. Every layer derives an independent stream from it.
    pub seed: u64,
    /// Workload perturbations.
    pub phase: PhaseChaos,
    /// Link perturbations.
    pub links: LinkChaos,
    /// Job churn.
    pub churn: ChurnChaos,
    /// DCQCN signal loss.
    pub signal: SignalChaos,
}

/// Layer tags folded into the master seed so streams never collide.
const STREAM_PHASE: u64 = 0x9E37_79B9_7F4A_7C15;
const STREAM_LINKS: u64 = 0xBF58_476D_1CE4_E5B9;
const STREAM_CHURN: u64 = 0x94D0_49BB_1331_11EB;
const STREAM_SIGNAL: u64 = 0xD6E8_FEB8_6659_FD93;

fn stream_seed(seed: u64, tag: u64) -> u64 {
    // One splitmix64 round over the tagged seed: cheap, and enough to
    // decorrelate the per-layer xoshiro states.
    let mut z = seed ^ tag;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The expansion of a [`ChaosConfig`] for one concrete run: per-job and
/// per-link primitives, ready to hand to any engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledChaos {
    /// Per-job phase noise (`None` per job when the phase layer is off).
    pub noise: Vec<Option<PhaseNoise>>,
    /// Per-job extra start delay (late arrivals; `Dur::ZERO` = on time).
    pub arrivals: Vec<Dur>,
    /// Per-job departure deadline.
    pub departures: Vec<Option<Time>>,
    /// Per-link capacity schedules (identity when the link is untouched).
    /// Empty when the link layer is off.
    pub link_schedules: Vec<LinkSchedule>,
    /// Signal-loss config for DCQCN engines (`None` when off).
    pub signal_loss: Option<SignalLoss>,
}

impl CompiledChaos {
    /// `true` when nothing at all is perturbed.
    pub fn is_none(&self) -> bool {
        self.noise.iter().all(Option::is_none)
            && self.arrivals.iter().all(|d| d.is_zero())
            && self.departures.iter().all(Option::is_none)
            && self.link_schedules.is_empty()
            && self.signal_loss.is_none()
    }
}

impl ChaosConfig {
    /// The identity configuration: compiles to no perturbation anywhere.
    pub fn none() -> ChaosConfig {
        ChaosConfig::default()
    }

    /// `true` if every layer is off (the seed is irrelevant then).
    pub fn is_none(&self) -> bool {
        self.phase.is_none()
            && self.links.is_none()
            && self.churn.is_none()
            && self.signal.is_none()
    }

    /// A named builtin profile, or `None` for an unknown name.
    ///
    /// * `"none"` — the identity config.
    /// * `"stragglers"` — ±10 % phase jitter plus 3 % / 4× stragglers.
    /// * `"links"` — 35 % of links get a 4× degradation window, 15 % a
    ///   two-flap outage train.
    /// * `"signal"` — 5 % ECN-mark and CNP loss in DCQCN's control loop.
    /// * `"mixed"` — mild versions of every layer at once.
    pub fn profile(name: &str) -> Option<ChaosConfig> {
        match name {
            "none" => Some(ChaosConfig::none()),
            "signal" => Some(ChaosConfig {
                seed: 0,
                signal: SignalChaos {
                    mark_loss: 0.05,
                    cnp_loss: 0.05,
                },
                ..ChaosConfig::none()
            }),
            "stragglers" => Some(ChaosConfig {
                seed: 0,
                phase: PhaseChaos {
                    compute_jitter: 0.10,
                    comm_jitter: 0.10,
                    straggler_prob: 0.03,
                    straggler_factor: 4.0,
                },
                ..ChaosConfig::none()
            }),
            "links" => Some(ChaosConfig {
                seed: 0,
                links: LinkChaos {
                    degrade_prob: 0.35,
                    degrade_factor: 0.25,
                    flap_prob: 0.15,
                    flap_count: 2,
                },
                ..ChaosConfig::none()
            }),
            "mixed" => Some(ChaosConfig {
                seed: 0,
                phase: PhaseChaos {
                    compute_jitter: 0.05,
                    comm_jitter: 0.05,
                    straggler_prob: 0.01,
                    straggler_factor: 2.5,
                },
                links: LinkChaos {
                    degrade_prob: 0.2,
                    degrade_factor: 0.4,
                    flap_prob: 0.0,
                    flap_count: 0,
                },
                churn: ChurnChaos {
                    arrival_prob: 0.15,
                    max_arrival_frac: 0.2,
                    departure_prob: 0.1,
                },
                signal: SignalChaos {
                    mark_loss: 0.02,
                    cnp_loss: 0.02,
                },
            }),
            _ => None,
        }
    }

    /// Expands the config for a run of `jobs` jobs over `links` links,
    /// lasting roughly `horizon` of simulated time. Pure: the same inputs
    /// always produce the same plan.
    ///
    /// # Panics
    /// Panics if `horizon` is zero while a horizon-relative layer (links
    /// or churn) is enabled.
    pub fn compile(&self, jobs: usize, links: usize, horizon: Dur) -> CompiledChaos {
        assert!(
            !horizon.is_zero() || (self.links.is_none() && self.churn.is_none()),
            "ChaosConfig::compile: zero horizon with time-relative layers on"
        );
        let noise = if self.phase.is_none() {
            vec![None; jobs]
        } else {
            (0..jobs)
                .map(|j| {
                    Some(PhaseNoise {
                        seed: stream_seed(self.seed, STREAM_PHASE),
                        job: j as u32,
                        compute_jitter: self.phase.compute_jitter,
                        comm_jitter: self.phase.comm_jitter,
                        straggler_prob: self.phase.straggler_prob,
                        straggler_factor: self.phase.straggler_factor,
                    })
                })
                .collect()
        };

        let link_schedules = if self.links.is_none() {
            Vec::new()
        } else {
            let mut rng = Rng::new(stream_seed(self.seed, STREAM_LINKS));
            let h = horizon.as_secs_f64();
            (0..links)
                .map(|_| {
                    if self.links.degrade_prob > 0.0 && rng.bernoulli(self.links.degrade_prob) {
                        // One sustained degradation window somewhere in the
                        // first two-thirds of the run, 10–30 % of it long.
                        let start = rng.f64_range(0.1, 0.6) * h;
                        let len = rng.f64_range(0.1, 0.3) * h;
                        LinkSchedule::degraded(
                            Time::ZERO + Dur::from_secs_f64(start),
                            Time::ZERO + Dur::from_secs_f64(start + len),
                            self.links.degrade_factor,
                        )
                    } else if self.links.flap_prob > 0.0 && rng.bernoulli(self.links.flap_prob) {
                        // A train of short full outages (floored to the
                        // schedule's minimum residual capacity).
                        let mut t = rng.f64_range(0.15, 0.4) * h;
                        let mut changes = Vec::new();
                        for _ in 0..self.links.flap_count.max(1) {
                            let down = rng.f64_range(0.01, 0.04) * h;
                            changes.push((Time::ZERO + Dur::from_secs_f64(t), 0.0));
                            changes.push((Time::ZERO + Dur::from_secs_f64(t + down), 1.0));
                            t += down + rng.f64_range(0.05, 0.1) * h;
                        }
                        LinkSchedule::new(changes)
                    } else {
                        LinkSchedule::identity()
                    }
                })
                .collect()
        };

        let (arrivals, departures) = if self.churn.is_none() {
            (vec![Dur::ZERO; jobs], vec![None; jobs])
        } else {
            let mut rng = Rng::new(stream_seed(self.seed, STREAM_CHURN));
            let h = horizon.as_secs_f64();
            let mut arrivals = Vec::with_capacity(jobs);
            let mut departures = Vec::with_capacity(jobs);
            for _ in 0..jobs {
                let arrive = if self.churn.arrival_prob > 0.0
                    && rng.bernoulli(self.churn.arrival_prob)
                {
                    Dur::from_secs_f64(rng.f64() * self.churn.max_arrival_frac.clamp(0.0, 1.0) * h)
                } else {
                    Dur::ZERO
                };
                // A late arrival never also departs early: combined they
                // could leave a job with no useful lifetime at all.
                let depart = if arrive.is_zero()
                    && self.churn.departure_prob > 0.0
                    && rng.bernoulli(self.churn.departure_prob)
                {
                    Some(Time::ZERO + Dur::from_secs_f64(rng.f64_range(0.3, 0.8) * h))
                } else {
                    None
                };
                arrivals.push(arrive);
                departures.push(depart);
            }
            (arrivals, departures)
        };

        let signal_loss = if self.signal.is_none() {
            None
        } else {
            Some(
                SignalLoss {
                    mark_loss: self.signal.mark_loss,
                    cnp_loss: self.signal.cnp_loss,
                    seed: stream_seed(self.seed, STREAM_SIGNAL),
                }
                .clamped(),
            )
        };

        CompiledChaos {
            noise,
            arrivals,
            departures,
            link_schedules,
            signal_loss,
        }
    }
}

mod toml;
pub use toml::from_toml_str;

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> Dur {
        Dur::from_secs(2)
    }

    #[test]
    fn none_compiles_to_identity() {
        let c = ChaosConfig::none();
        assert!(c.is_none());
        let plan = c.compile(4, 6, horizon());
        assert!(plan.is_none());
        assert_eq!(plan.noise, vec![None; 4]);
        assert_eq!(plan.arrivals, vec![Dur::ZERO; 4]);
        assert!(plan.link_schedules.is_empty());
        assert!(plan.signal_loss.is_none());
    }

    #[test]
    fn compile_is_pure() {
        let c = ChaosConfig {
            seed: 42,
            ..ChaosConfig::profile("mixed").unwrap()
        };
        let a = c.compile(8, 10, horizon());
        let b = c.compile(8, 10, horizon());
        assert_eq!(a, b, "same inputs must compile identically");
    }

    #[test]
    fn seeds_decorrelate_layers() {
        let c = ChaosConfig {
            seed: 7,
            ..ChaosConfig::profile("mixed").unwrap()
        };
        // Turning the link layer off must not change the churn draws.
        let with_links = c.compile(16, 4, horizon());
        let mut no_links = c;
        no_links.links = LinkChaos::default();
        let without = no_links.compile(16, 4, horizon());
        assert_eq!(with_links.arrivals, without.arrivals);
        assert_eq!(with_links.departures, without.departures);
    }

    #[test]
    fn different_seeds_differ() {
        let base = ChaosConfig::profile("links").unwrap();
        let a = ChaosConfig { seed: 1, ..base }.compile(2, 32, horizon());
        let b = ChaosConfig { seed: 2, ..base }.compile(2, 32, horizon());
        assert_ne!(a.link_schedules, b.link_schedules);
    }

    #[test]
    fn straggler_profile_touches_every_job() {
        let c = ChaosConfig {
            seed: 3,
            ..ChaosConfig::profile("stragglers").unwrap()
        };
        let plan = c.compile(5, 1, horizon());
        assert!(plan.noise.iter().all(Option::is_some));
        for (j, n) in plan.noise.iter().enumerate() {
            assert_eq!(n.unwrap().job, j as u32);
        }
        assert!(plan.link_schedules.is_empty());
        assert!(plan.signal_loss.is_none());
    }

    #[test]
    fn flap_schedules_are_well_formed() {
        let c = ChaosConfig {
            seed: 11,
            links: LinkChaos {
                degrade_prob: 0.0,
                degrade_factor: 1.0,
                flap_prob: 1.0,
                flap_count: 3,
            },
            ..ChaosConfig::none()
        };
        let plan = c.compile(1, 8, horizon());
        for s in &plan.link_schedules {
            assert!(!s.is_identity());
            assert_eq!(s.changes().len(), 6, "3 flaps = 6 change points");
            assert_eq!(s.min_multiplier(), LinkSchedule::MIN_MULTIPLIER);
        }
    }

    #[test]
    fn profiles_resolve() {
        for name in ["none", "stragglers", "links", "signal", "mixed"] {
            assert!(ChaosConfig::profile(name).is_some(), "missing {name}");
        }
        assert!(ChaosConfig::profile("bogus").is_none());
    }
}
