//! A minimal hand-rolled parser for chaos-config TOML files.
//!
//! The build environment carries no TOML crate, and a chaos file only
//! needs flat `key = number` pairs under four known sections, so this
//! parses exactly that subset (plus `#` comments and blank lines) and
//! rejects anything else with a line-numbered error.
//!
//! ```toml
//! seed = 42
//!
//! [phase]
//! compute_jitter = 0.1
//! comm_jitter = 0.1
//! straggler_prob = 0.03
//! straggler_factor = 4.0
//!
//! [links]
//! degrade_prob = 0.35
//! degrade_factor = 0.25
//! flap_prob = 0.15
//! flap_count = 2
//!
//! [churn]
//! arrival_prob = 0.15
//! max_arrival_frac = 0.2
//! departure_prob = 0.1
//!
//! [signal]
//! mark_loss = 0.02
//! cnp_loss = 0.02
//! ```

use crate::ChaosConfig;

/// Parses a chaos config from TOML text.
///
/// Unknown sections or keys are errors (they are always typos), as are
/// non-numeric values.
pub fn from_toml_str(text: &str) -> Result<ChaosConfig, String> {
    let mut cfg = ChaosConfig::none();
    let mut section = String::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: `{raw}`", ln + 1);
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated section header"))?
                .trim();
            match name {
                "phase" | "links" | "churn" | "signal" => section = name.to_string(),
                _ => return Err(err("unknown section")),
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`"))?;
        let key = key.trim();
        let value = value.trim();
        let num: f64 = value.parse().map_err(|_| err("expected a numeric value"))?;
        match (section.as_str(), key) {
            ("", "seed") => {
                if num < 0.0 || num.fract() != 0.0 {
                    return Err(err("seed must be a non-negative integer"));
                }
                cfg.seed = num as u64;
            }
            ("phase", "compute_jitter") => cfg.phase.compute_jitter = num,
            ("phase", "comm_jitter") => cfg.phase.comm_jitter = num,
            ("phase", "straggler_prob") => cfg.phase.straggler_prob = num,
            ("phase", "straggler_factor") => cfg.phase.straggler_factor = num,
            ("links", "degrade_prob") => cfg.links.degrade_prob = num,
            ("links", "degrade_factor") => cfg.links.degrade_factor = num,
            ("links", "flap_prob") => cfg.links.flap_prob = num,
            ("links", "flap_count") => {
                if num < 0.0 || num.fract() != 0.0 {
                    return Err(err("flap_count must be a non-negative integer"));
                }
                cfg.links.flap_count = num as u32;
            }
            ("churn", "arrival_prob") => cfg.churn.arrival_prob = num,
            ("churn", "max_arrival_frac") => cfg.churn.max_arrival_frac = num,
            ("churn", "departure_prob") => cfg.churn.departure_prob = num,
            ("signal", "mark_loss") => cfg.signal.mark_loss = num,
            ("signal", "cnp_loss") => cfg.signal.cnp_loss = num,
            _ => return Err(err("unknown key")),
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkChaos, PhaseChaos};

    #[test]
    fn parses_full_file() {
        let text = "\
# chaos profile
seed = 42

[phase]
compute_jitter = 0.1   # ±10%
straggler_prob = 0.03
straggler_factor = 4.0

[links]
degrade_prob = 0.35
degrade_factor = 0.25

[signal]
mark_loss = 0.02
";
        let cfg = from_toml_str(text).unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(
            cfg.phase,
            PhaseChaos {
                compute_jitter: 0.1,
                comm_jitter: 0.0,
                straggler_prob: 0.03,
                straggler_factor: 4.0,
            }
        );
        assert_eq!(
            cfg.links,
            LinkChaos {
                degrade_prob: 0.35,
                degrade_factor: 0.25,
                flap_prob: 0.0,
                flap_count: 0,
            }
        );
        assert_eq!(cfg.signal.mark_loss, 0.02);
        assert_eq!(cfg.signal.cnp_loss, 0.0);
        assert!(cfg.churn.is_none());
    }

    #[test]
    fn empty_text_is_identity() {
        let cfg = from_toml_str("").unwrap();
        assert!(cfg.is_none());
    }

    #[test]
    fn rejects_unknown_key_and_section() {
        assert!(from_toml_str("[phase]\nbogus = 1\n").is_err());
        assert!(from_toml_str("[warp]\n").is_err());
        assert!(from_toml_str("seed = -3\n").is_err());
        assert!(from_toml_str("just words\n").is_err());
    }
}
