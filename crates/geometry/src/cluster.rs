//! Cluster-level compatibility (§5 of the paper).
//!
//! In a real cluster a job's flows traverse several links and meet
//! *different* competitors on each. Because all of a job's workers move in
//! lockstep, the job gets **one** rotation that must simultaneously
//! de-overlap its communication phase on *every* link it shares. Following
//! §5, the unified circle's perimeter becomes the LCM of the iteration
//! times of every job that shares at least one link, and the constraint
//! "≤ 1 job communicating per sector" is enforced **per link**.
//!
//! # GPU multi-tenancy
//!
//! §5 notes that "capturing GPU multi-tenancy is possible by adding more
//! constraints in our optimization formulation, but we omit the details
//! for brevity". This module implements those constraints: a shared
//! resource can be a [`ResourceKind::Network`] link (jobs must not
//! *communicate* simultaneously — the paper's constraint) or a
//! [`ResourceKind::Compute`] device (jobs time-sharing a GPU must not
//! *compute* simultaneously). Compute occupancy is the complement of the
//! communication profile (see [`Profile::complement`]); one rotation per
//! job must satisfy every resource of both kinds at once.

use crate::solver::{SolverConfig, Verdict};
use crate::unified::GeometryError;
use crate::{Profile, SectorMask, UnifiedCircle};
use eventsim::Rng;
use simtime::Dur;

/// What kind of shared resource a constraint applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// A network link: at most one job *communicating* per sector.
    Network,
    /// A time-shared accelerator: at most one job *computing* per sector.
    Compute,
}

/// A multi-resource compatibility problem: jobs and, per shared resource,
/// which jobs use it.
#[derive(Debug, Clone)]
pub struct ClusterInstance {
    profiles: Vec<Profile>,
    resources: Vec<(ResourceKind, Vec<usize>)>,
    /// Explicit compute (GPU-busy) profiles; `None` defaults to the
    /// communication profile's complement — exact for the paper's strict
    /// two-phase jobs, which have no idle time.
    compute_profiles: Vec<Option<Profile>>,
}

impl ClusterInstance {
    /// Builds an instance where every resource is a network link (the
    /// paper's base formulation).
    ///
    /// # Panics
    /// Panics if a link references an unknown job index or lists the same
    /// job twice.
    pub fn new(profiles: Vec<Profile>, links: Vec<Vec<usize>>) -> ClusterInstance {
        let n = profiles.len();
        let mut inst = ClusterInstance {
            profiles,
            resources: Vec::new(),
            compute_profiles: vec![None; n],
        };
        for jobs in links {
            inst.push_resource(ResourceKind::Network, jobs);
        }
        inst
    }

    /// Adds a shared resource of the given kind.
    ///
    /// # Panics
    /// Panics on unknown or duplicate job indices, or if a job in a
    /// [`ResourceKind::Compute`] resource has no compute phase (a job that
    /// communicates its entire iteration cannot time-share a GPU).
    pub fn push_resource(&mut self, kind: ResourceKind, jobs: Vec<usize>) {
        let l = self.resources.len();
        let mut seen = vec![false; self.profiles.len()];
        for &j in &jobs {
            assert!(j < self.profiles.len(), "resource {l}: unknown job {j}");
            assert!(!seen[j], "resource {l}: duplicate job {j}");
            seen[j] = true;
            if kind == ResourceKind::Compute {
                assert!(
                    self.profiles[j].comm_fraction() < 1.0,
                    "resource {l}: job {j} has no compute phase to time-share"
                );
            }
        }
        self.resources.push((kind, jobs));
    }

    /// Overrides job `j`'s compute (GPU-busy) profile. Without an
    /// override, the complement of the communication profile is used —
    /// which over-approximates GPU occupancy for jobs with idle time in
    /// their iteration (and is exact for strict two-phase jobs).
    ///
    /// Note a consequence of the strict two-phase default: a pair sharing
    /// both a link *and* a GPU needs `comm_a + comm_b ≤ P` and
    /// `(P − comm_a) + (P − comm_b) ≤ P` simultaneously, i.e. exact
    /// complementarity — which conservative sector rounding always
    /// rejects. Real pipelined jobs have idle gaps; model them here.
    ///
    /// # Panics
    /// Panics on an unknown job or a period mismatch.
    pub fn set_compute_profile(&mut self, j: usize, compute: Profile) {
        assert!(j < self.profiles.len(), "unknown job {j}");
        assert_eq!(
            compute.period(),
            self.profiles[j].period(),
            "compute profile period must match the job's period"
        );
        self.compute_profiles[j] = Some(compute);
    }

    /// Convenience: network links followed by GPU-sharing groups.
    pub fn with_gpu_sharing(
        profiles: Vec<Profile>,
        links: Vec<Vec<usize>>,
        gpu_groups: Vec<Vec<usize>>,
    ) -> ClusterInstance {
        let mut inst = ClusterInstance::new(profiles, links);
        for g in gpu_groups {
            inst.push_resource(ResourceKind::Compute, g);
        }
        inst
    }

    /// The job profiles.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// All shared resources: `(kind, jobs)`.
    pub fn resources(&self) -> &[(ResourceKind, Vec<usize>)] {
        &self.resources
    }

    /// Job sets of the network links only (the paper's base constraint
    /// set) — what link-level reporting wants.
    pub fn links(&self) -> Vec<&Vec<usize>> {
        self.resources
            .iter()
            .filter(|(k, _)| *k == ResourceKind::Network)
            .map(|(_, jobs)| jobs)
            .collect()
    }

    /// Resources used by job `j`.
    fn resources_of(&self, j: usize) -> Vec<usize> {
        self.resources
            .iter()
            .enumerate()
            .filter(|(_, (_, jobs))| jobs.contains(&j))
            .map(|(l, _)| l)
            .collect()
    }
}

/// Per-job occupancy masks for both resource kinds, on one unified circle.
struct Occupancy {
    /// Communication masks (network constraints).
    comm: Vec<SectorMask>,
    /// Compute masks (GPU constraints); only built for jobs that appear in
    /// a compute resource, `None` elsewhere.
    compute: Vec<Option<SectorMask>>,
    sectors: usize,
}

impl Occupancy {
    fn build(
        inst: &ClusterInstance,
        uc: &UnifiedCircle,
        cfg: &SolverConfig,
    ) -> Result<Occupancy, GeometryError> {
        let k = inst.profiles().len();
        let needs_compute: Vec<bool> = (0..k)
            .map(|j| {
                inst.resources()
                    .iter()
                    .any(|(kind, jobs)| *kind == ResourceKind::Compute && jobs.contains(&j))
            })
            .collect();
        let compute = if needs_compute.iter().any(|&b| b) {
            // A second unified circle over the compute profiles (explicit
            // overrides, else complements); the periods are identical, so
            // the perimeter and sector grid align exactly with the
            // communication circle.
            let compute_profiles: Vec<Profile> = inst
                .profiles()
                .iter()
                .enumerate()
                .map(|(j, p)| {
                    inst.compute_profiles[j]
                        .clone()
                        .unwrap_or_else(|| p.complement())
                })
                .collect();
            let cc = UnifiedCircle::new(&compute_profiles, cfg.sectors)?;
            debug_assert_eq!(cc.perimeter(), uc.perimeter());
            (0..k)
                .map(|j| needs_compute[j].then(|| cc.mask(j).clone()))
                .collect()
        } else {
            vec![None; k]
        };
        Ok(Occupancy {
            comm: (0..k).map(|j| uc.mask(j).clone()).collect(),
            compute,
            sectors: uc.sectors(),
        })
    }

    fn mask(&self, kind: ResourceKind, j: usize) -> &SectorMask {
        match kind {
            ResourceKind::Network => &self.comm[j],
            ResourceKind::Compute => self.compute[j]
                .as_ref()
                .expect("compute mask requested for job outside any GPU group"),
        }
    }
}

/// Solves the cluster-level rotation problem: one rotation per job such
/// that every shared resource (network link or time-shared GPU) has at
/// most one active job per sector.
///
/// Jobs that share no resource with anyone always receive rotation zero.
pub fn solve_cluster(inst: &ClusterInstance, cfg: &SolverConfig) -> Result<Verdict, GeometryError> {
    let uc = UnifiedCircle::new(inst.profiles(), cfg.sectors)?;
    let k = uc.job_count();
    let s = uc.sectors();
    let occ = Occupancy::build(inst, &uc, cfg)?;

    // Per-resource quick necessary condition.
    for (kind, jobs) in inst.resources() {
        let busy: usize = jobs.iter().map(|&j| occ.mask(*kind, j).count()).sum();
        if busy > s {
            return Ok(Verdict::Incompatible {
                best_overlap_fraction: (busy - s) as f64 / s as f64,
            });
        }
    }

    // Constrained jobs, hardest first (most busy sectors × most resources).
    let mut order: Vec<usize> = (0..k)
        .filter(|&j| !inst.resources_of(j).is_empty())
        .collect();
    order.sort_by_key(|&j| {
        std::cmp::Reverse(occ.comm[j].count() * (1 + inst.resources_of(j).len()))
    });

    let mut rotations = vec![
        crate::solver::Rotation {
            sectors: 0,
            shift: Dur::ZERO,
            degrees: 0.0,
        };
        k
    ];
    if order.is_empty() {
        return Ok(Verdict::Compatible {
            rotations,
            slack_fraction: 1.0,
        });
    }

    let job_resources: Vec<Vec<usize>> = (0..k).map(|j| inst.resources_of(j)).collect();
    let kinds: Vec<ResourceKind> = inst.resources().iter().map(|(k, _)| *k).collect();
    let mut rng = Rng::new(cfg.seed ^ 0xC1u64);
    let budget_per_restart = (cfg.max_steps / cfg.restarts.max(1) as u64).max(1);
    let mut budget_was_hit = false;

    for restart in 0..cfg.restarts.max(1) {
        let mut acc: Vec<SectorMask> = (0..inst.resources().len())
            .map(|_| SectorMask::empty(s))
            .collect();
        let mut offsets = vec![0usize; order.len()];
        let mut steps = 0u64;
        let mut cands: Vec<Vec<usize>> = order
            .iter()
            .map(|&j| (0..uc.offset_cap(j)).collect::<Vec<_>>())
            .collect();
        if restart > 0 {
            for c in &mut cands {
                rng.shuffle(c);
            }
        }

        match rec(
            &occ,
            &kinds,
            &order,
            &job_resources,
            &cands,
            0,
            &mut acc,
            &mut offsets,
            &mut steps,
            budget_per_restart,
        ) {
            Outcome::Found => {
                for (pos, &j) in order.iter().enumerate() {
                    let o = offsets[pos];
                    rotations[j] = crate::solver::Rotation {
                        sectors: o,
                        shift: uc.shift_of(o),
                        degrees: uc.degrees_of(o),
                    };
                }
                // Slack: tightest resource's free fraction.
                let slack = inst
                    .resources()
                    .iter()
                    .map(|(kind, jobs)| {
                        let busy: usize = jobs.iter().map(|&j| occ.mask(*kind, j).count()).sum();
                        1.0 - busy as f64 / s as f64
                    })
                    .fold(1.0f64, f64::min);
                return Ok(Verdict::Compatible {
                    rotations,
                    slack_fraction: slack,
                });
            }
            Outcome::ExhaustedSpace => {
                return Ok(Verdict::Incompatible {
                    best_overlap_fraction: estimate_overlap(inst, &occ),
                });
            }
            Outcome::ExhaustedBudget => budget_was_hit = true,
        }
    }
    debug_assert!(budget_was_hit);
    Ok(Verdict::Inconclusive {
        best_overlap_fraction: estimate_overlap(inst, &occ),
    })
}

enum Outcome {
    Found,
    ExhaustedSpace,
    ExhaustedBudget,
}

#[allow(clippy::too_many_arguments)]
fn rec(
    occ: &Occupancy,
    kinds: &[ResourceKind],
    order: &[usize],
    job_resources: &[Vec<usize>],
    cands: &[Vec<usize>],
    depth: usize,
    acc: &mut [SectorMask],
    offsets: &mut [usize],
    steps: &mut u64,
    budget: u64,
) -> Outcome {
    if depth == order.len() {
        return Outcome::Found;
    }
    let j = order[depth];
    let mut budget_hit = false;
    'cand: for &o in &cands[depth] {
        *steps += 1;
        if *steps > budget {
            return Outcome::ExhaustedBudget;
        }
        // Rotated masks per kind, computed lazily (a job rarely needs
        // both).
        let mut rm_comm: Option<SectorMask> = None;
        let mut rm_compute: Option<SectorMask> = None;
        for &l in &job_resources[j] {
            let rm = match kinds[l] {
                ResourceKind::Network => rm_comm.get_or_insert_with(|| occ.comm[j].rotated(o)),
                ResourceKind::Compute => {
                    rm_compute.get_or_insert_with(|| occ.mask(ResourceKind::Compute, j).rotated(o))
                }
            };
            if rm.intersects(&acc[l]) {
                continue 'cand;
            }
        }
        for &l in &job_resources[j] {
            let rm = match kinds[l] {
                ResourceKind::Network => rm_comm.as_ref().unwrap(),
                ResourceKind::Compute => rm_compute.as_ref().unwrap(),
            };
            acc[l].or_assign(rm);
        }
        offsets[depth] = o;
        match rec(
            occ,
            kinds,
            order,
            job_resources,
            cands,
            depth + 1,
            acc,
            offsets,
            steps,
            budget,
        ) {
            Outcome::Found => return Outcome::Found,
            Outcome::ExhaustedBudget => budget_hit = true,
            Outcome::ExhaustedSpace => {}
        }
        for &l in &job_resources[j] {
            let rm = match kinds[l] {
                ResourceKind::Network => rm_comm.as_ref().unwrap(),
                ResourceKind::Compute => rm_compute.as_ref().unwrap(),
            };
            acc[l].and_not_assign(rm);
        }
        if budget_hit {
            return Outcome::ExhaustedBudget;
        }
    }
    Outcome::ExhaustedSpace
}

/// Over-subscription lower bound for reporting (worst resource).
fn estimate_overlap(inst: &ClusterInstance, occ: &Occupancy) -> f64 {
    let s = occ.sectors;
    inst.resources()
        .iter()
        .map(|(kind, jobs)| {
            let busy: usize = jobs.iter().map(|&j| occ.mask(*kind, j).count()).sum();
            busy.saturating_sub(s) as f64 / s as f64
        })
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverConfig;

    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    /// Job 1 competes with job 0 on link A and job 2 on link B: one
    /// rotation of job 1 must satisfy both.
    #[test]
    fn chain_of_three_jobs_two_links() {
        let p = |c, m| Profile::compute_then_comm(ms(c), ms(m));
        let inst = ClusterInstance::new(
            vec![p(70, 30), p(60, 40), p(70, 30)],
            vec![vec![0, 1], vec![1, 2]],
        );
        let v = solve_cluster(&inst, &cfg()).unwrap();
        assert!(v.is_compatible(), "{v:?}");
        let rots = v.rotations().unwrap();
        // Verify continuously on both links.
        let shifted: Vec<Profile> = inst
            .profiles()
            .iter()
            .zip(rots)
            .map(|(p, r)| p.rotated(r.shift))
            .collect();
        for t in 0..100 {
            let c: Vec<bool> = shifted.iter().map(|p| p.communicating_at(ms(t))).collect();
            assert!(!(c[0] && c[1]), "link A overlap at {t} ms");
            assert!(!(c[1] && c[2]), "link B overlap at {t} ms");
        }
    }

    /// Per-link infeasibility is caught.
    #[test]
    fn per_link_ok_globally_tight() {
        let p = |c, m| Profile::compute_then_comm(ms(c), ms(m));
        let inst = ClusterInstance::new(
            vec![p(50, 50), p(40, 60), p(50, 50)],
            vec![vec![0, 1], vec![1, 2]],
        );
        // Link A: 50 + 60 = 110% of the circle → infeasible already.
        let v = solve_cluster(&inst, &cfg()).unwrap();
        assert!(!v.is_compatible());
    }

    /// Unconstrained jobs are ignored and get rotation zero.
    #[test]
    fn lonely_jobs_trivially_compatible() {
        let p = Profile::compute_then_comm(ms(10), ms(90));
        let inst = ClusterInstance::new(vec![p.clone(), p], vec![]);
        let v = solve_cluster(&inst, &cfg()).unwrap();
        assert!(v.is_compatible());
        let rots = v.rotations().unwrap();
        assert!(rots.iter().all(|r| r.sectors == 0));
    }

    /// A job appearing on two links with different partners of different
    /// periods exercises the unified-circle tiling.
    #[test]
    fn mixed_periods_across_links() {
        let j0 = Profile::compute_then_comm(ms(32), ms(8)); // 40 ms period
        let j1 = Profile::compute_then_comm(ms(50), ms(10)); // 60 ms period
        let j2 = Profile::compute_then_comm(ms(90), ms(30)); // 120 ms period
        let inst = ClusterInstance::new(vec![j0, j1, j2], vec![vec![0, 1], vec![1, 2]]);
        let v = solve_cluster(&inst, &cfg()).unwrap();
        assert!(v.is_compatible(), "{v:?}");
    }

    #[test]
    #[should_panic(expected = "unknown job")]
    fn bad_link_rejected() {
        ClusterInstance::new(
            vec![Profile::compute_then_comm(ms(1), ms(1))],
            vec![vec![0, 5]],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate job")]
    fn duplicate_job_on_link_rejected() {
        ClusterInstance::new(
            vec![Profile::compute_then_comm(ms(1), ms(1))],
            vec![vec![0, 0]],
        );
    }

    // ---- GPU multi-tenancy (§5 extension) ----

    /// Two jobs with small compute phases can time-share a GPU: rotations
    /// must separate their COMPUTE arcs, even though their comm arcs are
    /// free to overlap (no shared link).
    #[test]
    fn gpu_sharing_separates_compute_phases() {
        // Compute 30 of 100 each: complementary placement exists.
        let a = Profile::compute_then_comm(ms(30), ms(70));
        let b = Profile::compute_then_comm(ms(30), ms(70));
        let inst =
            ClusterInstance::with_gpu_sharing(vec![a.clone(), b.clone()], vec![], vec![vec![0, 1]]);
        let v = solve_cluster(&inst, &cfg()).unwrap();
        assert!(v.is_compatible(), "{v:?}");
        let rots = v.rotations().unwrap();
        let ra = a.rotated(rots[0].shift);
        let rb = b.rotated(rots[1].shift);
        for t in 0..100 {
            let computing_a = !ra.communicating_at(ms(t));
            let computing_b = !rb.communicating_at(ms(t));
            assert!(
                !(computing_a && computing_b),
                "both computing at {t} ms on the shared GPU"
            );
        }
    }

    /// Compute phases too large to time-share → incompatible.
    #[test]
    fn gpu_oversubscription_incompatible() {
        let a = Profile::compute_then_comm(ms(60), ms(40));
        let b = Profile::compute_then_comm(ms(60), ms(40));
        let inst = ClusterInstance::with_gpu_sharing(vec![a, b], vec![], vec![vec![0, 1]]);
        let v = solve_cluster(&inst, &cfg()).unwrap();
        assert!(!v.is_compatible());
        assert!(v.overlap_fraction() > 0.0);
    }

    /// Strict two-phase jobs sharing both a link and a GPU need *exact*
    /// complementarity (comm fractions summing to exactly 1 from both
    /// sides) — conservative sector rounding rightly rejects it.
    #[test]
    fn strict_two_phase_jobs_cannot_share_link_and_gpu() {
        let a = Profile::compute_then_comm(ms(40), ms(30));
        let b = Profile::compute_then_comm(ms(40), ms(30));
        let inst =
            ClusterInstance::with_gpu_sharing(vec![a, b], vec![vec![0, 1]], vec![vec![0, 1]]);
        let v = solve_cluster(&inst, &cfg()).unwrap();
        assert!(!v.is_compatible(), "{v:?}");
    }

    /// The hard feasible case: jobs with idle time (explicit compute
    /// profiles) where one rotation must satisfy a network link AND a
    /// shared GPU simultaneously.
    #[test]
    fn combined_network_and_gpu_constraints() {
        // Period 100: GPU busy [0, 30), comm [40, 70), idle elsewhere.
        let comm = |start: u64| {
            Profile::new(
                ms(100),
                vec![crate::Arc {
                    start: ms(start),
                    end: ms(start + 30),
                }],
                1.0,
            )
        };
        let gpu = Profile::new(
            ms(100),
            vec![crate::Arc {
                start: ms(0),
                end: ms(30),
            }],
            1.0,
        );
        let a = comm(40);
        let b = comm(40);
        let mut inst = ClusterInstance::with_gpu_sharing(
            vec![a.clone(), b.clone()],
            vec![vec![0, 1]],
            vec![vec![0, 1]],
        );
        inst.set_compute_profile(0, gpu.clone());
        inst.set_compute_profile(1, gpu.clone());
        let v = solve_cluster(&inst, &cfg()).unwrap();
        assert!(v.is_compatible(), "{v:?}");
        let rots = v.rotations().unwrap();
        let (ra, rb) = (a.rotated(rots[0].shift), b.rotated(rots[1].shift));
        let (ga, gb) = (gpu.rotated(rots[0].shift), gpu.rotated(rots[1].shift));
        for t in 0..100 {
            assert!(
                !(ra.communicating_at(ms(t)) && rb.communicating_at(ms(t))),
                "link overlap at {t} ms"
            );
            assert!(
                !(ga.communicating_at(ms(t)) && gb.communicating_at(ms(t))),
                "GPU overlap at {t} ms"
            );
        }
    }

    #[test]
    #[should_panic(expected = "period must match")]
    fn compute_profile_period_mismatch_rejected() {
        let p = Profile::compute_then_comm(ms(50), ms(50));
        let mut inst = ClusterInstance::new(vec![p], vec![]);
        inst.set_compute_profile(0, Profile::compute_then_comm(ms(10), ms(10)));
    }

    /// The same pair WITHOUT the GPU constraint has more freedom — and
    /// with an impossible combined requirement, the GPU constraint flips
    /// the verdict.
    #[test]
    fn gpu_constraint_can_flip_verdict() {
        // comm 30 + 30 fits a 100 circle easily (network-only: compatible),
        // but compute 70 + 70 can never time-share one GPU.
        let a = Profile::compute_then_comm(ms(70), ms(30));
        let b = Profile::compute_then_comm(ms(70), ms(30));
        let net_only = ClusterInstance::new(vec![a.clone(), b.clone()], vec![vec![0, 1]]);
        assert!(solve_cluster(&net_only, &cfg()).unwrap().is_compatible());
        let with_gpu =
            ClusterInstance::with_gpu_sharing(vec![a, b], vec![vec![0, 1]], vec![vec![0, 1]]);
        assert!(!solve_cluster(&with_gpu, &cfg()).unwrap().is_compatible());
    }

    #[test]
    #[should_panic(expected = "no compute phase")]
    fn full_comm_job_cannot_share_gpu() {
        let all_comm = Profile::compute_then_comm(Dur::ZERO, ms(100));
        let other = Profile::compute_then_comm(ms(50), ms(50));
        ClusterInstance::with_gpu_sharing(vec![all_comm, other], vec![], vec![vec![0, 1]]);
    }

    #[test]
    fn resource_accessors() {
        let p = Profile::compute_then_comm(ms(50), ms(50));
        let inst = ClusterInstance::with_gpu_sharing(
            vec![p.clone(), p],
            vec![vec![0, 1]],
            vec![vec![0, 1]],
        );
        assert_eq!(inst.resources().len(), 2);
        assert_eq!(inst.links().len(), 1);
        assert_eq!(inst.resources()[0].0, ResourceKind::Network);
        assert_eq!(inst.resources()[1].0, ResourceKind::Compute);
    }
}
