//! The paper's geometric abstraction (§3) and compatibility solver.
//!
//! A DNN training job in a dedicated network has a strictly periodic on/off
//! network pattern. **Roll time around a circle** whose perimeter equals the
//! job's iteration time and the communication phases of *all* iterations
//! land on the same arc — a job is fully described by one circle with one
//! (or more) colored arcs ([`Profile`]).
//!
//! Jobs sharing a link are **compatible** if the circles can be *rotated* so
//! that no two colored arcs overlap: each job then claims the full link
//! bandwidth during its own arc and nobody slows anyone down. Rotating a
//! circle is exactly the "sliding" effect that unfair congestion control
//! produces in the wild (§2), and the rotation angle is exactly the
//! time-shift a flow scheduler would apply (§4.iii).
//!
//! Jobs with different iteration times are placed on a **unified circle**
//! whose perimeter is the least common multiple of the iteration times; a
//! job with iteration time `P` appears `LCM/P` times around it
//! ([`UnifiedCircle`]).
//!
//! The compatibility decision is an optimization problem. Following the
//! paper, we **discretize the circle into sectors** and cap the number of
//! jobs communicating in each sector at one; a feasible assignment of
//! rotation offsets proves compatibility ([`solve`], [`Verdict`]). A
//! generalized mode caps the *sum of bandwidth demands* per sector at link
//! capacity instead, admitting jobs that each need only part of the link
//! ([`SolveMode::Capacity`]).
//!
//! Cluster-level compatibility (§5) — one rotation per job that
//! simultaneously de-overlaps every shared link — lives in [`cluster`],
//! together with the GPU multi-tenancy extension.
//!
//! # Example
//!
//! The paper's Fig. 5 setup: jobs with 40 ms and 60 ms iterations meet on
//! one link; the solver finds rotations on the 120 ms unified circle.
//!
//! ```
//! use geometry::{solve_pair, Profile, SolverConfig};
//! use simtime::Dur;
//!
//! let j1 = Profile::compute_then_comm(Dur::from_millis(32), Dur::from_millis(8));
//! let j2 = Profile::compute_then_comm(Dur::from_millis(50), Dur::from_millis(10));
//! let verdict = solve_pair(&j1, &j2, &SolverConfig::default()).unwrap();
//!
//! let rotations = verdict.rotations().expect("this pair is compatible");
//! // Rotating j2 by the returned shift separates the communication arcs:
//! let j2_rotated = j2.rotated(rotations[1].shift);
//! for t in 0..120 {
//!     let t = Dur::from_millis(t);
//!     assert!(!(j1.communicating_at(t % j1.period())
//!         && j2_rotated.communicating_at(t % j2_rotated.period())));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod profile;
mod sectors;
mod solver;
mod unified;

pub use cluster::{solve_cluster, ClusterInstance, ResourceKind};
pub use profile::{Arc, Profile};
pub use sectors::SectorMask;
pub use solver::{
    admit, overlap_fraction_of, solve, solve_max_margin, solve_on, solve_pair, Rotation, SolveMode,
    SolverConfig, Verdict,
};
pub use unified::{quantize_period, GeometryError, UnifiedCircle};
