//! [`Profile`]: one job's circle — its period and communication arcs.

use simtime::{Dur, Time};

/// A half-open time interval `[start, end)` of communication within a
/// job's period, measured as offsets from the start of the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// Offset of the arc's start within the period.
    pub start: Dur,
    /// Offset of the arc's end within the period (exclusive, ≤ period).
    pub end: Dur,
}

impl Arc {
    /// The arc's length.
    pub fn len(&self) -> Dur {
        self.end - self.start
    }

    /// `true` for a zero-length arc.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` if `offset` lies within the arc.
    pub fn contains(&self, offset: Dur) -> bool {
        self.start <= offset && offset < self.end
    }
}

/// A job's periodic network pattern rolled onto a circle: the perimeter is
/// the iteration time, the colored arcs are the communication phases.
///
/// Invariants (enforced at construction):
/// * `period > 0`;
/// * arcs are sorted, non-overlapping, non-empty and lie within
///   `[0, period]`;
/// * `demand` (fraction of link bandwidth needed while communicating) is in
///   `(0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    period: Dur,
    arcs: Vec<Arc>,
    demand: f64,
}

impl Profile {
    /// A profile with explicit arcs.
    ///
    /// # Panics
    /// Panics if any invariant is violated.
    pub fn new(period: Dur, arcs: Vec<Arc>, demand: f64) -> Profile {
        assert!(!period.is_zero(), "Profile: zero period");
        assert!(
            demand > 0.0 && demand <= 1.0,
            "Profile: demand {demand} outside (0, 1]"
        );
        let mut prev_end = Dur::ZERO;
        for (i, a) in arcs.iter().enumerate() {
            assert!(!a.is_empty(), "Profile: empty arc #{i}");
            assert!(a.start < a.end, "Profile: inverted arc #{i}");
            assert!(a.end <= period, "Profile: arc #{i} exceeds period");
            assert!(
                i == 0 || a.start >= prev_end,
                "Profile: arcs #{} and #{i} overlap or are unsorted",
                i - 1
            );
            prev_end = a.end;
        }
        Profile {
            period,
            arcs,
            demand,
        }
    }

    /// The paper's canonical job shape: compute for `compute`, then
    /// communicate for `comm` at full link demand. Period is their sum.
    ///
    /// # Panics
    /// Panics if `comm` is zero (a job that never communicates cannot
    /// congest anything; model it as no profile at all).
    pub fn compute_then_comm(compute: Dur, comm: Dur) -> Profile {
        assert!(!comm.is_zero(), "Profile: zero communication phase");
        Profile::new(
            compute + comm,
            vec![Arc {
                start: compute,
                end: compute + comm,
            }],
            1.0,
        )
    }

    /// Same as [`Profile::compute_then_comm`] with a partial bandwidth
    /// demand (for the capacity-mode solver).
    pub fn compute_then_comm_with_demand(compute: Dur, comm: Dur, demand: f64) -> Profile {
        assert!(!comm.is_zero(), "Profile: zero communication phase");
        Profile::new(
            compute + comm,
            vec![Arc {
                start: compute,
                end: compute + comm,
            }],
            demand,
        )
    }

    /// The circle's perimeter (iteration time).
    pub fn period(&self) -> Dur {
        self.period
    }

    /// The communication arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Link-bandwidth fraction demanded while communicating.
    pub fn demand(&self) -> f64 {
        self.demand
    }

    /// Total communication time per period.
    pub fn comm_time(&self) -> Dur {
        self.arcs.iter().map(|a| a.len()).sum()
    }

    /// Fraction of the period spent communicating, in `[0, 1]`.
    pub fn comm_fraction(&self) -> f64 {
        self.comm_time().ratio(self.period)
    }

    /// `true` if the job is communicating at circle position `offset`
    /// (offset taken modulo the period).
    pub fn communicating_at(&self, offset: Dur) -> bool {
        let pos = offset % self.period;
        self.arcs.iter().any(|a| a.contains(pos))
    }

    /// `true` if the job is communicating at absolute instant `t`, given
    /// that its pattern is phase-shifted by `shift` (the rotation angle
    /// realized as a time shift).
    pub fn communicating_at_time(&self, t: Time, shift: Dur) -> bool {
        // The pattern shifted *later* by `shift`: position = (t - shift)
        // mod period, computed without underflow by adding a period.
        let t_ns = t.as_nanos() + self.period.as_nanos();
        let pos = Dur::from_nanos(t_ns - (shift % self.period).as_nanos());
        self.communicating_at(pos)
    }

    /// A copy with every arc widened by `margin` on both sides (clamped to
    /// the period and merged where widened arcs touch). Solving on
    /// inflated profiles yields rotations that stay conflict-free even if
    /// every phase drifts by up to `margin` — the robustness knob behind
    /// [`crate::solve_max_margin`].
    pub fn inflated(&self, margin: Dur) -> Profile {
        if margin.is_zero() {
            return self.clone();
        }
        let p = self.period;
        // Each widened arc wraps around the circle like a rotation does:
        // drift is cyclic, so clamping at the seam would understate it.
        let mut pieces: Vec<Arc> = Vec::with_capacity(self.arcs.len() + 1);
        for a in &self.arcs {
            let len = (a.len() + margin * 2).min(p);
            if len == p {
                // The widened arc covers the whole circle.
                return Profile::new(
                    p,
                    vec![Arc {
                        start: Dur::ZERO,
                        end: p,
                    }],
                    self.demand,
                );
            }
            let start = (a.start + p - (margin % p)) % p;
            let end_raw = start + len;
            if end_raw <= p {
                pieces.push(Arc {
                    start,
                    end: end_raw,
                });
            } else {
                pieces.push(Arc { start, end: p });
                pieces.push(Arc {
                    start: Dur::ZERO,
                    end: end_raw - p,
                });
            }
        }
        // Merge overlaps created by the widening.
        pieces.sort_by_key(|a| a.start);
        let mut merged: Vec<Arc> = Vec::with_capacity(pieces.len());
        for a in pieces {
            match merged.last_mut() {
                Some(last) if a.start <= last.end => last.end = last.end.max(a.end),
                _ => merged.push(a),
            }
        }
        Profile::new(p, merged, self.demand)
    }

    /// The complementary profile: busy exactly where this one is idle.
    ///
    /// For a training job, the complement of the communication profile is
    /// its **compute** profile — what GPU multi-tenancy constraints need
    /// (§5: two jobs time-sharing a GPU must not compute simultaneously,
    /// which is "one more constraint in the optimization formulation").
    ///
    /// # Panics
    /// Panics if this profile covers the whole period (its complement
    /// would be empty, which `Profile` does not represent).
    pub fn complement(&self) -> Profile {
        let mut gaps = Vec::with_capacity(self.arcs.len() + 1);
        let mut cursor = Dur::ZERO;
        for a in &self.arcs {
            if a.start > cursor {
                gaps.push(Arc {
                    start: cursor,
                    end: a.start,
                });
            }
            cursor = a.end;
        }
        if cursor < self.period {
            gaps.push(Arc {
                start: cursor,
                end: self.period,
            });
        }
        assert!(
            !gaps.is_empty(),
            "Profile::complement: profile covers the entire period"
        );
        Profile::new(self.period, gaps, self.demand)
    }

    /// A copy of this profile rotated by `shift` (arcs move later by
    /// `shift`, wrapping around the circle). The result may have an arc
    /// split across the wrap point.
    pub fn rotated(&self, shift: Dur) -> Profile {
        let s = shift % self.period;
        if s.is_zero() {
            return self.clone();
        }
        let p = self.period;
        let mut pieces: Vec<Arc> = Vec::with_capacity(self.arcs.len() + 1);
        for a in &self.arcs {
            // Shifted endpoints before wrapping: start < 2p, end ≤ 2p.
            let start = a.start + s;
            let end = a.end + s;
            if end <= p {
                // Entirely before the seam.
                pieces.push(Arc { start, end });
            } else if start >= p {
                // Entirely past the seam: wrap the whole arc.
                pieces.push(Arc {
                    start: start - p,
                    end: end - p,
                });
            } else {
                // Crosses the seam: split into a tail and a head.
                pieces.push(Arc { start, end: p });
                pieces.push(Arc {
                    start: Dur::ZERO,
                    end: end - p,
                });
            }
        }
        pieces.sort_by_key(|a| a.start);
        Profile::new(p, pieces, self.demand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    /// Fig. 3's VGG16 circle: perimeter 255, compute arc [0, 141),
    /// comm arc [141, 255).
    #[test]
    fn fig3_vgg16_profile() {
        let p = Profile::compute_then_comm(ms(141), ms(114));
        assert_eq!(p.period(), ms(255));
        assert_eq!(p.arcs().len(), 1);
        assert_eq!(p.comm_time(), ms(114));
        assert!((p.comm_fraction() - 114.0 / 255.0).abs() < 1e-12);
        assert!(!p.communicating_at(ms(0)));
        assert!(!p.communicating_at(ms(140)));
        assert!(p.communicating_at(ms(141)));
        assert!(p.communicating_at(ms(254)));
        // Offsets wrap around the circle.
        assert!(!p.communicating_at(ms(255)));
        assert!(p.communicating_at(ms(255 + 200)));
    }

    #[test]
    fn invariants_enforced() {
        // Overlapping arcs.
        let bad = std::panic::catch_unwind(|| {
            Profile::new(
                ms(100),
                vec![
                    Arc {
                        start: ms(0),
                        end: ms(50),
                    },
                    Arc {
                        start: ms(40),
                        end: ms(60),
                    },
                ],
                1.0,
            )
        });
        assert!(bad.is_err());
        // Arc past period.
        let bad = std::panic::catch_unwind(|| {
            Profile::new(
                ms(100),
                vec![Arc {
                    start: ms(90),
                    end: ms(110),
                }],
                1.0,
            )
        });
        assert!(bad.is_err());
        // Demand outside (0,1].
        let bad = std::panic::catch_unwind(|| {
            Profile::new(
                ms(100),
                vec![Arc {
                    start: ms(0),
                    end: ms(10),
                }],
                0.0,
            )
        });
        assert!(bad.is_err());
        let bad = std::panic::catch_unwind(|| {
            Profile::new(
                ms(100),
                vec![Arc {
                    start: ms(0),
                    end: ms(10),
                }],
                1.5,
            )
        });
        assert!(bad.is_err());
    }

    #[test]
    fn rotation_moves_arcs_later() {
        let p = Profile::compute_then_comm(ms(60), ms(40)); // comm [60,100)
        let r = p.rotated(ms(10)); // comm [70,100) ∪ ... no wrap: [70, 110)→wraps
                                   // [60,100) + 10 = [70, 110): wraps into [70,100) and [0,10).
        assert!(r.communicating_at(ms(70)));
        assert!(r.communicating_at(ms(99)));
        assert!(r.communicating_at(ms(5)));
        assert!(!r.communicating_at(ms(10)));
        assert!(!r.communicating_at(ms(69)));
        assert_eq!(r.comm_time(), ms(40), "rotation preserves comm time");
    }

    #[test]
    fn rotation_by_period_is_identity() {
        let p = Profile::compute_then_comm(ms(141), ms(114));
        assert_eq!(p.rotated(ms(255)), p);
        assert_eq!(p.rotated(Dur::ZERO), p);
        assert_eq!(p.rotated(ms(255 * 3 + 17)), p.rotated(ms(17)));
    }

    #[test]
    fn rotation_exact_to_seam() {
        // Comm [60, 100) rotated by 40 → [100, 140) ≡ [0, 40): exactly
        // lands on the seam, no empty tail arc.
        let p = Profile::compute_then_comm(ms(60), ms(40));
        let r = p.rotated(ms(40));
        assert_eq!(r.arcs().len(), 1);
        assert_eq!(
            r.arcs()[0],
            Arc {
                start: ms(0),
                end: ms(40)
            }
        );
    }

    #[test]
    fn communicating_at_time_with_shift() {
        let p = Profile::compute_then_comm(ms(60), ms(40)); // comm [60,100)
        let t = |v: u64| Time::from_nanos(ms(v).as_nanos());
        // Unshifted: communicating at 60..100 of each period.
        assert!(p.communicating_at_time(t(75), Dur::ZERO));
        assert!(!p.communicating_at_time(t(30), Dur::ZERO));
        // Shifted 30 later: communicating at 90..130 ≡ [90,100)∪[0,30).
        assert!(p.communicating_at_time(t(95), ms(30)));
        assert!(p.communicating_at_time(t(110), ms(30))); // = pos 10 of next period
        assert!(!p.communicating_at_time(t(75), ms(30)));
    }

    #[test]
    fn inflated_widens_and_merges() {
        // Two arcs 10 ms apart merge when widened by 5 ms each side.
        let p = Profile::new(
            ms(100),
            vec![
                Arc {
                    start: ms(20),
                    end: ms(30),
                },
                Arc {
                    start: ms(40),
                    end: ms(50),
                },
            ],
            1.0,
        );
        let inflated = p.inflated(ms(5));
        assert_eq!(inflated.arcs().len(), 1);
        assert_eq!(
            inflated.arcs()[0],
            Arc {
                start: ms(15),
                end: ms(55)
            }
        );
        // Widening wraps around the seam like cyclic drift does.
        let edge = Profile::compute_then_comm(ms(20), ms(10)); // [20, 30) of 30
        let e = edge.inflated(ms(5));
        // [20, 30) ± 5 → [15, 35) ≡ [15, 30) ∪ [0, 5).
        assert!(e.communicating_at(ms(16)));
        assert!(e.communicating_at(ms(2)));
        assert!(!e.communicating_at(ms(7)));
        assert_eq!(e.comm_time(), ms(20));
        // Widening past the full circle saturates to full coverage.
        let full = edge.inflated(ms(15));
        assert_eq!(full.comm_fraction(), 1.0);
        // Zero margin is the identity.
        assert_eq!(p.inflated(Dur::ZERO), p);
    }

    #[test]
    fn arc_helpers() {
        let a = Arc {
            start: ms(10),
            end: ms(30),
        };
        assert_eq!(a.len(), ms(20));
        assert!(!a.is_empty());
        assert!(a.contains(ms(10)));
        assert!(!a.contains(ms(30)));
        assert!(!a.contains(ms(5)));
    }
}
