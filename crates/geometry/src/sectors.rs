//! [`SectorMask`]: a job's occupancy of the discretized unified circle.
//!
//! The solver works on circles discretized into `S` equal sectors (the
//! paper: "for scalability, we discretize the circle into small sectors").
//! A mask is a bitset of length `S`: bit `i` is set iff the job is
//! communicating anywhere within sector `i`. Rotation of the circle becomes
//! cyclic rotation of the bitset, and "no two jobs communicate in the same
//! sector" becomes bitwise disjointness — both cheap word-level operations.

/// A cyclic bitset over the sectors of a discretized circle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectorMask {
    words: Vec<u64>,
    len: usize,
}

impl SectorMask {
    /// An empty mask over `len` sectors.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn empty(len: usize) -> SectorMask {
        assert!(len > 0, "SectorMask: zero sectors");
        SectorMask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of sectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no sector is set (NB: not "zero length" — masks are never
    /// zero-length).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets sector `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "SectorMask::set: sector {i} out of range");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Sets the half-open sector range `[from, to)`, which may wrap.
    pub fn set_range(&mut self, from: usize, to: usize) {
        if from <= to {
            for i in from..to {
                self.set(i);
            }
        } else {
            for i in from..self.len {
                self.set(i);
            }
            for i in 0..to {
                self.set(i);
            }
        }
    }

    /// Whether sector `i` is set.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "SectorMask::get: sector {i} out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set sectors.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the two masks share any set sector.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn intersects(&self, other: &SectorMask) -> bool {
        assert_eq!(self.len, other.len, "SectorMask: length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Number of sectors set in both masks.
    pub fn overlap(&self, other: &SectorMask) -> usize {
        assert_eq!(self.len, other.len, "SectorMask: length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Ors `other` into `self`.
    pub fn or_assign(&mut self, other: &SectorMask) {
        assert_eq!(self.len, other.len, "SectorMask: length mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Removes `other`'s bits from `self` (used when the solver backtracks).
    pub fn and_not_assign(&mut self, other: &SectorMask) {
        assert_eq!(self.len, other.len, "SectorMask: length mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The mask rotated forward by `by` sectors: output bit
    /// `(i + by) mod len` = input bit `i`.
    pub fn rotated(&self, by: usize) -> SectorMask {
        let by = by % self.len;
        let mut out = SectorMask::empty(self.len);
        // Straightforward bit loop. Masks are at most tens of thousands of
        // sectors; the solver's hot path dominates elsewhere (and this is
        // branch-free per word in the common aligned case below).
        if by == 0 {
            out.words.copy_from_slice(&self.words);
            return out;
        }
        for i in 0..self.len {
            if self.get(i) {
                out.set((i + by) % self.len);
            }
        }
        out
    }

    /// Iterates over set sector indices.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_count() {
        let mut m = SectorMask::empty(130);
        assert!(m.is_empty());
        m.set(0);
        m.set(64);
        m.set(129);
        assert!(m.get(0) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(65));
        assert_eq!(m.count(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.iter_set().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn set_range_plain_and_wrapping() {
        let mut m = SectorMask::empty(10);
        m.set_range(2, 5);
        assert_eq!(m.iter_set().collect::<Vec<_>>(), vec![2, 3, 4]);
        let mut w = SectorMask::empty(10);
        w.set_range(8, 3); // wraps: 8, 9, 0, 1, 2
        assert_eq!(w.iter_set().collect::<Vec<_>>(), vec![0, 1, 2, 8, 9]);
    }

    #[test]
    fn intersects_and_overlap() {
        let mut a = SectorMask::empty(100);
        let mut b = SectorMask::empty(100);
        a.set_range(10, 30);
        b.set_range(25, 40);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap(&b), 5); // sectors 25..30
        let mut c = SectorMask::empty(100);
        c.set_range(30, 40);
        assert!(!a.intersects(&c));
        assert_eq!(a.overlap(&c), 0);
    }

    #[test]
    fn or_and_not_roundtrip() {
        let mut acc = SectorMask::empty(64);
        let mut x = SectorMask::empty(64);
        x.set_range(5, 20);
        acc.or_assign(&x);
        assert_eq!(acc.count(), 15);
        acc.and_not_assign(&x);
        assert!(acc.is_empty());
    }

    #[test]
    fn rotation_wraps() {
        let mut m = SectorMask::empty(10);
        m.set_range(7, 10); // 7, 8, 9
        let r = m.rotated(4); // → 1, 2, 3
        assert_eq!(r.iter_set().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(m.rotated(0), m);
        assert_eq!(m.rotated(10), m);
        assert_eq!(m.rotated(24), m.rotated(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        SectorMask::empty(8).set(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = SectorMask::empty(8);
        let b = SectorMask::empty(9);
        let _ = a.intersects(&b);
    }

    proptest! {
        #[test]
        fn rotation_preserves_count(
            bits in proptest::collection::vec(0usize..200, 0..50),
            by in 0usize..400,
        ) {
            let mut m = SectorMask::empty(200);
            for b in bits { m.set(b); }
            let r = m.rotated(by);
            prop_assert_eq!(r.count(), m.count());
            // Rotating back recovers the original.
            let back = r.rotated(200 - by % 200);
            prop_assert_eq!(back, m);
        }

        #[test]
        fn overlap_is_symmetric(
            xs in proptest::collection::vec(0usize..128, 0..40),
            ys in proptest::collection::vec(0usize..128, 0..40),
        ) {
            let mut a = SectorMask::empty(128);
            let mut b = SectorMask::empty(128);
            for x in xs { a.set(x); }
            for y in ys { b.set(y); }
            prop_assert_eq!(a.overlap(&b), b.overlap(&a));
            prop_assert_eq!(a.intersects(&b), a.overlap(&b) > 0);
        }
    }
}
