//! The rotation solver: decide compatibility and produce rotation angles.
//!
//! Implements the paper's optimization formulation (§3): discretize the
//! unified circle into sectors, then search for one rotation offset per job
//! such that no sector has more than one job communicating
//! ([`SolveMode::Exclusive`], the paper's constraint), or — generalized —
//! such that the per-sector sum of bandwidth demands never exceeds link
//! capacity ([`SolveMode::Capacity`]).
//!
//! Algorithmically:
//!
//! * 2 jobs, exclusive: exact — scan every relative offset with word-level
//!   mask intersection; also yields the *minimum achievable overlap* when
//!   incompatible.
//! * k ≥ 3 (or capacity mode): depth-first search over jobs in descending
//!   busy-size order with incremental occupancy, randomized candidate
//!   order across restarts, and a node budget. An exhausted search space
//!   proves incompatibility; an exhausted *budget* returns
//!   [`Verdict::Inconclusive`] — the solver never lies.
//!
//! Soundness: masks over-approximate the true arcs (see [`crate::unified`]),
//! so a `Compatible` verdict always maps back to truly non-overlapping
//! communication phases; near the resolution limit the solver may miss
//! marginally-feasible rotations (use more sectors).

use crate::unified::GeometryError;
use crate::{Profile, SectorMask, UnifiedCircle};
use eventsim::Rng;
use simtime::Dur;

/// Which per-sector constraint the solver enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// The paper's formulation: at most one job communicating per sector.
    #[default]
    Exclusive,
    /// Generalization: per-sector sum of bandwidth demands ≤ 1 (link
    /// capacity). Equivalent to `Exclusive` when every demand is 1.0.
    Capacity,
}

/// Solver parameters.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Sectors in the discretization (resolution). 720 = half-degree.
    pub sectors: usize,
    /// Constraint mode.
    pub mode: SolveMode,
    /// Randomized restarts for the k ≥ 3 search.
    pub restarts: usize,
    /// Total DFS node budget across all restarts.
    pub max_steps: u64,
    /// Seed for randomized candidate ordering.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            sectors: 720,
            mode: SolveMode::Exclusive,
            restarts: 8,
            max_steps: 2_000_000,
            seed: 0x6d6c_6363, // "mlcc"
        }
    }
}

/// A job's assigned rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    /// Rotation in sectors.
    pub sectors: usize,
    /// The equivalent time shift of the job's communication phases.
    pub shift: Dur,
    /// The equivalent angle in degrees (counterclockwise, as in Fig. 5).
    pub degrees: f64,
}

/// The solver's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// A conflict-free rotation assignment exists.
    Compatible {
        /// One rotation per job, in input order (job 0 pinned at zero).
        rotations: Vec<Rotation>,
        /// Fraction of the circle left idle under the assignment —
        /// headroom for additional jobs.
        slack_fraction: f64,
    },
    /// No conflict-free assignment exists at this resolution.
    Incompatible {
        /// The smallest overlap found (fraction of the circle where two or
        /// more jobs must communicate simultaneously).
        best_overlap_fraction: f64,
    },
    /// The node budget was exhausted before the search space was: the jobs
    /// may or may not be compatible.
    Inconclusive {
        /// The smallest overlap encountered before giving up.
        best_overlap_fraction: f64,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Compatible`].
    pub fn is_compatible(&self) -> bool {
        matches!(self, Verdict::Compatible { .. })
    }

    /// The rotation assignment, if compatible.
    pub fn rotations(&self) -> Option<&[Rotation]> {
        match self {
            Verdict::Compatible { rotations, .. } => Some(rotations),
            _ => None,
        }
    }

    /// The best (smallest) overlap fraction known: 0 when compatible.
    pub fn overlap_fraction(&self) -> f64 {
        match self {
            Verdict::Compatible { .. } => 0.0,
            Verdict::Incompatible {
                best_overlap_fraction,
            }
            | Verdict::Inconclusive {
                best_overlap_fraction,
            } => *best_overlap_fraction,
        }
    }
}

/// Decides compatibility of a set of job profiles sharing one link.
///
/// Returns rotations in the input order, with job 0 pinned at rotation 0
/// (only relative rotation is observable; congestion control cannot move
/// absolute time).
pub fn solve(profiles: &[Profile], cfg: &SolverConfig) -> Result<Verdict, GeometryError> {
    let uc = UnifiedCircle::new(profiles, cfg.sectors)?;
    Ok(solve_on(&uc, cfg))
}

/// Finds rotations maximizing the **drift margin**: the largest `m` such
/// that the jobs stay compatible even with every communication arc widened
/// by `m` on both sides. Real phases jitter (stragglers, imperfect clocks);
/// a schedule with zero slack collapses at the first wobble, so a deployed
/// scheduler wants the most robust rotation, not just any feasible one.
///
/// Binary-searches `m` over `[0, max_margin]` to `resolution` granularity
/// (both in time units of the circle). Returns the verdict at the best
/// feasible margin together with that margin; if the jobs are incompatible
/// even at zero margin, returns that verdict and `Dur::ZERO`.
pub fn solve_max_margin(
    profiles: &[Profile],
    cfg: &SolverConfig,
    max_margin: Dur,
    resolution: Dur,
) -> Result<(Verdict, Dur), GeometryError> {
    assert!(!resolution.is_zero(), "solve_max_margin: zero resolution");
    let at = |m: Dur| -> Result<Verdict, GeometryError> {
        let inflated: Vec<Profile> = profiles.iter().map(|p| p.inflated(m)).collect();
        solve(&inflated, cfg)
    };
    let base = at(Dur::ZERO)?;
    if !base.is_compatible() {
        return Ok((base, Dur::ZERO));
    }
    let mut lo = Dur::ZERO; // known feasible
    let mut hi = max_margin; // candidate
    let mut best = base;
    // If even the max margin fits, take it.
    if let v @ Verdict::Compatible { .. } = at(hi)? {
        return Ok((v, hi));
    }
    while hi.saturating_sub(lo) > resolution {
        let mid = lo + (hi - lo) / 2;
        match at(mid)? {
            v @ Verdict::Compatible { .. } => {
                best = v;
                lo = mid;
            }
            _ => hi = mid,
        }
    }
    Ok((best, lo))
}

/// Online admission: can `newcomer` join jobs already running with
/// **fixed** rotations, by choosing only its own rotation?
///
/// A running job's phase cannot be moved without pausing it, so an online
/// scheduler admits a new job against the residents' occupancy as-is
/// (rotating only the newcomer) instead of re-solving everyone — weaker
/// than a full re-solve, but deployable without disturbing training.
///
/// `residents` pairs each running profile with its current rotation.
/// Returns the newcomer's rotation if a conflict-free one exists at this
/// resolution.
pub fn admit(
    residents: &[(Profile, Rotation)],
    newcomer: &Profile,
    cfg: &SolverConfig,
) -> Result<Option<Rotation>, GeometryError> {
    let mut profiles: Vec<Profile> = residents.iter().map(|(p, r)| p.rotated(r.shift)).collect();
    profiles.push(newcomer.clone());
    let uc = UnifiedCircle::new(&profiles, cfg.sectors)?;
    let new_idx = profiles.len() - 1;
    // Residents' occupancy is fixed: OR their masks once.
    let mut acc = SectorMask::empty(uc.sectors());
    for j in 0..new_idx {
        acc.or_assign(uc.mask(j));
    }
    for o in 0..uc.offset_cap(new_idx) {
        let rm = uc.mask(new_idx).rotated(o);
        if !rm.intersects(&acc) {
            return Ok(Some(rotation(&uc, o)));
        }
    }
    Ok(None)
}

/// Convenience wrapper for exactly two jobs.
pub fn solve_pair(a: &Profile, b: &Profile, cfg: &SolverConfig) -> Result<Verdict, GeometryError> {
    solve(&[a.clone(), b.clone()], cfg)
}

/// Runs the solver on an already-built unified circle.
pub fn solve_on(uc: &UnifiedCircle, cfg: &SolverConfig) -> Verdict {
    let k = uc.job_count();
    let s = uc.sectors();
    if k == 1 {
        return Verdict::Compatible {
            rotations: vec![zero_rotation()],
            slack_fraction: 1.0 - uc.load(),
        };
    }
    let exclusive =
        cfg.mode == SolveMode::Exclusive || (0..k).all(|j| (uc.demand(j) - 1.0).abs() < 1e-9);

    // Necessary condition (exclusive): total busy sectors must fit.
    if exclusive {
        let total_busy: usize = uc.masks().iter().map(|m| m.count()).sum();
        if total_busy > s {
            // Overlap of at least (total_busy − S)/S is unavoidable.
            let lower = (total_busy - s) as f64 / s as f64;
            let best = greedy_overlap(uc, cfg).max(lower);
            return Verdict::Incompatible {
                best_overlap_fraction: best.max(lower),
            };
        }
        if k == 2 {
            return solve_pair_exact(uc);
        }
        return dfs_exclusive(uc, cfg);
    }
    dfs_capacity(uc, cfg)
}

fn zero_rotation() -> Rotation {
    Rotation {
        sectors: 0,
        shift: Dur::ZERO,
        degrees: 0.0,
    }
}

fn rotation(uc: &UnifiedCircle, offset: usize) -> Rotation {
    Rotation {
        sectors: offset,
        shift: uc.shift_of(offset),
        degrees: uc.degrees_of(offset),
    }
}

/// Exact two-job scan: job 0 fixed, job 1 tried at every offset.
fn solve_pair_exact(uc: &UnifiedCircle) -> Verdict {
    let m0 = uc.mask(0);
    let m1 = uc.mask(1);
    let s = uc.sectors();
    let mut best = usize::MAX;
    for o in 0..s {
        let r = m1.rotated(o);
        let overlap = m0.overlap(&r);
        if overlap == 0 {
            return Verdict::Compatible {
                rotations: vec![zero_rotation(), rotation(uc, o)],
                slack_fraction: 1.0 - uc.load(),
            };
        }
        if overlap < best {
            best = overlap;
        }
    }
    Verdict::Incompatible {
        best_overlap_fraction: best as f64 / s as f64,
    }
}

/// DFS over rotation offsets with exclusive (bitmask) occupancy.
fn dfs_exclusive(uc: &UnifiedCircle, cfg: &SolverConfig) -> Verdict {
    let k = uc.job_count();
    // Search biggest jobs first: they are the hardest to place.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&j| std::cmp::Reverse(uc.mask(j).count()));

    let mut rng = Rng::new(cfg.seed);
    let budget_per_restart = (cfg.max_steps / cfg.restarts.max(1) as u64).max(1);
    let mut exhausted_any_budget = false;

    for restart in 0..cfg.restarts.max(1) {
        let mut acc = uc.mask(order[0]).clone();
        let mut offsets = vec![0usize; k];
        let mut steps = 0u64;
        // Candidate offset order per job: identity on the first restart
        // (deterministic, finds "canonical" solutions), shuffled afterwards.
        let mut candidate_orders: Vec<Vec<usize>> = Vec::with_capacity(k);
        for &j in &order {
            let mut cands: Vec<usize> = (0..uc.offset_cap(j)).collect();
            if restart > 0 {
                rng.shuffle(&mut cands);
            }
            candidate_orders.push(cands);
        }
        let complete = dfs_exclusive_rec(
            uc,
            &order,
            &candidate_orders,
            1,
            &mut acc,
            &mut offsets,
            &mut steps,
            budget_per_restart,
        );
        match complete {
            DfsOutcome::Found => {
                let mut rotations = vec![zero_rotation(); k];
                for (pos, &j) in order.iter().enumerate() {
                    rotations[j] = rotation(uc, offsets[pos]);
                }
                return Verdict::Compatible {
                    rotations,
                    slack_fraction: 1.0 - uc.load(),
                };
            }
            DfsOutcome::ExhaustedSpace => {
                // Complete search proved infeasibility at this resolution.
                return Verdict::Incompatible {
                    best_overlap_fraction: greedy_overlap(uc, cfg),
                };
            }
            DfsOutcome::ExhaustedBudget => {
                exhausted_any_budget = true;
            }
        }
    }
    debug_assert!(exhausted_any_budget);
    Verdict::Inconclusive {
        best_overlap_fraction: greedy_overlap(uc, cfg),
    }
}

#[derive(PartialEq)]
enum DfsOutcome {
    Found,
    ExhaustedSpace,
    ExhaustedBudget,
}

#[allow(clippy::too_many_arguments)]
fn dfs_exclusive_rec(
    uc: &UnifiedCircle,
    order: &[usize],
    cands: &[Vec<usize>],
    depth: usize,
    acc: &mut SectorMask,
    offsets: &mut [usize],
    steps: &mut u64,
    budget: u64,
) -> DfsOutcome {
    if depth == order.len() {
        return DfsOutcome::Found;
    }
    let j = order[depth];
    let mut budget_hit = false;
    for &o in &cands[depth] {
        *steps += 1;
        if *steps > budget {
            return DfsOutcome::ExhaustedBudget;
        }
        let rm = uc.mask(j).rotated(o);
        if rm.intersects(acc) {
            continue;
        }
        acc.or_assign(&rm);
        offsets[depth] = o;
        match dfs_exclusive_rec(uc, order, cands, depth + 1, acc, offsets, steps, budget) {
            DfsOutcome::Found => return DfsOutcome::Found,
            DfsOutcome::ExhaustedBudget => budget_hit = true,
            DfsOutcome::ExhaustedSpace => {}
        }
        acc.and_not_assign(&rm);
        if budget_hit {
            return DfsOutcome::ExhaustedBudget;
        }
    }
    DfsOutcome::ExhaustedSpace
}

/// DFS with fractional per-sector demand accumulation (capacity mode).
fn dfs_capacity(uc: &UnifiedCircle, cfg: &SolverConfig) -> Verdict {
    let k = uc.job_count();
    let s = uc.sectors();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&j| {
        std::cmp::Reverse((uc.mask(j).count() as f64 * uc.demand(j) * 1e6) as u64)
    });

    let mut rng = Rng::new(cfg.seed ^ 0xCAFE);
    let budget_per_restart = (cfg.max_steps / cfg.restarts.max(1) as u64).max(1);
    let mut exhausted_budget = false;

    for restart in 0..cfg.restarts.max(1) {
        let mut load = vec![0.0f64; s];
        let j0 = order[0];
        for i in uc.mask(j0).iter_set() {
            load[i] += uc.demand(j0);
        }
        let mut offsets = vec![0usize; k];
        let mut steps = 0u64;
        let mut candidate_orders: Vec<Vec<usize>> = Vec::with_capacity(k);
        for &j in &order {
            let mut cands: Vec<usize> = (0..uc.offset_cap(j)).collect();
            if restart > 0 {
                rng.shuffle(&mut cands);
            }
            candidate_orders.push(cands);
        }

        #[allow(clippy::too_many_arguments)] // recursion state, not an API
        fn rec(
            uc: &UnifiedCircle,
            order: &[usize],
            cands: &[Vec<usize>],
            depth: usize,
            load: &mut [f64],
            offsets: &mut [usize],
            steps: &mut u64,
            budget: u64,
        ) -> DfsOutcome {
            const EPS: f64 = 1e-9;
            if depth == order.len() {
                return DfsOutcome::Found;
            }
            let j = order[depth];
            let d = uc.demand(j);
            let s = uc.sectors();
            let mut budget_hit = false;
            'cand: for &o in &cands[depth] {
                *steps += 1;
                if *steps > budget {
                    return DfsOutcome::ExhaustedBudget;
                }
                for i in uc.mask(j).iter_set() {
                    if load[(i + o) % s] + d > 1.0 + EPS {
                        continue 'cand;
                    }
                }
                for i in uc.mask(j).iter_set() {
                    load[(i + o) % s] += d;
                }
                offsets[depth] = o;
                match rec(uc, order, cands, depth + 1, load, offsets, steps, budget) {
                    DfsOutcome::Found => return DfsOutcome::Found,
                    DfsOutcome::ExhaustedBudget => budget_hit = true,
                    DfsOutcome::ExhaustedSpace => {}
                }
                for i in uc.mask(j).iter_set() {
                    load[(i + o) % s] -= d;
                }
                if budget_hit {
                    return DfsOutcome::ExhaustedBudget;
                }
            }
            DfsOutcome::ExhaustedSpace
        }

        match rec(
            uc,
            &order,
            &candidate_orders,
            1,
            &mut load,
            &mut offsets,
            &mut steps,
            budget_per_restart,
        ) {
            DfsOutcome::Found => {
                let mut rotations = vec![zero_rotation(); k];
                for (pos, &j) in order.iter().enumerate() {
                    rotations[j] = rotation(uc, offsets[pos]);
                }
                return Verdict::Compatible {
                    rotations,
                    slack_fraction: (1.0 - uc.load()).max(0.0),
                };
            }
            DfsOutcome::ExhaustedSpace => {
                return Verdict::Incompatible {
                    best_overlap_fraction: greedy_overlap(uc, cfg),
                };
            }
            DfsOutcome::ExhaustedBudget => exhausted_budget = true,
        }
    }
    debug_assert!(exhausted_budget);
    Verdict::Inconclusive {
        best_overlap_fraction: greedy_overlap(uc, cfg),
    }
}

/// The overlap fraction of a **given** rotation assignment: the fraction
/// of the unified circle where aggregate communication demand exceeds link
/// capacity, with each job's arcs shifted by its rotation.
///
/// This is the predicted analogue of what a run-trace auditor measures —
/// diagnostics compare a trace's observed interleaving against the value
/// the solver's rotations promise. Rotations are applied by their time
/// `shift` (converted to sectors at this resolution), so assignments
/// computed at a different sector count remain usable.
///
/// Zero for any `Compatible` verdict's rotations (by construction);
/// positive when the assignment double-books part of the circle.
pub fn overlap_fraction_of(
    profiles: &[Profile],
    rotations: &[Rotation],
    sectors: usize,
) -> Result<f64, GeometryError> {
    assert_eq!(
        profiles.len(),
        rotations.len(),
        "overlap_fraction_of: one rotation per profile"
    );
    let uc = UnifiedCircle::new(profiles, sectors)?;
    let s = uc.sectors();
    let perimeter_ns = uc.perimeter().as_nanos() as f64;
    let mut load = vec![0.0f64; s];
    for (j, rot) in rotations.iter().enumerate() {
        let o = ((rot.shift.as_nanos() as f64 / perimeter_ns) * s as f64).round() as usize % s;
        let d = uc.demand(j);
        for i in uc.mask(j).iter_set() {
            load[(i + o) % s] += d;
        }
    }
    let total_excess: f64 = load.iter().map(|&v| (v - 1.0).max(0.0)).sum();
    Ok(total_excess / s as f64)
}

/// Greedy best-effort overlap: place jobs (largest first), each at the
/// offset that adds the least demand-excess; report the resulting overlap
/// fraction. Used only for *reporting* how bad an incompatible set is —
/// corresponds to the residual contention unfairness cannot remove.
fn greedy_overlap(uc: &UnifiedCircle, _cfg: &SolverConfig) -> f64 {
    let k = uc.job_count();
    let s = uc.sectors();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&j| std::cmp::Reverse(uc.mask(j).count()));
    let mut load = vec![0.0f64; s];
    for i in uc.mask(order[0]).iter_set() {
        load[i] += uc.demand(order[0]);
    }
    for &j in &order[1..] {
        let d = uc.demand(j);
        let mut best_o = 0;
        let mut best_excess = f64::INFINITY;
        for o in 0..uc.offset_cap(j) {
            let mut excess = 0.0;
            for i in uc.mask(j).iter_set() {
                let v = load[(i + o) % s] + d;
                if v > 1.0 {
                    excess += v - 1.0;
                }
            }
            if excess < best_excess {
                best_excess = excess;
                best_o = o;
                if excess == 0.0 {
                    break;
                }
            }
        }
        for i in uc.mask(j).iter_set() {
            load[(i + best_o) % s] += d;
        }
    }
    let total_excess: f64 = load.iter().map(|&v| (v - 1.0).max(0.0)).sum();
    total_excess / s as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    /// Fig. 4: two jobs with the same period whose comm arcs collide at
    /// rotation 0 but fit after rotating one of them.
    #[test]
    fn fig4_same_period_pair_compatible() {
        let a = Profile::compute_then_comm(ms(141), ms(114)); // VGG16-like
        let b = Profile::compute_then_comm(ms(200), ms(55)); // WRN-like
        let v = solve_pair(&a, &b, &cfg()).unwrap();
        assert!(v.is_compatible(), "verdict: {v:?}");
        let rots = v.rotations().unwrap();
        assert_eq!(rots[0].sectors, 0, "job 0 pinned");
        // Verify the rotation truly de-overlaps the continuous arcs.
        let b_rot = b.rotated(rots[1].shift);
        for t in (0..255).map(ms) {
            assert!(
                !(a.communicating_at(t) && b_rot.communicating_at(t)),
                "overlap at {t}"
            );
        }
    }

    /// Two half-period jobs exactly fill the circle: compatible with zero
    /// slack.
    #[test]
    fn exact_fit_pair() {
        let a = Profile::compute_then_comm(ms(50), ms(50));
        let b = Profile::compute_then_comm(ms(50), ms(50));
        let v = solve_pair(&a, &b, &cfg()).unwrap();
        assert!(v.is_compatible());
        match v {
            Verdict::Compatible { slack_fraction, .. } => {
                assert!(slack_fraction.abs() < 1e-9, "slack {slack_fraction}")
            }
            _ => unreachable!(),
        }
    }

    /// Comm fractions summing above 1 can never be compatible (the BERT +
    /// VGG19 shape from Table 1 group 1).
    #[test]
    fn oversubscribed_pair_incompatible() {
        let bert = Profile::compute_then_comm(ms(40), ms(110)); // 73% comm
        let vgg = Profile::compute_then_comm(ms(130), ms(119)); // 48% comm
        let v = solve_pair(&bert, &vgg, &cfg()).unwrap();
        assert!(!v.is_compatible());
        assert!(v.overlap_fraction() > 0.0);
    }

    /// Fig. 5: periods 40 and 60 ms on a 120 ms unified circle; a rotation
    /// exists.
    ///
    /// Note the arc lengths: with periods 40 and 60 (gcd 20 ms), the two
    /// jobs are compatible iff their comm arcs can be made disjoint *modulo
    /// 20 ms*, so the arcs must jointly fit in 20 ms. (An arc of length
    /// ≥ 20 ms would occupy every residue class and block any partner —
    /// a fact the solver proved to us when this test originally used one.)
    #[test]
    fn fig5_different_periods_compatible() {
        let j1 = Profile::compute_then_comm(ms(32), ms(8));
        let j2 = Profile::compute_then_comm(ms(50), ms(10));
        let v = solve_pair(&j1, &j2, &cfg()).unwrap();
        assert!(v.is_compatible(), "verdict: {v:?}");
        // Check on the continuous unified circle: tile and test all ms.
        let rots = v.rotations().unwrap();
        let s1 = rots[0].shift;
        let s2 = rots[1].shift;
        for t in 0..120 {
            let t1 = (ms(t) + ms(120) - (s1 % ms(40))) % ms(40);
            let t2 = (ms(t) + ms(120) - (s2 % ms(60))) % ms(60);
            let c1 = j1.communicating_at(t1);
            let c2 = j2.communicating_at(t2);
            assert!(!(c1 && c2), "overlap at unified offset {t} ms");
        }
    }

    /// Three-job harmonic group (Table 1 group 5 shape): two ≈285 ms jobs
    /// plus one at half period. Measured periods are not exactly harmonic
    /// (285.04, 285.11, 142.51 ms), so — as the scheduler does — we snap
    /// them to a 2.5 ms grid before building the unified circle; the
    /// congestion-control layer absorbs sub-grid drift.
    #[test]
    fn three_job_harmonic_group() {
        let grid = Dur::from_micros(2_500);
        let q = |compute_us: u64, comm_us: u64| {
            let period = crate::quantize_period(Dur::from_micros(compute_us + comm_us), grid);
            let comm = Dur::from_micros(comm_us);
            Profile::compute_then_comm(period - comm, comm)
        };
        let vgg19 = q(166_320, 118_720); // period → 285 ms
        let vgg16 = q(171_190, 113_920); // period → 285 ms
        let rn = q(121_550, 20_960); // period → 142.5 ms
        let v = solve(&[vgg19, vgg16, rn], &cfg()).unwrap();
        assert!(v.is_compatible(), "verdict: {v:?}");
    }

    /// Three jobs that cannot fit (fractions sum to ≈1.5).
    #[test]
    fn three_job_overload_incompatible() {
        let jobs = [
            Profile::compute_then_comm(ms(50), ms(50)),
            Profile::compute_then_comm(ms(50), ms(50)),
            Profile::compute_then_comm(ms(50), ms(50)),
        ];
        let v = solve(&jobs, &cfg()).unwrap();
        assert!(!v.is_compatible());
        // At least half the circle must be double-booked.
        assert!(v.overlap_fraction() >= 0.49, "{}", v.overlap_fraction());
    }

    /// Single job: trivially compatible.
    #[test]
    fn single_job_compatible() {
        let v = solve(&[Profile::compute_then_comm(ms(10), ms(90))], &cfg()).unwrap();
        assert!(v.is_compatible());
        assert_eq!(v.rotations().unwrap().len(), 1);
    }

    /// Capacity mode admits overlapping jobs whose demands fit together.
    #[test]
    fn capacity_mode_allows_partial_demands() {
        // Two jobs that communicate all the time at 50% demand each:
        // exclusive says no, capacity says yes.
        let a = Profile::compute_then_comm_with_demand(ms(1), ms(99), 0.5);
        let b = Profile::compute_then_comm_with_demand(ms(1), ms(99), 0.5);
        let mut c = cfg();
        c.mode = SolveMode::Capacity;
        let v = solve(&[a.clone(), b.clone()], &c).unwrap();
        assert!(v.is_compatible(), "capacity verdict: {v:?}");
        // Same pair at 60% each cannot fit.
        let a6 = Profile::compute_then_comm_with_demand(ms(1), ms(99), 0.6);
        let b6 = Profile::compute_then_comm_with_demand(ms(1), ms(99), 0.6);
        let v = solve(&[a6, b6], &c).unwrap();
        assert!(!v.is_compatible());
    }

    /// Exclusive mode on full-demand profiles equals capacity mode.
    #[test]
    fn modes_agree_on_full_demand() {
        let a = Profile::compute_then_comm(ms(60), ms(40));
        let b = Profile::compute_then_comm(ms(70), ms(30));
        let mut cap = cfg();
        cap.mode = SolveMode::Capacity;
        let ve = solve(&[a.clone(), b.clone()], &cfg()).unwrap();
        let vc = solve(&[a, b], &cap).unwrap();
        assert_eq!(ve.is_compatible(), vc.is_compatible());
    }

    /// The verdict surface behaves.
    #[test]
    fn verdict_accessors() {
        let compat = Verdict::Compatible {
            rotations: vec![zero_rotation()],
            slack_fraction: 0.5,
        };
        assert!(compat.is_compatible());
        assert_eq!(compat.overlap_fraction(), 0.0);
        let incompat = Verdict::Incompatible {
            best_overlap_fraction: 0.25,
        };
        assert!(!incompat.is_compatible());
        assert_eq!(incompat.rotations(), None);
        assert_eq!(incompat.overlap_fraction(), 0.25);
        let unknown = Verdict::Inconclusive {
            best_overlap_fraction: 0.1,
        };
        assert!(!unknown.is_compatible());
        assert_eq!(unknown.overlap_fraction(), 0.1);
    }

    /// A tiny budget on a hard instance yields Inconclusive, not a wrong
    /// answer.
    #[test]
    fn budget_exhaustion_is_honest() {
        // Feasible but needing search: several jobs, tight fit.
        let jobs: Vec<Profile> = (0..5)
            .map(|i| Profile::compute_then_comm(ms(80 + i), ms(20 - i)))
            .collect();
        let mut c = cfg();
        c.max_steps = 3; // absurdly small
        c.restarts = 1;
        let v = solve(&jobs, &c).unwrap();
        assert!(
            matches!(v, Verdict::Inconclusive { .. }) || v.is_compatible(),
            "tiny budget must not prove incompatibility: {v:?}"
        );
    }

    /// The max-margin solver finds the robustness slack: two half-loaded
    /// jobs on a 100 ms circle have 50 ms of free arc, so each arc can
    /// inflate by ~12.5 ms on each side before the fit is exact.
    #[test]
    fn max_margin_finds_the_slack() {
        let a = Profile::compute_then_comm(ms(75), ms(25));
        let b = Profile::compute_then_comm(ms(75), ms(25));
        let (v, margin) =
            crate::solve_max_margin(&[a, b], &cfg(), ms(40), Dur::from_micros(500)).unwrap();
        assert!(v.is_compatible());
        // Free space: 100 − 50 = 50 ms over 4 inflated arc sides → 12.5 ms
        // per side, minus sector-rounding slack.
        let m = margin.as_millis_f64();
        assert!((11.0..=12.5).contains(&m), "margin {m:.2} ms");
        // An exactly-full pair has no slack at all.
        let c = Profile::compute_then_comm(ms(50), ms(50));
        let d = Profile::compute_then_comm(ms(50), ms(50));
        let (v, margin) =
            crate::solve_max_margin(&[c, d], &cfg(), ms(40), Dur::from_micros(500)).unwrap();
        assert!(v.is_compatible());
        assert!(margin < ms(1), "tight pair margin {margin}");
        // Incompatible pairs report zero margin with the base verdict.
        let e = Profile::compute_then_comm(ms(30), ms(70));
        let f = Profile::compute_then_comm(ms(30), ms(70));
        let (v, margin) =
            crate::solve_max_margin(&[e, f], &cfg(), ms(40), Dur::from_micros(500)).unwrap();
        assert!(!v.is_compatible());
        assert_eq!(margin, Dur::ZERO);
    }

    /// A huge margin budget that still fits is returned as-is.
    #[test]
    fn max_margin_saturates_at_budget() {
        let a = Profile::compute_then_comm(ms(95), ms(5));
        let b = Profile::compute_then_comm(ms(95), ms(5));
        let (v, margin) =
            crate::solve_max_margin(&[a, b], &cfg(), ms(10), Dur::from_micros(500)).unwrap();
        assert!(v.is_compatible());
        assert_eq!(margin, ms(10));
    }

    /// Online admission against fixed residents: feasible when space
    /// remains, refused when the newcomer cannot fit around them, and the
    /// returned rotation verifiably avoids every resident.
    #[test]
    fn admit_respects_fixed_residents() {
        let cfg = cfg();
        // Resident occupying [50, 80) of a 100 ms circle (rotated there).
        let resident = Profile::compute_then_comm(ms(70), ms(30));
        let r_rot = Rotation {
            sectors: 0,
            shift: ms(80), // comm [70,100) shifted 80 → [150,180) ≡ [50,80)
            degrees: 0.0,
        };
        // Newcomer needing 40 ms: fits in the remaining 70.
        let newcomer = Profile::compute_then_comm(ms(60), ms(40));
        let got = admit(&[(resident.clone(), r_rot)], &newcomer, &cfg)
            .unwrap()
            .expect("40 ms fits around a 30 ms resident");
        let placed = newcomer.rotated(got.shift);
        let fixed = resident.rotated(r_rot.shift);
        for t in 0..100 {
            assert!(
                !(placed.communicating_at(ms(t)) && fixed.communicating_at(ms(t))),
                "overlap at {t} ms"
            );
        }
        // A newcomer needing 75 ms cannot fit around 30.
        let big = Profile::compute_then_comm(ms(25), ms(75));
        assert!(admit(&[(resident, r_rot)], &big, &cfg).unwrap().is_none());
    }

    /// Admission is strictly weaker than a full re-solve: two residents
    /// pinned at clashing-for-the-newcomer positions can refuse a job that
    /// a global re-solve would fit.
    #[test]
    fn admit_is_weaker_than_resolve() {
        let cfg = cfg();
        // Residents: 30 ms arcs pinned at [0,30) and [50,80) — the free
        // gaps are 20 ms each, too small for a 35 ms newcomer.
        let a = Profile::new(
            ms(100),
            vec![crate::Arc {
                start: ms(0),
                end: ms(30),
            }],
            1.0,
        );
        let b = Profile::new(
            ms(100),
            vec![crate::Arc {
                start: ms(50),
                end: ms(80),
            }],
            1.0,
        );
        let zero = Rotation {
            sectors: 0,
            shift: Dur::ZERO,
            degrees: 0.0,
        };
        let newcomer = Profile::compute_then_comm(ms(65), ms(35));
        assert!(
            admit(&[(a.clone(), zero), (b.clone(), zero)], &newcomer, &cfg)
                .unwrap()
                .is_none()
        );
        // But globally, 30 + 30 + 35 = 95 ≤ 100: a full re-solve fits it.
        let v = solve(&[a, b, newcomer], &cfg).unwrap();
        assert!(v.is_compatible(), "{v:?}");
    }

    /// A compatible verdict's rotations score zero overlap; the unrotated
    /// (all-zero) assignment of a clashing pair scores positive, and a
    /// fully clashing pair scores its joint arc length.
    #[test]
    fn overlap_of_assignment_matches_verdict() {
        let a = Profile::compute_then_comm(ms(141), ms(114));
        let b = Profile::compute_then_comm(ms(200), ms(55));
        let v = solve_pair(&a, &b, &cfg()).unwrap();
        let rots = v.rotations().unwrap();
        let sectors = cfg().sectors;
        let solved = overlap_fraction_of(&[a.clone(), b.clone()], rots, sectors).unwrap();
        assert_eq!(solved, 0.0, "compatible rotations must not overlap");
        // Identical jobs left unrotated collide over their whole comm arc.
        let c = Profile::compute_then_comm(ms(75), ms(25));
        let zero = [zero_rotation(), zero_rotation()];
        let clash = overlap_fraction_of(&[c.clone(), c.clone()], &zero, sectors).unwrap();
        assert!((clash - 0.25).abs() < 0.01, "clash {clash}");
        // Rotating one of them by its arc length clears the overlap.
        let shifted = [
            zero_rotation(),
            Rotation {
                sectors: sectors / 4,
                shift: ms(25),
                degrees: 90.0,
            },
        ];
        let cleared = overlap_fraction_of(&[c.clone(), c], &shifted, sectors).unwrap();
        assert_eq!(cleared, 0.0, "rotated copies must not overlap");
    }

    /// Determinism: same inputs and seed give the same verdict and
    /// rotations.
    #[test]
    fn solver_is_deterministic() {
        let jobs = [
            Profile::compute_then_comm(ms(141), ms(114)),
            Profile::compute_then_comm(ms(200), ms(55)),
        ];
        let v1 = solve(&jobs, &cfg()).unwrap();
        let v2 = solve(&jobs, &cfg()).unwrap();
        assert_eq!(v1, v2);
    }
}
