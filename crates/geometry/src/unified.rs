//! [`UnifiedCircle`]: jobs with different iteration times on one circle.
//!
//! Per §3 of the paper, jobs with different iteration times are compared on
//! a circle whose perimeter is the **least common multiple** of all
//! iteration times; a job with period `P` appears `LCM/P` times around it.
//! The circle is then discretized into `S` equal sectors for the solver.
//!
//! # Soundness of the discretization
//!
//! A sector is marked busy for a job if the job communicates *anywhere*
//! within it, so a job's [`SectorMask`] is a superset of its true arcs.
//! Rotating the mask by `o` sectors equals shifting the (quantized) pattern
//! by exactly `o · perimeter / S`, so a rotation assignment that is
//! conflict-free on masks is conflict-free for the true arcs too: the
//! solver can return false *incompatible* verdicts near the resolution
//! limit, but never a false *compatible* one.

use crate::{Profile, SectorMask};
use simtime::{lcm_many, Dur};

/// Why a unified circle could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// No profiles were supplied.
    EmptyJobSet,
    /// The LCM of the periods overflows `u64` nanoseconds; quantize the
    /// periods onto a coarser grid first (see [`quantize_period`]).
    PerimeterOverflow,
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::EmptyJobSet => write!(f, "no job profiles supplied"),
            GeometryError::PerimeterOverflow => write!(
                f,
                "LCM of iteration times overflows; quantize periods to a coarser grid"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Rounds an iteration time to the nearest multiple of `grid` (minimum one
/// grid step). Real iteration times are measured, not exact; snapping them
/// to, say, a 1 ms grid keeps the unified-circle perimeter tractable, at
/// the cost of sub-grid phase error the congestion-control layer absorbs
/// anyway.
///
/// # Panics
/// Panics if `grid` is zero.
pub fn quantize_period(period: Dur, grid: Dur) -> Dur {
    assert!(!grid.is_zero(), "quantize_period: zero grid");
    let steps = (period.as_nanos() + grid.as_nanos() / 2) / grid.as_nanos();
    grid * steps.max(1)
}

/// The discretized unified circle for a set of job profiles.
#[derive(Debug, Clone)]
pub struct UnifiedCircle {
    perimeter: Dur,
    sectors: usize,
    masks: Vec<SectorMask>,
    demands: Vec<f64>,
    periods: Vec<Dur>,
}

impl UnifiedCircle {
    /// Builds the unified circle for `profiles`, discretized into `sectors`
    /// sectors.
    ///
    /// # Panics
    /// Panics if `sectors == 0`.
    pub fn new(profiles: &[Profile], sectors: usize) -> Result<UnifiedCircle, GeometryError> {
        assert!(sectors > 0, "UnifiedCircle: zero sectors");
        if profiles.is_empty() {
            return Err(GeometryError::EmptyJobSet);
        }
        let periods: Vec<Dur> = profiles.iter().map(|p| p.period()).collect();
        let perimeter = lcm_many(&periods).ok_or(GeometryError::PerimeterOverflow)?;
        let masks = profiles
            .iter()
            .map(|p| Self::quantize(p, perimeter, sectors))
            .collect();
        let demands = profiles.iter().map(|p| p.demand()).collect();
        Ok(UnifiedCircle {
            perimeter,
            sectors,
            masks,
            demands,
            periods,
        })
    }

    /// Marks every sector that any tiled repetition of `p`'s arcs touches.
    fn quantize(p: &Profile, perimeter: Dur, sectors: usize) -> SectorMask {
        let mut mask = SectorMask::empty(sectors);
        let reps = perimeter / p.period();
        let s = sectors as u128;
        let per = perimeter.as_nanos() as u128;
        for rep in 0..reps {
            let base = p.period().as_nanos() as u128 * rep as u128;
            for arc in p.arcs() {
                let a = base + arc.start.as_nanos() as u128;
                let b = base + arc.end.as_nanos() as u128; // exclusive
                                                           // First sector touched: floor(a·S/P). Last: the sector
                                                           // containing the final nanosecond, floor((b-1)·S/P).
                let first = (a * s / per) as usize;
                let last = ((b - 1) * s / per) as usize;
                for sector in first..=last.min(sectors - 1) {
                    mask.set(sector);
                }
            }
        }
        mask
    }

    /// The circle's perimeter (the LCM of all periods).
    pub fn perimeter(&self) -> Dur {
        self.perimeter
    }

    /// Number of sectors in the discretization.
    pub fn sectors(&self) -> usize {
        self.sectors
    }

    /// Number of jobs on the circle.
    pub fn job_count(&self) -> usize {
        self.masks.len()
    }

    /// Job `j`'s occupancy mask.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    pub fn mask(&self, j: usize) -> &SectorMask {
        &self.masks[j]
    }

    /// All occupancy masks.
    pub fn masks(&self) -> &[SectorMask] {
        &self.masks
    }

    /// Job `j`'s bandwidth demand while communicating.
    pub fn demand(&self, j: usize) -> f64 {
        self.demands[j]
    }

    /// Job `j`'s original period.
    pub fn period(&self, j: usize) -> Dur {
        self.periods[j]
    }

    /// The time shift corresponding to a rotation by `offset` sectors.
    pub fn shift_of(&self, offset: usize) -> Dur {
        let ns = self.perimeter.as_nanos() as u128 * (offset % self.sectors) as u128
            / self.sectors as u128;
        Dur::from_nanos(ns as u64)
    }

    /// The rotation angle in degrees for a rotation by `offset` sectors
    /// (counterclockwise, as drawn in the paper's figures).
    pub fn degrees_of(&self, offset: usize) -> f64 {
        360.0 * (offset % self.sectors) as f64 / self.sectors as f64
    }

    /// Upper bound on useful rotation offsets for job `j`: shifting by more
    /// than one (quantized) period revisits equivalent positions.
    pub fn offset_cap(&self, j: usize) -> usize {
        let cap = (self.periods[j].as_nanos() as u128 * self.sectors as u128)
            .div_ceil(self.perimeter.as_nanos() as u128) as usize;
        cap.clamp(1, self.sectors)
    }

    /// Per-sector count of communicating jobs under the given rotation
    /// offsets (one per job, in sectors) — the data behind a contention
    /// heatmap of the circle. All zeros and ones ⇔ the rotation assignment
    /// is conflict-free.
    ///
    /// # Panics
    /// Panics if `offsets` length mismatches the job count.
    pub fn contention_profile(&self, offsets: &[usize]) -> Vec<u32> {
        assert_eq!(
            offsets.len(),
            self.masks.len(),
            "contention_profile: offsets length mismatch"
        );
        let mut counts = vec![0u32; self.sectors];
        for (m, &o) in self.masks.iter().zip(offsets) {
            for i in m.rotated(o).iter_set() {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Fraction of sector-capacity consumed if every job's busy sectors
    /// were disjoint: `Σ_j demand_j · busy_j / S`. A value above 1 makes
    /// exclusive compatibility impossible regardless of rotation.
    pub fn load(&self) -> f64 {
        self.masks
            .iter()
            .zip(&self.demands)
            .map(|(m, &d)| d * m.count() as f64)
            .sum::<f64>()
            / self.sectors as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    /// The paper's Fig. 5: periods 40 ms and 60 ms → 120 ms unified circle;
    /// J1 appears 3 times, J2 twice.
    #[test]
    fn fig5_unified_circle() {
        let j1 = Profile::compute_then_comm(ms(30), ms(10)); // comm [30,40)
        let j2 = Profile::compute_then_comm(ms(40), ms(20)); // comm [40,60)
        let uc = UnifiedCircle::new(&[j1, j2], 120).unwrap();
        assert_eq!(uc.perimeter(), ms(120));
        assert_eq!(uc.sectors(), 120);
        // Sector = 1 ms here. J1 busy at [30,40)∪[70,80)∪[110,120).
        let m1 = uc.mask(0);
        assert_eq!(m1.count(), 30);
        assert!(m1.get(30) && m1.get(39) && m1.get(70) && m1.get(119));
        assert!(!m1.get(29) && !m1.get(40));
        // J2 busy at [40,60)∪[100,120).
        let m2 = uc.mask(1);
        assert_eq!(m2.count(), 40);
        assert!(m2.get(40) && m2.get(59) && m2.get(100) && m2.get(119));
        assert!(!m2.get(39) && !m2.get(60) && !m2.get(99));
        // Load: (30 + 40) / 120.
        assert!((uc.load() - 70.0 / 120.0).abs() < 1e-12);
        // Offset caps: one period each.
        assert_eq!(uc.offset_cap(0), 40);
        assert_eq!(uc.offset_cap(1), 60);
    }

    #[test]
    fn quantization_is_conservative() {
        // Comm [10, 11) ms on a 100 ms period with only 10 sectors
        // (10 ms each): the arc straddles sector 1 → marked busy.
        let p = Profile::compute_then_comm(ms(10), ms(1));
        // period = 11ms; use same-period pair to keep perimeter = 11 ms.
        let uc = UnifiedCircle::new(&[p], 10).unwrap();
        // Arc [10ms, 11ms) of an 11 ms perimeter: sectors are 1.1 ms each;
        // first = floor(10/1.1·...) — verify at least one sector set and
        // that the true arc is covered.
        let m = uc.mask(0);
        assert!(m.count() >= 1);
        // The sector containing offset 10.5 ms must be set:
        let idx = (10_500_000u128 * 10 / 11_000_000) as usize;
        assert!(m.get(idx));
    }

    #[test]
    fn shift_and_degrees() {
        let p = Profile::compute_then_comm(ms(60), ms(60));
        let uc = UnifiedCircle::new(&[p], 360).unwrap();
        assert_eq!(uc.perimeter(), ms(120));
        // 30° on a 120 ms circle = 10 ms (the paper's Fig. 5d rotation).
        assert_eq!(uc.degrees_of(30), 30.0);
        assert_eq!(uc.shift_of(30), ms(10));
        assert_eq!(uc.shift_of(0), Dur::ZERO);
        assert_eq!(uc.shift_of(360), Dur::ZERO); // full turn wraps
    }

    #[test]
    fn errors() {
        assert_eq!(
            UnifiedCircle::new(&[], 100).unwrap_err(),
            GeometryError::EmptyJobSet
        );
        // Coprime huge periods overflow the LCM.
        let a = Profile::compute_then_comm(Dur::from_nanos((1 << 61) - 1), Dur::from_nanos(1));
        let b = Profile::compute_then_comm(Dur::from_nanos(1 << 61), Dur::from_nanos(2));
        assert_eq!(
            UnifiedCircle::new(&[a, b], 100).unwrap_err(),
            GeometryError::PerimeterOverflow
        );
    }

    #[test]
    fn quantize_period_snaps() {
        let grid = ms(1);
        assert_eq!(quantize_period(Dur::from_micros(255_400), grid), ms(255));
        assert_eq!(quantize_period(Dur::from_micros(255_500), grid), ms(256));
        assert_eq!(quantize_period(Dur::from_micros(10), grid), ms(1)); // min one step
        assert_eq!(quantize_period(ms(40), grid), ms(40)); // exact stays
    }

    #[test]
    fn contention_profile_counts_overlaps() {
        let a = Profile::compute_then_comm(ms(50), ms(50)); // comm [50,100)
        let b = Profile::compute_then_comm(ms(50), ms(50)); // comm [50,100)
        let uc = UnifiedCircle::new(&[a, b], 100).unwrap();
        // Unrotated: both communicate in the same half → counts of 2.
        let hot = uc.contention_profile(&[0, 0]);
        assert_eq!(hot.iter().filter(|&&c| c == 2).count(), 50);
        assert_eq!(hot.iter().filter(|&&c| c == 0).count(), 50);
        // Rotate b by half the circle: perfect interleave, all ≤ 1.
        let cool = uc.contention_profile(&[0, 50]);
        assert!(cool.iter().all(|&c| c <= 1));
        assert_eq!(cool.iter().sum::<u32>(), 100);
    }

    #[test]
    fn same_period_jobs_tile_once() {
        let a = Profile::compute_then_comm(ms(141), ms(114));
        let b = Profile::compute_then_comm(ms(200), ms(55));
        let uc = UnifiedCircle::new(&[a, b], 255).unwrap();
        assert_eq!(uc.perimeter(), ms(255));
        assert_eq!(uc.mask(0).count(), 114);
        assert_eq!(uc.mask(1).count(), 55);
        assert_eq!(uc.offset_cap(0), 255);
    }
}
