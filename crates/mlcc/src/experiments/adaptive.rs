//! §4.i: the adaptively-unfair congestion control scheme.
//!
//! A job's aggressiveness scales with its progress through the current
//! communication phase (`1 + sent/total`), so a job near the end of its
//! allreduce out-competes one just starting. The paper's two claims, as we
//! test them:
//!
//! 1. **Compatible jobs interleave.** Against the paper's scenario-1
//!    convention (synchronized starts, where fair DCQCN locks both jobs
//!    into perpetual contention at `K + 2C`), an adaptively-unfair pair
//!    with a realistic staggered start converges to dedicated-network
//!    pace — with *no per-job tuning* (contrast the static `T` knob, which
//!    must be assigned per job).
//! 2. **Incompatible jobs are not victimized.** Deployed cluster-wide,
//!    static unfairness durably hurts the less-aggressive job of an
//!    incompatible mix; the adaptive scheme degenerates to near-fair
//!    sharing because the jobs "take turns being the aggressive party".
//!    We run BERT(8) + VGG19(1200) under fair, static and adaptive and
//!    compare the victim's iteration time.
//!
//! Reproduction note (see also `EXPERIMENTS.md`): the paper's literal
//! formula boosts only `R_AI`, which is numerically inert in the
//! CNP-dominated contention regime (increase stages reset on every CNP, so
//! additive increase rarely fires). Our [`dcqcn::DcqcnRp`] therefore applies
//! the same monotone progress→aggressiveness mapping to the multiplicative
//! decrease as well — a job at progress `p` cuts by `alpha/(2(1+p))`.

use crate::metrics::{JobStats, Speedup};
use crate::parallel;
use dcqcn::CcVariant;
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use simtime::{Bandwidth, Dur, Time};
use telemetry::{Event, ForkableRecorder, NoopRecorder, Recorder};
use workload::{JobSpec, Model};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// A compatible pair (default: two VGG19(1200)s).
    pub compatible: [JobSpec; 2],
    /// An incompatible pair (default: BERT(8) + VGG19(1200); the VGG19 is
    /// the prospective victim).
    pub incompatible: [JobSpec; 2],
    /// Start offset of the second job in the *adaptive/static* runs. Real
    /// clusters never start two jobs on the same nanosecond; the offset
    /// seeds the phase asymmetry the schemes act on. (The deterministic
    /// engine keeps two perfectly-synchronized identical jobs symmetric
    /// forever — a measure-zero configuration that the fair baseline
    /// deliberately uses, matching the paper's Fig. 2 presentation.)
    pub seed_offset: Dur,
    /// Timer for the aggressive job under static unfairness.
    pub static_timer: Dur,
    /// Iterations per scenario.
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            compatible: [
                JobSpec::reference(Model::Vgg19, 1200),
                JobSpec::reference(Model::Vgg19, 1200),
            ],
            incompatible: [
                JobSpec::reference(Model::BertLarge, 8),
                JobSpec::reference(Model::Vgg19, 1200),
            ],
            seed_offset: Dur::from_millis(5),
            static_timer: Dur::from_micros(100),
            iterations: 24,
            warmup: 8,
        }
    }
}

/// The §4.i experiment result.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// Compatible pair, synchronized starts, fair DCQCN: the locked
    /// contended baseline (`K + 2C`).
    pub compatible_fair_sync: Vec<JobStats>,
    /// Compatible pair, staggered start, adaptive unfairness: should reach
    /// dedicated-network pace.
    pub compatible_adaptive: Vec<JobStats>,
    /// Incompatible pair under fair DCQCN (staggered).
    pub incompatible_fair: Vec<JobStats>,
    /// Incompatible pair under static unfairness (first job aggressive).
    pub incompatible_static: Vec<JobStats>,
    /// Incompatible pair under adaptive unfairness (both adaptive).
    pub incompatible_adaptive: Vec<JobStats>,
}

impl AdaptiveResult {
    /// Compatible-pair speedups: adaptive (staggered) over the locked fair
    /// baseline.
    pub fn compatible_speedups(&self) -> Vec<Speedup> {
        self.compatible_fair_sync
            .iter()
            .zip(&self.compatible_adaptive)
            .map(|(f, a)| a.speedup_vs(f))
            .collect()
    }

    /// The victim's (job 1 of the incompatible pair) speedups vs fair,
    /// under `(static, adaptive)`.
    pub fn victim_speedups(&self) -> (Speedup, Speedup) {
        (
            self.incompatible_static[1].speedup_vs(&self.incompatible_fair[1]),
            self.incompatible_adaptive[1].speedup_vs(&self.incompatible_fair[1]),
        )
    }

    /// Renders a summary table.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "scenario".to_string(),
            "job".to_string(),
            "median".to_string(),
            "vs fair".to_string(),
        ]];
        let compat_sp = self.compatible_speedups();
        for (i, s) in self.compatible_fair_sync.iter().enumerate() {
            rows.push(vec![
                if i == 0 {
                    "compatible/fair(sync)".into()
                } else {
                    String::new()
                },
                s.label.clone(),
                format!("{:.0} ms", s.median_ms()),
                "1.00×".to_string(),
            ]);
        }
        for (i, s) in self.compatible_adaptive.iter().enumerate() {
            rows.push(vec![
                if i == 0 {
                    "compatible/adaptive".into()
                } else {
                    String::new()
                },
                s.label.clone(),
                format!("{:.0} ms", s.median_ms()),
                compat_sp[i].to_string(),
            ]);
        }
        for (name, stats) in [
            ("incompatible/fair", &self.incompatible_fair),
            ("incompatible/static", &self.incompatible_static),
            ("incompatible/adaptive", &self.incompatible_adaptive),
        ] {
            for (i, s) in stats.iter().enumerate() {
                let sp = s.speedup_vs(&self.incompatible_fair[i]);
                rows.push(vec![
                    if i == 0 {
                        name.to_string()
                    } else {
                        String::new()
                    },
                    s.label.clone(),
                    format!("{:.0} ms", s.median_ms()),
                    sp.to_string(),
                ]);
            }
        }
        crate::metrics::text_table(&rows)
    }
}

fn run_pair<R: Recorder>(
    jobs: [JobSpec; 2],
    variants: [CcVariant; 2],
    offset: Dur,
    cfg: &AdaptiveConfig,
    rec: R,
) -> Vec<JobStats> {
    let mut second = RateJob::new(jobs[1], variants[1]);
    second.start_offset = offset;
    let rj = [RateJob::new(jobs[0], variants[0]), second];
    let mut sim = RateSimulator::with_recorder(RateSimConfig::default(), &rj, rec);
    let cap = Bandwidth::from_gbps(50);
    let per_iter = jobs[0]
        .iteration_time_at(cap)
        .max(jobs[1].iteration_time_at(cap));
    let ok = sim.run_until_iterations(cfg.iterations, per_iter * (cfg.iterations as u64 * 4 + 40));
    assert!(ok, "adaptive: pair did not finish");
    (0..2)
        .map(|i| JobStats::from_progress(sim.progress(i), cfg.warmup))
        .collect()
}

/// Runs all five scenarios.
pub fn run(cfg: &AdaptiveConfig) -> AdaptiveResult {
    run_traced(cfg, NoopRecorder)
}

/// Runs all five scenarios, streaming telemetry into `rec` with a marker
/// per scenario. The scenarios are independent simulations and run in
/// parallel under [`parallel::jobs`] workers; results and telemetry are
/// identical to a serial run.
pub fn run_traced<R: ForkableRecorder>(cfg: &AdaptiveConfig, mut rec: R) -> AdaptiveResult {
    let fair = [CcVariant::Fair, CcVariant::Fair];
    let adaptive = [CcVariant::AdaptiveUnfair, CcVariant::AdaptiveUnfair];
    let stat = [
        CcVariant::StaticUnfair {
            timer: cfg.static_timer,
        },
        CcVariant::Fair,
    ];
    let units: [(&str, [JobSpec; 2], [CcVariant; 2], Dur); 5] = [
        ("compatible-fair-sync", cfg.compatible, fair, Dur::ZERO),
        (
            "compatible-adaptive",
            cfg.compatible,
            adaptive,
            Dur::from_millis(15),
        ),
        ("incompatible-fair", cfg.incompatible, fair, cfg.seed_offset),
        (
            "incompatible-static",
            cfg.incompatible,
            stat,
            cfg.seed_offset,
        ),
        (
            "incompatible-adaptive",
            cfg.incompatible,
            adaptive,
            cfg.seed_offset,
        ),
    ];
    let mut out =
        parallel::map_traced(&mut rec, &units, |_, &(name, jobs, variants, off), fork| {
            if R::ENABLED {
                fork.record(
                    Time::ZERO,
                    Event::Scenario {
                        name: format!("adaptive/{name}"),
                    },
                );
            }
            run_pair(jobs, variants, off, cfg, fork)
        });
    let incompatible_adaptive = out.pop().expect("five scenarios");
    let incompatible_static = out.pop().expect("five scenarios");
    let incompatible_fair = out.pop().expect("five scenarios");
    let compatible_adaptive = out.pop().expect("five scenarios");
    let compatible_fair_sync = out.pop().expect("five scenarios");
    AdaptiveResult {
        compatible_fair_sync,
        compatible_adaptive,
        incompatible_fair,
        incompatible_static,
        incompatible_adaptive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_helps_compatible_and_spares_incompatible() {
        let cfg = AdaptiveConfig {
            iterations: 16,
            warmup: 8,
            ..AdaptiveConfig::default()
        };
        let r = run(&cfg);
        // Claim 1: the compatible pair reaches dedicated-network pace —
        // a large gain over the locked fair baseline.
        let solo = cfg.compatible[0]
            .iteration_time_at(Bandwidth::from_gbps(50))
            .as_millis_f64();
        for (i, s) in r.compatible_adaptive.iter().enumerate() {
            assert!(
                (s.median_ms() - solo).abs() < solo * 0.02,
                "compatible job {i}: adaptive median {:.0} ms vs solo {solo:.0} ms",
                s.median_ms()
            );
        }
        for (i, sp) in r.compatible_speedups().iter().enumerate() {
            assert!(
                sp.0 > 1.3,
                "compatible job {i}: speedup {sp} vs locked fair baseline"
            );
        }
        // Claim 2: static unfairness victimizes the incompatible VGG19;
        // adaptive does not.
        let (static_victim, adaptive_victim) = r.victim_speedups();
        assert!(
            static_victim.0 < 0.98,
            "static unfairness should hurt the victim (got {static_victim})"
        );
        assert!(
            adaptive_victim.0 > 0.98,
            "adaptive unfairness should spare the victim (got {adaptive_victim})"
        );
        assert!(adaptive_victim.0 > static_victim.0 + 0.02);
        assert!(r.render().contains("adaptive"));
    }
}
