//! Fault injection for the experiments, plus the `chaos_sweep` grid.
//!
//! [`apply_rate`] expands a [`faults::ChaosConfig`] for a rate-engine run
//! and maps it onto the engine's knobs: per-job phase noise, late-arrival
//! start offsets and departure deadlines, the bottleneck link's capacity
//! schedule, and DCQCN signal loss. With [`ChaosConfig::none`] it returns
//! without touching anything, so unperturbed runs stay bit-identical to a
//! build without chaos plumbing.
//!
//! [`run`] sweeps a seeds × profiles grid over the Fig. 1 pair (aggressive
//! VGG19 vs fair VGG19 on the 50 Gbps bottleneck): each cell runs under
//! one seeded chaos profile, records telemetry, and feeds it through
//! [`diagnostics::recovery`] to measure how long the pair takes to
//! re-interleave after each perturbation. The per-cell medians, fault
//! windows, and recovery times are the `BENCH_chaos.json` payload.

use crate::metrics::{text_table, JobStats};
use crate::parallel;
use dcqcn::CcVariant;
use diagnostics::{recovery, RecoveryConfig, RecoveryReport};
use faults::ChaosConfig;
use netsim::rate::{RateJob, RateSimConfig, RateSimulator, RateSnapshot};
use netsim::snapshot::Snapshottable;
use simtime::{Dur, Time};
use telemetry::{BufferRecorder, Event, ForkableRecorder, NoopRecorder, Recorder};
use topology::LinkSchedule;
use workload::{JobProgress, JobSpec, Model};

/// Applies `chaos` to a rate-engine run lasting roughly `horizon`.
///
/// Per-job phase noise, arrival delays (added to the existing start
/// offsets), and departure deadlines land on `jobs`; the bottleneck-link
/// capacity schedule and DCQCN signal loss land on `sim`. A
/// [`ChaosConfig::none`] config is an exact no-op: nothing is read or
/// written, so quiet runs remain byte-identical.
pub fn apply_rate(
    chaos: &ChaosConfig,
    jobs: &mut [RateJob],
    sim: &mut RateSimConfig,
    horizon: Dur,
) {
    if chaos.is_none() {
        return;
    }
    // The rate engine models a single shared bottleneck: one link.
    let plan = chaos.compile(jobs.len(), 1, horizon);
    for (i, job) in jobs.iter_mut().enumerate() {
        job.noise = plan.noise[i];
        job.start_offset += plan.arrivals[i];
        job.depart_at = plan.departures[i];
    }
    match plan.link_schedules.first() {
        Some(s) if !s.is_identity() => sim.capacity_schedule = Some(s.clone()),
        _ => {}
    }
    sim.signal_loss = plan.signal_loss;
}

/// Shifts a compiled link schedule's change points forward by `by`, so a
/// plan compiled over a post-fork remainder lands in absolute time.
fn shift_schedule(s: &LinkSchedule, by: Dur) -> LinkSchedule {
    LinkSchedule::new(s.changes().iter().map(|&(t, m)| (t + by, m)).collect())
}

/// Applies `chaos` to an already-running rate simulator at a fork
/// barrier: the plan is compiled over the post-fork `remaining` horizon
/// and its absolute times shifted by `fork_at`. Phase noise takes effect
/// at each job's next iteration rollover; schedules and signal loss apply
/// from the barrier on.
///
/// Late arrivals are **not representable** after a fork — every job
/// already started inside the shared prefix. The builtin sweep profiles
/// (`stragglers`, `links`) have churn arrivals off; a profile that draws
/// one panics rather than silently diverging from its from-`t=0` meaning.
pub fn apply_rate_at_barrier<R: Recorder>(
    chaos: &ChaosConfig,
    sim: &mut RateSimulator<R>,
    jobs: usize,
    fork_at: Dur,
    remaining: Dur,
) {
    if chaos.is_none() {
        return;
    }
    let plan = chaos.compile(jobs, 1, remaining);
    assert!(
        plan.arrivals.iter().all(|d| d.is_zero()),
        "forked sweep: late arrivals cannot be applied after the shared \
         prefix (use an arrival-free profile or run without --fork-at)"
    );
    for i in 0..jobs {
        sim.set_noise(i, plan.noise[i]);
        sim.set_depart_at(i, plan.departures[i].map(|t| t + fork_at));
    }
    match plan.link_schedules.first() {
        Some(s) if !s.is_identity() => sim.set_capacity_schedule(Some(shift_schedule(s, fork_at))),
        _ => {}
    }
    sim.set_signal_loss(plan.signal_loss);
}

/// Simulation-budget multiplier for a perturbed run: degraded links and
/// stragglers legitimately stretch iterations well past the clean-run
/// budget. `1` (no change) when chaos is off.
pub fn budget_slack(chaos: &ChaosConfig) -> u64 {
    if chaos.is_none() {
        1
    } else {
        4
    }
}

/// Job statistics with a degraded-run fallback: a perturbed job that
/// departed before clearing the warmup cut still gets statistics over
/// whatever iterations it did finish. Identical to
/// [`JobStats::from_progress`] whenever the job ran long enough.
pub fn stats_tolerant(progress: &JobProgress, warmup: usize) -> JobStats {
    JobStats::try_from_progress(progress, warmup)
        .or_else(|_| JobStats::try_from_progress(progress, 0))
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Parameters of the chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosSweepConfig {
    /// The competing pair (default: the Fig. 1 VGG19 duo; job 0 runs the
    /// aggressive timer, job 1 stays fair, so the baseline interleaves).
    pub jobs: [JobSpec; 2],
    /// Aggressive DCQCN timer for job 0.
    pub aggressive_timer: Dur,
    /// Iterations per cell.
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
    /// Seeds of the grid's rows.
    pub seeds: Vec<u64>,
    /// Builtin profile names of the grid's columns (see
    /// [`ChaosConfig::profile`]).
    pub profiles: Vec<String>,
    /// Engine configuration each cell starts from.
    pub sim: RateSimConfig,
}

impl Default for ChaosSweepConfig {
    fn default() -> ChaosSweepConfig {
        ChaosSweepConfig {
            jobs: [
                JobSpec::reference(Model::Vgg19, 1200),
                JobSpec::reference(Model::Vgg19, 1200),
            ],
            aggressive_timer: Dur::from_micros(100),
            iterations: 40,
            warmup: 5,
            // Chosen so every cell perturbs *and* recovers: under "links"
            // each seed hits the single bottleneck (degrade_prob is per
            // link and there is one link) early enough to watch the
            // recovery — 6 compiles to a flap train, 16 and 25 to
            // degradation windows — and under "stragglers" none of them
            // lands a straggler so late that no clean iteration follows.
            seeds: vec![6, 16, 25],
            profiles: vec!["stragglers".to_string(), "links".to_string()],
            sim: RateSimConfig::default(),
        }
    }
}

/// One (profile, seed) cell's outcome.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Chaos profile name.
    pub profile: String,
    /// Chaos seed.
    pub seed: u64,
    /// Median iteration time per job, in milliseconds.
    pub medians_ms: Vec<f64>,
    /// The recovery analyzer's verdict on the cell's telemetry.
    pub recovery: RecoveryReport,
}

impl ChaosCell {
    /// The cell's slowest recovery in milliseconds: `0` when no job saw
    /// an incident, `-1` when some incident never recovered before the
    /// run ended.
    pub fn worst_recovery_ms(&self) -> f64 {
        let mut worst = 0.0f64;
        for j in &self.recovery.jobs {
            if j.incidents.is_empty() {
                continue;
            }
            match j.worst_recovery() {
                Some(d) => worst = worst.max(d.as_millis_f64()),
                None => return -1.0,
            }
        }
        worst
    }

    /// Total incidents across the cell's jobs.
    pub fn incidents(&self) -> usize {
        self.recovery.jobs.iter().map(|j| j.incidents.len()).sum()
    }
}

/// The full grid.
#[derive(Debug, Clone)]
pub struct ChaosSweepResult {
    /// Cells in (profile-major, seed-minor) order.
    pub cells: Vec<ChaosCell>,
}

impl ChaosSweepResult {
    /// `true` when every incident in every cell recovered.
    pub fn all_recovered(&self) -> bool {
        self.cells.iter().all(|c| c.recovery.all_recovered())
    }

    /// Renders the grid as text.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "profile".to_string(),
            "seed".to_string(),
            "j1 median".to_string(),
            "j2 median".to_string(),
            "faults".to_string(),
            "incidents".to_string(),
            "worst recovery".to_string(),
            "interleaving".to_string(),
        ]];
        for c in &self.cells {
            rows.push(vec![
                c.profile.clone(),
                c.seed.to_string(),
                format!("{:.1} ms", c.medians_ms[0]),
                format!("{:.1} ms", c.medians_ms[1]),
                c.recovery.fault_windows.len().to_string(),
                c.incidents().to_string(),
                match c.worst_recovery_ms() {
                    w if w < 0.0 => "not recovered".to_string(),
                    0.0 => "-".to_string(),
                    w => format!("{w:.0} ms"),
                },
                if c.recovery.compatibility_break {
                    "broken".to_string()
                } else {
                    "held".to_string()
                },
            ]);
        }
        text_table(&rows)
    }
}

/// The sweep's competing pair: job 0 on the aggressive timer, job 1 fair.
fn base_jobs(cfg: &ChaosSweepConfig) -> [RateJob; 2] {
    [
        RateJob::new(
            cfg.jobs[0],
            CcVariant::StaticUnfair {
                timer: cfg.aggressive_timer,
            },
        ),
        RateJob::new(cfg.jobs[1], CcVariant::Fair),
    ]
}

/// Runs one grid cell, returning its outcome and raw telemetry.
fn run_cell(cfg: &ChaosSweepConfig, profile: &str, seed: u64) -> (ChaosCell, BufferRecorder) {
    let chaos = ChaosConfig {
        seed,
        ..ChaosConfig::profile(profile)
            .unwrap_or_else(|| panic!("chaos_sweep: unknown profile {profile:?}"))
    };
    let mut jobs = base_jobs(cfg);
    let per_iter = cfg.jobs[0]
        .iteration_time_at(cfg.sim.capacity)
        .max(cfg.jobs[1].iteration_time_at(cfg.sim.capacity));
    let mut sim_cfg = cfg.sim.clone();
    apply_rate(
        &chaos,
        &mut jobs,
        &mut sim_cfg,
        per_iter * (cfg.iterations as u64 * 2),
    );
    // Each cell records into its own buffer regardless of the caller's
    // recorder: the recovery analyzer needs the event stream.
    let mut rec = BufferRecorder::new();
    let mut sim = RateSimulator::with_recorder(sim_cfg, &jobs, &mut rec);
    let budget = per_iter * ((cfg.iterations as u64 * 4 + 40) * budget_slack(&chaos));
    let done = sim.run_until_iterations(cfg.iterations, budget);
    assert!(done, "chaos_sweep: cell {profile}/s{seed} did not finish");
    let medians_ms = (0..2)
        .map(|i| stats_tolerant(sim.progress(i), cfg.warmup).median_ms())
        .collect();
    drop(sim);
    let report = recovery(rec.events(), &RecoveryConfig::default());
    (
        ChaosCell {
            profile: profile.to_string(),
            seed,
            medians_ms,
            recovery: report,
        },
        rec,
    )
}

/// Runs the full grid.
pub fn run(cfg: &ChaosSweepConfig) -> ChaosSweepResult {
    run_traced(cfg, NoopRecorder)
}

/// Runs the full grid, streaming each cell's telemetry into `rec` behind
/// an [`Event::Scenario`] marker (`chaos/<profile>/s<seed>`). Cells are
/// independent and run in parallel under [`parallel::jobs`] workers;
/// results and telemetry are identical to a serial run.
pub fn run_traced<R: ForkableRecorder>(cfg: &ChaosSweepConfig, mut rec: R) -> ChaosSweepResult {
    let grid: Vec<(String, u64)> = cfg
        .profiles
        .iter()
        .flat_map(|p| cfg.seeds.iter().map(move |&s| (p.clone(), s)))
        .collect();
    let cells = parallel::map_traced(&mut rec, &grid, |_, (profile, seed), fork| {
        let (cell, cell_rec) = run_cell(cfg, profile, *seed);
        emit_cell(fork, profile, *seed, &cell_rec);
        cell
    });
    ChaosSweepResult { cells }
}

/// Streams one cell's telemetry into a sweep fork behind its
/// [`Event::Scenario`] marker.
fn emit_cell<F: Recorder>(fork: &mut F, profile: &str, seed: u64, cell_rec: &BufferRecorder) {
    if F::ENABLED {
        fork.record(
            Time::ZERO,
            Event::Scenario {
                name: format!("chaos/{profile}/s{seed}"),
            },
        );
        for te in cell_rec.events() {
            fork.record(te.at, te.event.clone());
        }
    }
}

/// Runs one grid cell from a fork barrier: restoring `shared`'s snapshot
/// (fork mode) or re-simulating the clean prefix (replay mode), then
/// applying the cell's chaos at the barrier either way.
fn run_cell_forked(
    cfg: &ChaosSweepConfig,
    profile: &str,
    seed: u64,
    fork_at: Dur,
    shared: Option<&(RateSnapshot, BufferRecorder)>,
) -> (ChaosCell, BufferRecorder) {
    let chaos = ChaosConfig {
        seed,
        ..ChaosConfig::profile(profile)
            .unwrap_or_else(|| panic!("chaos_sweep: unknown profile {profile:?}"))
    };
    let per_iter = cfg.jobs[0]
        .iteration_time_at(cfg.sim.capacity)
        .max(cfg.jobs[1].iteration_time_at(cfg.sim.capacity));
    let horizon = per_iter * (cfg.iterations as u64 * 2);
    let remaining = if fork_at < horizon {
        horizon - fork_at
    } else {
        per_iter
    };
    let mut cell_rec = BufferRecorder::new();
    let medians_ms: Vec<f64> = {
        let mut sim = match shared {
            Some((snap, prefix_rec)) => {
                // The snapshot is recorder-free: replay the prefix's
                // recording first so the cell's stream is byte-identical
                // to one that simulated the prefix itself.
                for te in prefix_rec.events() {
                    cell_rec.record(te.at, te.event.clone());
                }
                RateSimulator::restore(snap.clone(), &mut cell_rec)
                    .expect("clean-prefix snapshot restores")
            }
            None => {
                let jobs = base_jobs(cfg);
                let mut sim = RateSimulator::with_recorder(cfg.sim.clone(), &jobs, &mut cell_rec);
                sim.run_until(Time::ZERO + fork_at);
                sim
            }
        };
        apply_rate_at_barrier(&chaos, &mut sim, 2, fork_at, remaining);
        let budget = per_iter * ((cfg.iterations as u64 * 4 + 40) * budget_slack(&chaos));
        let done = sim.run_until_iterations(cfg.iterations, budget);
        assert!(
            done,
            "chaos_sweep: forked cell {profile}/s{seed} did not finish"
        );
        (0..2)
            .map(|i| stats_tolerant(sim.progress(i), cfg.warmup).median_ms())
            .collect()
    };
    let report = recovery(cell_rec.events(), &RecoveryConfig::default());
    (
        ChaosCell {
            profile: profile.to_string(),
            seed,
            medians_ms,
            recovery: report,
        },
        cell_rec,
    )
}

/// Runs the grid forked from a shared clean prefix: the unperturbed pair
/// runs once to `fork_at`, is snapshotted, and every cell restores the
/// snapshot on a worker thread and applies its chaos at the barrier (see
/// [`apply_rate_at_barrier`]). With `replay`, every cell instead
/// re-simulates the prefix itself — same semantics, so a replay run is
/// the byte-identity baseline gating the fork path's snapshot fidelity.
///
/// Forked semantics differ from [`run_traced`]'s: a cell's chaos plan
/// covers only the post-fork remainder of the horizon, so forked and
/// replay runs are comparable with each other but not with an unforked
/// sweep. The prefix snapshot is cached process-wide keyed on the
/// canonical config hash (see [`crate::forkcache`]).
pub fn run_forked<R: ForkableRecorder>(
    cfg: &ChaosSweepConfig,
    mut rec: R,
    fork_at: Dur,
    replay: bool,
) -> ChaosSweepResult {
    let grid: Vec<(String, u64)> = cfg
        .profiles
        .iter()
        .flat_map(|p| cfg.seeds.iter().map(move |&s| (p.clone(), s)))
        .collect();
    let cells = if replay {
        parallel::map_traced(&mut rec, &grid, |_, (profile, seed), fork| {
            let (cell, cell_rec) = run_cell_forked(cfg, profile, *seed, fork_at, None);
            emit_cell(fork, profile, *seed, &cell_rec);
            cell
        })
    } else {
        let prefix = || {
            let key = simtime::hash::config_hash(&format!(
                "chaos-prefix|{:?}|{:?}|{:?}|{:?}",
                cfg.jobs, cfg.aggressive_timer, cfg.sim, fork_at
            ));
            crate::forkcache::get_or_build(key, || {
                let jobs = base_jobs(cfg);
                let mut prefix_rec = BufferRecorder::new();
                let mut sim = RateSimulator::with_recorder(cfg.sim.clone(), &jobs, &mut prefix_rec);
                sim.run_until(Time::ZERO + fork_at);
                let snap = sim.snapshot().expect("run_until leaves a barrier");
                drop(sim);
                (snap, prefix_rec)
            })
        };
        parallel::map_forked(
            &mut rec,
            &grid,
            prefix,
            |_, (profile, seed), shared, fork| {
                let (cell, cell_rec) =
                    run_cell_forked(cfg, profile, *seed, fork_at, Some(&**shared));
                emit_cell(fork, profile, *seed, &cell_rec);
                cell
            },
        )
    };
    ChaosSweepResult { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ChaosSweepConfig {
        ChaosSweepConfig {
            iterations: 12,
            warmup: 3,
            seeds: vec![13],
            profiles: vec!["stragglers".to_string(), "links".to_string()],
            ..ChaosSweepConfig::default()
        }
    }

    #[test]
    fn apply_none_is_a_no_op() {
        let jobs_before = [
            RateJob::new(JobSpec::reference(Model::Vgg19, 1200), CcVariant::Fair),
            RateJob::new(JobSpec::reference(Model::Vgg19, 1200), CcVariant::Fair),
        ];
        let sim_before = RateSimConfig::default();
        let mut jobs = jobs_before.clone();
        let mut sim = sim_before.clone();
        apply_rate(&ChaosConfig::none(), &mut jobs, &mut sim, Dur::ZERO);
        assert!(sim.capacity_schedule.is_none());
        assert!(sim.signal_loss.is_none());
        for (a, b) in jobs.iter().zip(&jobs_before) {
            assert_eq!(a.start_offset, b.start_offset);
            assert_eq!(a.noise, b.noise);
            assert_eq!(a.depart_at, b.depart_at);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = quick();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.cells.len(), 2);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.medians_ms, y.medians_ms);
            assert_eq!(x.incidents(), y.incidents());
            assert_eq!(x.worst_recovery_ms(), y.worst_recovery_ms());
        }
    }

    #[test]
    fn forked_sweep_matches_replay_byte_for_byte() {
        let cfg = quick();
        let fork_at = Dur::from_millis(120);
        let mut forked_rec = BufferRecorder::new();
        let forked = run_forked(&cfg, &mut forked_rec, fork_at, false);
        let mut replay_rec = BufferRecorder::new();
        let replayed = run_forked(&cfg, &mut replay_rec, fork_at, true);
        assert_eq!(
            forked_rec.events(),
            replay_rec.events(),
            "forked telemetry diverged from the replayed prefix"
        );
        assert_eq!(forked.cells.len(), replayed.cells.len());
        for (f, r) in forked.cells.iter().zip(&replayed.cells) {
            assert_eq!(f.medians_ms, r.medians_ms, "{}/s{}", f.profile, f.seed);
            assert_eq!(f.incidents(), r.incidents());
            assert_eq!(f.worst_recovery_ms(), r.worst_recovery_ms());
        }
    }

    #[test]
    fn link_profile_produces_fault_windows_and_recovers() {
        let cfg = ChaosSweepConfig {
            profiles: vec!["links".to_string()],
            iterations: 12,
            warmup: 3,
            ..ChaosSweepConfig::default()
        };
        let r = run(&cfg);
        // The default seeds are chosen to perturb the bottleneck: every
        // cell must surface at least one fault window.
        for c in &r.cells {
            assert!(
                !c.recovery.fault_windows.is_empty(),
                "seed {} left the link untouched: {}",
                c.seed,
                r.render()
            );
        }
        assert!(r.all_recovered(), "unrecovered incident: {}", r.render());
    }
}
