//! §5 + placement: cluster-level compatibility.
//!
//! A stream of jobs arrives at a two-tier cluster whose racks are too
//! small to hold every job, forcing cross-rack splits onto shared ToR
//! uplinks. The **locality-only** baseline (today's schedulers) splits
//! onto the first feasible racks/spine and lands an incompatible BERT +
//! VGG19 pairing on the same uplinks; the **compatibility-aware** policy
//! (the paper's proposal) sees that coming via the geometry solver and
//! routes the split through a different spine. We then run both clusters
//! in the fluid simulator and compare per-job slowdowns against solo
//! iteration times.
//!
//! When a compatible placement still shares links, the §4.iii mechanism
//! kicks in: rotations from the cluster solver become communication gates.

use crate::metrics::{JobStats, StatsError};
use crate::parallel;
use geometry::Verdict;
use netsim::fluid::{FluidConfig, FluidSimulator, Gate};
use scheduler::{
    gates_from_rotations, ClusterScheduler, PlacementError, PlacementPolicy, SchedulerConfig,
};
use simtime::{Bandwidth, Dur, Time};
use telemetry::{Event, ForkableRecorder, NoopRecorder, Recorder};
use topology::builders::{two_tier, TwoTier};
use workload::{JobSpec, Model};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Racks in the fabric.
    pub racks: usize,
    /// Hosts per rack.
    pub hosts_per_rack: usize,
    /// Spine switches.
    pub spines: usize,
    /// The arriving job stream, in order.
    pub jobs: Vec<JobSpec>,
    /// Iterations per evaluation run.
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        let w3 = |spec: JobSpec| JobSpec { workers: 3, ..spec };
        ClusterConfig {
            racks: 4,
            hosts_per_rack: 2,
            spines: 2,
            jobs: vec![
                w3(JobSpec::reference(Model::BertLarge, 8)),
                w3(JobSpec::reference(Model::Vgg19, 1200)),
                JobSpec::reference(Model::ResNet50, 1600),
            ],
            iterations: 16,
            warmup: 4,
        }
    }
}

/// One placement policy's evaluated outcome.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Per-job iteration statistics.
    pub stats: Vec<JobStats>,
    /// Median iteration time over solo iteration time, per job (1.0 =
    /// dedicated-network pace).
    pub slowdowns: Vec<f64>,
    /// Number of fabric links carrying ≥ 2 jobs.
    pub contended_links: usize,
    /// The cluster solver's verdict on the final placement.
    pub verdict: Verdict,
}

impl PolicyOutcome {
    /// Mean slowdown across jobs.
    pub fn mean_slowdown(&self) -> f64 {
        self.slowdowns.iter().sum::<f64>() / self.slowdowns.len() as f64
    }
}

/// Why a cluster-scale evaluation could not produce a result. Cluster
/// streams are often externally supplied (e.g. [`random_stream`]), so
/// misconfigurations surface as errors instead of panics.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The scheduler could not place a job of the stream.
    Placement(PlacementError),
    /// Jobs did not finish the requested iterations within the time
    /// budget under the named policy.
    Incomplete {
        /// `"locality"` or `"compatibility"`.
        policy: &'static str,
        /// Iterations that were requested.
        iterations: usize,
    },
    /// A job completed too few iterations for the warmup cut.
    Stats(StatsError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Placement(e) => write!(f, "cluster: placement failed: {e}"),
            ClusterError::Incomplete { policy, iterations } => {
                write!(
                    f,
                    "cluster: {policy} run did not finish {iterations} iterations"
                )
            }
            ClusterError::Stats(e) => write!(f, "cluster: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<StatsError> for ClusterError {
    fn from(e: StatsError) -> ClusterError {
        ClusterError::Stats(e)
    }
}

/// The §5 experiment result.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Locality-only baseline.
    pub locality: PolicyOutcome,
    /// Compatibility-aware placement.
    pub compatibility: PolicyOutcome,
}

impl ClusterResult {
    /// Renders a summary table.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "job".to_string(),
            "slowdown (locality)".to_string(),
            "slowdown (compat-aware)".to_string(),
        ]];
        for i in 0..self.locality.slowdowns.len() {
            rows.push(vec![
                self.locality.stats[i].label.clone(),
                format!("{:.2}×", self.locality.slowdowns[i]),
                format!("{:.2}×", self.compatibility.slowdowns[i]),
            ]);
        }
        rows.push(vec![
            "mean".to_string(),
            format!("{:.2}×", self.locality.mean_slowdown()),
            format!("{:.2}×", self.compatibility.mean_slowdown()),
        ]);
        crate::metrics::text_table(&rows)
    }
}

/// A randomized arrival stream drawn from the Table 1 zoo, for
/// cluster-scale placement studies: each job's batch is jittered ±20%
/// around its reference point and its worker count is drawn to force a
/// cross-rack split roughly half the time on `hosts_per_rack`-sized racks.
pub fn random_stream(seed: u64, n: usize, hosts_per_rack: usize) -> Vec<JobSpec> {
    let mut rng = eventsim::Rng::new(seed);
    let zoo: [(Model, u32); 6] = [
        (Model::BertLarge, 8),
        (Model::Vgg19, 1200),
        (Model::Dlrm, 2000),
        (Model::WideResNet50, 800),
        (Model::Vgg16, 1400),
        (Model::ResNet50, 1600),
    ];
    (0..n)
        .map(|_| {
            let (model, base_batch) = zoo[rng.below(zoo.len() as u64) as usize];
            let jitter = 0.8 + 0.4 * rng.f64();
            let batch = ((base_batch as f64 * jitter) as u32).max(2);
            // Workers: fits-in-rack or forces a split, evenly.
            let workers = if rng.bernoulli(0.5) {
                (hosts_per_rack as u32).max(2)
            } else {
                hosts_per_rack as u32 + 1
            };
            JobSpec {
                workers,
                ..JobSpec::reference(model, batch)
            }
        })
        .collect()
}

fn fabric(cfg: &ClusterConfig) -> TwoTier {
    two_tier(
        cfg.racks,
        cfg.hosts_per_rack,
        cfg.spines,
        Bandwidth::from_gbps(50),
        Bandwidth::from_gbps(50),
        Dur::ZERO,
    )
}

fn try_evaluate<R: Recorder>(
    policy: PlacementPolicy,
    cfg: &ClusterConfig,
    rec: R,
) -> Result<PolicyOutcome, ClusterError> {
    let (sched_cfg, policy_name) = match policy {
        PlacementPolicy::LocalityOnly => (SchedulerConfig::locality_only(), "locality"),
        PlacementPolicy::CompatibilityAware => {
            (SchedulerConfig::compatibility_aware(), "compatibility")
        }
    };
    let mut sched = ClusterScheduler::new(fabric(cfg), sched_cfg);
    for &spec in &cfg.jobs {
        sched.submit(spec).map_err(ClusterError::Placement)?;
    }
    let verdict = sched.cluster_verdict();
    let contended = sched.contended_links().len();

    // §4.iii: when the placement is compatible and still shares links,
    // realize the rotations as gates. Single-rack jobs need none.
    let gates: Vec<Option<Gate>> = match (&verdict, contended) {
        (Verdict::Compatible { rotations, .. }, c) if c > 0 => {
            let profiles: Vec<geometry::Profile> =
                sched.placed().iter().map(|p| p.profile.clone()).collect();
            let offsets = vec![Dur::ZERO; profiles.len()];
            gates_from_rotations(&profiles, rotations, &offsets)
                .into_iter()
                .zip(sched.placed())
                .map(|(g, pj)| if pj.is_single_rack() { None } else { g })
                .collect()
        }
        _ => vec![None; sched.placed().len()],
    };

    let fjobs = sched.fluid_jobs();
    let fluid_cfg = FluidConfig {
        gates,
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::with_recorder(&sched.fabric().topology, fluid_cfg, &fjobs, rec);
    let cap = Bandwidth::from_gbps(50);
    let per_iter = cfg
        .jobs
        .iter()
        .map(|s| s.iteration_time_at(cap))
        .max()
        .unwrap();
    let ok = sim.run_until_iterations(
        cfg.iterations,
        per_iter * (cfg.iterations as u64 * (cfg.jobs.len() as u64 + 2) + 20),
    );
    if !ok {
        return Err(ClusterError::Incomplete {
            policy: policy_name,
            iterations: cfg.iterations,
        });
    }

    let stats: Vec<JobStats> = (0..cfg.jobs.len())
        .map(|i| JobStats::try_from_progress(sim.progress(i), cfg.warmup))
        .collect::<Result<_, _>>()?;
    let slowdowns = stats
        .iter()
        .zip(&cfg.jobs)
        .map(|(s, spec)| s.median().as_secs_f64() / spec.iteration_time_at(cap).as_secs_f64())
        .collect();
    Ok(PolicyOutcome {
        stats,
        slowdowns,
        contended_links: contended,
        verdict,
    })
}

/// Runs the job stream under both placement policies.
///
/// # Panics
/// Panics on any [`ClusterError`]; use [`try_run`] to handle failures.
pub fn run(cfg: &ClusterConfig) -> ClusterResult {
    try_run_traced(cfg, NoopRecorder).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs the job stream under both placement policies, surfacing
/// misconfigured streams as [`ClusterError`] instead of panicking.
pub fn try_run(cfg: &ClusterConfig) -> Result<ClusterResult, ClusterError> {
    try_run_traced(cfg, NoopRecorder)
}

/// [`try_run`] with telemetry streamed into `rec`, one [`Event::Scenario`]
/// marker per placement policy. Both policies run in parallel under
/// [`parallel::jobs`] workers with results and telemetry identical to a
/// serial run.
pub fn try_run_traced<R: ForkableRecorder>(
    cfg: &ClusterConfig,
    mut rec: R,
) -> Result<ClusterResult, ClusterError> {
    let units: [(&str, PlacementPolicy); 2] = [
        ("cluster/locality", PlacementPolicy::LocalityOnly),
        ("cluster/compatibility", PlacementPolicy::CompatibilityAware),
    ];
    let mut out = parallel::try_map_traced(&mut rec, &units, |_, &(name, policy), fork| {
        if R::ENABLED {
            fork.record(Time::ZERO, Event::Scenario { name: name.into() });
        }
        try_evaluate(policy, cfg, fork)
    })?;
    let compatibility = out.pop().expect("two policies");
    let locality = out.pop().expect("two policies");
    Ok(ClusterResult {
        locality,
        compatibility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_aware_placement_avoids_slowdown() {
        let r = run(&ClusterConfig::default());
        // The baseline lands BERT and VGG19 on shared uplinks: contention.
        assert!(
            r.locality.contended_links > 0,
            "baseline should contend somewhere"
        );
        assert!(
            r.locality.mean_slowdown() > 1.08,
            "baseline slowdown {:.3} too small to matter",
            r.locality.mean_slowdown()
        );
        // The compatibility-aware cluster runs at ≈ solo pace.
        assert!(
            r.compatibility.mean_slowdown() < 1.03,
            "compat-aware slowdown {:.3}",
            r.compatibility.mean_slowdown()
        );
        assert!(r.compatibility.verdict.is_compatible());
        // And it strictly beats the baseline.
        assert!(r.compatibility.mean_slowdown() < r.locality.mean_slowdown());
        assert!(r.render().contains("mean"));
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn try_run_surfaces_placement_failure() {
        // One job needing more hosts than the whole cluster has: the
        // panicking `run` would die inside the scheduler; `try_run`
        // returns the error.
        let cfg = ClusterConfig {
            racks: 1,
            hosts_per_rack: 2,
            jobs: vec![JobSpec {
                workers: 5,
                ..JobSpec::reference(Model::ResNet50, 1600)
            }],
            ..ClusterConfig::default()
        };
        match try_run(&cfg) {
            Err(ClusterError::Placement(_)) => {}
            other => panic!("expected a placement error, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;

    #[test]
    fn random_streams_never_favor_locality() {
        // Across several randomized arrival streams, compatibility-aware
        // placement is never worse than locality-only (and equals it when
        // the stream happens to be contention-free).
        for seed in [3u64, 11, 42] {
            let cfg = ClusterConfig {
                racks: 5,
                hosts_per_rack: 2,
                jobs: random_stream(seed, 3, 2),
                iterations: 8,
                warmup: 3,
                ..ClusterConfig::default()
            };
            let r = run(&cfg);
            assert!(
                r.compatibility.mean_slowdown() <= r.locality.mean_slowdown() + 1e-6,
                "seed {seed}: compat {:.3} vs locality {:.3}",
                r.compatibility.mean_slowdown(),
                r.locality.mean_slowdown()
            );
        }
    }

    #[test]
    fn random_stream_is_deterministic_and_in_range() {
        let a = random_stream(7, 10, 2);
        let b = random_stream(7, 10, 2);
        assert_eq!(a, b);
        let c = random_stream(8, 10, 2);
        assert_ne!(a, c);
        for j in &a {
            assert!(j.workers == 2 || j.workers == 3);
            assert!(j.batch >= 2);
        }
    }
}
