//! Fig. 1: the surprising payoff of unfairness.
//!
//! Two VGG19 training jobs share a 50 Gbps bottleneck. Scenario 1 runs
//! default (fair) DCQCN with `T = 125 µs` for both; scenario 2 makes `J1`
//! aggressive with `T = 100 µs`. The paper reports:
//!
//! * Fig. 1b — fair: both jobs get ≈ half the link in the first iteration;
//! * Fig. 1c — unfair: ≈ 30 vs 15 Gbps (a ≈ 2:1 split);
//! * Fig. 1d — over 1000 iterations, the CDF of iteration times improves
//!   for *both* jobs under unfairness (≈ 1.23× at the median on the
//!   testbed).

use crate::experiments::chaos;
use crate::metrics::{text_table, JobStats, Speedup};
use crate::parallel;
use dcqcn::CcVariant;
use eventsim::TimeSeries;
use faults::ChaosConfig;
use netsim::rate::{RateJob, RateSimConfig, RateSimulator, RateSnapshot};
use netsim::snapshot::Snapshottable;
use simtime::{Dur, Time};
use telemetry::{BufferRecorder, Event, ForkableRecorder, NoopRecorder, Recorder};
use workload::{JobSpec, Model};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// The two competing jobs (paper: two VGG19s; batch 1200 matches the
    /// Table 1 calibration).
    pub jobs: [JobSpec; 2],
    /// Iterations to run (paper: 1000; use fewer for quick runs — the
    /// steady state locks within a handful).
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
    /// Aggressive timer for `J1` in scenario 2.
    pub aggressive_timer: Dur,
    /// Start offset of `J2`. Zero (the default) is the paper's Fig. 1
    /// convention of synchronized starts. The zoo sweep sets a few
    /// milliseconds: real clusters never start two jobs on the same
    /// nanosecond, and the offset seeds the phase asymmetry the
    /// self-organizing variants act on (a deterministic engine keeps two
    /// perfectly synchronized identical jobs symmetric forever).
    pub stagger: Dur,
    /// Engine configuration.
    pub sim: RateSimConfig,
    /// Fault injection applied to both scenarios.
    /// [`ChaosConfig::none`] leaves the experiment bit-identical to a
    /// chaos-free run.
    pub chaos: ChaosConfig,
}

impl Default for Fig1Config {
    fn default() -> Fig1Config {
        let sim = RateSimConfig {
            trace_interval: Some(Dur::from_millis(1)),
            ..RateSimConfig::default()
        };
        Fig1Config {
            jobs: [
                JobSpec::reference(Model::Vgg19, 1200),
                JobSpec::reference(Model::Vgg19, 1200),
            ],
            iterations: 100,
            warmup: 5,
            aggressive_timer: Dur::from_micros(100),
            stagger: Dur::ZERO,
            sim,
            chaos: ChaosConfig::none(),
        }
    }
}

/// One scenario's outcome.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Iteration-time statistics per job.
    pub stats: Vec<JobStats>,
    /// Mean bandwidth (Gbps) of each job during the *overlapped part of
    /// the first communication phase* — the Fig. 1b/1c numbers.
    pub first_iteration_bw: Vec<f64>,
    /// Per-job throughput traces (Gbps, 1 ms samples).
    pub traces: Vec<TimeSeries>,
    /// For each of `J1`'s iterations: `(start of the iteration in ms,
    /// ms during which both jobs were simultaneously busy)` — the Fig. 2
    /// contention profile, powering the zoo sweep's time-to-interleave.
    /// Empty when the engine traces no rates.
    pub contention: Vec<(f64, f64)>,
}

impl Scenario {
    /// The instant (ms) the scenario's phases first interleave: the start
    /// of the first iteration whose contended time drops below 5% of the
    /// first iteration's (Fig. 2's criterion). `None` while contention
    /// persists or without traces.
    pub fn time_to_interleave_ms(&self) -> Option<f64> {
        let first = self.contention.first()?.1;
        if first <= 0.0 {
            return Some(0.0);
        }
        self.contention
            .iter()
            .find(|&&(_, ms)| ms < 0.05 * first)
            .map(|&(at, _)| at)
    }
}

/// The full Fig. 1 result.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Scenario 1: fair DCQCN.
    pub fair: Scenario,
    /// Scenario 2: J1 aggressive.
    pub unfair: Scenario,
}

impl Fig1Result {
    /// Median speedups of scenario 2 over scenario 1, per job.
    pub fn speedups(&self) -> Vec<Speedup> {
        self.fair
            .stats
            .iter()
            .zip(&self.unfair.stats)
            .map(|(f, u)| u.speedup_vs(f))
            .collect()
    }

    /// Renders the Fig. 1 summary as text.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "job".to_string(),
            "1st-iter bw fair".to_string(),
            "1st-iter bw unfair".to_string(),
            "median fair".to_string(),
            "median unfair".to_string(),
            "speed-up".to_string(),
        ]];
        for (i, s) in self.speedups().iter().enumerate() {
            rows.push(vec![
                self.fair.stats[i].label.clone(),
                format!("{:.1} Gbps", self.fair.first_iteration_bw[i]),
                format!("{:.1} Gbps", self.unfair.first_iteration_bw[i]),
                format!("{:.1} ms", self.fair.stats[i].median_ms()),
                format!("{:.1} ms", self.unfair.stats[i].median_ms()),
                s.to_string(),
            ]);
        }
        text_table(&rows)
    }
}

/// The geometry solver's predicted overlap fraction for the Fig. 1 pair:
/// what the jobs *could* achieve under rotation scheduling. The `explain`
/// attribution cross-checks measured contention against this promise —
/// the paper's point is that unmanaged (fair) DCQCN contends even when
/// geometry says the jobs are compatible.
pub fn predicted_overlap(cfg: &Fig1Config) -> f64 {
    let solver = geometry::SolverConfig::default();
    let profiles: Vec<geometry::Profile> = cfg
        .jobs
        .iter()
        .map(|s| scheduler::analytic_profile(s, cfg.sim.capacity, Dur::from_micros(2_500)))
        .collect();
    match geometry::solve(&profiles, &solver) {
        Ok(geometry::Verdict::Compatible { rotations, .. }) => {
            geometry::overlap_fraction_of(&profiles, &rotations, solver.sectors).unwrap_or(0.0)
        }
        Ok(geometry::Verdict::Incompatible {
            best_overlap_fraction,
        })
        | Ok(geometry::Verdict::Inconclusive {
            best_overlap_fraction,
        }) => best_overlap_fraction,
        Err(_) => 1.0,
    }
}

fn run_scenario<R: Recorder>(
    cfg: &Fig1Config,
    variants: [CcVariant; 2],
    stagger: Dur,
    rec: R,
) -> Scenario {
    let mut jobs = [
        RateJob::new(cfg.jobs[0], variants[0]),
        RateJob::new(cfg.jobs[1], variants[1]),
    ];
    jobs[1].start_offset = stagger;
    let budget_per_iter = cfg.jobs[0]
        .iteration_time_at(cfg.sim.capacity)
        .max(cfg.jobs[1].iteration_time_at(cfg.sim.capacity));
    let mut sim_cfg = cfg.sim.clone();
    chaos::apply_rate(
        &cfg.chaos,
        &mut jobs,
        &mut sim_cfg,
        budget_per_iter * (cfg.iterations as u64 * 2),
    );
    let mut sim = RateSimulator::with_recorder(sim_cfg, &jobs, rec);
    let budget =
        budget_per_iter * ((cfg.iterations as u64 * 4 + 40) * chaos::budget_slack(&cfg.chaos));
    let done = sim.run_until_iterations(cfg.iterations, budget);
    assert!(
        done,
        "fig1: jobs did not finish {} iterations",
        cfg.iterations
    );
    collect_scenario(cfg, &sim)
}

/// Extracts a finished run's [`Scenario`] numbers.
fn collect_scenario<R: Recorder>(cfg: &Fig1Config, sim: &RateSimulator<R>) -> Scenario {
    let budget_per_iter = cfg.jobs[0]
        .iteration_time_at(cfg.sim.capacity)
        .max(cfg.jobs[1].iteration_time_at(cfg.sim.capacity));
    // First-iteration bandwidth: mean rate over the overlapped window of
    // the first communication phases, [max compute end, first completion).
    // Under chaos a job may depart before completing an iteration; fall
    // back to one nominal iteration's window then.
    let comm_start = Time::ZERO + cfg.jobs[0].compute_time().max(cfg.jobs[1].compute_time());
    let first_done = (0..2)
        .filter_map(|i| sim.progress(i).iterations().first().map(|it| it.completed))
        .min()
        .unwrap_or(comm_start + budget_per_iter);
    let first_iteration_bw = (0..2)
        .map(|i| sim.rate_trace(i).mean(comm_start, first_done))
        .collect();
    let traces: Vec<TimeSeries> = (0..2).map(|i| sim.rate_trace(i).clone()).collect();

    // Contended time per J1 iteration (Fig. 2's measure): 1 ms samples
    // where both jobs exceed 1 Gbps. Needs rate traces.
    let contention = if cfg.sim.trace_interval.is_some() {
        let step = Dur::from_millis(1);
        sim.progress(0)
            .iterations()
            .iter()
            .take(cfg.iterations)
            .map(|it| {
                let a = traces[0].resample(it.started, it.completed, step);
                let b = traces[1].resample(it.started, it.completed, step);
                let contended = a
                    .iter()
                    .zip(&b)
                    .filter(|(&x, &y)| x >= 1.0 && y >= 1.0)
                    .count() as f64;
                (it.started.elapsed().as_millis_f64(), contended)
            })
            .collect()
    } else {
        Vec::new()
    };

    Scenario {
        stats: (0..2)
            .map(|i| chaos::stats_tolerant(sim.progress(i), cfg.warmup))
            .collect(),
        first_iteration_bw,
        traces,
        contention,
    }
}

/// One cell of the variant × scenario matrix: a scenario name and the
/// variant each of the two contending jobs runs.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Scenario marker name (e.g. `"fig1/fair"`, `"variants/mltcp"`).
    pub name: String,
    /// Per-job congestion-control variants.
    pub variants: [CcVariant; 2],
    /// Per-cell override of [`Fig1Config::stagger`]. The zoo sweep gives
    /// self-organizing variants a realistic staggered start while the
    /// fair baseline keeps the paper's synchronized convention (the
    /// methodology of §4.i / `experiments::adaptive`).
    pub stagger: Option<Dur>,
}

impl MatrixCell {
    /// Builds a cell using the config's stagger.
    pub fn new(name: &str, variants: [CcVariant; 2]) -> MatrixCell {
        MatrixCell {
            name: name.to_string(),
            variants,
            stagger: None,
        }
    }

    /// Overrides the cell's `J2` start offset.
    pub fn with_stagger(mut self, stagger: Dur) -> MatrixCell {
        self.stagger = Some(stagger);
        self
    }
}

/// The paper's two Fig. 1 cells: fair DCQCN, and `J1` on the aggressive
/// timer.
pub fn default_cells(cfg: &Fig1Config) -> Vec<MatrixCell> {
    vec![
        MatrixCell::new("fig1/fair", [CcVariant::Fair, CcVariant::Fair]),
        MatrixCell::new(
            "fig1/unfair",
            [
                CcVariant::StaticUnfair {
                    timer: cfg.aggressive_timer,
                },
                CcVariant::Fair,
            ],
        ),
    ]
}

/// The congestion-control zoo on the contended Fig. 1 pair: one cell per
/// controller family. Self-organizing variants run on *both* jobs (their
/// whole point is symmetric deployment) with a realistic staggered start
/// — real clusters never start two jobs on the same nanosecond, and the
/// offset seeds the asymmetry their progress feedback amplifies. The
/// static knobs go to `J1` only (the paper's asymmetric aggression) and
/// the fair baseline keeps the paper's synchronized-start convention,
/// where fair DCQCN locks both jobs into perpetual contention at
/// `K + 2C` — the same methodology as §4.i (`experiments::adaptive`).
pub fn zoo_cells(cfg: &Fig1Config) -> Vec<MatrixCell> {
    let aggressive = CcVariant::StaticUnfair {
        timer: cfg.aggressive_timer,
    };
    let mltcp = CcVariant::Mltcp { bonus: 1.0 };
    let decay = CcVariant::Policy {
        policy: dcqcn::FairnessPolicy::BonusDecay {
            bonus: 1.0,
            decay: 2.0,
        },
    };
    let prop = CcVariant::Policy {
        policy: dcqcn::FairnessPolicy::Proportional { weight: 1.25 },
    };
    let swift = CcVariant::Swift {
        target_delay: Dur::from_micros(30),
    };
    let seed = Dur::from_millis(15);
    vec![
        MatrixCell::new("variants/fair", [CcVariant::Fair, CcVariant::Fair]),
        MatrixCell::new("variants/static-unfair", [aggressive, CcVariant::Fair]),
        MatrixCell::new(
            "variants/adaptive",
            [CcVariant::AdaptiveUnfair, CcVariant::AdaptiveUnfair],
        )
        .with_stagger(seed),
        MatrixCell::new("variants/mltcp", [mltcp, mltcp]).with_stagger(seed),
        MatrixCell::new("variants/policy-prop", [prop, CcVariant::Fair]),
        MatrixCell::new("variants/policy-decay", [decay, decay]).with_stagger(seed),
        MatrixCell::new("variants/swift", [swift, swift]),
    ]
}

/// A full variant × scenario matrix run: one [`Scenario`] per cell, in
/// cell order.
#[derive(Debug, Clone)]
pub struct Fig1Matrix {
    /// `(cell name, outcome)` pairs.
    pub cells: Vec<(String, Scenario)>,
}

impl Fig1Matrix {
    /// The named cell's outcome.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.cells.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders per-cell medians, bandwidth splits, and interleave onset.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "cell".to_string(),
            "j1 median".to_string(),
            "j2 median".to_string(),
            "1st-iter bw".to_string(),
            "interleaved at".to_string(),
        ]];
        for (name, s) in &self.cells {
            rows.push(vec![
                name.clone(),
                format!("{:.1} ms", s.stats[0].median_ms()),
                format!("{:.1} ms", s.stats[1].median_ms()),
                format!(
                    "{:.1}/{:.1} Gbps",
                    s.first_iteration_bw[0], s.first_iteration_bw[1]
                ),
                match s.time_to_interleave_ms() {
                    Some(ms) => format!("{ms:.0} ms"),
                    None => "never".to_string(),
                },
            ]);
        }
        text_table(&rows)
    }
}

/// Runs an arbitrary variant × scenario matrix, streaming telemetry into
/// `rec`. Each cell is announced with an [`Event::Scenario`] marker so
/// exporters can attribute the events that follow. Cells are independent
/// and run in parallel under [`parallel::jobs`] workers; results and
/// telemetry are identical to a serial run.
pub fn run_matrix_traced<R: ForkableRecorder>(
    cfg: &Fig1Config,
    cells: &[MatrixCell],
    mut rec: R,
) -> Fig1Matrix {
    let out = parallel::map_traced(&mut rec, cells, |_, cell, fork| {
        if R::ENABLED {
            fork.record(
                Time::ZERO,
                Event::Scenario {
                    name: cell.name.clone(),
                },
            );
        }
        run_scenario(
            cfg,
            cell.variants,
            cell.stagger.unwrap_or(cfg.stagger),
            fork,
        )
    });
    Fig1Matrix {
        cells: cells.iter().map(|c| c.name.clone()).zip(out).collect(),
    }
}

/// Runs both scenarios.
pub fn run(cfg: &Fig1Config) -> Fig1Result {
    run_traced(cfg, NoopRecorder)
}

/// Runs the paper's two scenarios — the [`default_cells`] matrix.
pub fn run_traced<R: ForkableRecorder>(cfg: &Fig1Config, rec: R) -> Fig1Result {
    let mut m = run_matrix_traced(cfg, &default_cells(cfg), rec);
    let unfair = m.cells.pop().expect("two scenarios").1;
    let fair = m.cells.pop().expect("two scenarios").1;
    Fig1Result { fair, unfair }
}

/// Runs one variant cell from a fork barrier: restoring `shared`'s
/// snapshot (fork mode) or re-simulating the fair prefix (replay mode),
/// then switching job 0's variant and applying chaos at the barrier.
fn run_forked_cell<F: Recorder>(
    cfg: &Fig1Config,
    variant: Option<CcVariant>,
    fork_at: Dur,
    shared: Option<&(RateSnapshot, BufferRecorder)>,
    mut rec: F,
) -> Scenario {
    let per_iter = cfg.jobs[0]
        .iteration_time_at(cfg.sim.capacity)
        .max(cfg.jobs[1].iteration_time_at(cfg.sim.capacity));
    let horizon = per_iter * (cfg.iterations as u64 * 2);
    let remaining = if fork_at < horizon {
        horizon - fork_at
    } else {
        per_iter
    };
    let mut sim = match shared {
        Some((snap, prefix_rec)) => {
            // The snapshot is recorder-free: replay the prefix recording
            // first so the cell's stream matches a replayed run's.
            if F::ENABLED {
                for te in prefix_rec.events() {
                    rec.record(te.at, te.event.clone());
                }
            }
            RateSimulator::restore(snap.clone(), rec).expect("fair-prefix snapshot restores")
        }
        None => {
            let mut jobs = [
                RateJob::new(cfg.jobs[0], CcVariant::Fair),
                RateJob::new(cfg.jobs[1], CcVariant::Fair),
            ];
            jobs[1].start_offset = cfg.stagger;
            let mut sim = RateSimulator::with_recorder(cfg.sim.clone(), &jobs, rec);
            sim.run_until(Time::ZERO + fork_at);
            sim
        }
    };
    if let Some(v) = variant {
        sim.set_cc_variant(0, v);
    }
    chaos::apply_rate_at_barrier(&cfg.chaos, &mut sim, 2, fork_at, remaining);
    let budget = per_iter * ((cfg.iterations as u64 * 4 + 40) * chaos::budget_slack(&cfg.chaos));
    let done = sim.run_until_iterations(cfg.iterations, budget);
    assert!(
        done,
        "fig1: forked cell did not finish {} iterations",
        cfg.iterations
    );
    collect_scenario(cfg, &sim)
}

/// Runs the variant matrix forked from a shared **fair** prefix: both
/// jobs run fair DCQCN to `fork_at` once, are snapshotted, and each cell
/// restores the snapshot — the unfair cell switches `J1` to the
/// aggressive timer *at the barrier* (as if its transport restarted
/// there), and `cfg.chaos` likewise applies from the barrier over the
/// remaining horizon. With `replay`, every cell re-simulates the fair
/// prefix instead — identical semantics, the byte-identity baseline for
/// the fork path.
///
/// The semantics intentionally differ from [`run_traced`], which runs
/// the aggressive timer from `t = 0`: forked results answer "what if the
/// variant changed mid-training", not Fig. 1's from-scratch comparison,
/// and the two entry points' numbers should not be mixed. The prefix
/// snapshot is cached process-wide keyed on the canonical config hash
/// (see [`crate::forkcache`]).
pub fn run_traced_forked<R: ForkableRecorder>(
    cfg: &Fig1Config,
    mut rec: R,
    fork_at: Dur,
    replay: bool,
) -> Fig1Result {
    let scenarios: [(&str, Option<CcVariant>); 2] = [
        ("fig1/fair", None),
        (
            "fig1/unfair",
            Some(CcVariant::StaticUnfair {
                timer: cfg.aggressive_timer,
            }),
        ),
    ];
    let mut out = if replay {
        parallel::map_traced(&mut rec, &scenarios, |_, &(name, variant), fork| {
            if R::ENABLED {
                fork.record(Time::ZERO, Event::Scenario { name: name.into() });
            }
            run_forked_cell(cfg, variant, fork_at, None, fork)
        })
    } else {
        let prefix = || {
            let key = simtime::hash::config_hash(&format!(
                "fig1-prefix|{:?}|{:?}|{:?}|{:?}",
                cfg.jobs, cfg.sim, cfg.stagger, fork_at
            ));
            crate::forkcache::get_or_build(key, || {
                let mut jobs = [
                    RateJob::new(cfg.jobs[0], CcVariant::Fair),
                    RateJob::new(cfg.jobs[1], CcVariant::Fair),
                ];
                jobs[1].start_offset = cfg.stagger;
                let mut prefix_rec = BufferRecorder::new();
                let mut sim = RateSimulator::with_recorder(cfg.sim.clone(), &jobs, &mut prefix_rec);
                sim.run_until(Time::ZERO + fork_at);
                let snap = sim.snapshot().expect("run_until leaves a barrier");
                drop(sim);
                (snap, prefix_rec)
            })
        };
        parallel::map_forked(
            &mut rec,
            &scenarios,
            prefix,
            |_, &(name, variant), shared, fork| {
                if R::ENABLED {
                    fork.record(Time::ZERO, Event::Scenario { name: name.into() });
                }
                run_forked_cell(cfg, variant, fork_at, Some(&**shared), fork)
            },
        )
    };
    let unfair = out.pop().expect("two scenarios");
    let fair = out.pop().expect("two scenarios");
    Fig1Result { fair, unfair }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> Fig1Config {
        Fig1Config {
            iterations: 10,
            warmup: 3,
            ..Fig1Config::default()
        }
    }

    #[test]
    fn fig1_shapes_hold() {
        let r = run(&quick_cfg());
        // Fig. 1b: fair first-iteration split is symmetric, each within
        // (15, 30) Gbps of the 50 Gbps link.
        let f = &r.fair.first_iteration_bw;
        assert!((f[0] - f[1]).abs() < 3.0, "fair split {f:?} not symmetric");
        assert!(f[0] > 15.0 && f[0] < 30.0, "fair J1 bw {}", f[0]);
        // Fig. 1c: unfair split favours J1 — the aggressive job rises
        // above its fair share and the victim falls below. (The paper's
        // testbed saw 30/15; our fluid CNP model yields a milder but
        // same-shaped ≈27/23 split.)
        let u = &r.unfair.first_iteration_bw;
        assert!(
            u[0] > f[0] + 1.5 && u[1] < f[1] - 1.5 && u[0] - u[1] > 3.0,
            "unfair split {u:?} lacks J1 advantage (fair {f:?})"
        );
        // Fig. 1d: both jobs' medians improve under unfairness.
        for (i, s) in r.speedups().iter().enumerate() {
            assert!(s.0 > 1.1, "job {i}: speedup {s} below the paper's ballpark");
        }
        // Render has a row per job plus header/rule.
        assert_eq!(r.render().lines().count(), 4);
    }

    #[test]
    fn forked_fig1_matches_replay_byte_for_byte() {
        let cfg = quick_cfg();
        let fork_at = Dur::from_millis(100);
        let mut forked_rec = BufferRecorder::new();
        let forked = run_traced_forked(&cfg, &mut forked_rec, fork_at, false);
        let mut replay_rec = BufferRecorder::new();
        let replayed = run_traced_forked(&cfg, &mut replay_rec, fork_at, true);
        assert_eq!(
            forked_rec.events(),
            replay_rec.events(),
            "forked telemetry diverged from the replayed prefix"
        );
        for (f, r) in [
            (&forked.fair, &replayed.fair),
            (&forked.unfair, &replayed.unfair),
        ] {
            assert_eq!(f.first_iteration_bw, r.first_iteration_bw);
            for (fs, rs) in f.stats.iter().zip(&r.stats) {
                assert_eq!(fs.median_ms(), rs.median_ms());
            }
        }
        // The mid-training variant switch still confers the paper's
        // advantage on the aggressive job.
        assert!(
            forked.unfair.stats[0].median_ms() <= forked.fair.stats[0].median_ms() + 0.5,
            "aggressive job should not regress after the barrier switch"
        );
    }

    #[test]
    fn predicted_overlap_is_a_fraction() {
        let p = predicted_overlap(&quick_cfg());
        assert!((0.0..=1.0).contains(&p), "predicted overlap {p}");
    }
}
