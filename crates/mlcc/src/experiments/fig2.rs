//! Fig. 2: the sliding effect, iteration by iteration.
//!
//! The paper visualizes link utilization of back-to-back iterations: under
//! fair sharing both jobs occupy ≈ 50% forever (Fig. 2a); under unfairness
//! the contended region *shrinks every iteration* until, by roughly the
//! fourth iteration, the communication phases interleave perfectly
//! (Fig. 2b). This module reproduces the traces and quantifies the
//! contended (both-communicating) time of each of the aggressive job's
//! iterations.

use crate::parallel;
use dcqcn::CcVariant;
use eventsim::TimeSeries;
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use simtime::{Dur, Time};
use telemetry::{Event, ForkableRecorder, NoopRecorder, Recorder};
use workload::{JobSpec, Model};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// The two competing jobs.
    pub jobs: [JobSpec; 2],
    /// Iterations to trace (the paper draws four).
    pub iterations: usize,
    /// Aggressive timer for `J1` in the unfair scenario.
    pub aggressive_timer: Dur,
    /// Rate at or above which a job counts as "using the link" when
    /// measuring contention (Gbps).
    pub busy_threshold_gbps: f64,
}

impl Default for Fig2Config {
    fn default() -> Fig2Config {
        Fig2Config {
            jobs: [
                JobSpec::reference(Model::Vgg19, 1200),
                JobSpec::reference(Model::Vgg19, 1200),
            ],
            iterations: 6,
            aggressive_timer: Dur::from_micros(100),
            busy_threshold_gbps: 1.0,
        }
    }
}

/// One scenario's traces and contention profile.
#[derive(Debug, Clone)]
pub struct Fig2Scenario {
    /// Per-job throughput traces (Gbps, 1 ms samples).
    pub traces: Vec<TimeSeries>,
    /// For each of J1's iterations: milliseconds during which *both* jobs
    /// were simultaneously using the link.
    pub contended_ms_per_iteration: Vec<f64>,
}

/// The Fig. 2 result: both scenarios.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Fair sharing (Fig. 2a).
    pub fair: Fig2Scenario,
    /// J1 aggressive (Fig. 2b).
    pub unfair: Fig2Scenario,
}

impl Fig2Result {
    /// The first iteration index (0-based) of the unfair scenario whose
    /// contended time drops below 5% of the first iteration's, i.e. when
    /// the phases have fully interleaved. `None` if they never do.
    pub fn interleaved_at(&self) -> Option<usize> {
        let c = &self.unfair.contended_ms_per_iteration;
        let first = *c.first()?;
        if first <= 0.0 {
            return Some(0);
        }
        c.iter().position(|&ms| ms < 0.05 * first)
    }

    /// Renders the per-iteration contention table.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "iteration".to_string(),
            "contended ms (fair)".to_string(),
            "contended ms (unfair)".to_string(),
        ]];
        let n = self
            .fair
            .contended_ms_per_iteration
            .len()
            .min(self.unfair.contended_ms_per_iteration.len());
        for i in 0..n {
            rows.push(vec![
                format!("{}", i + 1),
                format!("{:.0}", self.fair.contended_ms_per_iteration[i]),
                format!("{:.0}", self.unfair.contended_ms_per_iteration[i]),
            ]);
        }
        crate::metrics::text_table(&rows)
    }
}

fn run_scenario<R: Recorder>(cfg: &Fig2Config, variants: [CcVariant; 2], rec: R) -> Fig2Scenario {
    let sim_cfg = RateSimConfig {
        trace_interval: Some(Dur::from_millis(1)),
        ..RateSimConfig::default()
    };
    let jobs = [
        RateJob::new(cfg.jobs[0], variants[0]),
        RateJob::new(cfg.jobs[1], variants[1]),
    ];
    let mut sim = RateSimulator::with_recorder(sim_cfg, &jobs, rec);
    let per_iter = cfg.jobs[0]
        .iteration_time_at(simtime::Bandwidth::from_gbps(50))
        .max(cfg.jobs[1].iteration_time_at(simtime::Bandwidth::from_gbps(50)));
    assert!(
        sim.run_until_iterations(cfg.iterations, per_iter * (cfg.iterations as u64 * 4 + 20)),
        "fig2: did not reach {} iterations",
        cfg.iterations
    );
    let traces: Vec<TimeSeries> = (0..2).map(|i| sim.rate_trace(i).clone()).collect();

    // Contended time per J1 iteration: sample both traces at 1 ms and
    // count samples where both exceed the busy threshold.
    let step = Dur::from_millis(1);
    let contended: Vec<f64> = sim
        .progress(0)
        .iterations()
        .iter()
        .take(cfg.iterations)
        .map(|rec| {
            let a = traces[0].resample(rec.started, rec.completed, step);
            let b = traces[1].resample(rec.started, rec.completed, step);
            a.iter()
                .zip(&b)
                .filter(|(&x, &y)| x >= cfg.busy_threshold_gbps && y >= cfg.busy_threshold_gbps)
                .count() as f64
        })
        .collect();
    Fig2Scenario {
        traces,
        contended_ms_per_iteration: contended,
    }
}

/// Runs both scenarios.
pub fn run(cfg: &Fig2Config) -> Fig2Result {
    run_traced(cfg, NoopRecorder)
}

/// Runs both scenarios, streaming telemetry into `rec` with per-scenario
/// [`Event::Scenario`] markers. Scenarios run in parallel under
/// [`parallel::jobs`] workers with output identical to a serial run.
pub fn run_traced<R: ForkableRecorder>(cfg: &Fig2Config, mut rec: R) -> Fig2Result {
    let scenarios: [(&str, [CcVariant; 2]); 2] = [
        ("fig2/fair", [CcVariant::Fair, CcVariant::Fair]),
        (
            "fig2/unfair",
            [
                CcVariant::StaticUnfair {
                    timer: cfg.aggressive_timer,
                },
                CcVariant::Fair,
            ],
        ),
    ];
    let mut out = parallel::map_traced(&mut rec, &scenarios, |_, &(name, variants), fork| {
        if R::ENABLED {
            fork.record(Time::ZERO, Event::Scenario { name: name.into() });
        }
        run_scenario(cfg, variants, fork)
    });
    let unfair = out.pop().expect("two scenarios");
    let fair = out.pop().expect("two scenarios");
    Fig2Result { fair, unfair }
}

/// Utilization of the link at 1 ms samples over `[from, to)` — the sum of
/// both jobs' rates over capacity, handy for plotting Fig. 2 panels.
pub fn utilization(scenario: &Fig2Scenario, from: Time, to: Time, capacity_gbps: f64) -> Vec<f64> {
    let step = Dur::from_millis(1);
    let a = scenario.traces[0].resample(from, to, step);
    let b = scenario.traces[1].resample(from, to, step);
    a.iter()
        .zip(&b)
        .map(|(&x, &y)| (x + y) / capacity_gbps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_effect_reproduces() {
        let r = run(&Fig2Config::default());
        // Fair: contention persists — the last iteration is still heavily
        // contended (within 50% of the first).
        let f = &r.fair.contended_ms_per_iteration;
        assert!(
            f.last().unwrap() > &(f[0] * 0.5),
            "fair contention vanished: {f:?}"
        );
        // Unfair: phases interleave within the paper's ballpark (by the
        // fourth-ish iteration; allow a couple extra).
        let at = r.interleaved_at();
        assert!(
            at.is_some() && at.unwrap() <= 5,
            "unfair did not interleave promptly: {:?} (contended {:?})",
            at,
            r.unfair.contended_ms_per_iteration
        );
        // Contention shrinks monotonically-ish: last < first / 4.
        let u = &r.unfair.contended_ms_per_iteration;
        assert!(u.last().unwrap() < &(u[0] * 0.25), "unfair tail: {u:?}");
        // Utilization during a contended window is near 1.
        let util = utilization(
            &r.fair,
            Time::ZERO + Dur::from_millis(150),
            Time::ZERO + Dur::from_millis(250),
            50.0,
        );
        let mean: f64 = util.iter().sum::<f64>() / util.len() as f64;
        assert!(mean > 0.85, "fair contended utilization {mean}");
        assert!(r.render().contains("contended"));
    }
}
