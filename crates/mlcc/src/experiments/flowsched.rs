//! §4.iii: precise flow scheduling.
//!
//! The solver's rotation angles *are* time-shifts: a centralized scheduler
//! releases each job's communication phase only in its assigned slot.
//! Pipeline: profile jobs → solve rotations on the unified circle →
//! convert rotations to [`netsim::fluid::Gate`]s → run. Compatible jobs
//! then never contend, from the very first iteration — no unfairness in
//! the transport at all (the trade-off the paper notes is the need for
//! tight time synchronization, which a simulator gets for free).

use crate::metrics::{JobStats, Speedup};
use crate::parallel;
use geometry::{solve, GeometryError, Profile, SolverConfig};
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use scheduler::{gates_from_rotations, gating_profiles};
use simtime::{Bandwidth, Dur, Time};
use telemetry::{Event, ForkableRecorder, NoopRecorder, Recorder};
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct FlowschedConfig {
    /// Jobs sharing the bottleneck (must be compatible for gating to win).
    pub jobs: Vec<JobSpec>,
    /// Solver settings.
    pub solver: SolverConfig,
    /// Profile quantization grid.
    pub grid: Dur,
    /// Iterations per scenario.
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
}

impl Default for FlowschedConfig {
    fn default() -> FlowschedConfig {
        FlowschedConfig {
            jobs: vec![
                JobSpec::reference(Model::WideResNet50, 800),
                JobSpec::reference(Model::Vgg16, 1400),
            ],
            solver: SolverConfig::default(),
            grid: Dur::from_micros(2_500),
            iterations: 20,
            warmup: 5,
        }
    }
}

/// Why a flow-scheduling run could not produce a result. Job lists and
/// solver inputs are caller-supplied, so misconfigurations surface as
/// errors instead of panics (same contract as the cluster experiment).
#[derive(Debug, Clone, PartialEq)]
pub enum FlowschedError {
    /// The configured job list is empty.
    NoJobs,
    /// The jobs' profiles were rejected by the solver.
    Profiles(GeometryError),
    /// The solver deemed the jobs incompatible — flow scheduling
    /// presupposes a feasible schedule.
    Incompatible,
    /// Jobs did not finish the requested iterations within the time
    /// budget.
    Incomplete {
        /// Iterations that were requested.
        iterations: usize,
    },
}

impl std::fmt::Display for FlowschedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowschedError::NoJobs => write!(f, "flowsched: no jobs configured"),
            FlowschedError::Profiles(e) => write!(f, "flowsched: invalid profiles: {e}"),
            FlowschedError::Incompatible => {
                write!(f, "flowsched: flow scheduling requires compatible jobs")
            }
            FlowschedError::Incomplete { iterations } => {
                write!(f, "flowsched: jobs did not finish {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for FlowschedError {}

/// The §4.iii result.
#[derive(Debug, Clone)]
pub struct FlowschedResult {
    /// Per-job stats under ungated max-min sharing.
    pub fair: Vec<JobStats>,
    /// Per-job stats with solver-scheduled communication slots.
    pub scheduled: Vec<JobStats>,
    /// The rotation-derived time shifts applied, per job.
    pub shifts: Vec<Dur>,
}

impl FlowschedResult {
    /// Scheduled-over-fair speedups per job.
    pub fn speedups(&self) -> Vec<Speedup> {
        self.fair
            .iter()
            .zip(&self.scheduled)
            .map(|(f, s)| s.speedup_vs(f))
            .collect()
    }

    /// Renders a summary table.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "job".to_string(),
            "time-shift".to_string(),
            "fair".to_string(),
            "scheduled".to_string(),
            "speed-up".to_string(),
        ]];
        for (i, s) in self.speedups().iter().enumerate() {
            rows.push(vec![
                self.fair[i].label.clone(),
                format!("{}", self.shifts[i]),
                format!("{:.0} ms", self.fair[i].median_ms()),
                format!("{:.0} ms", self.scheduled[i].median_ms()),
                s.to_string(),
            ]);
        }
        crate::metrics::text_table(&rows)
    }
}

fn run_with_gates<R: Recorder>(
    jobs: &[JobSpec],
    gates: Vec<Option<netsim::fluid::Gate>>,
    cfg: &FlowschedConfig,
    rec: R,
) -> Result<Vec<JobStats>, FlowschedError> {
    let d = dumbbell(
        jobs.len(),
        Bandwidth::from_gbps(50),
        Bandwidth::from_gbps(50),
        Dur::ZERO,
    );
    let t = &d.topology;
    let fjobs: Vec<FluidJob> = jobs
        .iter()
        .enumerate()
        .map(|(i, &spec)| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .expect("dumbbell connected");
            FluidJob::single_path(spec, path.links().to_vec())
        })
        .collect();
    let fluid_cfg = FluidConfig {
        gates,
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::with_recorder(t, fluid_cfg, &fjobs, rec);
    let cap = Bandwidth::from_gbps(50);
    let per_iter = jobs
        .iter()
        .map(|s| s.iteration_time_at(cap))
        .max()
        .ok_or(FlowschedError::NoJobs)?;
    let ok = sim.run_until_iterations(
        cfg.iterations,
        per_iter * (cfg.iterations as u64 * (jobs.len() as u64 + 2) + 20),
    );
    if !ok {
        return Err(FlowschedError::Incomplete {
            iterations: cfg.iterations,
        });
    }
    Ok((0..jobs.len())
        .map(|i| JobStats::from_progress(sim.progress(i), cfg.warmup))
        .collect())
}

/// Runs ungated max-min vs solver-scheduled gating.
///
/// # Panics
/// Panics on any [`FlowschedError`] (incompatible or empty job lists, jobs
/// that don't finish); use [`try_run`] to handle failures.
pub fn run(cfg: &FlowschedConfig) -> FlowschedResult {
    try_run(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs ungated max-min vs solver-scheduled gating, surfacing
/// misconfigured job lists as [`FlowschedError`] instead of panicking.
pub fn try_run(cfg: &FlowschedConfig) -> Result<FlowschedResult, FlowschedError> {
    try_run_traced(cfg, NoopRecorder)
}

/// Runs ungated max-min vs solver-scheduled gating, streaming telemetry
/// into `rec` with a marker per scenario.
///
/// # Panics
/// Panics on any [`FlowschedError`]; use [`try_run_traced`] to handle
/// failures.
pub fn run_traced<R: ForkableRecorder>(cfg: &FlowschedConfig, rec: R) -> FlowschedResult {
    try_run_traced(cfg, rec).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_run`] with telemetry streamed into `rec`, one [`Event::Scenario`]
/// marker per scenario. Both scenarios run in parallel under
/// [`parallel::jobs`] workers with results and telemetry identical to a
/// serial run.
pub fn try_run_traced<R: ForkableRecorder>(
    cfg: &FlowschedConfig,
    mut rec: R,
) -> Result<FlowschedResult, FlowschedError> {
    if cfg.jobs.is_empty() {
        return Err(FlowschedError::NoJobs);
    }
    let profiles: Vec<Profile> = gating_profiles(&cfg.jobs, Bandwidth::from_gbps(50), cfg.grid);
    let verdict = solve(&profiles, &cfg.solver).map_err(FlowschedError::Profiles)?;
    let rotations = verdict
        .rotations()
        .ok_or(FlowschedError::Incompatible)?
        .to_vec();
    let offsets = vec![Dur::ZERO; cfg.jobs.len()];
    let gates = gates_from_rotations(&profiles, &rotations, &offsets);
    let shifts = rotations.iter().map(|r| r.shift).collect();

    let units: [(&str, Vec<Option<netsim::fluid::Gate>>); 2] = [
        ("flowsched/fair", Vec::new()),
        ("flowsched/scheduled", gates),
    ];
    let mut out = parallel::try_map_traced(&mut rec, &units, |_, (name, gates), fork| {
        if R::ENABLED {
            fork.record(
                Time::ZERO,
                Event::Scenario {
                    name: (*name).into(),
                },
            );
        }
        run_with_gates(&cfg.jobs, gates.clone(), cfg, fork)
    })?;
    let scheduled = out.pop().expect("two scenarios");
    let fair = out.pop().expect("two scenarios");
    Ok(FlowschedResult {
        fair,
        scheduled,
        shifts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_slots_beat_fair_sharing() {
        let cfg = FlowschedConfig {
            iterations: 12,
            warmup: 5,
            ..FlowschedConfig::default()
        };
        let r = run(&cfg);
        let cap = Bandwidth::from_gbps(50);
        for (i, s) in r.speedups().iter().enumerate() {
            assert!(s.is_improvement(), "job {i}: gating slowed it down ({s})");
            // Under gating each job runs within a grid-step of solo pace.
            let solo = cfg.jobs[i].iteration_time_at(cap).as_millis_f64();
            let got = r.scheduled[i].median_ms();
            assert!(
                got <= solo + cfg.grid.as_millis_f64() + 1.0,
                "job {i}: {got:.1} ms vs solo {solo:.1} ms"
            );
        }
        // At least one job must actually be shifted.
        assert!(
            r.shifts.iter().any(|s| !s.is_zero()),
            "no shift applied: {:?}",
            r.shifts
        );
        assert!(r.render().contains("time-shift"));
    }

    #[test]
    fn try_run_surfaces_empty_job_list() {
        let cfg = FlowschedConfig {
            jobs: Vec::new(),
            ..FlowschedConfig::default()
        };
        match try_run(&cfg) {
            Err(FlowschedError::NoJobs) => {}
            other => panic!("expected NoJobs, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn try_run_surfaces_incompatibility() {
        let cfg = FlowschedConfig {
            jobs: vec![
                JobSpec::reference(Model::BertLarge, 8),
                JobSpec::reference(Model::Vgg19, 1200),
            ],
            iterations: 2,
            warmup: 0,
            ..FlowschedConfig::default()
        };
        match try_run(&cfg) {
            Err(FlowschedError::Incompatible) => {}
            other => panic!("expected Incompatible, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "requires compatible jobs")]
    fn incompatible_jobs_rejected() {
        let cfg = FlowschedConfig {
            jobs: vec![
                JobSpec::reference(Model::BertLarge, 8),
                JobSpec::reference(Model::Vgg19, 1200),
            ],
            iterations: 2,
            warmup: 0,
            ..FlowschedConfig::default()
        };
        let _ = run(&cfg);
    }
}
