//! Figs. 3–5: the geometric abstraction, demonstrated.
//!
//! * Fig. 3 — roll VGG16's time series around a circle: perimeter 255 ms,
//!   compute arc `[0, 141)`, communication arc `[141, 255)`; every
//!   iteration lands on the same arcs.
//! * Fig. 4 — two same-perimeter circles: overlapping at rotation zero,
//!   non-overlapping after rotating one of them.
//! * Fig. 5 — jobs with 40 ms and 60 ms iterations on the unified circle
//!   of perimeter `LCM(40, 60) = 120 ms`; a counterclockwise rotation of
//!   J1 (30° in the paper's drawing) separates the arcs.

use geometry::{solve_pair, Profile, SolverConfig, UnifiedCircle, Verdict};
use scheduler::analytic_profile;
use simtime::{Bandwidth, Dur, Time};
use workload::{JobSpec, Model};

/// Fig. 3 output: the circle of a profiled job, plus evidence that every
/// iteration lands on the same arcs.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// The job's circle.
    pub profile: Profile,
    /// For the first `n` iterations: `true` iff the job is communicating
    /// at mid-compute and mid-communication instants of that iteration
    /// (should be `(false, true)` for every iteration).
    pub per_iteration_checks: Vec<(bool, bool)>,
}

/// Rolls VGG16(1400)'s pattern around its circle and verifies arc
/// stability across `iterations` iterations.
pub fn fig3(iterations: usize) -> Fig3Result {
    let spec = JobSpec::reference(Model::Vgg16, 1400);
    let profile = analytic_profile(&spec, Bandwidth::from_gbps(50), Dur::from_millis(1));
    let period = profile.period();
    let compute = period - profile.comm_time();
    let checks = (0..iterations)
        .map(|k| {
            let base = Time::ZERO + period * k as u64;
            let mid_compute = base + compute / 2;
            let mid_comm = base + compute + profile.comm_time() / 2;
            (
                profile.communicating_at_time(mid_compute, Dur::ZERO),
                profile.communicating_at_time(mid_comm, Dur::ZERO),
            )
        })
        .collect();
    Fig3Result {
        profile,
        per_iteration_checks: checks,
    }
}

/// Fig. 4 output.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Overlap (ms on the circle) at rotation zero — the congested layout.
    pub overlap_at_zero_ms: f64,
    /// The solver's verdict (compatible, with rotations).
    pub verdict: Verdict,
}

/// Overlays two same-period circles and rotates them apart.
pub fn fig4() -> Fig4Result {
    // Same-period pair: VGG16(1400)-like and WRN(800)-like, both 255 ms.
    let a = Profile::compute_then_comm(Dur::from_millis(141), Dur::from_millis(114));
    let b = Profile::compute_then_comm(Dur::from_millis(200), Dur::from_millis(55));
    // Overlap at rotation zero: b's comm [200, 255) vs a's [141, 255).
    let overlap_ms = (0..255)
        .filter(|&t| {
            a.communicating_at(Dur::from_millis(t)) && b.communicating_at(Dur::from_millis(t))
        })
        .count() as f64;
    let verdict = solve_pair(&a, &b, &SolverConfig::default()).expect("valid profiles");
    Fig4Result {
        overlap_at_zero_ms: overlap_ms,
        verdict,
    }
}

/// Fig. 5 output.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The unified circle (perimeter = LCM of the periods).
    pub perimeter: Dur,
    /// Repetitions of each job around the unified circle.
    pub repetitions: Vec<u64>,
    /// The solver's verdict with rotation angles in degrees.
    pub verdict: Verdict,
}

/// Places 40 ms and 60 ms jobs on the unified circle and finds the
/// rotation that separates them.
pub fn fig5() -> Fig5Result {
    let j1 = Profile::compute_then_comm(Dur::from_millis(32), Dur::from_millis(8));
    let j2 = Profile::compute_then_comm(Dur::from_millis(50), Dur::from_millis(10));
    let uc = UnifiedCircle::new(&[j1.clone(), j2.clone()], 720).expect("valid profiles");
    let verdict = solve_pair(&j1, &j2, &SolverConfig::default()).expect("valid profiles");
    Fig5Result {
        perimeter: uc.perimeter(),
        repetitions: vec![uc.perimeter() / j1.period(), uc.perimeter() / j2.period()],
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_arcs_are_stable_across_iterations() {
        let r = fig3(10);
        assert_eq!(r.profile.period(), Dur::from_millis(255));
        let compute = r.profile.period() - r.profile.comm_time();
        assert!((compute.as_millis_f64() - 141.0).abs() < 0.5);
        for (i, &(at_compute, at_comm)) in r.per_iteration_checks.iter().enumerate() {
            assert!(!at_compute, "iteration {i}: communicating mid-compute");
            assert!(at_comm, "iteration {i}: idle mid-communication");
        }
    }

    #[test]
    fn fig4_rotation_removes_overlap() {
        let r = fig4();
        assert!(r.overlap_at_zero_ms > 50.0, "no initial congestion to fix");
        assert!(r.verdict.is_compatible());
        let rots = r.verdict.rotations().unwrap();
        assert_eq!(rots[0].sectors, 0);
        assert!(rots[1].sectors > 0, "a real rotation is needed");
    }

    #[test]
    fn fig5_unified_circle_and_rotation() {
        let r = fig5();
        assert_eq!(r.perimeter, Dur::from_millis(120));
        assert_eq!(r.repetitions, vec![3, 2]);
        assert!(r.verdict.is_compatible(), "{:?}", r.verdict);
        // The rotation is a true angle on the unified circle.
        let rot = r.verdict.rotations().unwrap()[1];
        assert!(rot.degrees >= 0.0 && rot.degrees < 360.0);
    }
}
