//! One module per paper artifact. See the crate docs for the mapping.

pub mod adaptive;
pub mod chaos;
pub mod cluster;
pub mod fig1;
pub mod fig2;
pub mod flowsched;
pub mod geometry_demo;
pub mod pipelining;
pub mod priority;
pub mod shard;
pub mod table1;
pub mod variants;
