//! Extension: pipelined (bucketized) communication and compatibility.
//!
//! The paper's intro motivates pipelining — training platforms overlap
//! backprop with the allreduce by releasing gradient buckets as they
//! become ready — and its abstraction naturally represents the result:
//! several communication arcs per circle instead of one. This experiment
//! quantifies a consequence the paper leaves implicit: **bucketized
//! emission widens the compatibility region**. Two jobs whose monolithic
//! bursts are too long to interleave (communication fractions summing
//! over 1) become fully compatible once the same volume is spread across
//! spaced bursts, because each job's bursts fit into the other's gaps.
//!
//! Both sides are measured end-to-end in the fluid engine under weighted
//! (unfair) sharing: the monolithic pair stays contended and victimizes
//! the low-weight job; the pipelined pair converges to dedicated-network
//! pace. (The rate-based DCQCN engine does *not* discover the chunked
//! interleave emergently — 40 ms bursts are shorter than its sliding
//! dynamics' convergence horizon — an honest limitation recorded in
//! `EXPERIMENTS.md`; the §4.ii/§4.iii mechanisms apply unchanged.)

use crate::metrics::{text_table, JobStats};
use crate::parallel;
use geometry::{solve_pair, SolverConfig, Verdict};
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use scheduler::analytic_profile;
use simtime::{Bandwidth, Dur, Time};
use telemetry::{Event, ForkableRecorder, NoopRecorder, Recorder};
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct PipeliningConfig {
    /// The base job (monolithic emission). Default VGG19(600): a 62.5%
    /// communication fraction, so two of them cannot interleave.
    pub base: JobSpec,
    /// Bursts the pipelined variant splits communication into.
    pub chunks: u8,
    /// Compute gap between bursts (bucketized backprop time).
    pub gap: Dur,
    /// Weights for the two jobs (the unfairness that drives the slide).
    pub weights: [f64; 2],
    /// Iterations per run.
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
}

impl Default for PipeliningConfig {
    fn default() -> PipeliningConfig {
        PipeliningConfig {
            base: JobSpec::reference(Model::Vgg19, 600),
            chunks: 3,
            gap: Dur::from_millis(40),
            weights: [2.0, 1.0],
            iterations: 16,
            warmup: 6,
        }
    }
}

/// One emission shape's outcome.
#[derive(Debug, Clone)]
pub struct ShapeOutcome {
    /// The solver's verdict for two copies of the job.
    pub verdict: Verdict,
    /// Per-job stats under weighted sharing.
    pub stats: Vec<JobStats>,
    /// The job's dedicated-network iteration time.
    pub solo: Dur,
}

impl ShapeOutcome {
    /// Worst per-job contention tax: `median / solo − 1`.
    pub fn max_tax(&self) -> f64 {
        self.stats
            .iter()
            .map(|s| s.median().as_secs_f64() / self.solo.as_secs_f64() - 1.0)
            .fold(0.0f64, f64::max)
    }
}

/// The pipelining experiment result.
#[derive(Debug, Clone)]
pub struct PipeliningResult {
    /// Monolithic emission (the paper's base abstraction).
    pub monolithic: ShapeOutcome,
    /// Pipelined emission (same volume, spaced bursts).
    pub pipelined: ShapeOutcome,
}

impl PipeliningResult {
    /// Renders a summary table.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "emission".to_string(),
            "geometry".to_string(),
            "job".to_string(),
            "median".to_string(),
            "solo".to_string(),
            "tax".to_string(),
        ]];
        for (name, o) in [
            ("monolithic", &self.monolithic),
            ("pipelined", &self.pipelined),
        ] {
            for (i, s) in o.stats.iter().enumerate() {
                let tax = s.median().as_secs_f64() / o.solo.as_secs_f64() - 1.0;
                rows.push(vec![
                    if i == 0 {
                        name.to_string()
                    } else {
                        String::new()
                    },
                    if i == 0 {
                        if o.verdict.is_compatible() {
                            "compatible".to_string()
                        } else {
                            "incompatible".to_string()
                        }
                    } else {
                        String::new()
                    },
                    s.label.clone(),
                    format!("{:.0} ms", s.median_ms()),
                    format!("{:.0} ms", o.solo.as_millis_f64()),
                    format!("{:+.1}%", tax * 100.0),
                ]);
            }
        }
        text_table(&rows)
    }
}

fn run_shape<R: Recorder>(spec: JobSpec, cfg: &PipeliningConfig, rec: R) -> ShapeOutcome {
    let line = Bandwidth::from_gbps(50);
    let profile = analytic_profile(&spec, line, Dur::from_micros(2_500));
    let verdict = solve_pair(&profile, &profile, &SolverConfig::default()).expect("valid profiles");

    let d = dumbbell(2, line, line, Dur::ZERO);
    let t = d.topology.clone();
    let jobs: Vec<FluidJob> = (0..2)
        .map(|i| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .expect("dumbbell connected");
            FluidJob::single_path(spec, path.links().to_vec())
        })
        .collect();
    let fluid_cfg = FluidConfig {
        policy: SharingPolicy::Weighted(cfg.weights.to_vec()),
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::with_recorder(&t, fluid_cfg, &jobs, rec);
    let per_iter = spec.iteration_time_at(line);
    assert!(
        sim.run_until_iterations(cfg.iterations, per_iter * (cfg.iterations as u64 * 4 + 20)),
        "pipelining: jobs did not finish"
    );
    ShapeOutcome {
        verdict,
        stats: (0..2)
            .map(|i| JobStats::from_progress(sim.progress(i), cfg.warmup))
            .collect(),
        solo: per_iter,
    }
}

/// Runs both emission shapes.
pub fn run(cfg: &PipeliningConfig) -> PipeliningResult {
    run_traced(cfg, NoopRecorder)
}

/// Runs both emission shapes, streaming telemetry into `rec` with a
/// marker per shape. Both shapes run in parallel under
/// [`parallel::jobs`] workers with results and telemetry identical to a
/// serial run.
pub fn run_traced<R: ForkableRecorder>(cfg: &PipeliningConfig, mut rec: R) -> PipeliningResult {
    let units: [(&str, JobSpec); 2] = [
        ("pipelining/monolithic", cfg.base),
        (
            "pipelining/pipelined",
            cfg.base.pipelined(cfg.chunks, cfg.gap),
        ),
    ];
    let mut out = parallel::map_traced(&mut rec, &units, |_, &(name, spec), fork| {
        if R::ENABLED {
            fork.record(Time::ZERO, Event::Scenario { name: name.into() });
        }
        run_shape(spec, cfg, fork)
    });
    let pipelined = out.pop().expect("two shapes");
    let monolithic = out.pop().expect("two shapes");
    PipeliningResult {
        monolithic,
        pipelined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_widens_the_compatibility_region() {
        let cfg = PipeliningConfig {
            iterations: 12,
            warmup: 5,
            ..PipeliningConfig::default()
        };
        let r = run(&cfg);
        // Monolithic: 62.5% + 62.5% comm can never interleave.
        assert!(!r.monolithic.verdict.is_compatible());
        assert!(
            r.monolithic.max_tax() > 0.10,
            "monolithic tax {:.1}% too small",
            r.monolithic.max_tax() * 100.0
        );
        // Pipelined: same volume in spaced bursts — compatible and at
        // dedicated pace under the same weighted sharing.
        assert!(r.pipelined.verdict.is_compatible());
        assert!(
            r.pipelined.max_tax() < 0.01,
            "pipelined tax {:.1}%",
            r.pipelined.max_tax() * 100.0
        );
        assert!(r.render().contains("pipelined"));
    }
}
