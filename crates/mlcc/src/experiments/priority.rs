//! §4.ii: priority queues on switches.
//!
//! Instead of changing congestion control, the end-hosts mark packets with
//! a scheduler-assigned priority and the switch serves classes strictly —
//! mimicking unfairness with zero NIC changes. For compatible jobs with
//! unique priorities, the paper expects the same interleaving payoff as
//! unfair congestion control. The cited caveat — switches have only a few
//! queues — is exercised through [`scheduler::assign_priorities`].

use crate::metrics::{JobStats, Speedup};
use crate::parallel;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use scheduler::assign_priorities;
use simtime::{Bandwidth, Dur, Time};
use telemetry::{Event, ForkableRecorder, NoopRecorder, Recorder};
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct PriorityConfig {
    /// Jobs sharing the bottleneck (compatible by default).
    pub jobs: Vec<JobSpec>,
    /// Switch priority queues available (8 on commodity switches).
    pub queues: usize,
    /// Iterations per scenario.
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
}

impl Default for PriorityConfig {
    fn default() -> PriorityConfig {
        PriorityConfig {
            jobs: vec![
                JobSpec::reference(Model::Vgg19, 1200),
                JobSpec::reference(Model::Vgg19, 1200),
            ],
            queues: 8,
            iterations: 20,
            warmup: 5,
        }
    }
}

/// Why a priority-queue run could not produce a result. Job lists are
/// caller-supplied, so misconfigurations surface as errors instead of
/// panics (same contract as the cluster experiment).
#[derive(Debug, Clone, PartialEq)]
pub enum PriorityError {
    /// The configured job list is empty.
    NoJobs,
    /// More jobs than switch priority queues (the §4.ii caveat).
    Queues(scheduler::PriorityError),
    /// Jobs did not finish the requested iterations within the time
    /// budget.
    Incomplete {
        /// Iterations that were requested.
        iterations: usize,
    },
}

impl std::fmt::Display for PriorityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PriorityError::NoJobs => write!(f, "priority: no jobs configured"),
            PriorityError::Queues(e) => {
                write!(f, "priority: more jobs than switch priority queues: {e}")
            }
            PriorityError::Incomplete { iterations } => {
                write!(f, "priority: jobs did not finish {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for PriorityError {}

impl From<scheduler::PriorityError> for PriorityError {
    fn from(e: scheduler::PriorityError) -> PriorityError {
        PriorityError::Queues(e)
    }
}

/// The §4.ii result.
#[derive(Debug, Clone)]
pub struct PriorityResult {
    /// Per-job stats under max-min (fair) sharing.
    pub fair: Vec<JobStats>,
    /// Per-job stats under strict priorities.
    pub prioritized: Vec<JobStats>,
    /// The priority classes assigned.
    pub classes: Vec<u8>,
}

impl PriorityResult {
    /// Priority-over-fair speedups per job.
    pub fn speedups(&self) -> Vec<Speedup> {
        self.fair
            .iter()
            .zip(&self.prioritized)
            .map(|(f, p)| p.speedup_vs(f))
            .collect()
    }

    /// Renders a summary table.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "job".to_string(),
            "priority".to_string(),
            "fair".to_string(),
            "prioritized".to_string(),
            "speed-up".to_string(),
        ]];
        for (i, s) in self.speedups().iter().enumerate() {
            rows.push(vec![
                self.fair[i].label.clone(),
                self.classes[i].to_string(),
                format!("{:.0} ms", self.fair[i].median_ms()),
                format!("{:.0} ms", self.prioritized[i].median_ms()),
                s.to_string(),
            ]);
        }
        crate::metrics::text_table(&rows)
    }
}

fn run_policy<R: Recorder>(
    jobs: &[JobSpec],
    policy: SharingPolicy,
    cfg: &PriorityConfig,
    rec: R,
) -> Result<Vec<JobStats>, PriorityError> {
    let d = dumbbell(
        jobs.len(),
        Bandwidth::from_gbps(50),
        Bandwidth::from_gbps(50),
        Dur::ZERO,
    );
    let t = &d.topology;
    let fjobs: Vec<FluidJob> = jobs
        .iter()
        .enumerate()
        .map(|(i, &spec)| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .expect("dumbbell connected");
            FluidJob::single_path(spec, path.links().to_vec())
        })
        .collect();
    let fluid_cfg = FluidConfig {
        policy,
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::with_recorder(t, fluid_cfg, &fjobs, rec);
    let cap = Bandwidth::from_gbps(50);
    let per_iter = jobs
        .iter()
        .map(|s| s.iteration_time_at(cap))
        .max()
        .ok_or(PriorityError::NoJobs)?;
    let ok = sim.run_until_iterations(
        cfg.iterations,
        per_iter * (cfg.iterations as u64 * (jobs.len() as u64 + 2) + 20),
    );
    if !ok {
        return Err(PriorityError::Incomplete {
            iterations: cfg.iterations,
        });
    }
    Ok((0..jobs.len())
        .map(|i| JobStats::from_progress(sim.progress(i), cfg.warmup))
        .collect())
}

/// Runs max-min vs strict-priority sharing.
///
/// # Panics
/// Panics on any [`PriorityError`] (more jobs than switch queues, empty
/// job lists, jobs that don't finish); use [`try_run`] to handle failures.
pub fn run(cfg: &PriorityConfig) -> PriorityResult {
    try_run(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs max-min vs strict-priority sharing, surfacing misconfigured job
/// lists as [`PriorityError`] instead of panicking.
pub fn try_run(cfg: &PriorityConfig) -> Result<PriorityResult, PriorityError> {
    try_run_traced(cfg, NoopRecorder)
}

/// Runs max-min vs strict-priority sharing, streaming telemetry into
/// `rec` with a marker per scenario.
///
/// # Panics
/// Panics on any [`PriorityError`]; use [`try_run_traced`] to handle
/// failures.
pub fn run_traced<R: ForkableRecorder>(cfg: &PriorityConfig, rec: R) -> PriorityResult {
    try_run_traced(cfg, rec).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_run`] with telemetry streamed into `rec`, one [`Event::Scenario`]
/// marker per scenario. Both policies run in parallel under
/// [`parallel::jobs`] workers with results and telemetry identical to a
/// serial run.
pub fn try_run_traced<R: ForkableRecorder>(
    cfg: &PriorityConfig,
    mut rec: R,
) -> Result<PriorityResult, PriorityError> {
    if cfg.jobs.is_empty() {
        return Err(PriorityError::NoJobs);
    }
    let classes = assign_priorities(cfg.jobs.len(), cfg.queues)?;
    let units: [(&str, SharingPolicy); 2] = [
        ("priority/fair", SharingPolicy::MaxMin),
        (
            "priority/prioritized",
            SharingPolicy::Priority(classes.clone()),
        ),
    ];
    let mut out = parallel::try_map_traced(&mut rec, &units, |_, (name, policy), fork| {
        if R::ENABLED {
            fork.record(
                Time::ZERO,
                Event::Scenario {
                    name: (*name).into(),
                },
            );
        }
        run_policy(&cfg.jobs, policy.clone(), cfg, fork)
    })?;
    let prioritized = out.pop().expect("two scenarios");
    let fair = out.pop().expect("two scenarios");
    Ok(PriorityResult {
        fair,
        prioritized,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_interleave_compatible_jobs() {
        let cfg = PriorityConfig {
            iterations: 12,
            warmup: 5,
            ..PriorityConfig::default()
        };
        let r = run(&cfg);
        assert_eq!(r.classes.len(), 2);
        assert_ne!(r.classes[0], r.classes[1], "classes must be unique");
        for (i, s) in r.speedups().iter().enumerate() {
            assert!(
                s.0 > 1.2,
                "job {i}: priority speedup only {s} (expected the full\
                 fair→solo gain on this compatible pair)"
            );
        }
        assert!(r.render().contains("priority"));
    }

    #[test]
    fn try_run_surfaces_queue_exhaustion() {
        let cfg = PriorityConfig {
            jobs: vec![JobSpec::reference(Model::ResNet50, 1600); 9],
            queues: 8,
            iterations: 2,
            warmup: 0,
        };
        match try_run(&cfg) {
            Err(PriorityError::Queues(scheduler::PriorityError::NotEnoughQueues {
                jobs: 9,
                queues: 8,
            })) => {}
            other => panic!("expected NotEnoughQueues, got {other:?}"),
        }
    }

    #[test]
    fn try_run_surfaces_empty_job_list() {
        let cfg = PriorityConfig {
            jobs: Vec::new(),
            ..PriorityConfig::default()
        };
        match try_run(&cfg) {
            Err(PriorityError::NoJobs) => {}
            other => panic!("expected NoJobs, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "more jobs than switch priority queues")]
    fn too_many_jobs_for_queues_panics() {
        let cfg = PriorityConfig {
            jobs: vec![JobSpec::reference(Model::ResNet50, 1600); 9],
            queues: 8,
            iterations: 2,
            warmup: 0,
        };
        let _ = run(&cfg);
    }
}
