//! Sharded intra-scenario simulation: one scenario split across worker
//! threads with byte-identical output.
//!
//! A cluster-scale scenario (CASSINI-style: many jobs spread over a
//! multi-group fabric) decomposes into link-disjoint components via
//! [`topology::partition`]. Each component becomes one *shard* — its own
//! engine instance with its own event queue — advanced by
//! [`netsim::shard::run_epochs`]. Per-shard telemetry is rewritten to
//! global indices by [`telemetry::RemapRecorder`] and merged with
//! [`ForkableRecorder::join_merged`], whose `(time, shard, seq)` key makes
//! the merged stream independent of worker-thread count: `--shards 8` and
//! `--shards 1` are byte-identical.
//!
//! On top of the thread fan-out, sharding is an *algorithmic* win for the
//! fluid engine even on one core: the global simulator re-solves the
//! max-min allocation over **all** flows at every transition of **any**
//! job, so K link-disjoint groups cost O(K·jobs) per transition × K more
//! transitions. Per-component shards solve only their own jobs — the
//! `BENCH_shard.json` ≥2x gate holds with a single worker thread.
//!
//! Scenarios whose jobs all share a link collapse to one component
//! (`ShardPlan::single`): sharding such a run is a no-op, never a wrong
//! answer.

use crate::experiments::chaos;
use crate::metrics::JobStats;
use dcqcn::CcVariant;
use faults::ChaosConfig;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::shard::run_epochs;
use netsim::snapshot::Snapshottable;
use simtime::{Bandwidth, Dur, Time};
use telemetry::{ForkableRecorder, Recorder, RemapRecorder};
use topology::{partition, subgraph, LinkId, NodeKind, ShardPlan, Topology};
use workload::{JobSpec, Model};

/// Parameters of the sharded scenario pair (fluid cluster + packet mix).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Link-disjoint groups (= shards when the plan is balanced).
    pub groups: usize,
    /// Jobs contending on each group's bottleneck (fluid scenario).
    pub jobs_per_group: usize,
    /// Iterations every job must complete.
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
    /// Simulated-time budget (scaled up under chaos).
    pub budget: Dur,
    /// Fault-injection profile (`ChaosConfig::none()` = quiet run).
    pub chaos: ChaosConfig,
    /// Snapshot/restore barrier: when set, every shard is driven to this
    /// simulated time, snapshotted, restored, and only then run to
    /// completion — exercising `--fork-at` composition. Must lie before
    /// the scenario completes its iterations for byte-parity with a
    /// straight run.
    pub fork_at: Option<Dur>,
}

impl ShardConfig {
    /// The paper-scale configuration behind `BENCH_shard.json`: four
    /// link-disjoint groups of a mixed-model job population.
    pub fn paper_scale() -> ShardConfig {
        ShardConfig {
            groups: 4,
            jobs_per_group: 128,
            iterations: 4,
            warmup: 1,
            budget: Dur::from_secs(30),
            chaos: ChaosConfig::none(),
            fork_at: None,
        }
    }

    /// A small configuration for tests and smoke runs.
    pub fn small() -> ShardConfig {
        ShardConfig {
            groups: 3,
            jobs_per_group: 3,
            iterations: 3,
            warmup: 1,
            budget: Dur::from_secs(10),
            chaos: ChaosConfig::none(),
            fork_at: None,
        }
    }
}

/// Model zoo the scenario cycles through (Table 1 population).
const ZOO: [(Model, u32); 4] = [
    (Model::Vgg19, 1400),
    (Model::WideResNet50, 919),
    (Model::ResNet50, 3480),
    (Model::Vgg16, 1200),
];

fn zoo_spec(idx: usize) -> JobSpec {
    let (model, batch) = ZOO[idx % ZOO.len()];
    JobSpec::reference(model, batch)
}

/// The fluid cluster scenario: topology, jobs, engine config, and the
/// shard plan derived from the per-job routes.
#[derive(Debug, Clone)]
pub struct FluidScenario {
    /// The multi-group fabric.
    pub topology: Topology,
    /// Engine configuration (chaos link schedules applied).
    pub fluid_cfg: FluidConfig,
    /// All jobs, in global index order (chaos noise/churn applied).
    pub jobs: Vec<FluidJob>,
    /// Link-disjoint components over the jobs' routes.
    pub plan: ShardPlan,
}

/// Applies `chaos` to a fluid-engine run lasting roughly `horizon` — the
/// fluid counterpart of [`chaos::apply_rate`]: per-job phase noise, late
/// arrivals, and departures land on `jobs`; per-link capacity schedules
/// land on `cfg`. Signal loss is a DCQCN marking artifact and does not
/// apply to the fluid abstraction. Chaos is keyed by **global** job index,
/// so a shard inherits exactly the perturbations its jobs would see in an
/// unsharded run.
pub fn apply_fluid(
    chaos: &ChaosConfig,
    jobs: &mut [FluidJob],
    cfg: &mut FluidConfig,
    links: usize,
    horizon: Dur,
) {
    if chaos.is_none() {
        return;
    }
    let plan = chaos.compile(jobs.len(), links, horizon);
    for (i, job) in jobs.iter_mut().enumerate() {
        job.noise = plan.noise[i];
        job.start_offset += plan.arrivals[i];
        job.depart_at = plan.departures[i];
    }
    if plan.link_schedules.iter().any(|s| !s.is_identity()) {
        cfg.link_schedules = plan.link_schedules;
    }
}

/// Every link each job's flows traverse — the conflict-graph input to
/// [`topology::partition`].
pub fn job_link_sets(jobs: &[FluidJob]) -> Vec<Vec<LinkId>> {
    jobs.iter()
        .map(|j| {
            j.flows
                .iter()
                .flat_map(|f| f.links.iter().copied())
                .collect()
        })
        .collect()
}

/// Builds the paper-scale fluid scenario: `groups` disjoint sub-fabrics,
/// each a many-to-one funnel where `jobs_per_group` jobs contend on one
/// 50 Gbps bottleneck. Start offsets are staggered deterministically so
/// phase transitions spread over the first cycle.
pub fn build_fluid(cfg: &ShardConfig) -> FluidScenario {
    let line = Bandwidth::from_gbps(50);
    let mut topo = Topology::new();
    let mut jobs = Vec::new();
    for g in 0..cfg.groups {
        let a = topo.add_node(NodeKind::TorSwitch, format!("g{g}-in"));
        let b = topo.add_node(NodeKind::TorSwitch, format!("g{g}-out"));
        let bottleneck = topo.add_link(a, b, line, Dur::ZERO);
        for j in 0..cfg.jobs_per_group {
            let src = topo.add_host(format!("g{g}-src{j}"), 1);
            let dst = topo.add_host(format!("g{g}-dst{j}"), 1);
            let up = topo.add_link(src, a, line, Dur::ZERO);
            let down = topo.add_link(b, dst, line, Dur::ZERO);
            let idx = jobs.len();
            let offset = Dur::from_micros((idx as u64 * 7919) % 50_000);
            jobs.push(FluidJob::single_path_at(
                zoo_spec(idx),
                vec![up, bottleneck, down],
                offset,
            ));
        }
    }
    let mut fluid_cfg = FluidConfig::fair();
    let horizon = cfg.budget * chaos::budget_slack(&cfg.chaos);
    apply_fluid(
        &cfg.chaos,
        &mut jobs,
        &mut fluid_cfg,
        topo.link_count(),
        horizon,
    );
    let plan = partition(&job_link_sets(&jobs));
    FluidScenario {
        topology: topo,
        fluid_cfg,
        jobs,
        plan,
    }
}

/// Outcome of one sharded or unsharded run.
#[derive(Debug, Clone)]
pub struct ShardRunResult {
    /// Per-job statistics, in global job order.
    pub stats: Vec<JobStats>,
    /// Whether every job finished its iterations within the budget.
    pub completed: bool,
}

/// Runs the scenario as one global simulator — the unsharded baseline the
/// speedup gate compares against. Returns the recorder for inspection.
pub fn run_fluid_unsharded<R: Recorder>(
    scn: &FluidScenario,
    cfg: &ShardConfig,
    rec: R,
) -> (ShardRunResult, R) {
    let mut sim =
        FluidSimulator::with_recorder(&scn.topology, scn.fluid_cfg.clone(), &scn.jobs, rec);
    let budget = cfg.budget * chaos::budget_slack(&cfg.chaos);
    let completed = sim.run_until_iterations(cfg.iterations, budget);
    let stats = (0..scn.jobs.len())
        .map(|i| chaos::stats_tolerant(sim.progress(i), cfg.warmup))
        .collect();
    (ShardRunResult { stats, completed }, sim.into_recorder())
}

/// Runs the scenario sharded: one engine per link-disjoint component, up
/// to `threads` worker threads, per-shard recordings remapped to global
/// indices and merged into `rec` deterministically. With `cfg.fork_at`
/// set, every shard round-trips through snapshot/restore at the barrier
/// first.
pub fn run_fluid_sharded<R: ForkableRecorder>(
    scn: &FluidScenario,
    cfg: &ShardConfig,
    rec: &mut R,
    threads: usize,
) -> ShardRunResult {
    let budget = cfg.budget * chaos::budget_slack(&cfg.chaos);
    let mut sims: Vec<FluidSimulator<RemapRecorder<R::Fork>>> = scn
        .plan
        .components()
        .iter()
        .map(|comp| {
            // Each shard runs on the sub-topology its component induces, so
            // per-solve cost scales with the component, not the fabric.
            // Flow routes are rewritten to local link ids going in, and the
            // remap recorder rewrites them back to global ids coming out.
            let comp_links: Vec<LinkId> = comp
                .iter()
                .flat_map(|&j| {
                    scn.jobs[j]
                        .flows
                        .iter()
                        .flat_map(|f| f.links.iter().copied())
                })
                .collect();
            let (sub, link_ids) = subgraph(&scn.topology, &comp_links);
            let jobs: Vec<FluidJob> = comp
                .iter()
                .map(|&j| {
                    let mut job = scn.jobs[j].clone();
                    for flow in &mut job.flows {
                        for link in &mut flow.links {
                            let local = link_ids.binary_search(link).expect("route off-component");
                            *link = LinkId(local as u32);
                        }
                    }
                    job
                })
                .collect();
            let mut cfg = scn.fluid_cfg.clone();
            if !cfg.link_schedules.is_empty() {
                cfg.link_schedules = link_ids
                    .iter()
                    .map(|l| scn.fluid_cfg.link_schedules[l.0 as usize].clone())
                    .collect();
            }
            let fork = RemapRecorder::new(
                R::fork(),
                comp.iter().map(|&j| j as u32).collect(),
                Some(link_ids.iter().map(|l| l.0).collect()),
            );
            FluidSimulator::with_recorder(&sub, cfg, &jobs, fork)
        })
        .collect();
    if let Some(at) = cfg.fork_at {
        let barrier = Time::ZERO + at;
        sims = sims
            .into_iter()
            .map(|mut sim| {
                sim.run_until(barrier);
                let snap = sim.snapshot().expect("shard fork barrier");
                let fork = sim.into_recorder();
                FluidSimulator::restore(snap, fork).expect("shard restore")
            })
            .collect();
    }
    let completed = run_epochs(&mut sims, threads, cfg.iterations, budget, None);
    let mut stats: Vec<Option<JobStats>> = vec![None; scn.jobs.len()];
    for (c, comp) in scn.plan.components().iter().enumerate() {
        for (local, &global) in comp.iter().enumerate() {
            stats[global] = Some(chaos::stats_tolerant(sims[c].progress(local), cfg.warmup));
        }
    }
    rec.join_merged(
        sims.into_iter()
            .map(|s| s.into_recorder().into_inner())
            .collect(),
    );
    ShardRunResult {
        stats: stats.into_iter().map(Option::unwrap).collect(),
        completed,
    }
}

/// The packet-engine side of the scenario: `groups` replicas of the
/// paper-scale 4-job rotation mix (VGG19 + WideResNet50 + 2×ResNet50 with
/// harmonic ~285 ms periods), each on its own bottleneck link. Group `g`'s
/// bottleneck is link id `g` in the global numbering.
#[derive(Debug, Clone)]
pub struct PacketScenario {
    /// Per-group engine configs (chaos schedules applied per group link).
    pub configs: Vec<PacketSimConfig>,
    /// Per-group job lists; global job index = `g * mix_len + local`.
    pub groups: Vec<Vec<PacketJob>>,
    /// One component per group (each group shares one bottleneck).
    pub plan: ShardPlan,
}

/// The Table-1-derived rotation mix each group runs.
fn packet_mix() -> Vec<PacketJob> {
    let mix: [(JobSpec, CcVariant, Dur); 4] = [
        (
            JobSpec::reference(Model::Vgg19, 1400),
            CcVariant::Fair,
            Dur::from_micros(33_680),
        ),
        (
            JobSpec::reference(Model::WideResNet50, 919),
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(70),
            },
            Dur::from_micros(105_970),
        ),
        (
            JobSpec::reference(Model::ResNet50, 3480),
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
            Dur::from_micros(143_630),
        ),
        (
            JobSpec::reference(Model::ResNet50, 3480),
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(130),
            },
            Dur::from_micros(181_590),
        ),
    ];
    mix.iter()
        .map(|&(spec, variant, start_offset)| PacketJob {
            start_offset,
            ..PacketJob::new(spec, variant)
        })
        .collect()
}

/// Builds the packet scenario. The conflict graph is one synthetic link
/// per group bottleneck, so the plan always has exactly `groups`
/// components — unless `groups == 1`, the unshardable collapse case.
pub fn build_packet(cfg: &ShardConfig) -> PacketScenario {
    let mix = packet_mix();
    let base = PacketSimConfig {
        train_packets: 64,
        ..PacketSimConfig::default()
    };
    let total = cfg.groups * mix.len();
    let horizon = cfg.budget * chaos::budget_slack(&cfg.chaos);
    let plan = if cfg.chaos.is_none() {
        None
    } else {
        Some(cfg.chaos.compile(total, cfg.groups, horizon))
    };
    let mut configs = Vec::new();
    let mut groups = Vec::new();
    for g in 0..cfg.groups {
        let mut jobs = mix.clone();
        let mut pc = base.clone();
        if let Some(plan) = &plan {
            for (local, job) in jobs.iter_mut().enumerate() {
                let i = g * mix.len() + local;
                job.noise = plan.noise[i];
                job.start_offset += plan.arrivals[i];
                job.depart_at = plan.departures[i];
            }
            match plan.link_schedules.get(g) {
                Some(s) if !s.is_identity() => pc.capacity_schedule = Some(s.clone()),
                _ => {}
            }
            pc.signal_loss = plan.signal_loss;
        }
        configs.push(pc);
        groups.push(jobs);
    }
    let link_sets: Vec<Vec<LinkId>> = (0..cfg.groups)
        .flat_map(|g| std::iter::repeat_n(vec![LinkId(g as u32)], mix.len()))
        .collect();
    PacketScenario {
        configs,
        groups,
        plan: partition(&link_sets),
    }
}

/// Runs the packet scenario sharded (one engine per group), merging the
/// remapped per-shard recordings into `rec`. Group `g`'s local `link: 0`
/// is rewritten to global link id `g`.
pub fn run_packet_sharded<R: ForkableRecorder>(
    scn: &PacketScenario,
    cfg: &ShardConfig,
    rec: &mut R,
    threads: usize,
) -> ShardRunResult {
    let budget = cfg.budget * chaos::budget_slack(&cfg.chaos);
    let mix_len = scn.groups[0].len();
    let mut sims: Vec<PacketSimulator<RemapRecorder<R::Fork>>> = scn
        .groups
        .iter()
        .enumerate()
        .map(|(g, jobs)| {
            let job_map = (0..jobs.len()).map(|l| (g * mix_len + l) as u32).collect();
            let fork = RemapRecorder::new(R::fork(), job_map, Some(vec![g as u32]));
            PacketSimulator::with_recorder(scn.configs[g].clone(), jobs, fork)
        })
        .collect();
    if let Some(at) = cfg.fork_at {
        let barrier = Time::ZERO + at;
        sims = sims
            .into_iter()
            .map(|mut sim| {
                sim.run_until(barrier);
                let snap = sim.snapshot().expect("packet shard fork barrier");
                let fork = sim.into_recorder();
                PacketSimulator::restore(snap, fork).expect("packet shard restore")
            })
            .collect();
    }
    let completed = run_epochs(&mut sims, threads, cfg.iterations, budget, None);
    let mut stats = Vec::new();
    for sim in &sims {
        for local in 0..sim.num_jobs() {
            stats.push(chaos::stats_tolerant(sim.progress(local), cfg.warmup));
        }
    }
    rec.join_merged(
        sims.into_iter()
            .map(|s| s.into_recorder().into_inner())
            .collect(),
    );
    ShardRunResult { stats, completed }
}

/// Shard-plan statistics for `RunSummary`/`HISTORY.jsonl` correlation.
pub fn plan_metrics(plan: &ShardPlan) -> Vec<(&'static str, f64)> {
    vec![
        ("shard.components", plan.num_components() as f64),
        ("shard.jobs", plan.num_jobs() as f64),
        ("shard.largest_component_share", plan.largest_share()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::BufferRecorder;

    fn median(stats: &JobStats) -> f64 {
        stats.cdf.median().as_millis_f64()
    }

    #[test]
    fn fluid_plan_is_balanced_per_group() {
        let cfg = ShardConfig::small();
        let scn = build_fluid(&cfg);
        assert_eq!(scn.plan.num_components(), cfg.groups);
        assert!((scn.plan.largest_share() - 1.0 / cfg.groups as f64).abs() < 1e-12);
        // Components are exactly the construction groups, in order.
        for (c, comp) in scn.plan.components().iter().enumerate() {
            let expect: Vec<usize> =
                (c * cfg.jobs_per_group..(c + 1) * cfg.jobs_per_group).collect();
            assert_eq!(comp, &expect);
        }
    }

    /// The headline guarantee: worker-thread count is invisible in the
    /// merged stream, for both engines, with and without chaos.
    #[test]
    fn sharded_output_is_byte_identical_across_thread_counts() {
        for chaos in [
            ChaosConfig::none(),
            ChaosConfig::profile("stragglers").unwrap(),
        ] {
            let mut cfg = ShardConfig::small();
            cfg.chaos = chaos;
            let fluid = build_fluid(&cfg);
            let packet = build_packet(&cfg);
            let mut streams = Vec::new();
            for threads in [1usize, 4] {
                let mut rec = BufferRecorder::new();
                run_fluid_sharded(&fluid, &cfg, &mut rec, threads);
                run_packet_sharded(&packet, &cfg, &mut rec, threads);
                streams.push(rec);
            }
            assert!(!streams[0].events().is_empty());
            assert_eq!(streams[0].events(), streams[1].events());
            assert_eq!(streams[0].counts(), streams[1].counts());
        }
    }

    /// Sharded and unsharded runs agree on every job's iteration-time
    /// statistics (the streams differ only in solver-bookkeeping events).
    #[test]
    fn sharded_fluid_stats_match_unsharded() {
        let cfg = ShardConfig::small();
        let scn = build_fluid(&cfg);
        let (unsharded, _) = run_fluid_unsharded(&scn, &cfg, telemetry::NoopRecorder);
        let mut rec = BufferRecorder::new();
        let sharded = run_fluid_sharded(&scn, &cfg, &mut rec, 2);
        assert!(unsharded.completed && sharded.completed);
        for (a, b) in unsharded.stats.iter().zip(&sharded.stats) {
            let (ma, mb) = (median(a), median(b));
            assert!(
                (ma - mb).abs() <= 1e-9 * ma.abs().max(1.0),
                "{}: unsharded {ma} ms vs sharded {mb} ms",
                a.label
            );
        }
    }

    /// All jobs sharing one bottleneck collapse to a single component, and
    /// the sharded run (identity remap, single fork) is byte-identical to
    /// the plain unsharded run.
    #[test]
    fn unshardable_scenario_collapses_to_one_shard() {
        let mut cfg = ShardConfig::small();
        cfg.groups = 1;
        let mut scn = build_fluid(&cfg);
        // Zero offsets keep the whole stream time-sorted, so the ordered
        // merge is exactly the unsharded recording.
        for job in &mut scn.jobs {
            job.start_offset = Dur::ZERO;
        }
        assert_eq!(scn.plan.num_components(), 1);
        assert_eq!(scn.plan, ShardPlan::single(scn.jobs.len()));
        let (_, direct) = run_fluid_unsharded(&scn, &cfg, BufferRecorder::new());
        let mut merged = BufferRecorder::new();
        run_fluid_sharded(&scn, &cfg, &mut merged, 4);
        assert_eq!(direct.events(), merged.events());
    }

    /// Snapshot/restore at a fork barrier is invisible: a sharded run with
    /// `fork_at` matches the straight sharded run byte-for-byte.
    #[test]
    fn fork_at_barrier_is_byte_invisible() {
        let cfg = ShardConfig::small();
        let fluid = build_fluid(&cfg);
        let packet = build_packet(&cfg);
        let mut straight = BufferRecorder::new();
        run_fluid_sharded(&fluid, &cfg, &mut straight, 2);
        run_packet_sharded(&packet, &cfg, &mut straight, 2);
        let mut forked_cfg = cfg.clone();
        forked_cfg.fork_at = Some(Dur::from_millis(20));
        let mut forked = BufferRecorder::new();
        run_fluid_sharded(&fluid, &forked_cfg, &mut forked, 2);
        run_packet_sharded(&packet, &forked_cfg, &mut forked, 2);
        assert_eq!(straight.events(), forked.events());
    }
}
