//! Table 1: which job groups does unfairness help?
//!
//! Five groups of jobs share a 50 Gbps bottleneck. Each group runs twice:
//! under default fair DCQCN, and under static unfairness with
//! aggressiveness following the group's job order (each job's timer `T`
//! strictly smaller — more aggressive — than the next job's). A group is
//! **fully compatible** when unfairness speeds up *every* job in it.
//!
//! The paper's green rows are groups 2 (DLRM ×2), 4 (WideResNet + VGG16)
//! and 5 (VGG19 + VGG16 + ResNet50); groups 1 and 3 (the BERT mixes) are
//! incompatible: the aggressive BERT gains while a victim loses.
//!
//! We additionally run the geometry solver on each group's analytic
//! profiles; its verdict must agree with the measured green/red outcome —
//! that cross-check is the reproduction's central scientific claim.

use crate::experiments::chaos;
use crate::metrics::{text_table, JobStats, Speedup};
use crate::parallel;
use dcqcn::CcVariant;
use faults::ChaosConfig;
use geometry::{solve, SolverConfig, Verdict};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use scheduler::analytic_profile;
use simtime::{Bandwidth, Dur, Time};
use telemetry::{Event, ForkableRecorder, NoopRecorder, Recorder};
use workload::{JobSpec, Model};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Iterations measured per scenario.
    pub iterations: usize,
    /// Warmup iterations excluded from statistics.
    pub warmup: usize,
    /// Timers assigned in job order for the unfair scenario: job `k` of
    /// `n` gets `min + k·(max−min)/(n−1)`.
    pub timer_range: (Dur, Dur),
    /// Geometry solver settings for the predicted-compatibility column.
    pub solver: SolverConfig,
    /// Profile quantization grid.
    pub grid: Dur,
    /// Fault injection applied to every group's measurements.
    /// [`ChaosConfig::none`] leaves the experiment bit-identical to a
    /// chaos-free run.
    pub chaos: ChaosConfig,
}

impl Default for Table1Config {
    fn default() -> Table1Config {
        Table1Config {
            iterations: 30,
            warmup: 5,
            timer_range: (Dur::from_micros(100), Dur::from_micros(125)),
            solver: SolverConfig::default(),
            grid: Dur::from_micros(2_500),
            chaos: ChaosConfig::none(),
        }
    }
}

/// The five job groups of Table 1, in paper order.
pub fn paper_groups() -> Vec<Vec<JobSpec>> {
    let j = JobSpec::reference;
    vec![
        vec![j(Model::BertLarge, 8), j(Model::Vgg19, 1200)],
        vec![j(Model::Dlrm, 2000), j(Model::Dlrm, 2000)],
        vec![
            j(Model::BertLarge, 8),
            j(Model::Vgg19, 1400),
            j(Model::WideResNet50, 800),
        ],
        vec![j(Model::WideResNet50, 800), j(Model::Vgg16, 1400)],
        vec![
            j(Model::Vgg19, 1400),
            j(Model::Vgg16, 1700),
            j(Model::ResNet50, 1600),
        ],
    ]
}

/// One job's row within a group.
#[derive(Debug, Clone)]
pub struct Row {
    /// Job label.
    pub label: String,
    /// Mean iteration time under fair DCQCN.
    pub fair: Dur,
    /// Mean iteration time under ordered unfairness.
    pub unfair: Dur,
    /// `fair / unfair`.
    pub speedup: Speedup,
}

/// One group's outcome.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// Per-job rows, in group order.
    pub rows: Vec<Row>,
    /// Measured: did unfairness speed up every job?
    pub fully_compatible_measured: bool,
    /// Predicted by the geometry solver on analytic profiles.
    pub predicted: Verdict,
}

impl GroupResult {
    /// `true` when the solver's verdict matches the measured outcome.
    pub fn prediction_agrees(&self) -> bool {
        self.predicted.is_compatible() == self.fully_compatible_measured
    }
}

/// The full Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One result per group, in paper order.
    pub groups: Vec<GroupResult>,
}

impl Table1Result {
    /// Renders the table in the paper's layout (plus the prediction
    /// column).
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "jobs (batch)".to_string(),
            "fair iter".to_string(),
            "unfair iter".to_string(),
            "speed-up".to_string(),
            "fully compatible".to_string(),
            "geometry predicts".to_string(),
        ]];
        for g in &self.groups {
            for (i, r) in g.rows.iter().enumerate() {
                let (m, p) = if i == 0 {
                    (
                        if g.fully_compatible_measured {
                            "yes".to_string()
                        } else {
                            "no".to_string()
                        },
                        if g.predicted.is_compatible() {
                            "compatible".to_string()
                        } else {
                            format!(
                                "incompatible ({:.0}% overlap)",
                                g.predicted.overlap_fraction() * 100.0
                            )
                        },
                    )
                } else {
                    (String::new(), String::new())
                };
                rows.push(vec![
                    r.label.clone(),
                    format!("{:.0} ms", r.fair.as_millis_f64()),
                    format!("{:.0} ms", r.unfair.as_millis_f64()),
                    r.speedup.to_string(),
                    m,
                    p,
                ]);
            }
        }
        text_table(&rows)
    }
}

/// Ordered unfairness: job `k` of `n` gets a timer linearly interpolated
/// across `range` (first job most aggressive).
pub fn ordered_timers(n: usize, range: (Dur, Dur)) -> Vec<Dur> {
    assert!(n >= 1);
    let (lo, hi) = range;
    (0..n)
        .map(|k| {
            if n == 1 {
                lo
            } else {
                let span = (hi - lo).as_nanos();
                lo + Dur::from_nanos(span * k as u64 / (n as u64 - 1))
            }
        })
        .collect()
}

fn mean_iteration_times<R: Recorder>(
    group: &[JobSpec],
    variants: &[CcVariant],
    cfg: &Table1Config,
    rec: R,
) -> Vec<JobStats> {
    let mut jobs: Vec<RateJob> = group
        .iter()
        .zip(variants)
        .map(|(&spec, &v)| RateJob::new(spec, v))
        .collect();
    let cap = Bandwidth::from_gbps(50);
    let per_iter = group
        .iter()
        .map(|s| s.iteration_time_at(cap))
        .max()
        .unwrap();
    let mut sim_cfg = RateSimConfig::default();
    chaos::apply_rate(
        &cfg.chaos,
        &mut jobs,
        &mut sim_cfg,
        per_iter * (cfg.iterations as u64 * 2),
    );
    let mut sim = RateSimulator::with_recorder(sim_cfg, &jobs, rec);
    let ok = sim.run_until_iterations(
        cfg.iterations,
        per_iter
            * ((cfg.iterations as u64 * (group.len() as u64 + 2) + 40)
                * chaos::budget_slack(&cfg.chaos)),
    );
    assert!(ok, "table1: group did not finish");
    (0..group.len())
        .map(|i| chaos::stats_tolerant(sim.progress(i), cfg.warmup))
        .collect()
}

/// Runs one group.
pub fn run_group(group: &[JobSpec], cfg: &Table1Config) -> GroupResult {
    run_group_traced(group, cfg, NoopRecorder)
}

/// The group's ordered-unfairness variants.
fn unfair_variants(n: usize, cfg: &Table1Config) -> Vec<CcVariant> {
    ordered_timers(n, cfg.timer_range)
        .iter()
        .map(|&t| CcVariant::StaticUnfair { timer: t })
        .collect()
}

/// Folds a group's fair and unfair measurements plus the geometry
/// prediction into its table row block.
fn assemble_group(
    group: &[JobSpec],
    cfg: &Table1Config,
    fair: &[JobStats],
    unfair: &[JobStats],
) -> GroupResult {
    let rows: Vec<Row> = group
        .iter()
        .enumerate()
        .map(|(i, spec)| Row {
            label: spec.label(),
            fair: fair[i].mean(),
            unfair: unfair[i].mean(),
            speedup: unfair[i].speedup_vs(&fair[i]),
        })
        .collect();
    let fully = rows.iter().all(|r| r.speedup.is_improvement());

    let profiles: Vec<geometry::Profile> = group
        .iter()
        .map(|s| analytic_profile(s, Bandwidth::from_gbps(50), cfg.grid))
        .collect();
    let predicted = solve(&profiles, &cfg.solver).expect("profiles are valid");

    GroupResult {
        rows,
        fully_compatible_measured: fully,
        predicted,
    }
}

/// Runs one group, streaming telemetry into `rec`.
pub fn run_group_traced<R: Recorder>(
    group: &[JobSpec],
    cfg: &Table1Config,
    mut rec: R,
) -> GroupResult {
    let n = group.len();
    let fair = mean_iteration_times(group, &vec![CcVariant::Fair; n], cfg, &mut rec);
    let unfair = mean_iteration_times(group, &unfair_variants(n, cfg), cfg, &mut rec);
    assemble_group(group, cfg, &fair, &unfair)
}

/// How a matrix scheme assigns congestion-control variants to a group's
/// jobs.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// Every job runs default fair DCQCN.
    Fair,
    /// The paper's unfair column: timers linearly interpolated across
    /// [`Table1Config::timer_range`] in job order.
    OrderedUnfair,
    /// Every job runs the same variant (the zoo sweep's mode).
    Uniform(CcVariant),
}

impl Scheme {
    /// Display label for table headers and bench metric keys.
    pub fn label(&self) -> String {
        match self {
            Scheme::Fair => "fair".to_string(),
            Scheme::OrderedUnfair => "unfair".to_string(),
            Scheme::Uniform(v) => match v {
                CcVariant::Fair => "uniform-fair".to_string(),
                CcVariant::StaticUnfair { .. } => "uniform-static".to_string(),
                CcVariant::AdaptiveUnfair => "adaptive".to_string(),
                CcVariant::Swift { .. } => "swift".to_string(),
                CcVariant::Mltcp { .. } => "mltcp".to_string(),
                CcVariant::Policy { .. } => "policy".to_string(),
            },
        }
    }

    /// The per-job variants for a group of `n` jobs.
    pub fn variants(&self, n: usize, cfg: &Table1Config) -> Vec<CcVariant> {
        match self {
            Scheme::Fair => vec![CcVariant::Fair; n],
            Scheme::OrderedUnfair => unfair_variants(n, cfg),
            Scheme::Uniform(v) => vec![*v; n],
        }
    }
}

/// A group × scheme matrix run: per-group, per-scheme, per-job iteration
/// statistics.
#[derive(Debug, Clone)]
pub struct Table1Matrix {
    /// The schemes measured, in column order.
    pub schemes: Vec<Scheme>,
    /// `stats[group][scheme][job]`.
    pub stats: Vec<Vec<Vec<JobStats>>>,
}

impl Table1Matrix {
    /// Renders mean iteration times, one row per group × job, one column
    /// per scheme.
    pub fn render(&self) -> String {
        let mut head = vec!["jobs (batch)".to_string()];
        head.extend(self.schemes.iter().map(|s| format!("{} iter", s.label())));
        let mut rows = vec![head];
        for group in &self.stats {
            let jobs = group.first().map_or(0, |s| s.len());
            for j in 0..jobs {
                let mut row = vec![group[0][j].label.clone()];
                row.extend(
                    group
                        .iter()
                        .map(|scheme| format!("{:.0} ms", scheme[j].mean().as_millis_f64())),
                );
                rows.push(row);
            }
        }
        text_table(&rows)
    }
}

/// Runs the paper's five groups under an arbitrary list of variant
/// schemes, streaming telemetry into `rec` with a per-group
/// [`Event::Scenario`] marker on each group's first scheme. Every
/// group × scheme measurement is an independent simulation, so all run
/// in parallel under [`parallel::jobs`] workers; markers and event
/// stream come out identical to a serial run.
pub fn run_matrix_traced<R: ForkableRecorder>(
    cfg: &Table1Config,
    schemes: &[Scheme],
    mut rec: R,
) -> Table1Matrix {
    assert!(!schemes.is_empty(), "table1 matrix: no schemes");
    let groups = paper_groups();
    let units: Vec<(usize, usize)> = (0..groups.len())
        .flat_map(|i| (0..schemes.len()).map(move |s| (i, s)))
        .collect();
    let measured = parallel::map_traced(&mut rec, &units, |_, &(i, s), fork| {
        let group = &groups[i];
        if R::ENABLED && s == 0 {
            // The group marker leads the group's first unit, exactly
            // where the serial loop records it.
            fork.record(
                Time::ZERO,
                Event::Scenario {
                    name: format!("table1/group{}", i + 1),
                },
            );
        }
        mean_iteration_times(group, &schemes[s].variants(group.len(), cfg), cfg, fork)
    });
    Table1Matrix {
        schemes: schemes.to_vec(),
        stats: measured
            .chunks_exact(schemes.len())
            .map(|c| c.to_vec())
            .collect(),
    }
}

/// Runs all five paper groups.
pub fn run(cfg: &Table1Config) -> Table1Result {
    run_traced(cfg, NoopRecorder)
}

/// Runs all five paper groups under the paper's two schemes — the
/// `[Fair, OrderedUnfair]` matrix — and folds in the geometry
/// predictions.
pub fn run_traced<R: ForkableRecorder>(cfg: &Table1Config, rec: R) -> Table1Result {
    let m = run_matrix_traced(cfg, &[Scheme::Fair, Scheme::OrderedUnfair], rec);
    Table1Result {
        groups: paper_groups()
            .iter()
            .zip(&m.stats)
            .map(|(g, pair)| assemble_group(g, cfg, &pair[0], &pair[1]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Table1Config {
        Table1Config {
            iterations: 8,
            warmup: 3,
            ..Table1Config::default()
        }
    }

    #[test]
    fn ordered_timers_interpolate() {
        let t = ordered_timers(3, (Dur::from_micros(100), Dur::from_micros(125)));
        assert_eq!(
            t,
            vec![
                Dur::from_micros(100),
                Dur::from_nanos(112_500),
                Dur::from_micros(125)
            ]
        );
        assert_eq!(
            ordered_timers(1, (Dur::from_micros(100), Dur::from_micros(125))).len(),
            1
        );
    }

    /// Group 2 (DLRM ×2) is the paper's strongest green row: both jobs
    /// speed up ≈1.3×, and geometry agrees.
    #[test]
    fn dlrm_pair_is_fully_compatible() {
        let g = run_group(&paper_groups()[1], &quick());
        assert!(g.fully_compatible_measured, "rows: {:?}", g.rows);
        assert!(g.predicted.is_compatible());
        assert!(g.prediction_agrees());
        for r in &g.rows {
            assert!(
                r.speedup.0 > 1.15,
                "{}: speedup {} below DLRM ballpark",
                r.label,
                r.speedup
            );
        }
    }

    /// Group 1 (BERT + VGG19) is red: the victim VGG19 slows down, and
    /// geometry predicts incompatibility.
    #[test]
    fn bert_vgg_pair_is_incompatible() {
        let g = run_group(&paper_groups()[0], &quick());
        assert!(!g.fully_compatible_measured, "rows: {:?}", g.rows);
        assert!(!g.predicted.is_compatible());
        assert!(g.prediction_agrees());
        // BERT (aggressive) gains; VGG19 (victim) loses.
        assert!(g.rows[0].speedup.0 > 1.0, "BERT should gain: {:?}", g.rows);
        assert!(g.rows[1].speedup.0 < 1.0, "VGG19 should lose: {:?}", g.rows);
    }

    /// Group 4 (WRN + VGG16, equal periods) is green.
    #[test]
    fn wrn_vgg16_pair_is_fully_compatible() {
        let g = run_group(&paper_groups()[3], &quick());
        assert!(g.fully_compatible_measured, "rows: {:?}", g.rows);
        assert!(g.predicted.is_compatible());
    }
}
