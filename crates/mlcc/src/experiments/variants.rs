//! The congestion-control zoo sweep: every variant on the contended
//! Fig. 1 pair.
//!
//! The paper's knob is DCQCN's timer `T`; the related work proposes
//! job-aware alternatives (MLTCP's progress bonus, explicit fairness
//! policies). This sweep runs each [`CcVariant`] family on the same
//! contended two-job bottleneck and reports, per variant:
//!
//! * **mean / median iteration time** across both jobs — the number a
//!   cluster operator cares about;
//! * **Jain fairness** of the jobs' long-run progress rates — deliberate
//!   short-term unfairness should still be long-term fair;
//! * **time-to-interleave** — how quickly the communication phases slide
//!   apart (Fig. 2's criterion), `None` when they never do.
//!
//! The interesting outcome, mirroring MLTCP's finding: the self-organizing
//! variants (`Mltcp`, `AdaptiveUnfair`, bonus-decay policies) beat `Fair`
//! on mean iteration time *without* a designated aggressor job.

use crate::experiments::fig1::{self, Fig1Config, MatrixCell, Scenario};
use crate::metrics::text_table;
use dcqcn::CcVariant;
use diagnostics::fairness::jain_index;
use telemetry::{ForkableRecorder, NoopRecorder};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct VariantsConfig {
    /// The contended pair and engine settings every cell shares.
    pub fig1: Fig1Config,
    /// The matrix cells to sweep (default: [`fig1::zoo_cells`]).
    pub cells: Vec<MatrixCell>,
}

impl Default for VariantsConfig {
    fn default() -> VariantsConfig {
        let fig1 = Fig1Config::default();
        let cells = fig1::zoo_cells(&fig1);
        VariantsConfig { fig1, cells }
    }
}

/// One variant's sweep outcome.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// Cell name with the `variants/` prefix stripped (bench metric key).
    pub name: String,
    /// The variants the two jobs ran.
    pub variants: [CcVariant; 2],
    /// Mean iteration time across both jobs (ms).
    pub mean_iter_ms: f64,
    /// Mean of the two jobs' median iteration times (ms).
    pub median_iter_ms: f64,
    /// Jain index of the jobs' long-run progress rates (1/mean iteration
    /// time): 1.0 when both jobs train equally fast.
    pub jain: f64,
    /// When the communication phases first interleaved (ms), or `None`.
    pub time_to_interleave_ms: Option<f64>,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct VariantsResult {
    /// One outcome per cell, in cell order.
    pub outcomes: Vec<VariantOutcome>,
}

impl VariantsResult {
    /// The named outcome (short name, e.g. `"mltcp"`).
    pub fn get(&self, name: &str) -> Option<&VariantOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// Mean-iteration-time speedup of `name` over the `fair` cell
    /// (`> 1` means faster).
    pub fn speedup_vs_fair(&self, name: &str) -> Option<f64> {
        let fair = self.get("fair")?;
        let v = self.get(name)?;
        Some(fair.mean_iter_ms / v.mean_iter_ms)
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "variant".to_string(),
            "mean iter".to_string(),
            "median iter".to_string(),
            "vs fair".to_string(),
            "jain".to_string(),
            "interleaved at".to_string(),
        ]];
        for o in &self.outcomes {
            rows.push(vec![
                o.name.clone(),
                format!("{:.1} ms", o.mean_iter_ms),
                format!("{:.1} ms", o.median_iter_ms),
                self.speedup_vs_fair(&o.name)
                    .map_or("—".to_string(), |s| format!("{s:.2}×")),
                format!("{:.3}", o.jain),
                match o.time_to_interleave_ms {
                    Some(ms) => format!("{ms:.0} ms"),
                    None => "never".to_string(),
                },
            ]);
        }
        text_table(&rows)
    }
}

/// Folds one cell's [`Scenario`] into its outcome row.
fn outcome_of(cell: &MatrixCell, s: &Scenario) -> VariantOutcome {
    let means: Vec<f64> = s.stats.iter().map(|st| st.mean().as_millis_f64()).collect();
    let rates: Vec<f64> = means.iter().map(|&m| 1.0 / m).collect();
    VariantOutcome {
        name: cell
            .name
            .rsplit('/')
            .next()
            .unwrap_or(&cell.name)
            .to_string(),
        variants: cell.variants,
        mean_iter_ms: means.iter().sum::<f64>() / means.len() as f64,
        median_iter_ms: s.stats.iter().map(|st| st.median_ms()).sum::<f64>() / s.stats.len() as f64,
        jain: jain_index(&rates),
        time_to_interleave_ms: s.time_to_interleave_ms(),
    }
}

/// Runs the sweep.
pub fn run(cfg: &VariantsConfig) -> VariantsResult {
    run_traced(cfg, NoopRecorder)
}

/// Runs the sweep, streaming telemetry into `rec` with per-cell
/// [`telemetry::Event::Scenario`] markers. Cells run in parallel under
/// [`crate::parallel::jobs`] workers; output is identical to a serial
/// run.
pub fn run_traced<R: ForkableRecorder>(cfg: &VariantsConfig, rec: R) -> VariantsResult {
    let m = fig1::run_matrix_traced(&cfg.fig1, &cfg.cells, rec);
    VariantsResult {
        outcomes: cfg
            .cells
            .iter()
            .zip(&m.cells)
            .map(|(cell, (_, s))| outcome_of(cell, s))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> VariantsConfig {
        let mut cfg = VariantsConfig::default();
        cfg.fig1.iterations = 12;
        cfg.fig1.warmup = 4;
        cfg
    }

    /// The acceptance shape: MLTCP beats fair on the contended pair's
    /// mean iteration time, stays long-term fair, and interleaves.
    #[test]
    fn mltcp_beats_fair_on_contended_pair() {
        let r = run(&quick());
        let speedup = r.speedup_vs_fair("mltcp").expect("both cells present");
        assert!(speedup > 1.05, "mltcp speedup vs fair: {speedup:.3}");
        let m = r.get("mltcp").unwrap();
        assert!(m.jain > 0.95, "mltcp long-term jain {:.3}", m.jain);
        assert!(m.time_to_interleave_ms.is_some(), "mltcp never interleaved");
        // Fair stays contended: symmetric split, no interleave onset.
        let f = r.get("fair").unwrap();
        assert!(f.jain > 0.99, "fair jain {:.3}", f.jain);
        assert!(r.render().contains("mltcp"));
    }

    /// Every zoo cell produces finite, positive numbers.
    #[test]
    fn zoo_outcomes_are_sane() {
        let r = run(&quick());
        assert_eq!(r.outcomes.len(), 7);
        for o in &r.outcomes {
            assert!(
                o.mean_iter_ms.is_finite() && o.mean_iter_ms > 0.0,
                "{}: mean {}",
                o.name,
                o.mean_iter_ms
            );
            assert!((0.5..=1.0).contains(&o.jain), "{}: jain {}", o.name, o.jain);
        }
    }
}
