//! Plain-text data export (CSV) for plotting the reproduced figures.
//!
//! Everything here is a pure string producer over the experiment result
//! types — no I/O, no serialization dependencies — plus one convenience
//! file writer. The CSV dialect is the boring one: header row, comma
//! separation, `.` decimal points, LF line endings.

use eventsim::{Cdf, TimeSeries};
use std::fmt::Write as _;
use std::path::Path;

/// Renders a time series as `time_s,<value_name>` rows.
pub fn time_series_csv(ts: &TimeSeries, value_name: &str) -> String {
    let mut out = String::with_capacity(ts.len() * 16 + 32);
    let _ = writeln!(out, "time_s,{value_name}");
    for (t, v) in ts.iter() {
        let _ = writeln!(out, "{:.9},{v}", t.as_secs_f64());
    }
    out
}

/// Value a series contributes at union timestamps before its own first
/// sample: a job that has not started transmitting has zero throughput,
/// so the step function is extended left with an explicit `0` rather than
/// dropping or blanking the row.
const VALUE_BEFORE_FIRST_SAMPLE: f64 = 0.0;

/// Renders several aligned time series as
/// `time_s,<name0>,<name1>,…` rows on the union of their sample times
/// (step-function semantics; before a series' first sample it contributes
/// [`VALUE_BEFORE_FIRST_SAMPLE`]).
///
/// # Panics
/// Panics if `series` and `names` lengths differ or `series` is empty.
pub fn multi_series_csv(series: &[&TimeSeries], names: &[&str]) -> String {
    assert_eq!(
        series.len(),
        names.len(),
        "multi_series_csv: length mismatch"
    );
    assert!(!series.is_empty(), "multi_series_csv: no series");
    let mut times: Vec<simtime::Time> = series
        .iter()
        .flat_map(|ts| ts.iter().map(|(t, _)| t))
        .collect();
    times.sort_unstable();
    times.dedup();
    let mut out = String::new();
    let _ = writeln!(out, "time_s,{}", names.join(","));
    for t in times {
        let _ = write!(out, "{:.9}", t.as_secs_f64());
        for ts in series {
            let v = match ts.value_at(t) {
                Some(v) => v,
                None => VALUE_BEFORE_FIRST_SAMPLE,
            };
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Renders a CDF as `value_ms,cumulative_fraction` rows — the exact data
/// behind the paper's Fig. 1d curves.
pub fn cdf_csv(cdf: &Cdf) -> String {
    let mut out = String::with_capacity(cdf.len() * 24 + 32);
    let _ = writeln!(out, "value_ms,cumulative_fraction");
    for (d, f) in cdf.curve() {
        let _ = writeln!(out, "{:.6},{f}", d.as_millis_f64());
    }
    out
}

/// Renders generic rows (first row = header) as CSV, quoting cells that
/// contain commas or quotes.
pub fn rows_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Writes `content` to `dir/name`, creating `dir` if needed.
pub fn write_csv(dir: &Path, name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{Dur, Time};

    #[test]
    fn time_series_csv_format() {
        let mut ts = TimeSeries::new();
        ts.push(Time::ZERO, 1.5);
        ts.push(Time::ZERO + Dur::from_millis(2), 3.0);
        let csv = time_series_csv(&ts, "gbps");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,gbps");
        assert_eq!(lines[1], "0.000000000,1.5");
        assert_eq!(lines[2], "0.002000000,3");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn multi_series_aligns_on_union() {
        let mut a = TimeSeries::new();
        a.push(Time::ZERO, 1.0);
        a.push(Time::ZERO + Dur::from_millis(10), 2.0);
        let mut b = TimeSeries::new();
        b.push(Time::ZERO + Dur::from_millis(5), 7.0);
        let csv = multi_series_csv(&[&a, &b], &["j1", "j2"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,j1,j2");
        assert_eq!(lines.len(), 4); // 3 distinct timestamps
                                    // At t=0, b has no value yet → 0.
        assert_eq!(lines[1], "0.000000000,1,0");
        // At t=5ms, a holds 1, b jumps to 7.
        assert_eq!(lines[2], "0.005000000,1,7");
        assert_eq!(lines[3], "0.010000000,2,7");
    }

    #[test]
    fn multi_series_union_and_leading_zero_semantics() {
        // Three series with disjoint start times: the output must contain
        // one row per *distinct* timestamp across all series (the union),
        // and a series must read exactly `0` on every row before its own
        // first sample, then hold its last value (step semantics) after.
        let mut a = TimeSeries::new();
        a.push(Time::ZERO, 4.0);
        let mut b = TimeSeries::new();
        b.push(Time::ZERO + Dur::from_millis(3), 5.0);
        let mut c = TimeSeries::new();
        c.push(Time::ZERO + Dur::from_millis(3), 6.0); // shares b's timestamp
        c.push(Time::ZERO + Dur::from_millis(9), 7.0);
        let csv = multi_series_csv(&[&a, &b, &c], &["a", "b", "c"]);
        let lines: Vec<&str> = csv.lines().collect();
        // Union of {0}, {3}, {3, 9} = {0, 3, 9}: header + 3 rows.
        assert_eq!(lines.len(), 4);
        // Before b's and c's first samples, both read an explicit 0.
        assert_eq!(lines[1], "0.000000000,4,0,0");
        assert_eq!(lines[2], "0.003000000,4,5,6");
        // After their last samples, a and b hold their values.
        assert_eq!(lines[3], "0.009000000,4,5,7");
    }

    #[test]
    fn cdf_csv_is_monotone() {
        let cdf = Cdf::from_samples(vec![
            Dur::from_millis(3),
            Dur::from_millis(1),
            Dur::from_millis(2),
        ]);
        let csv = cdf_csv(&cdf);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "value_ms,cumulative_fraction");
        assert!(lines[1].starts_with("1.000000,"));
        assert!(lines[3].ends_with(",1"));
    }

    #[test]
    fn rows_csv_quotes_when_needed() {
        let csv = rows_csv(&[
            vec!["job".into(), "note".into()],
            vec!["VGG19(1200)".into(), "fast, green".into()],
            vec!["x".into(), "say \"hi\"".into()],
        ]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "VGG19(1200),\"fast, green\"");
        assert_eq!(lines[2], "x,\"say \"\"hi\"\"\"");
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("mlcc_export_test");
        let path = write_csv(&dir, "t.csv", "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn multi_series_length_mismatch_panics() {
        let a = TimeSeries::new();
        let _ = multi_series_csv(&[&a], &["x", "y"]);
    }
}
