//! Process-wide cache of fork-prefix snapshots.
//!
//! A forked sweep's shared prefix is a pure function of the experiment
//! configuration and the fork instant, so its snapshot (plus the prefix
//! telemetry recording) can be reused across sweeps in the same process —
//! e.g. a forked run followed by its `--fork-replay` baseline, or
//! repeated invocations from tests. Entries are keyed on the canonical
//! config hash ([`simtime::hash::fnv1a_64`] over the config's canonical
//! rendering), the same helper the report summary uses, so a cache key
//! and a reported `config.hash` always agree on what "the same
//! configuration" means.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

static CACHE: OnceLock<Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>> = OnceLock::new();

/// Returns the cached prefix state for `key`, building and inserting it
/// on a miss. A key collision across types is impossible to misread: the
/// downcast fails and the entry is rebuilt with the requested type.
pub fn get_or_build<S: Send + Sync + 'static>(key: u64, build: impl FnOnce() -> S) -> Arc<S> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = map.get(&key).cloned() {
        if let Ok(typed) = hit.downcast::<S>() {
            return typed;
        }
    }
    let built = Arc::new(build());
    map.insert(key, built.clone() as Arc<dyn Any + Send + Sync>);
    built
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn builds_once_per_key() {
        let builds = AtomicU32::new(0);
        let mk = || {
            builds.fetch_add(1, Ordering::Relaxed);
            vec![1u8, 2, 3]
        };
        let key = simtime::hash::fnv1a_64(b"forkcache-test-key");
        let a = get_or_build(key, mk);
        let b = get_or_build::<Vec<u8>>(key, || unreachable!("second build for same key"));
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(*a, *b);
    }
}
