//! Top-level reproduction library for *Congestion Control in Machine
//! Learning Clusters* (HotNets '22).
//!
//! Each paper artifact has one entry point returning a typed result that
//! both prints itself (for the examples) and exposes raw numbers (for the
//! benches and tests):
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Fig. 1b/1c (first-iteration bandwidth) + Fig. 1d (iteration-time CDF) | [`experiments::fig1::run`] |
//! | Fig. 2 (link utilization, the sliding effect) | [`experiments::fig2::run`] |
//! | Table 1 (five job groups, fair vs unfair, compatibility) | [`experiments::table1::run`] |
//! | Fig. 3/4/5 (geometric abstraction) | [`experiments::geometry_demo`] |
//! | §4.i adaptively-unfair congestion control | [`experiments::adaptive::run`] |
//! | §4.ii switch priority queues | [`experiments::priority::run`] |
//! | §4.iii precise flow scheduling | [`experiments::flowsched::run`] |
//! | §5 cluster-level compatibility & placement | [`experiments::cluster::run`] |
//! | extension: pipelined emission widens compatibility | [`experiments::pipelining::run`] |
//!
//! Shared measurement plumbing (iteration statistics, speedups, text
//! tables) lives in [`metrics`]; CSV export for plotting lives in
//! [`export`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod export;
pub mod forkcache;
pub mod metrics;
pub mod parallel;

pub use metrics::{JobStats, Speedup, StatsError};
