//! Measurement plumbing shared by all experiments.

use eventsim::Cdf;
use simtime::Dur;
use workload::JobProgress;

/// Iteration-time statistics of one job in one scenario.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Display label (e.g. `"VGG19(1200)"`).
    pub label: String,
    /// Iteration-time distribution (warmup excluded).
    pub cdf: Cdf,
}

/// Why [`JobStats::try_from_progress`] could not build statistics: the job
/// finished too few iterations for the requested warmup cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsError {
    /// Display label of the offending job.
    pub label: String,
    /// Iterations the job actually completed.
    pub completed: usize,
    /// Warmup iterations the caller asked to discard.
    pub warmup: usize,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JobStats: job {} completed only {} iterations (≤ warmup {})",
            self.label, self.completed, self.warmup
        )
    }
}

impl std::error::Error for StatsError {}

impl JobStats {
    /// Builds stats from a finished job, discarding the first `warmup`
    /// iterations (ramp-up transients — the paper reports steady-state
    /// averages).
    ///
    /// Returns [`StatsError`] if fewer than `warmup + 1` iterations
    /// completed — cluster-scale experiments use this to surface a
    /// misconfigured run as an error instead of a panic.
    pub fn try_from_progress(
        progress: &JobProgress,
        warmup: usize,
    ) -> Result<JobStats, StatsError> {
        let times: Vec<Dur> = progress
            .iteration_times()
            .into_iter()
            .skip(warmup)
            .collect();
        if times.is_empty() {
            return Err(StatsError {
                label: progress.spec().label(),
                completed: progress.completed(),
                warmup,
            });
        }
        Ok(JobStats {
            label: progress.spec().label(),
            cdf: Cdf::from_samples(times),
        })
    }

    /// Builds stats from a finished job, discarding the first `warmup`
    /// iterations. Panicking wrapper around [`JobStats::try_from_progress`]
    /// for tests and small experiments where too few iterations is a bug.
    ///
    /// # Panics
    /// Panics if fewer than `warmup + 1` iterations completed.
    pub fn from_progress(progress: &JobProgress, warmup: usize) -> JobStats {
        JobStats::try_from_progress(progress, warmup).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Median iteration time.
    pub fn median(&self) -> Dur {
        self.cdf.median()
    }

    /// Mean iteration time.
    pub fn mean(&self) -> Dur {
        self.cdf.mean()
    }

    /// Median iteration time in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median().as_millis_f64()
    }

    /// Speedup of `self` (the new scheme) relative to `baseline`, by mean
    /// iteration time — how Table 1 reports it (`>1` means faster).
    pub fn speedup_vs(&self, baseline: &JobStats) -> Speedup {
        Speedup(baseline.mean().as_secs_f64() / self.mean().as_secs_f64())
    }
}

/// A speedup factor (baseline time / new time).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Speedup(pub f64);

impl Speedup {
    /// `true` if the scheme is at least as fast as the baseline, with a 2%
    /// tolerance: steady states in the deterministic engine wobble by a
    /// percent either way across warmup choices, and the paper's own
    /// compatible rows include a 1.01× entry (Table 1, ResNet50).
    pub fn is_improvement(&self) -> bool {
        self.0 >= 0.98
    }
}

impl std::fmt::Display for Speedup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}×", self.0)
    }
}

/// Renders rows as a fixed-width text table (first row = header).
///
/// The implementation lives in the `telemetry` crate (which also renders
/// its metrics registry through it); this re-export keeps the historical
/// `mlcc::metrics::text_table` path working.
pub use telemetry::text_table;

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Time;
    use workload::{JobSpec, Model};

    fn fake_progress(iters: &[u64]) -> JobProgress {
        let spec = JobSpec::reference(Model::ResNet50, 1600);
        let mut p = JobProgress::new(spec, Time::ZERO);
        for &ms in iters {
            let mut now = p.next_self_transition().unwrap();
            p.poll(now);
            // Finish the iteration exactly `ms` ms after it started.
            let target = p
                .iterations()
                .last()
                .map(|r| r.completed)
                .unwrap_or(Time::ZERO)
                + Dur::from_millis(ms);
            now = now.max(target);
            p.deliver(p.remaining_bytes(), target.max(now));
        }
        p
    }

    #[test]
    fn warmup_is_skipped() {
        let p = fake_progress(&[500, 200, 200, 200]);
        let s = JobStats::from_progress(&p, 1);
        assert_eq!(s.cdf.len(), 3);
        assert_eq!(s.median(), Dur::from_millis(200));
        assert_eq!(s.label, "ResNet50(1600)");
    }

    #[test]
    #[should_panic(expected = "completed only")]
    fn all_warmup_panics() {
        let p = fake_progress(&[200]);
        let _ = JobStats::from_progress(&p, 1);
    }

    #[test]
    fn try_from_progress_reports_error_instead_of_panicking() {
        let p = fake_progress(&[200]);
        let err = JobStats::try_from_progress(&p, 1).unwrap_err();
        assert_eq!(err.completed, 1);
        assert_eq!(err.warmup, 1);
        assert!(err.to_string().contains("completed only"));
        // With enough iterations the same call succeeds.
        let p = fake_progress(&[500, 200]);
        let s = JobStats::try_from_progress(&p, 1).unwrap();
        assert_eq!(s.cdf.len(), 1);
    }

    #[test]
    fn speedup_math_and_display() {
        let fast = JobStats {
            label: "a".into(),
            cdf: Cdf::from_samples(vec![Dur::from_millis(100)]),
        };
        let slow = JobStats {
            label: "b".into(),
            cdf: Cdf::from_samples(vec![Dur::from_millis(130)]),
        };
        let s = fast.speedup_vs(&slow);
        assert!((s.0 - 1.3).abs() < 1e-9);
        assert!(s.is_improvement());
        assert_eq!(s.to_string(), "1.30×");
        let worse = slow.speedup_vs(&fast);
        assert!(!worse.is_improvement());
    }

    #[test]
    fn table_renders_aligned() {
        let t = text_table(&[
            vec!["job".into(), "median".into()],
            vec!["VGG19(1200)".into(), "297 ms".into()],
            vec!["x".into(), "1 ms".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("job"));
        assert!(lines[1].starts_with("---"));
        // Columns align: every data cell starts at its header column's
        // offset, wherever the widths put that column.
        let starts = telemetry::table::column_starts(lines[0]);
        assert_eq!(starts.len(), 2);
        assert!(lines[0][starts[1]..].starts_with("median"));
        assert!(lines[2][starts[1]..].starts_with("297 ms"));
        assert!(lines[3][starts[1]..].starts_with("1 ms"));
    }
}
