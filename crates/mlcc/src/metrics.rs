//! Measurement plumbing shared by all experiments.

use eventsim::Cdf;
use simtime::Dur;
use workload::JobProgress;

/// Iteration-time statistics of one job in one scenario.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Display label (e.g. `"VGG19(1200)"`).
    pub label: String,
    /// Iteration-time distribution (warmup excluded).
    pub cdf: Cdf,
}

impl JobStats {
    /// Builds stats from a finished job, discarding the first `warmup`
    /// iterations (ramp-up transients — the paper reports steady-state
    /// averages).
    ///
    /// # Panics
    /// Panics if fewer than `warmup + 1` iterations completed.
    pub fn from_progress(progress: &JobProgress, warmup: usize) -> JobStats {
        let times: Vec<Dur> = progress
            .iteration_times()
            .into_iter()
            .skip(warmup)
            .collect();
        assert!(
            !times.is_empty(),
            "JobStats: job {} completed only {} iterations (≤ warmup {})",
            progress.spec().label(),
            progress.completed(),
            warmup
        );
        JobStats {
            label: progress.spec().label(),
            cdf: Cdf::from_samples(times),
        }
    }

    /// Median iteration time.
    pub fn median(&self) -> Dur {
        self.cdf.median()
    }

    /// Mean iteration time.
    pub fn mean(&self) -> Dur {
        self.cdf.mean()
    }

    /// Median iteration time in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median().as_millis_f64()
    }

    /// Speedup of `self` (the new scheme) relative to `baseline`, by mean
    /// iteration time — how Table 1 reports it (`>1` means faster).
    pub fn speedup_vs(&self, baseline: &JobStats) -> Speedup {
        Speedup(baseline.mean().as_secs_f64() / self.mean().as_secs_f64())
    }
}

/// A speedup factor (baseline time / new time).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Speedup(pub f64);

impl Speedup {
    /// `true` if the scheme is at least as fast as the baseline, with a 2%
    /// tolerance: steady states in the deterministic engine wobble by a
    /// percent either way across warmup choices, and the paper's own
    /// compatible rows include a 1.01× entry (Table 1, ResNet50).
    pub fn is_improvement(&self) -> bool {
        self.0 >= 0.98
    }
}

impl std::fmt::Display for Speedup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}×", self.0)
    }
}

/// Renders rows as a fixed-width text table (first row = header).
///
/// # Panics
/// Panics if rows have inconsistent lengths.
pub fn text_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in rows {
        assert_eq!(row.len(), cols, "text_table: ragged rows");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] + 2 {
                out.push(' ');
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, &w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Time;
    use workload::{JobSpec, Model};

    fn fake_progress(iters: &[u64]) -> JobProgress {
        let spec = JobSpec::reference(Model::ResNet50, 1600);
        let mut p = JobProgress::new(spec, Time::ZERO);
        for &ms in iters {
            let mut now = p.next_self_transition().unwrap();
            p.poll(now);
            // Finish the iteration exactly `ms` ms after it started.
            let target = p.iterations().last().map(|r| r.completed).unwrap_or(Time::ZERO)
                + Dur::from_millis(ms);
            now = now.max(target);
            p.deliver(p.remaining_bytes(), target.max(now));
        }
        p
    }

    #[test]
    fn warmup_is_skipped() {
        let p = fake_progress(&[500, 200, 200, 200]);
        let s = JobStats::from_progress(&p, 1);
        assert_eq!(s.cdf.len(), 3);
        assert_eq!(s.median(), Dur::from_millis(200));
        assert_eq!(s.label, "ResNet50(1600)");
    }

    #[test]
    #[should_panic(expected = "completed only")]
    fn all_warmup_panics() {
        let p = fake_progress(&[200]);
        let _ = JobStats::from_progress(&p, 1);
    }

    #[test]
    fn speedup_math_and_display() {
        let fast = JobStats {
            label: "a".into(),
            cdf: Cdf::from_samples(vec![Dur::from_millis(100)]),
        };
        let slow = JobStats {
            label: "b".into(),
            cdf: Cdf::from_samples(vec![Dur::from_millis(130)]),
        };
        let s = fast.speedup_vs(&slow);
        assert!((s.0 - 1.3).abs() < 1e-9);
        assert!(s.is_improvement());
        assert_eq!(s.to_string(), "1.30×");
        let worse = slow.speedup_vs(&fast);
        assert!(!worse.is_improvement());
    }

    #[test]
    fn table_renders_aligned() {
        let t = text_table(&[
            vec!["job".into(), "median".into()],
            vec!["VGG19(1200)".into(), "297 ms".into()],
            vec!["x".into(), "1 ms".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("job"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "median" and "297 ms" start at the same offset.
        let h = lines[0].find("median").unwrap();
        let v = lines[2].find("297").unwrap();
        assert_eq!(h, v);
    }
}
