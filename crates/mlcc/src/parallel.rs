//! Deterministic parallel scenario runner.
//!
//! Every experiment in this crate decomposes into independent scenario
//! units (fair vs unfair, one unit per Table 1 group × policy, …). This
//! module fans those units across OS threads with `std::thread::scope` —
//! no dependencies, no runtime — while keeping every observable output
//! **byte-identical** to a serial run:
//!
//! * results are collected into index-ordered slots, so callers assemble
//!   them in the same order a serial loop would have produced;
//! * telemetry is recorded into a per-unit [`ForkableRecorder`] fork on
//!   the worker thread and the forks are joined back in unit order, so
//!   the merged event stream is exactly the serial stream;
//! * wall-clock never enters any result — only simulation time does — so
//!   scheduling jitter between workers cannot leak into outputs.
//!
//! The worker count comes from [`jobs`]: the CLI's `--jobs N` flag via
//! [`set_jobs`], defaulting to [`std::thread::available_parallelism`].
//! `--jobs 1` (or a single-unit map) short-circuits to a plain serial
//! loop on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use telemetry::ForkableRecorder;

/// Configured worker count; 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count for subsequent [`map`] calls. `0` restores the
/// default (one worker per available core).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count: the value passed to [`set_jobs`], or the
/// machine's available parallelism when unset (falling back to 1 if that
/// cannot be determined).
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Worker threads for *intra*-scenario sharding (`--shards N`); 0 means
/// "auto". Orthogonal to [`jobs`], which fans out across scenarios: a
/// sweep may run scenarios with `--jobs` while each scenario's
/// link-disjoint components advance under `--shards`. Like `--jobs`, the
/// value only controls threading — sharded output is byte-identical at
/// any shard count (the shard *plan* is a pure function of the topology).
static SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Sets the shard worker count for subsequent sharded runs. `0` restores
/// the default (one worker per available core).
pub fn set_shards(n: usize) {
    SHARDS.store(n, Ordering::Relaxed);
}

/// The effective shard worker count: the value passed to [`set_shards`],
/// or the machine's available parallelism when unset (falling back to 1).
pub fn shards() -> usize {
    match SHARDS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Applies `f` to every item, possibly across threads, returning results
/// in item order regardless of which worker finished when.
///
/// `f` receives `(index, &item)`. Work is handed out through an atomic
/// cursor, so workers stay busy even when unit costs are skewed; each
/// result lands in its own index slot. With one worker (or one item) this
/// is exactly a serial loop on the calling thread.
///
/// # Panics
/// A panic in `f` propagates to the caller once all workers stop.
pub fn map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a slot")
        })
        .collect()
}

/// [`map`] for traced scenario units: each unit records into its own
/// recorder fork on the worker thread, and the forks are joined back into
/// `rec` in unit order — the merged stream is byte-identical to running
/// the units serially against `rec`.
///
/// `f` receives `(index, &item, &mut fork)` and should record its unit's
/// [`telemetry::Event::Scenario`] marker into the fork before simulating.
pub fn map_traced<R, T, U, F>(rec: &mut R, items: &[T], f: F) -> Vec<U>
where
    R: ForkableRecorder,
    T: Sync,
    U: Send,
    F: Fn(usize, &T, &mut R::Fork) -> U + Sync,
{
    let results = map(items, |i, item| {
        let mut fork = R::fork();
        let out = f(i, item, &mut fork);
        (out, fork)
    });
    results
        .into_iter()
        .map(|(out, fork)| {
            rec.join(fork);
            out
        })
        .collect()
}

/// [`map_traced`] for sweeps whose units share a common prefix: `prefix`
/// runs **once** on the calling thread (typically: drive an engine to a
/// fork barrier and snapshot it), then every cell fans out across the
/// worker pool with shared access to the prefix state — restoring the
/// snapshot instead of re-simulating `0 → fork_at`.
///
/// Ordering guarantees are exactly [`map_traced`]'s: results land in item
/// order and telemetry forks join in item order, so the merged stream is
/// byte-identical at any `--jobs N`. Each cell must replay the prefix's
/// recording into its own fork (the snapshot is recorder-free) — see
/// `netsim::snapshot`.
pub fn map_forked<R, T, S, U, P, F>(rec: &mut R, items: &[T], prefix: P, cell: F) -> Vec<U>
where
    R: ForkableRecorder,
    T: Sync,
    S: Sync,
    U: Send,
    P: FnOnce() -> S,
    F: Fn(usize, &T, &S, &mut R::Fork) -> U + Sync,
{
    let shared = prefix();
    map_traced(rec, items, |i, item, fork| cell(i, item, &shared, fork))
}

/// [`map_traced`] for fallible units. Joins forks in unit order up to and
/// including the first `Err`, then returns that error — reproducing the
/// event stream a serial run would have left behind when it stopped at
/// the failing unit. (Later units still execute; their recordings and
/// results are discarded.)
pub fn try_map_traced<R, T, V, E, F>(rec: &mut R, items: &[T], f: F) -> Result<Vec<V>, E>
where
    R: ForkableRecorder,
    T: Sync,
    V: Send,
    E: Send,
    F: Fn(usize, &T, &mut R::Fork) -> Result<V, E> + Sync,
{
    let results = map(items, |i, item| {
        let mut fork = R::fork();
        let out = f(i, item, &mut fork);
        (out, fork)
    });
    let mut ok = Vec::with_capacity(results.len());
    for (out, fork) in results {
        rec.join(fork);
        ok.push(out?);
    }
    Ok(ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Time;
    use telemetry::{BufferRecorder, Event, Recorder};

    /// Serialize tests that touch the global worker count.
    static JOBS_LOCK: Mutex<()> = Mutex::new(());

    fn with_jobs<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_jobs(n);
        let out = f();
        set_jobs(0);
        out
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..37).collect();
        for n in [1, 4] {
            let out = with_jobs(n, || {
                map(&items, |i, &x| {
                    assert_eq!(i, x);
                    x * 10
                })
            });
            assert_eq!(out, (0..37).map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_traced_is_byte_identical_to_serial() {
        let items: Vec<u32> = (0..9).collect();
        let unit = |i: usize, &x: &u32, rec: &mut BufferRecorder| {
            rec.record(
                Time::ZERO,
                Event::Scenario {
                    name: format!("unit{x}"),
                },
            );
            rec.record(Time::from_nanos(x as u64), Event::EcnMark { flow: x });
            rec.count("units", 1);
            i as u32 + x
        };
        let mut serial = BufferRecorder::new();
        let serial_out = with_jobs(1, || map_traced(&mut serial, &items, unit));
        let mut par = BufferRecorder::new();
        let par_out = with_jobs(4, || map_traced(&mut par, &items, unit));
        assert_eq!(serial_out, par_out);
        assert_eq!(serial.events(), par.events());
        assert_eq!(serial.counts(), par.counts());
    }

    #[test]
    fn map_forked_runs_prefix_once_and_matches_serial() {
        use std::sync::atomic::AtomicU32;
        let items: Vec<u32> = (0..6).collect();
        let run = |jobs: usize| {
            let prefix_runs = AtomicU32::new(0);
            let mut rec = BufferRecorder::new();
            let out = with_jobs(jobs, || {
                map_forked(
                    &mut rec,
                    &items,
                    || {
                        prefix_runs.fetch_add(1, Ordering::Relaxed);
                        100u32
                    },
                    |i, &x, &base, fork: &mut BufferRecorder| {
                        fork.record(Time::from_nanos(x as u64), Event::EcnMark { flow: x });
                        base + i as u32 + x
                    },
                )
            });
            assert_eq!(prefix_runs.load(Ordering::Relaxed), 1);
            (out, rec)
        };
        let (serial_out, serial_rec) = run(1);
        let (par_out, par_rec) = run(4);
        assert_eq!(serial_out, par_out);
        assert_eq!(serial_out, vec![100, 102, 104, 106, 108, 110]);
        assert_eq!(serial_rec.events(), par_rec.events());
    }

    #[test]
    fn try_map_traced_reports_first_error_in_unit_order() {
        let items: Vec<u32> = (0..8).collect();
        let unit = |_: usize, &x: &u32, rec: &mut BufferRecorder| {
            rec.record(Time::ZERO, Event::EcnMark { flow: x });
            // Units 3 and 5 fail; unit order must surface 3.
            if x == 3 || x == 5 {
                Err(x)
            } else {
                Ok(x)
            }
        };
        let mut serial = BufferRecorder::new();
        let serial_err = with_jobs(1, || try_map_traced(&mut serial, &items, unit));
        let mut par = BufferRecorder::new();
        let par_err = with_jobs(4, || try_map_traced(&mut par, &items, unit));
        assert_eq!(serial_err, Err(3));
        assert_eq!(par_err, Err(3));
        // Stream stops after the failing unit, exactly like serial.
        assert_eq!(serial.events(), par.events());
        assert_eq!(par.events().len(), 4);
    }

    #[test]
    fn jobs_defaults_to_available_parallelism() {
        let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_jobs(0);
        assert!(jobs() >= 1);
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
    }
}
