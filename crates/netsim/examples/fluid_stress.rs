//! Fluid-engine stress harness: many jobs sharing one bottleneck, enough
//! iterations for the allocator and completion scheduler to dominate.
//!
//! ```text
//! cargo run --release -p netsim --example fluid_stress [jobs] [iterations]
//! ```
//!
//! Prints one line with the wall-clock cost — the before/after numbers in
//! EXPERIMENTS.md come from running this at the same arguments on two
//! builds.

use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use simtime::{Bandwidth, Dur};
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map_or(24, |a| a.parse().expect("jobs"));
    let iterations: usize = args.next().map_or(40, |a| a.parse().expect("iterations"));

    let models = [
        Model::Vgg19,
        Model::Vgg16,
        Model::ResNet50,
        Model::WideResNet50,
    ];
    let specs: Vec<JobSpec> = (0..n)
        .map(|i| JobSpec::reference(models[i % models.len()], 400 + 100 * (i % 5) as u32))
        .collect();

    let d = dumbbell(
        n,
        Bandwidth::from_gbps(50),
        Bandwidth::from_gbps(400),
        Dur::ZERO,
    );
    let t = &d.topology;
    let jobs: Vec<FluidJob> = specs
        .iter()
        .enumerate()
        .map(|(i, &spec)| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .expect("dumbbell connected");
            FluidJob::single_path(spec, path.links().to_vec())
        })
        .collect();

    let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    let cfg = FluidConfig {
        policy: SharingPolicy::Weighted(weights),
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::new(t, cfg, &jobs);
    let cap = Bandwidth::from_gbps(50);
    let per_iter = specs
        .iter()
        .map(|s| s.iteration_time_at(cap))
        .max()
        .unwrap();

    let start = std::time::Instant::now();
    let done =
        sim.run_until_iterations(iterations, per_iter * (iterations as u64 * (n as u64 + 2)));
    let wall = start.elapsed();
    assert!(done, "stress run did not finish");
    println!(
        "fluid_stress: {n} jobs x {iterations} iterations, simulated {:.1}s in {:.3}s wall",
        sim.now().as_secs_f64(),
        wall.as_secs_f64()
    );
}
