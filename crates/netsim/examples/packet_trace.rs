//! Traced packet-engine run for the determinism gate: fixed two-job
//! scenario, telemetry streamed to a JSONL file.
//!
//! ```text
//! cargo run --release -p netsim --example packet_trace -- <wheel|heap> <train_packets> <out.jsonl>
//! ```
//!
//! `scripts/check.sh` runs this twice at `train_packets = 1` — once per
//! event-queue backend — and diffs the outputs byte-for-byte: the timing
//! wheel must reproduce the reference heap's run exactly.

use dcqcn::CcVariant;
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator, QueueBackend};
use simtime::{Dur, Time};
use telemetry::{export, BufferRecorder};
use workload::{JobSpec, Model};

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: packet_trace <wheel|heap> <train_packets> <out.jsonl>";
    let backend = match args.next().expect(usage).as_str() {
        "wheel" => QueueBackend::TimingWheel,
        "heap" => QueueBackend::ReferenceHeap,
        other => panic!("unknown backend {other:?}; {usage}"),
    };
    let train_packets: u32 = args.next().expect(usage).parse().expect("train_packets");
    let out = args.next().expect(usage);

    let spec = JobSpec::reference(Model::ResNet50, 400);
    let jobs = [
        PacketJob::new(spec, CcVariant::Fair),
        PacketJob::new(
            spec,
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
        ),
    ];
    let mut sim = PacketSimulator::with_recorder(
        PacketSimConfig {
            train_packets,
            queue: backend,
            ..PacketSimConfig::default()
        },
        &jobs,
        BufferRecorder::new(),
    );
    sim.run_until(Time::ZERO + Dur::from_millis(120));
    let (sent, marked) = sim.packet_counts();
    let events = sim.recorder().events().len();
    std::fs::write(&out, export::jsonl(sim.recorder().events())).expect("write trace");
    println!("{out}: {events} telemetry events ({sent} packets, {marked} marked)");
}
