//! Bandwidth allocation: progressive-filling max-min, weighted max-min,
//! and strict priorities.
//!
//! Pure functions over an abstract `(flows × links)` incidence structure so
//! they can be tested exhaustively and reused by both engines. Rates are
//! `f64` bits/s.

/// A flow's demand for allocation purposes.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Indices (into the caller's link table) of links the flow traverses.
    pub links: Vec<usize>,
    /// Max-min weight (1.0 = plain fair). Ignored under strict priority
    /// *between* classes but still applied within a class.
    pub weight: f64,
    /// Priority class; higher allocates strictly first.
    pub priority: u8,
    /// Upper bound on the flow's rate (its NIC line rate), bits/s.
    pub rate_cap: f64,
}

/// Computes weighted max-min rates for `flows` over links with the given
/// residual `capacities` (bits/s), via progressive filling:
///
/// repeatedly find the bottleneck link — the one minimizing
/// `residual / Σ weights of unfrozen flows` — freeze its flows at that fair
/// share, subtract, and continue. Flows are also frozen early if they hit
/// `rate_cap`.
///
/// Returns one rate per flow (0 for flows with no links — they are
/// unconstrained by this fabric and get their cap).
///
/// # Panics
/// Panics on non-positive weights or negative capacities.
pub fn weighted_max_min(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
    for f in flows {
        assert!(f.weight > 0.0, "weighted_max_min: non-positive weight");
        assert!(f.rate_cap >= 0.0, "weighted_max_min: negative rate cap");
    }
    for &c in capacities {
        assert!(c >= 0.0, "weighted_max_min: negative capacity");
    }
    let n = flows.len();
    let mut rate = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut residual: Vec<f64> = capacities.to_vec();

    // Flows that traverse no link are only bound by their cap.
    for (i, f) in flows.iter().enumerate() {
        if f.links.is_empty() {
            rate[i] = f.rate_cap;
            frozen[i] = true;
        }
    }

    loop {
        // Per-link unfrozen weight totals.
        let mut link_weight = vec![0.0f64; capacities.len()];
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                for &l in &f.links {
                    link_weight[l] += f.weight;
                }
            }
        }
        // Candidate fair-share increments: bottleneck link level, and each
        // unfrozen flow's cap.
        let mut bottleneck_share = f64::INFINITY;
        for (l, &w) in link_weight.iter().enumerate() {
            if w > 0.0 {
                bottleneck_share = bottleneck_share.min(residual[l] / w);
            }
        }
        if bottleneck_share == f64::INFINITY {
            break; // no unfrozen flow touches any link
        }
        // The binding constraint could be a flow cap below the bottleneck
        // share.
        let mut level = bottleneck_share;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                level = level.min((f.rate_cap - rate[i]) / f.weight);
            }
        }
        level = level.max(0.0);

        // Raise all unfrozen flows by level·weight.
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                let inc = level * f.weight;
                rate[i] += inc;
                for &l in &f.links {
                    residual[l] = (residual[l] - inc).max(0.0);
                }
            }
        }
        // Freeze flows at cap or on saturated links.
        let mut any_frozen = false;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let capped = rate[i] >= f.rate_cap - 1e-6;
            let saturated = f
                .links
                .iter()
                .any(|&l| residual[l] <= 1e-6 * capacities[l].max(1.0));
            if capped || saturated {
                frozen[i] = true;
                any_frozen = true;
            }
        }
        if !any_frozen {
            // Numerical safety: if nothing froze, freeze the flows on the
            // bottleneck link to guarantee termination.
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] && !f.links.is_empty() {
                    frozen[i] = true;
                }
            }
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
    rate
}

/// Allocates with strict priorities: all flows of the highest class share
/// first (weighted max-min among themselves), then the next class gets the
/// residual capacity, and so on — the switch-priority-queue mechanism of
/// §4.ii.
pub fn strict_priority(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
    let mut rates = vec![0.0f64; flows.len()];
    let mut residual: Vec<f64> = capacities.to_vec();
    let mut classes: Vec<u8> = flows.iter().map(|f| f.priority).collect();
    classes.sort_unstable_by(|a, b| b.cmp(a));
    classes.dedup();
    for class in classes {
        let idx: Vec<usize> = flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.priority == class)
            .map(|(i, _)| i)
            .collect();
        let class_flows: Vec<FlowDemand> = idx.iter().map(|&i| flows[i].clone()).collect();
        let class_rates = weighted_max_min(&class_flows, &residual);
        for (k, &i) in idx.iter().enumerate() {
            rates[i] = class_rates[k];
            for &l in &flows[i].links {
                residual[l] = (residual[l] - class_rates[k]).max(0.0);
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: f64 = 1e9;

    fn flow(links: &[usize], weight: f64, priority: u8, cap: f64) -> FlowDemand {
        FlowDemand {
            links: links.to_vec(),
            weight,
            priority,
            rate_cap: cap,
        }
    }

    #[test]
    fn equal_split_on_one_link() {
        let flows = vec![
            flow(&[0], 1.0, 0, 100.0 * GBPS),
            flow(&[0], 1.0, 0, 100.0 * GBPS),
        ];
        let r = weighted_max_min(&flows, &[50.0 * GBPS]);
        assert!((r[0] - 25.0 * GBPS).abs() < 1.0);
        assert!((r[1] - 25.0 * GBPS).abs() < 1.0);
    }

    #[test]
    fn weights_split_proportionally() {
        // 2:1 weights → 2:1 rates — the fluid stand-in for the paper's
        // 30/15 Gbps unfair split (Fig. 1c).
        let flows = vec![
            flow(&[0], 2.0, 0, 100.0 * GBPS),
            flow(&[0], 1.0, 0, 100.0 * GBPS),
        ];
        let r = weighted_max_min(&flows, &[45.0 * GBPS]);
        assert!((r[0] - 30.0 * GBPS).abs() < 1.0, "r0 {}", r[0]);
        assert!((r[1] - 15.0 * GBPS).abs() < 1.0, "r1 {}", r[1]);
    }

    #[test]
    fn rate_cap_redistribution() {
        // One flow capped at 10; the other picks up the slack.
        let flows = vec![
            flow(&[0], 1.0, 0, 10.0 * GBPS),
            flow(&[0], 1.0, 0, 100.0 * GBPS),
        ];
        let r = weighted_max_min(&flows, &[50.0 * GBPS]);
        assert!((r[0] - 10.0 * GBPS).abs() < 1.0);
        assert!((r[1] - 40.0 * GBPS).abs() < 1.0);
    }

    #[test]
    fn classic_multi_link_max_min() {
        // Textbook: flow A on links 0+1, B on 0, C on 1; caps 10 each.
        // Max-min: A=5, B=5, C=5 (both links split evenly).
        let flows = vec![
            flow(&[0, 1], 1.0, 0, 1e12),
            flow(&[0], 1.0, 0, 1e12),
            flow(&[1], 1.0, 0, 1e12),
        ];
        let r = weighted_max_min(&flows, &[10.0 * GBPS, 10.0 * GBPS]);
        for (i, &v) in r.iter().enumerate() {
            assert!((v - 5.0 * GBPS).abs() < 1.0, "flow {i}: {v}");
        }
    }

    #[test]
    fn asymmetric_multi_link() {
        // Flow A crosses links 0 (cap 10) and 1 (cap 4); flow B only link 0.
        // A is bottlenecked at 4 on link 1; B then gets 6 on link 0.
        let flows = vec![flow(&[0, 1], 1.0, 0, 1e12), flow(&[0], 1.0, 0, 1e12)];
        let r = weighted_max_min(&flows, &[10.0 * GBPS, 4.0 * GBPS]);
        assert!((r[0] - 4.0 * GBPS).abs() < 1.0, "A {}", r[0]);
        assert!((r[1] - 6.0 * GBPS).abs() < 1.0, "B {}", r[1]);
    }

    #[test]
    fn linkless_flow_gets_cap() {
        let flows = vec![flow(&[], 1.0, 0, 7.0 * GBPS)];
        let r = weighted_max_min(&flows, &[]);
        assert_eq!(r[0], 7.0 * GBPS);
    }

    #[test]
    fn no_capacity_leaks() {
        // Conservation: total allocated on a link never exceeds capacity.
        let flows = vec![
            flow(&[0], 1.3, 0, 40.0 * GBPS),
            flow(&[0], 0.7, 0, 40.0 * GBPS),
            flow(&[0], 2.0, 0, 5.0 * GBPS),
        ];
        let cap = 50.0 * GBPS;
        let r = weighted_max_min(&flows, &[cap]);
        let total: f64 = r.iter().sum();
        assert!(total <= cap * (1.0 + 1e-9), "total {total}");
        // And it is work-conserving here (demand exceeds capacity).
        assert!(total >= cap * 0.999, "total {total}");
    }

    #[test]
    fn strict_priority_preempts() {
        // High class takes everything it can; low class starves (§4.ii).
        let flows = vec![
            flow(&[0], 1.0, 1, 100.0 * GBPS), // high
            flow(&[0], 1.0, 0, 100.0 * GBPS), // low
        ];
        let r = strict_priority(&flows, &[50.0 * GBPS]);
        assert!((r[0] - 50.0 * GBPS).abs() < 1.0);
        assert!(r[1] < 1.0);
    }

    #[test]
    fn strict_priority_residual_flows_down() {
        // High class capped at 20 → low class gets the remaining 30.
        let flows = vec![
            flow(&[0], 1.0, 5, 20.0 * GBPS),
            flow(&[0], 1.0, 2, 100.0 * GBPS),
        ];
        let r = strict_priority(&flows, &[50.0 * GBPS]);
        assert!((r[0] - 20.0 * GBPS).abs() < 1.0);
        assert!((r[1] - 30.0 * GBPS).abs() < 1.0);
    }

    #[test]
    fn strict_priority_within_class_is_weighted() {
        let flows = vec![
            flow(&[0], 3.0, 1, 1e12),
            flow(&[0], 1.0, 1, 1e12),
            flow(&[0], 1.0, 0, 1e12),
        ];
        let r = strict_priority(&flows, &[40.0 * GBPS]);
        assert!((r[0] - 30.0 * GBPS).abs() < 1.0);
        assert!((r[1] - 10.0 * GBPS).abs() < 1.0);
        assert!(r[2] < 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(weighted_max_min(&[], &[1.0 * GBPS]).is_empty());
        assert!(strict_priority(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-positive weight")]
    fn zero_weight_rejected() {
        weighted_max_min(&[flow(&[0], 0.0, 0, 1.0)], &[1.0]);
    }
}
