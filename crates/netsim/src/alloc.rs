//! Bandwidth allocation: progressive-filling max-min, weighted max-min,
//! and strict priorities.
//!
//! Pure functions over an abstract `(flows × links)` incidence structure so
//! they can be tested exhaustively and reused by both engines. Rates are
//! `f64` bits/s.
//!
//! The production kernels ([`weighted_max_min_into`] /
//! [`strict_priority_into`]) fill incrementally: per-link unfrozen weight
//! totals are built once and *subtracted from* as flows freeze, so a round
//! costs O(links + unfrozen) instead of the O(flows × links) rescan the
//! textbook formulation pays. They also write into caller-owned scratch and
//! rate buffers so a simulator recomputing thousands of allocations
//! allocates nothing per call. The [`reference`] module keeps the
//! from-scratch O(rounds·flows·links) formulation as the oracle for
//! differential tests.

/// A flow's demand for allocation purposes.
///
/// Borrows the caller's link list — building a demand never clones a path.
#[derive(Debug, Clone, Copy)]
pub struct FlowDemand<'a> {
    /// Indices (into the caller's link table) of links the flow traverses.
    pub links: &'a [usize],
    /// Max-min weight (1.0 = plain fair). Ignored under strict priority
    /// *between* classes but still applied within a class.
    pub weight: f64,
    /// Priority class; higher allocates strictly first.
    pub priority: u8,
    /// Upper bound on the flow's rate (its NIC line rate), bits/s.
    pub rate_cap: f64,
}

/// Reusable working memory for the allocation kernels.
///
/// Holds per-link residuals, the incrementally-maintained unfrozen weight
/// totals, and the unfrozen-flow worklist. All buffers keep their capacity
/// between calls, so steady-state allocation does no heap work.
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    /// Remaining capacity per link, bits/s.
    residual: Vec<f64>,
    /// Saturation threshold per link for the current fill pass.
    threshold: Vec<f64>,
    /// Σ weights of unfrozen flows crossing each link.
    link_weight: Vec<f64>,
    /// Number of unfrozen flows crossing each link. Kept as an exact
    /// integer so `link_weight` can be zeroed when the last flow freezes,
    /// killing accumulated float residue.
    link_count: Vec<u32>,
    /// Indices of flows still being filled.
    unfrozen: Vec<u32>,
    /// Distinct priority classes, highest first (strict priority only).
    classes: Vec<u8>,
}

impl AllocScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> AllocScratch {
        AllocScratch::default()
    }
}

fn check_inputs(flows: &[FlowDemand], capacities: &[f64]) {
    for f in flows {
        assert!(f.weight > 0.0, "weighted_max_min: non-positive weight");
        assert!(f.rate_cap >= 0.0, "weighted_max_min: negative rate cap");
    }
    for &c in capacities {
        assert!(c >= 0.0, "weighted_max_min: negative capacity");
    }
}

/// One progressive-filling pass over the flows of `class` (or all flows
/// when `class` is `None`), raising rates out of `scratch.residual`.
///
/// `scratch.threshold` must hold the saturation thresholds for this pass;
/// `scratch.residual` is consumed in place so strict priority can chain
/// passes. Linkless flows of the class are granted their cap outright.
fn progressive_fill(
    flows: &[FlowDemand],
    class: Option<u8>,
    scratch: &mut AllocScratch,
    rate: &mut [f64],
) {
    let links = scratch.residual.len();
    scratch.link_weight.clear();
    scratch.link_weight.resize(links, 0.0);
    scratch.link_count.clear();
    scratch.link_count.resize(links, 0);
    scratch.unfrozen.clear();

    for (i, f) in flows.iter().enumerate() {
        if class.is_some_and(|c| c != f.priority) {
            continue;
        }
        if f.links.is_empty() {
            // Unconstrained by this fabric: only bound by its cap.
            rate[i] = f.rate_cap;
            continue;
        }
        scratch.unfrozen.push(i as u32);
        for &l in f.links {
            scratch.link_weight[l] += f.weight;
            scratch.link_count[l] += 1;
        }
    }

    while !scratch.unfrozen.is_empty() {
        // Bottleneck link level over links still carrying unfrozen flows.
        let mut bottleneck_share = f64::INFINITY;
        for (l, &w) in scratch.link_weight.iter().enumerate() {
            if scratch.link_count[l] > 0 && w > 0.0 {
                bottleneck_share = bottleneck_share.min(scratch.residual[l] / w);
            }
        }
        if bottleneck_share == f64::INFINITY {
            break; // no unfrozen flow touches any link
        }
        // The binding constraint could be a flow cap below the bottleneck
        // share.
        let mut level = bottleneck_share;
        for &i in &scratch.unfrozen {
            let f = &flows[i as usize];
            level = level.min((f.rate_cap - rate[i as usize]) / f.weight);
        }
        level = level.max(0.0);

        // Raise all unfrozen flows by level·weight; drain links by the
        // aggregate level·Σweights in one subtraction per link.
        for &i in &scratch.unfrozen {
            rate[i as usize] += level * flows[i as usize].weight;
        }
        for l in 0..links {
            if scratch.link_count[l] > 0 {
                scratch.residual[l] =
                    (scratch.residual[l] - level * scratch.link_weight[l]).max(0.0);
            }
        }

        // Freeze flows at cap or on saturated links, subtracting their
        // weights from the per-link totals instead of rebuilding them.
        let mut any_frozen = false;
        let mut k = 0;
        while k < scratch.unfrozen.len() {
            let i = scratch.unfrozen[k] as usize;
            let f = &flows[i];
            let capped = rate[i] >= f.rate_cap - 1e-6;
            let saturated = f
                .links
                .iter()
                .any(|&l| scratch.residual[l] <= scratch.threshold[l]);
            if capped || saturated {
                any_frozen = true;
                for &l in f.links {
                    scratch.link_count[l] -= 1;
                    if scratch.link_count[l] == 0 {
                        scratch.link_weight[l] = 0.0;
                    } else {
                        scratch.link_weight[l] = (scratch.link_weight[l] - f.weight).max(0.0);
                    }
                }
                scratch.unfrozen.swap_remove(k);
            } else {
                k += 1;
            }
        }
        if !any_frozen {
            // Numerical safety: if nothing froze, freeze everything left
            // to guarantee termination (mirrors the reference kernel).
            break;
        }
    }
}

/// Computes weighted max-min rates for `flows` over links with the given
/// residual `capacities` (bits/s) into `rates`, via progressive filling:
///
/// repeatedly find the bottleneck link — the one minimizing
/// `residual / Σ weights of unfrozen flows` — freeze its flows at that fair
/// share, subtract, and continue. Flows are also frozen early if they hit
/// `rate_cap`. Flows with no links get their cap.
///
/// `scratch` is reused across calls; `rates` is resized to `flows.len()`.
///
/// # Panics
/// Panics on non-positive weights or negative capacities.
pub fn weighted_max_min_into(
    flows: &[FlowDemand],
    capacities: &[f64],
    scratch: &mut AllocScratch,
    rates: &mut Vec<f64>,
) {
    check_inputs(flows, capacities);
    rates.clear();
    rates.resize(flows.len(), 0.0);
    scratch.residual.clear();
    scratch.residual.extend_from_slice(capacities);
    scratch.threshold.clear();
    scratch
        .threshold
        .extend(capacities.iter().map(|&c| 1e-6 * c.max(1.0)));
    progressive_fill(flows, None, scratch, rates);
}

/// Allocates with strict priorities into `rates`: all flows of the highest
/// class share first (weighted max-min among themselves), then the next
/// class gets the residual capacity, and so on — the
/// switch-priority-queue mechanism of §4.ii.
pub fn strict_priority_into(
    flows: &[FlowDemand],
    capacities: &[f64],
    scratch: &mut AllocScratch,
    rates: &mut Vec<f64>,
) {
    check_inputs(flows, capacities);
    rates.clear();
    rates.resize(flows.len(), 0.0);
    scratch.residual.clear();
    scratch.residual.extend_from_slice(capacities);
    scratch.classes.clear();
    scratch.classes.extend(flows.iter().map(|f| f.priority));
    scratch.classes.sort_unstable_by(|a, b| b.cmp(a));
    scratch.classes.dedup();
    let classes = std::mem::take(&mut scratch.classes);
    for &class in &classes {
        // Each class saturates against the capacity it inherited.
        scratch.threshold.clear();
        let thresholds = scratch.residual.iter().map(|&c| 1e-6 * c.max(1.0));
        scratch.threshold.extend(thresholds);
        progressive_fill(flows, Some(class), scratch, rates);
    }
    scratch.classes = classes;
}

/// Allocating wrapper over [`weighted_max_min_into`] for one-shot callers
/// and tests.
pub fn weighted_max_min(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
    let mut scratch = AllocScratch::new();
    let mut rates = Vec::new();
    weighted_max_min_into(flows, capacities, &mut scratch, &mut rates);
    rates
}

/// Allocating wrapper over [`strict_priority_into`].
pub fn strict_priority(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
    let mut scratch = AllocScratch::new();
    let mut rates = Vec::new();
    strict_priority_into(flows, capacities, &mut scratch, &mut rates);
    rates
}

/// From-scratch reference kernels: the textbook formulation that rebuilds
/// per-link weight totals from every flow on every round
/// (O(rounds·flows·links)). Kept verbatim as the oracle for differential
/// property tests against the incremental kernels — do not optimize.
pub mod reference {
    use super::FlowDemand;

    /// Reference weighted max-min (see [`super::weighted_max_min`]).
    pub fn weighted_max_min(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
        super::check_inputs(flows, capacities);
        let n = flows.len();
        let mut rate = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        let mut residual: Vec<f64> = capacities.to_vec();

        // Flows that traverse no link are only bound by their cap.
        for (i, f) in flows.iter().enumerate() {
            if f.links.is_empty() {
                rate[i] = f.rate_cap;
                frozen[i] = true;
            }
        }

        loop {
            // Per-link unfrozen weight totals, rebuilt from scratch.
            let mut link_weight = vec![0.0f64; capacities.len()];
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    for &l in f.links {
                        link_weight[l] += f.weight;
                    }
                }
            }
            let mut bottleneck_share = f64::INFINITY;
            for (l, &w) in link_weight.iter().enumerate() {
                if w > 0.0 {
                    bottleneck_share = bottleneck_share.min(residual[l] / w);
                }
            }
            if bottleneck_share == f64::INFINITY {
                break; // no unfrozen flow touches any link
            }
            let mut level = bottleneck_share;
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    level = level.min((f.rate_cap - rate[i]) / f.weight);
                }
            }
            level = level.max(0.0);

            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    let inc = level * f.weight;
                    rate[i] += inc;
                    for &l in f.links {
                        residual[l] = (residual[l] - inc).max(0.0);
                    }
                }
            }
            let mut any_frozen = false;
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let capped = rate[i] >= f.rate_cap - 1e-6;
                let saturated = f
                    .links
                    .iter()
                    .any(|&l| residual[l] <= 1e-6 * capacities[l].max(1.0));
                if capped || saturated {
                    frozen[i] = true;
                    any_frozen = true;
                }
            }
            if !any_frozen {
                for (i, f) in flows.iter().enumerate() {
                    if !frozen[i] && !f.links.is_empty() {
                        frozen[i] = true;
                    }
                }
            }
            if frozen.iter().all(|&f| f) {
                break;
            }
        }
        rate
    }

    /// Reference strict priority (see [`super::strict_priority`]).
    pub fn strict_priority(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
        let mut rates = vec![0.0f64; flows.len()];
        let mut residual: Vec<f64> = capacities.to_vec();
        let mut classes: Vec<u8> = flows.iter().map(|f| f.priority).collect();
        classes.sort_unstable_by(|a, b| b.cmp(a));
        classes.dedup();
        for class in classes {
            let idx: Vec<usize> = flows
                .iter()
                .enumerate()
                .filter(|(_, f)| f.priority == class)
                .map(|(i, _)| i)
                .collect();
            let class_flows: Vec<FlowDemand> = idx.iter().map(|&i| flows[i]).collect();
            let class_rates = weighted_max_min(&class_flows, &residual);
            for (k, &i) in idx.iter().enumerate() {
                rates[i] = class_rates[k];
                for &l in flows[i].links {
                    residual[l] = (residual[l] - class_rates[k]).max(0.0);
                }
            }
        }
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: f64 = 1e9;

    fn flow(links: &[usize], weight: f64, priority: u8, cap: f64) -> FlowDemand<'_> {
        FlowDemand {
            links,
            weight,
            priority,
            rate_cap: cap,
        }
    }

    /// Asserts the incremental kernel agrees with the reference on both
    /// policies for the given instance (within float-accumulation slack).
    fn assert_matches_reference(flows: &[FlowDemand], capacities: &[f64]) {
        let inc = weighted_max_min(flows, capacities);
        let refr = reference::weighted_max_min(flows, capacities);
        for (i, (a, b)) in inc.iter().zip(&refr).enumerate() {
            assert!((a - b).abs() < 1.0, "wmm flow {i}: {a} vs ref {b}");
        }
        let inc = strict_priority(flows, capacities);
        let refr = reference::strict_priority(flows, capacities);
        for (i, (a, b)) in inc.iter().zip(&refr).enumerate() {
            assert!((a - b).abs() < 1.0, "sp flow {i}: {a} vs ref {b}");
        }
    }

    #[test]
    fn equal_split_on_one_link() {
        let flows = vec![
            flow(&[0], 1.0, 0, 100.0 * GBPS),
            flow(&[0], 1.0, 0, 100.0 * GBPS),
        ];
        let r = weighted_max_min(&flows, &[50.0 * GBPS]);
        assert!((r[0] - 25.0 * GBPS).abs() < 1.0);
        assert!((r[1] - 25.0 * GBPS).abs() < 1.0);
        assert_matches_reference(&flows, &[50.0 * GBPS]);
    }

    #[test]
    fn weights_split_proportionally() {
        // 2:1 weights → 2:1 rates — the fluid stand-in for the paper's
        // 30/15 Gbps unfair split (Fig. 1c).
        let flows = vec![
            flow(&[0], 2.0, 0, 100.0 * GBPS),
            flow(&[0], 1.0, 0, 100.0 * GBPS),
        ];
        let r = weighted_max_min(&flows, &[45.0 * GBPS]);
        assert!((r[0] - 30.0 * GBPS).abs() < 1.0, "r0 {}", r[0]);
        assert!((r[1] - 15.0 * GBPS).abs() < 1.0, "r1 {}", r[1]);
    }

    #[test]
    fn rate_cap_redistribution() {
        // One flow capped at 10; the other picks up the slack.
        let flows = vec![
            flow(&[0], 1.0, 0, 10.0 * GBPS),
            flow(&[0], 1.0, 0, 100.0 * GBPS),
        ];
        let r = weighted_max_min(&flows, &[50.0 * GBPS]);
        assert!((r[0] - 10.0 * GBPS).abs() < 1.0);
        assert!((r[1] - 40.0 * GBPS).abs() < 1.0);
        assert_matches_reference(&flows, &[50.0 * GBPS]);
    }

    #[test]
    fn classic_multi_link_max_min() {
        // Textbook: flow A on links 0+1, B on 0, C on 1; caps 10 each.
        // Max-min: A=5, B=5, C=5 (both links split evenly).
        let flows = vec![
            flow(&[0, 1], 1.0, 0, 1e12),
            flow(&[0], 1.0, 0, 1e12),
            flow(&[1], 1.0, 0, 1e12),
        ];
        let r = weighted_max_min(&flows, &[10.0 * GBPS, 10.0 * GBPS]);
        for (i, &v) in r.iter().enumerate() {
            assert!((v - 5.0 * GBPS).abs() < 1.0, "flow {i}: {v}");
        }
        assert_matches_reference(&flows, &[10.0 * GBPS, 10.0 * GBPS]);
    }

    #[test]
    fn asymmetric_multi_link() {
        // Flow A crosses links 0 (cap 10) and 1 (cap 4); flow B only link 0.
        // A is bottlenecked at 4 on link 1; B then gets 6 on link 0.
        let flows = vec![flow(&[0, 1], 1.0, 0, 1e12), flow(&[0], 1.0, 0, 1e12)];
        let r = weighted_max_min(&flows, &[10.0 * GBPS, 4.0 * GBPS]);
        assert!((r[0] - 4.0 * GBPS).abs() < 1.0, "A {}", r[0]);
        assert!((r[1] - 6.0 * GBPS).abs() < 1.0, "B {}", r[1]);
        assert_matches_reference(&flows, &[10.0 * GBPS, 4.0 * GBPS]);
    }

    #[test]
    fn linkless_flow_gets_cap() {
        let flows = vec![flow(&[], 1.0, 0, 7.0 * GBPS)];
        let r = weighted_max_min(&flows, &[]);
        assert_eq!(r[0], 7.0 * GBPS);
    }

    #[test]
    fn no_capacity_leaks() {
        // Conservation: total allocated on a link never exceeds capacity.
        let flows = vec![
            flow(&[0], 1.3, 0, 40.0 * GBPS),
            flow(&[0], 0.7, 0, 40.0 * GBPS),
            flow(&[0], 2.0, 0, 5.0 * GBPS),
        ];
        let cap = 50.0 * GBPS;
        let r = weighted_max_min(&flows, &[cap]);
        let total: f64 = r.iter().sum();
        assert!(total <= cap * (1.0 + 1e-9), "total {total}");
        // And it is work-conserving here (demand exceeds capacity).
        assert!(total >= cap * 0.999, "total {total}");
        assert_matches_reference(&flows, &[cap]);
    }

    #[test]
    fn strict_priority_preempts() {
        // High class takes everything it can; low class starves (§4.ii).
        let flows = vec![
            flow(&[0], 1.0, 1, 100.0 * GBPS), // high
            flow(&[0], 1.0, 0, 100.0 * GBPS), // low
        ];
        let r = strict_priority(&flows, &[50.0 * GBPS]);
        assert!((r[0] - 50.0 * GBPS).abs() < 1.0);
        assert!(r[1] < 1.0);
    }

    #[test]
    fn strict_priority_residual_flows_down() {
        // High class capped at 20 → low class gets the remaining 30.
        let flows = vec![
            flow(&[0], 1.0, 5, 20.0 * GBPS),
            flow(&[0], 1.0, 2, 100.0 * GBPS),
        ];
        let r = strict_priority(&flows, &[50.0 * GBPS]);
        assert!((r[0] - 20.0 * GBPS).abs() < 1.0);
        assert!((r[1] - 30.0 * GBPS).abs() < 1.0);
        assert_matches_reference(&flows, &[50.0 * GBPS]);
    }

    #[test]
    fn strict_priority_within_class_is_weighted() {
        let flows = vec![
            flow(&[0], 3.0, 1, 1e12),
            flow(&[0], 1.0, 1, 1e12),
            flow(&[0], 1.0, 0, 1e12),
        ];
        let r = strict_priority(&flows, &[40.0 * GBPS]);
        assert!((r[0] - 30.0 * GBPS).abs() < 1.0);
        assert!((r[1] - 10.0 * GBPS).abs() < 1.0);
        assert!(r[2] < 1.0);
        assert_matches_reference(&flows, &[40.0 * GBPS]);
    }

    #[test]
    fn empty_inputs() {
        assert!(weighted_max_min(&[], &[1.0 * GBPS]).is_empty());
        assert!(strict_priority(&[], &[]).is_empty());
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // Back-to-back calls through one scratch must not bleed state.
        let mut scratch = AllocScratch::new();
        let mut rates = Vec::new();
        let a = vec![flow(&[0], 1.0, 0, 1e12), flow(&[0], 1.0, 0, 1e12)];
        weighted_max_min_into(&a, &[50.0 * GBPS], &mut scratch, &mut rates);
        assert!((rates[0] - 25.0 * GBPS).abs() < 1.0);
        let b = vec![flow(&[0, 1], 1.0, 1, 1e12), flow(&[1], 1.0, 0, 20.0 * GBPS)];
        strict_priority_into(&b, &[40.0 * GBPS, 10.0 * GBPS], &mut scratch, &mut rates);
        assert_eq!(rates.len(), 2);
        let fresh = strict_priority(&b, &[40.0 * GBPS, 10.0 * GBPS]);
        assert_eq!(rates, fresh, "scratch reuse changed the result");
        // And the first instance again, bit-identical to its fresh run.
        weighted_max_min_into(&a, &[50.0 * GBPS], &mut scratch, &mut rates);
        assert_eq!(rates, weighted_max_min(&a, &[50.0 * GBPS]));
    }

    #[test]
    #[should_panic(expected = "non-positive weight")]
    fn zero_weight_rejected() {
        weighted_max_min(&[flow(&[0], 0.0, 0, 1.0)], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-positive weight")]
    fn reference_rejects_zero_weight_too() {
        reference::weighted_max_min(&[flow(&[0], 0.0, 0, 1.0)], &[1.0]);
    }
}
