//! The event-driven fluid engine: idealized bandwidth sharing over an
//! arbitrary topology.
//!
//! Where the [`crate::rate`] engine lets congestion control *emerge*, this
//! engine imposes an instantaneous allocation policy and advances directly
//! from flow event to flow event — no fixed time step, so a 1000-iteration
//! cluster experiment costs thousands of allocation recomputes rather than
//! tens of millions of micro-steps. It drives the paper's mechanism
//! experiments:
//!
//! * [`SharingPolicy::MaxMin`] — the idealized fair baseline;
//! * [`SharingPolicy::Weighted`] — static unfairness as a weight vector
//!   (the fluid analogue of tuning DCQCN's `T`);
//! * [`SharingPolicy::Priority`] — switch priority queues (§4.ii): higher
//!   classes preempt lower ones entirely;
//! * [`SharingPolicy::Cc`] — one [`CcVariant`] per job, mapped to
//!   allocation weights via [`CcVariant::fluid_weight`] so the whole
//!   congestion-control zoo runs on all three engines;
//! * [`Gate`]s — precise flow scheduling (§4.iii): a job's communication
//!   phase is released only at scheduled instants derived from the
//!   geometry solver's rotation angles.

use crate::alloc::{strict_priority_into, weighted_max_min_into, AllocScratch, FlowDemand};
use crate::snapshot::{
    check_barrier, check_version, SnapshotError, Snapshottable, SNAPSHOT_VERSION,
};
use dcqcn::CcVariant;
use eventsim::{EventQueue, TimeSeries};
use simtime::{Bandwidth, Dur, Time};
use telemetry::{CcState, Event, NoopRecorder, Phase, Recorder, SpanTracker};
use topology::{LinkId, LinkSchedule, Topology};
use workload::{JobProgress, JobSpec, PhaseNoise};

/// How link bandwidth is divided among contending flows.
#[derive(Debug, Clone)]
pub enum SharingPolicy {
    /// Plain max-min fairness (what ideal fair congestion control gives).
    MaxMin,
    /// Weighted max-min with one weight per job.
    Weighted(Vec<f64>),
    /// Strict priorities with one class per job; higher class wins the
    /// whole link while it communicates.
    Priority(Vec<u8>),
    /// One congestion-control variant per job, realized as weighted
    /// max-min with each job's weight given by
    /// [`CcVariant::fluid_weight`] — the fluid analogue of the emergent
    /// split the packet/rate engines produce for the same variants.
    /// Progress-sensitive variants (`AdaptiveUnfair`, `Mltcp`,
    /// bonus-decay policies) are re-weighted from each job's current
    /// phase progress at every allocation event.
    Cc(Vec<CcVariant>),
}

/// A job's progress through its current communication phase in `[0, 1]`
/// (0 while computing), feeding [`CcVariant::fluid_weight`].
fn comm_progress(progress: &JobProgress) -> f64 {
    if !progress.is_communicating() {
        return 0.0;
    }
    let total = progress.comm_bytes_per_iteration();
    if total <= 0.0 {
        return 0.0;
    }
    ((total - progress.remaining_bytes()) / total).clamp(0.0, 1.0)
}

/// A communication-phase release gate (§4.iii): the phase may start only at
/// instants `t` with `(t − offset) ≡ 0 (mod period)`. A job whose forward
/// pass finishes between slots waits for the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// Slot anchor.
    pub offset: Dur,
    /// Slot period (normally the job's iteration time).
    pub period: Dur,
}

impl Gate {
    /// The first release instant at or after `now`.
    pub fn next_release(&self, now: Time) -> Time {
        assert!(!self.period.is_zero(), "Gate: zero period");
        let off = self.offset % self.period;
        let pos = (now.elapsed() + self.period - off) % self.period;
        if pos.is_zero() {
            now
        } else {
            now + (self.period - pos)
        }
    }
}

/// One flow of a job: a path through the fabric and the share of the job's
/// per-iteration bytes it carries.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Links traversed.
    pub links: Vec<LinkId>,
    /// Fraction of the job's communication bytes on this flow, in `(0, 1]`.
    pub fraction: f64,
}

/// A job participating in the fluid simulation.
#[derive(Debug, Clone)]
pub struct FluidJob {
    /// The training job.
    pub spec: JobSpec,
    /// When its first compute phase starts.
    pub start_offset: Dur,
    /// Its flows. Fractions must sum to 1.
    pub flows: Vec<FlowSpec>,
    /// Total bytes injected per iteration across all flows. `None` uses
    /// the spec's calibrated volume; placements that split the allreduce
    /// into `k` concurrent inter-rack hops set `k ×` the calibrated bytes
    /// (each hop carries the full ring volume).
    pub total_bytes_override: Option<f64>,
    /// Fault injection: per-iteration phase jitter and stragglers.
    /// `None` keeps the unperturbed iteration plan.
    pub noise: Option<PhaseNoise>,
    /// Fault injection: the job leaves the cluster at the first compute
    /// instant at or after this time (an in-flight communication phase
    /// finishes first).
    pub depart_at: Option<Time>,
}

impl FluidJob {
    /// A job with one flow carrying all its bytes over `links`.
    pub fn single_path(spec: JobSpec, links: Vec<LinkId>) -> FluidJob {
        FluidJob {
            spec,
            start_offset: Dur::ZERO,
            flows: vec![FlowSpec {
                links,
                fraction: 1.0,
            }],
            total_bytes_override: None,
            noise: None,
            depart_at: None,
        }
    }

    /// Same, with a staggered start.
    pub fn single_path_at(spec: JobSpec, links: Vec<LinkId>, start_offset: Dur) -> FluidJob {
        FluidJob {
            start_offset,
            ..FluidJob::single_path(spec, links)
        }
    }
}

/// Configuration of the fluid engine.
#[derive(Debug, Clone)]
pub struct FluidConfig {
    /// Allocation policy.
    pub policy: SharingPolicy,
    /// Optional per-job communication gates (§4.iii).
    pub gates: Vec<Option<Gate>>,
    /// Per-flow rate cap (NIC line rate).
    pub nic_rate: Bandwidth,
    /// Fault injection: per-link capacity schedules (empty = no faults).
    /// When non-empty, must have one entry per topology link; identity
    /// entries cost nothing at runtime.
    pub link_schedules: Vec<LinkSchedule>,
}

impl FluidConfig {
    /// Max-min sharing, no gates, 50 Gbps NICs.
    pub fn fair() -> FluidConfig {
        FluidConfig {
            policy: SharingPolicy::MaxMin,
            gates: Vec::new(),
            nic_rate: Bandwidth::from_gbps(50),
            link_schedules: Vec::new(),
        }
    }
}

/// Legacy array-of-structs per-flow state. The engine itself now keeps
/// flows in the SoA [`FlowArena`]; this layout survives (for one PR) as
/// the **differential-oracle view** — [`FluidSimulator::aos_view`]
/// reconstructs it from the arena, and the invariant probe feeds the
/// reference allocator from it, so any divergence between the two layouts
/// fails loudly instead of silently corrupting an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowState {
    /// Links traversed (indices into the topology's link table).
    pub links: Vec<usize>,
    /// Fraction of the job's phase bytes carried by this flow, in `(0, 1]`.
    pub fraction: f64,
    /// Bytes left in the current phase (0 while idle).
    pub remaining: f64,
    /// Current allocated rate, bits/s.
    pub rate: f64,
}

/// Arena-indexed SoA storage for every flow in the simulation: parallel
/// columns indexed by a global flow id, per-job contiguous ranges, and
/// CSR-flattened link lists. The allocator's hot loop walks contiguous
/// slices instead of chasing per-job `Vec<FlowState>` pointers, and a
/// snapshot of the whole arena is a handful of near-memcpy `Vec` clones.
#[derive(Debug, Clone, Default)]
struct FlowArena {
    /// Flows of job `j` occupy global ids `flow_off[j] .. flow_off[j+1]`.
    flow_off: Vec<u32>,
    /// Owning job of each flow (the inverse of `flow_off`).
    job_of: Vec<u32>,
    /// Share of the job's phase bytes carried by each flow, in `(0, 1]`.
    fraction: Vec<f64>,
    /// Bytes left in the current phase (0 while idle).
    remaining: Vec<f64>,
    /// Current allocated rate, bits/s.
    rate: Vec<f64>,
    /// CSR-flattened link lists; flow `f` traverses
    /// `links[link_off[f] .. link_off[f+1]]`.
    links: Vec<usize>,
    link_off: Vec<u32>,
}

impl FlowArena {
    fn job_range(&self, j: usize) -> std::ops::Range<usize> {
        self.flow_off[j] as usize..self.flow_off[j + 1] as usize
    }

    fn links_of(&self, f: usize) -> &[usize] {
        &self.links[self.link_off[f] as usize..self.link_off[f + 1] as usize]
    }

    fn flow_count(&self) -> usize {
        self.fraction.len()
    }

    /// Structural invariants a well-formed arena satisfies; `restore`
    /// rejects a snapshot whose columns disagree.
    fn validate(&self, job_count: usize) -> Result<(), SnapshotError> {
        let n = self.flow_count();
        if self.flow_off.len() != job_count + 1
            || self.flow_off[0] != 0
            || *self.flow_off.last().unwrap() as usize != n
            || self.flow_off.windows(2).any(|w| w[0] > w[1])
        {
            return Err(SnapshotError::Malformed {
                what: "flow arena job offsets",
            });
        }
        if self.job_of.len() != n || self.remaining.len() != n || self.rate.len() != n {
            return Err(SnapshotError::Malformed {
                what: "flow arena column lengths disagree",
            });
        }
        if self.link_off.len() != n + 1
            || *self.link_off.last().unwrap() as usize != self.links.len()
            || self.link_off.windows(2).any(|w| w[0] > w[1])
        {
            return Err(SnapshotError::Malformed {
                what: "flow arena link offsets",
            });
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct JState {
    progress: JobProgress,
    gate: Option<Gate>,
    /// Whether the current communication phase has been released.
    released: bool,
    /// Fault injection: pending departure deadline, if any.
    depart_at: Option<Time>,
    /// The job has left the cluster (no further events are armed).
    departed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Check a job's compute deadline.
    Poll(usize),
    /// A gate releases a job's pending communication phase.
    GateOpen(usize),
    /// A link's fault schedule changes its capacity multiplier.
    LinkChange(usize),
}

/// Sub-byte residual below which a flow's phase share counts as finished.
const FLOW_EPS: f64 = 0.5;

/// Inserts job `j`'s flows with bytes pending into the sorted active
/// index. Per-job flow ids are contiguous in the arena, so the job's
/// flows splice in as one ascending run (free function so callers can
/// hold `&mut` job state alongside).
fn activate_job_flows(active: &mut Vec<u32>, arena: &FlowArena, j: usize) {
    let range = arena.job_range(j);
    let at = active.partition_point(|&f| (f as usize) < range.start);
    debug_assert!(
        active.get(at).is_none_or(|&f| f as usize >= range.end),
        "job {j} released while already active"
    );
    active.splice(
        at..at,
        range
            .filter(|&f| arena.remaining[f] > 0.0)
            .map(|f| f as u32),
    );
}

/// Removes one flow from the active index, if present.
fn deactivate_flow(active: &mut Vec<u32>, f: usize) {
    if let Ok(pos) = active.binary_search(&(f as u32)) {
        active.remove(pos);
    }
}

/// Removes every flow of job `j` from the active index (phase end).
fn deactivate_job(active: &mut Vec<u32>, arena: &FlowArena, j: usize) {
    let range = arena.job_range(j);
    let lo = active.partition_point(|&f| (f as usize) < range.start);
    let hi = active.partition_point(|&f| (f as usize) < range.end);
    active.drain(lo..hi);
}

/// The event-driven fluid simulator.
///
/// Generic over a [`Recorder`]; the default [`NoopRecorder`] compiles all
/// instrumentation away. Observed runs use
/// [`FluidSimulator::with_recorder`].
pub struct FluidSimulator<R: Recorder = NoopRecorder> {
    capacities: Vec<f64>,
    /// Unperturbed link capacities; `capacities` is this scaled by the
    /// fault schedules' current multipliers. Empty when no schedules.
    base_capacities: Vec<f64>,
    /// Per-link fault schedules (empty = no capacity faults).
    link_schedules: Vec<LinkSchedule>,
    jobs: Vec<JState>,
    /// SoA per-flow state, indexed by global flow id.
    arena: FlowArena,
    events: EventQueue<Ev>,
    /// The fluid clock. Distinct from the event queue's internal clock,
    /// which only advances when events pop: flows progress continuously
    /// *between* events, and this field tracks that.
    now: Time,
    policy: SharingPolicy,
    nic_rate: f64,
    rates_dirty: bool,
    /// Forces the next `recompute_rates` to re-run the solver even if the
    /// active set is unchanged — set when a link's capacity changes, which
    /// invalidates rates without touching the set.
    force_resolve: bool,
    /// Sorted global-flow-id index of currently active flows — the flows
    /// the activity predicate would select, maintained incrementally at
    /// releases, completions, and phase ends so the allocator never
    /// rescans every job.
    active: Vec<u32>,
    /// The active set the last solver pass ran over. When a reallocation
    /// request finds the set unchanged, the solve is skipped outright.
    solved_active: Vec<u32>,
    /// Reusable allocator working memory.
    scratch: AllocScratch,
    /// Reusable solver output buffer, parallel to `active`.
    rate_buf: Vec<f64>,
    /// Earliest absolute completion instant among active flows under the
    /// current allocation, or `None` if nothing is draining. Completion
    /// times are invariant between rate changes (remaining bytes shrink
    /// linearly), so this is refreshed only when rates change instead of
    /// rescanning every job × flow per event loop turn.
    next_completion_cache: Option<Time>,
    throughput_traces: Vec<TimeSeries>,
    rec: R,
    /// Typed-span emission state (empty when `R` is disabled).
    spans: SpanTracker,
    /// Allocation-solver passes so far (also the solver-iteration index).
    allocs: u64,
    /// Events popped from the queue so far.
    events_popped: u64,
    /// Last aggregate rate recorded per job, to compress telemetry.
    last_rates: Vec<f64>,
}

impl FluidSimulator {
    /// Builds an unobserved simulator over `topo` for the given jobs.
    ///
    /// # Panics
    /// Panics if `jobs` is empty, a flow fraction is outside `(0, 1]`, a
    /// job's fractions do not sum to 1, a policy vector's length mismatches
    /// the job count, or a gate vector's length mismatches.
    pub fn new(topo: &Topology, cfg: FluidConfig, jobs: &[FluidJob]) -> FluidSimulator {
        FluidSimulator::with_recorder(topo, cfg, jobs, NoopRecorder)
    }
}

impl<R: Recorder> FluidSimulator<R> {
    /// Builds a simulator whose instrumentation feeds `rec`.
    ///
    /// # Panics
    /// Same conditions as [`FluidSimulator::new`].
    pub fn with_recorder(
        topo: &Topology,
        cfg: FluidConfig,
        jobs: &[FluidJob],
        mut rec: R,
    ) -> FluidSimulator<R> {
        assert!(!jobs.is_empty(), "FluidSimulator: no jobs");
        let mut spans = SpanTracker::new::<R>(jobs.len());
        if R::ENABLED {
            for (j, job) in jobs.iter().enumerate() {
                let mut links: Vec<u32> = job
                    .flows
                    .iter()
                    .flat_map(|f| f.links.iter().map(|l| l.0))
                    .collect();
                links.sort_unstable();
                links.dedup();
                rec.record(
                    Time::ZERO + job.start_offset,
                    Event::JobPath {
                        job: j as u32,
                        links,
                    },
                );
                spans.enter(
                    &mut rec,
                    Time::ZERO + job.start_offset,
                    j as u32,
                    Phase::Compute,
                    0,
                );
                rec.record(
                    Time::ZERO + job.start_offset,
                    Event::PhaseEnter {
                        job: j as u32,
                        phase: Phase::Compute,
                        iteration: 0,
                    },
                );
            }
        }
        match &cfg.policy {
            SharingPolicy::MaxMin => {}
            SharingPolicy::Weighted(w) => {
                assert_eq!(w.len(), jobs.len(), "policy weights length mismatch")
            }
            SharingPolicy::Priority(p) => {
                assert_eq!(p.len(), jobs.len(), "policy priorities length mismatch")
            }
            SharingPolicy::Cc(vs) => {
                assert_eq!(vs.len(), jobs.len(), "policy variants length mismatch")
            }
        }
        if !cfg.gates.is_empty() {
            assert_eq!(cfg.gates.len(), jobs.len(), "gates length mismatch");
            for (j, job) in jobs.iter().enumerate() {
                assert!(
                    cfg.gates[j].is_none() || job.spec.pipeline.chunks == 1,
                    "job {j}: gates release whole communication phases; a \
                     pipelined job's gap segments would each wait for the \
                     next slot (unsupported combination)"
                );
            }
        }
        let mut capacities: Vec<f64> = topo
            .links()
            .iter()
            .map(|l| l.capacity.as_bps_f64())
            .collect();
        if !cfg.link_schedules.is_empty() {
            assert_eq!(
                cfg.link_schedules.len(),
                capacities.len(),
                "link_schedules length mismatches topology links"
            );
        }
        let mut events = EventQueue::new();
        // Seed one LinkChange per scheduled link; the handler chains to the
        // next change point, so the queue holds at most one per link. A
        // change at exactly t = 0 is already in effect and is applied here.
        let mut base_capacities = Vec::new();
        let mut link_schedules = Vec::new();
        if cfg.link_schedules.iter().any(|s| !s.is_identity()) {
            base_capacities = capacities.clone();
            for (l, s) in cfg.link_schedules.iter().enumerate() {
                let m = s.multiplier_at(Time::ZERO);
                if m != 1.0 {
                    capacities[l] = base_capacities[l] * m;
                    if R::ENABLED {
                        rec.record(
                            Time::ZERO,
                            Event::LinkCapacity {
                                link: l as u32,
                                fraction: m,
                            },
                        );
                    }
                }
                if let Some(at) = s.next_change_after(Time::ZERO) {
                    events.schedule_at(at, Ev::LinkChange(l));
                }
            }
            link_schedules = cfg.link_schedules.clone();
        }
        let mut states = Vec::with_capacity(jobs.len());
        let mut arena = FlowArena::default();
        arena.flow_off.push(0);
        arena.link_off.push(0);
        for (j, job) in jobs.iter().enumerate() {
            let total: f64 = job.flows.iter().map(|f| f.fraction).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "job {j}: flow fractions sum to {total}, expected 1"
            );
            for f in &job.flows {
                assert!(
                    f.fraction > 0.0 && f.fraction <= 1.0,
                    "job {j}: flow fraction {} outside (0, 1]",
                    f.fraction
                );
                arena.job_of.push(j as u32);
                arena.fraction.push(f.fraction);
                arena.remaining.push(0.0);
                arena.rate.push(0.0);
                arena.links.extend(f.links.iter().map(|l| l.0 as usize));
                arena.link_off.push(arena.links.len() as u32);
            }
            arena.flow_off.push(arena.flow_count() as u32);
            let bytes = job
                .total_bytes_override
                .unwrap_or(job.spec.comm_bytes().as_bytes() as f64);
            let progress =
                JobProgress::with_noise(job.spec, Time::ZERO + job.start_offset, bytes, job.noise);
            let poll_at = progress
                .next_self_transition()
                .expect("job starts computing");
            events.schedule_at(poll_at, Ev::Poll(j));
            states.push(JState {
                progress,
                gate: cfg.gates.get(j).copied().flatten(),
                released: false,
                depart_at: job.depart_at,
                departed: false,
            });
        }
        FluidSimulator {
            capacities,
            base_capacities,
            link_schedules,
            jobs: states,
            arena,
            events,
            now: Time::ZERO,
            policy: cfg.policy,
            nic_rate: cfg.nic_rate.as_bps_f64(),
            rates_dirty: true,
            force_resolve: false,
            active: Vec::new(),
            solved_active: Vec::new(),
            scratch: AllocScratch::new(),
            rate_buf: Vec::new(),
            next_completion_cache: None,
            throughput_traces: (0..jobs.len()).map(|_| TimeSeries::new()).collect(),
            rec,
            spans,
            allocs: 0,
            events_popped: 0,
            last_rates: vec![0.0; jobs.len()],
        }
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &R {
        &self.rec
    }

    /// Consumes the simulator and returns the attached recorder (how a
    /// shard's fork is recovered for the ordered merge).
    pub fn into_recorder(self) -> R {
        self.rec
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Iteration bookkeeping of job `j`.
    pub fn progress(&self, j: usize) -> &JobProgress {
        &self.jobs[j].progress
    }

    /// Number of jobs in the simulation (including departed ones).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Per-job aggregate throughput trace (Gbps), sampled at every
    /// allocation change.
    pub fn throughput_trace(&self, j: usize) -> &TimeSeries {
        &self.throughput_traces[j]
    }

    /// Instantaneous utilization of link `l` (allocated rate over
    /// capacity, in `[0, 1]`) under the current allocation.
    ///
    /// # Panics
    /// Panics if `l` is out of range or the link has zero capacity.
    pub fn link_utilization(&self, l: topology::LinkId) -> f64 {
        let idx = l.0 as usize;
        assert!(idx < self.capacities.len(), "unknown link {l}");
        let cap = self.capacities[idx];
        assert!(cap > 0.0, "link {l} has zero capacity");
        let allocated: f64 = (0..self.arena.flow_count())
            .filter(|&f| self.arena.links_of(f).contains(&idx))
            .map(|f| self.arena.rate[f])
            .sum();
        allocated / cap
    }

    /// Reconstructs every job's flows in the legacy array-of-structs
    /// layout — the differential-oracle view of the SoA arena. Test and
    /// validation code diffs engine behaviour through this view; it is not
    /// on any hot path.
    pub fn aos_view(&self) -> Vec<Vec<FlowState>> {
        (0..self.jobs.len())
            .map(|j| {
                self.arena
                    .job_range(j)
                    .map(|f| FlowState {
                        links: self.arena.links_of(f).to_vec(),
                        fraction: self.arena.fraction[f],
                        remaining: self.arena.remaining[f],
                        rate: self.arena.rate[f],
                    })
                    .collect()
            })
            .collect()
    }

    /// Test-only invariant probe: reconstructs the legacy AoS layout via
    /// [`aos_view`](Self::aos_view), checks the incremental active index
    /// against a full predicate scan over it, and checks the arena's rates
    /// against a from-scratch reference allocation whose demands are built
    /// from the AoS view — a genuine SoA-vs-AoS differential oracle.
    ///
    /// Returns `None` when rates are dirty (a reallocation is pending, so
    /// flow rates are transiently stale by design); otherwise the maximum
    /// absolute rate divergence in bits/s — which should be within float
    /// accumulation noise of zero.
    ///
    /// # Panics
    /// Panics if the active index disagrees with the predicate scan.
    /// `true` when allocation weights depend on live job progress
    /// (progress-sensitive [`SharingPolicy::Cc`] variants): the skip-solve
    /// fast path would freeze stale weights, so every reallocation
    /// re-runs the solver.
    fn dynamic_weights(&self) -> bool {
        matches!(&self.policy, SharingPolicy::Cc(vs) if vs.iter().any(|v| v.wants_progress()))
    }

    #[doc(hidden)]
    pub fn debug_max_rate_divergence(&self) -> Option<f64> {
        if self.rates_dirty {
            return None;
        }
        // Progress-sensitive weights move continuously between solves;
        // an oracle rebuilt from *current* progress would legitimately
        // diverge from rates solved at the last event, so the comparison
        // is only meaningful for static weights.
        if self.dynamic_weights() {
            return None;
        }
        let aos = self.aos_view();
        let scan: Vec<u32> = self
            .jobs
            .iter()
            .zip(&aos)
            .enumerate()
            .flat_map(|(j, (js, flows))| {
                let base = self.arena.flow_off[j];
                flows
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| {
                        js.progress.is_communicating() && js.released && f.remaining > 0.0
                    })
                    .map(move |(fi, _)| base + fi as u32)
            })
            .collect();
        assert_eq!(
            scan, self.active,
            "active-flow index diverged from the AoS activity scan"
        );
        let demands: Vec<FlowDemand<'_>> = self
            .active
            .iter()
            .map(|&f| {
                let j = self.arena.job_of[f as usize] as usize;
                let fi = f as usize - self.arena.flow_off[j] as usize;
                let (weight, priority) = match &self.policy {
                    SharingPolicy::MaxMin => (1.0, 0),
                    SharingPolicy::Weighted(w) => (w[j], 0),
                    SharingPolicy::Priority(p) => (1.0, p[j]),
                    // Only static-weight variants reach here (see above).
                    SharingPolicy::Cc(vs) => (vs[j].fluid_weight(0.0), 0),
                };
                FlowDemand {
                    links: &aos[j][fi].links,
                    weight,
                    priority,
                    rate_cap: self.nic_rate,
                }
            })
            .collect();
        let reference = match &self.policy {
            SharingPolicy::Priority(_) => {
                crate::alloc::reference::strict_priority(&demands, &self.capacities)
            }
            _ => crate::alloc::reference::weighted_max_min(&demands, &self.capacities),
        };
        let mut worst = 0.0f64;
        for (k, &f) in self.active.iter().enumerate() {
            let got = self.arena.rate[f as usize];
            worst = worst.max((got - reference[k]).abs());
        }
        Some(worst)
    }

    /// Recomputes the allocation for the currently active flows.
    ///
    /// Demands are borrowed straight from the flow states (no link-list
    /// clones) and solved into reusable scratch buffers. If the active set
    /// is identical to the one the last solve ran over, the rates cannot
    /// have changed and the solver is skipped entirely — only the
    /// telemetry/trace bookkeeping below runs, so observed streams are
    /// identical either way.
    fn recompute_rates(&mut self) {
        let set_changed = self.allocs == 0
            || self.force_resolve
            || self.dynamic_weights()
            || self.active != self.solved_active;
        if set_changed {
            self.force_resolve = false;
            {
                let arena = &self.arena;
                let jobs = &self.jobs;
                let mut demands: Vec<FlowDemand<'_>> = Vec::with_capacity(self.active.len());
                for &f in &self.active {
                    let j = arena.job_of[f as usize] as usize;
                    let (weight, priority) = match &self.policy {
                        SharingPolicy::MaxMin => (1.0, 0),
                        SharingPolicy::Weighted(w) => (w[j], 0),
                        SharingPolicy::Priority(p) => (1.0, p[j]),
                        SharingPolicy::Cc(vs) => {
                            (vs[j].fluid_weight(comm_progress(&jobs[j].progress)), 0)
                        }
                    };
                    demands.push(FlowDemand {
                        links: arena.links_of(f as usize),
                        weight,
                        priority,
                        rate_cap: self.nic_rate,
                    });
                }
                match &self.policy {
                    SharingPolicy::Priority(_) => strict_priority_into(
                        &demands,
                        &self.capacities,
                        &mut self.scratch,
                        &mut self.rate_buf,
                    ),
                    _ => weighted_max_min_into(
                        &demands,
                        &self.capacities,
                        &mut self.scratch,
                        &mut self.rate_buf,
                    ),
                }
            }
            self.arena.rate.fill(0.0);
            for (k, &f) in self.active.iter().enumerate() {
                self.arena.rate[f as usize] = self.rate_buf[k];
            }
            self.solved_active.clone_from(&self.active);
        }
        self.allocs += 1;
        if R::ENABLED {
            self.rec.record(
                self.now,
                Event::SolverIteration {
                    component: "fluid.alloc",
                    index: self.allocs,
                },
            );
        }
        // Trace each job's aggregate throughput.
        let now = self.now;
        for j in 0..self.jobs.len() {
            let total: f64 = self.arena.rate[self.arena.job_range(j)].iter().sum();
            self.throughput_traces[j].push_compressed(now, total / 1e9);
            if R::ENABLED && total != self.last_rates[j] {
                self.last_rates[j] = total;
                self.rec.record(
                    now,
                    Event::RateChange {
                        flow: j as u32,
                        bps: total,
                        state: CcState::Alloc,
                    },
                );
            }
        }
        self.rates_dirty = false;
        self.refresh_completion_cache();
    }

    /// Recomputes the earliest-completion cache from the active index:
    /// O(active flows), run only when rates change (or to re-anchor after
    /// float dust), never per event-loop turn.
    fn refresh_completion_cache(&mut self) {
        let now = self.now;
        let mut best: Option<Time> = None;
        for &f in &self.active {
            let (rate, remaining) = (
                self.arena.rate[f as usize],
                self.arena.remaining[f as usize],
            );
            if rate > 0.0 && remaining > 0.0 {
                let secs = remaining * 8.0 / rate;
                // Round up so we never stall on sub-nanosecond slices.
                let d = Dur::from_secs_f64(secs).max(Dur::NANOSECOND);
                let t = now + d;
                best = Some(match best {
                    None => t,
                    Some(b) => b.min(t),
                });
            }
        }
        self.next_completion_cache = best;
    }

    /// Advances all active flows to `t`, delivering bytes to their jobs.
    fn advance_to(&mut self, t: Time) {
        if t <= self.now {
            return;
        }
        let dt = (t - self.now).as_secs_f64();
        self.now = t;
        for j in 0..self.jobs.len() {
            let js = &mut self.jobs[j];
            if !(js.progress.is_communicating() && js.released) {
                continue;
            }
            let mut delivered = 0.0;
            let mut all_done = true;
            let mut any_flow_finished = false;
            for f in self.arena.job_range(j) {
                let remaining = self.arena.remaining[f];
                if remaining > 0.0 {
                    let mut d = (self.arena.rate[f] * dt / 8.0).min(remaining);
                    if remaining - d <= FLOW_EPS {
                        d = remaining; // flush sub-byte dust exactly
                    }
                    self.arena.remaining[f] = remaining - d;
                    delivered += d;
                    if self.arena.remaining[f] > 0.0 {
                        all_done = false;
                    } else {
                        any_flow_finished = true;
                        deactivate_flow(&mut self.active, f);
                    }
                }
            }
            if any_flow_finished {
                // A finished flow frees capacity for its siblings and
                // competitors: reallocate.
                self.rates_dirty = true;
            }
            if delivered > 0.0 {
                let mut finished_phase = js.progress.deliver(delivered, t).is_some();
                if !finished_phase && all_done && js.progress.is_communicating() {
                    // All flows delivered but the job believes bytes remain:
                    // float dust mismatch. Flush it.
                    let res = js.progress.remaining_bytes();
                    if res > 0.0 {
                        finished_phase = js.progress.deliver(res, t).is_some();
                    }
                }
                // Whether the delivery ended the whole iteration
                // (`finished_phase`) or just one pipelined segment, the job
                // is now computing: park the flows and schedule its poll.
                if !js.progress.is_communicating() {
                    debug_assert!(
                        all_done || !finished_phase,
                        "job finished with flow bytes left"
                    );
                    js.released = false;
                    deactivate_job(&mut self.active, &self.arena, j);
                    let poll_at = js
                        .progress
                        .next_self_transition()
                        .expect("job computes between communication segments");
                    self.events.schedule_at(poll_at.max(t), Ev::Poll(j));
                    self.rates_dirty = true;
                    if R::ENABLED {
                        let done = js.progress.completed() as u64;
                        let exited = if finished_phase {
                            done.saturating_sub(1)
                        } else {
                            done
                        };
                        self.rec.record(
                            t,
                            Event::PhaseExit {
                                job: j as u32,
                                phase: Phase::Communicate,
                                iteration: exited,
                            },
                        );
                        self.spans
                            .exit(&mut self.rec, t, j as u32, Phase::Communicate, exited);
                        self.spans
                            .enter(&mut self.rec, t, j as u32, Phase::Compute, done);
                        self.rec.record(
                            t,
                            Event::PhaseEnter {
                                job: j as u32,
                                phase: Phase::Compute,
                                iteration: done,
                            },
                        );
                    }
                }
            }
        }
    }

    fn handle_event(&mut self, ev: Ev) {
        let now = self.now;
        match ev {
            Ev::Poll(j) => {
                let js = &mut self.jobs[j];
                if js.departed {
                    return;
                }
                // Fault injection: a due departure takes effect at the
                // first compute-side poll (in-flight communication always
                // finishes). The job arms no further events.
                if let Some(d) = js.depart_at {
                    if now >= d && !js.progress.is_communicating() {
                        js.departed = true;
                        if R::ENABLED {
                            self.rec.record(now, Event::JobDepart { job: j as u32 });
                        }
                        return;
                    }
                }
                if js.progress.poll(now) {
                    if R::ENABLED {
                        let iteration = js.progress.completed() as u64;
                        self.rec.record(
                            now,
                            Event::PhaseExit {
                                job: j as u32,
                                phase: Phase::Compute,
                                iteration,
                            },
                        );
                        self.spans
                            .exit(&mut self.rec, now, j as u32, Phase::Compute, iteration);
                        self.spans.enter(
                            &mut self.rec,
                            now,
                            j as u32,
                            Phase::Communicate,
                            iteration,
                        );
                        self.rec.record(
                            now,
                            Event::PhaseEnter {
                                job: j as u32,
                                phase: Phase::Communicate,
                                iteration,
                            },
                        );
                    }
                    // Phase bytes split across flows by fraction.
                    let total = js.progress.remaining_bytes();
                    for f in self.arena.job_range(j) {
                        self.arena.remaining[f] = total * self.arena.fraction[f];
                    }
                    match js.gate {
                        None => {
                            js.released = true;
                            activate_job_flows(&mut self.active, &self.arena, j);
                            self.rates_dirty = true;
                        }
                        Some(g) => {
                            let at = g.next_release(now);
                            if at == now {
                                js.released = true;
                                activate_job_flows(&mut self.active, &self.arena, j);
                                self.rates_dirty = true;
                            } else {
                                self.events.schedule_at(at, Ev::GateOpen(j));
                            }
                        }
                    }
                }
            }
            Ev::GateOpen(j) => {
                let js = &mut self.jobs[j];
                if js.progress.is_communicating() && !js.released {
                    js.released = true;
                    activate_job_flows(&mut self.active, &self.arena, j);
                    self.rates_dirty = true;
                    if R::ENABLED {
                        self.rec.record(now, Event::GateRelease { job: j as u32 });
                    }
                }
            }
            Ev::LinkChange(l) => {
                let s = &self.link_schedules[l];
                let m = s.multiplier_at(now);
                let new_cap = if m == 1.0 {
                    self.base_capacities[l]
                } else {
                    self.base_capacities[l] * m
                };
                if new_cap != self.capacities[l] {
                    self.capacities[l] = new_cap;
                    self.rates_dirty = true;
                    self.force_resolve = true;
                    if R::ENABLED {
                        self.rec.record(
                            now,
                            Event::LinkCapacity {
                                link: l as u32,
                                fraction: m,
                            },
                        );
                    }
                }
                if let Some(at) = s.next_change_after(now) {
                    self.events.schedule_at(at, Ev::LinkChange(l));
                }
            }
        }
    }

    /// Runs until `t_stop`.
    pub fn run_until(&mut self, t_stop: Time) {
        let wall = if R::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let (allocs0, popped0) = (self.allocs, self.events_popped);
        self.run_until_inner(t_stop);
        if let Some(t0) = wall {
            self.rec
                .span("netsim.fluid", t0.elapsed(), self.events_popped - popped0);
            self.rec
                .count("fluid_allocations_total", self.allocs - allocs0);
        }
    }

    fn run_until_inner(&mut self, t_stop: Time) {
        loop {
            if self.rates_dirty {
                self.recompute_rates();
            }
            if self.now >= t_stop {
                return;
            }
            let completion = self.next_completion_cache;
            let next_ev = self.events.peek_time();
            let t_next = [completion, next_ev, Some(t_stop)]
                .into_iter()
                .flatten()
                .min()
                .unwrap();
            self.advance_to(t_next);
            // Process all events due exactly now.
            while let Some(e) = self.events.pop_until(t_next) {
                self.events_popped += 1;
                self.handle_event(e.event);
            }
            if !self.rates_dirty {
                if let Some(c) = self.next_completion_cache {
                    if c <= self.now {
                        // We advanced to (or past) the cached completion
                        // without any flow finishing — float dust left a
                        // sub-byte residue. Re-anchor at `now` so the next
                        // target is strictly in the future.
                        self.refresh_completion_cache();
                    }
                }
                if self.events.is_empty() && self.next_completion_cache.is_none() {
                    // Nothing will ever happen again (all jobs somehow idle
                    // with no pending polls — impossible in normal
                    // operation, but guard against infinite loops).
                    return;
                }
            }
            if t_next >= t_stop {
                return;
            }
        }
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, span: Dur) {
        let stop = self.now + span;
        self.run_until(stop);
    }

    /// Runs until every job completed `n` iterations or `max_span` elapses;
    /// returns `true` on success.
    pub fn run_until_iterations(&mut self, n: usize, max_span: Dur) -> bool {
        let reached = |jobs: &[JState]| {
            jobs.iter()
                .all(|j| j.departed || j.progress.completed() >= n)
        };
        let stop = self.now + max_span;
        while self.now < stop {
            if reached(&self.jobs) {
                return true;
            }
            // Run in slices so we can check the predicate.
            let slice_end = (self.now + Dur::from_millis(10)).min(stop);
            self.run_until(slice_end);
        }
        reached(&self.jobs)
    }

    /// Whether job `j` has departed the cluster.
    pub fn departed(&self, j: usize) -> bool {
        self.jobs[j].departed
    }

    /// Replaces job `i`'s phase-duration noise. Takes effect at the next
    /// iteration rollover; the in-flight iteration keeps its drawn scales.
    /// Used by forked sweeps to perturb a cell after a shared clean prefix.
    pub fn set_noise(&mut self, i: usize, noise: Option<PhaseNoise>) {
        self.jobs[i].progress.set_noise(noise);
    }

    /// Replaces job `i`'s departure deadline. A deadline at or before the
    /// current clock takes effect at the job's next compute-side poll.
    pub fn set_depart_at(&mut self, i: usize, at: Option<Time>) {
        self.jobs[i].depart_at = at;
    }

    /// Installs per-link fault schedules on a running simulator (one entry
    /// per topology link). Intended for forked sweeps: the shared prefix
    /// runs without schedules, and each fork installs its cell's schedules
    /// at the barrier. Schedules are evaluated in absolute simulated time,
    /// so a window before the current clock has already "happened" silently.
    ///
    /// # Panics
    /// Panics if `schedules` length mismatches the link count, or if the
    /// simulator already has schedules installed (their pending change
    /// events cannot be retracted).
    pub fn set_link_schedules(&mut self, schedules: Vec<LinkSchedule>) {
        assert_eq!(
            schedules.len(),
            self.capacities.len(),
            "set_link_schedules: length mismatches topology links"
        );
        assert!(
            self.link_schedules.is_empty(),
            "set_link_schedules: schedules already installed"
        );
        if schedules.iter().all(|s| s.is_identity()) {
            return;
        }
        self.base_capacities = self.capacities.clone();
        self.link_schedules = schedules;
        let now = self.now;
        for l in 0..self.link_schedules.len() {
            let m = self.link_schedules[l].multiplier_at(now);
            let new_cap = self.base_capacities[l] * m;
            if new_cap != self.capacities[l] {
                self.capacities[l] = new_cap;
                self.rates_dirty = true;
                self.force_resolve = true;
                if R::ENABLED {
                    self.rec.record(
                        now,
                        Event::LinkCapacity {
                            link: l as u32,
                            fraction: m,
                        },
                    );
                }
            }
            if let Some(at) = self.link_schedules[l].next_change_after(now) {
                self.events.schedule_at(at, Ev::LinkChange(l));
            }
        }
    }
}

/// Complete captured state of a [`FluidSimulator`] at a simulated-time
/// barrier. See [`crate::snapshot`] for the contract.
#[derive(Clone)]
pub struct FluidSnapshot {
    version: u32,
    capacities: Vec<f64>,
    base_capacities: Vec<f64>,
    link_schedules: Vec<LinkSchedule>,
    jobs: Vec<JState>,
    arena: FlowArena,
    events: EventQueue<Ev>,
    now: Time,
    policy: SharingPolicy,
    nic_rate: f64,
    rates_dirty: bool,
    force_resolve: bool,
    active: Vec<u32>,
    solved_active: Vec<u32>,
    next_completion_cache: Option<Time>,
    throughput_traces: Vec<TimeSeries>,
    spans: SpanTracker,
    allocs: u64,
    events_popped: u64,
    last_rates: Vec<f64>,
}

impl FluidSnapshot {
    /// The simulated instant the snapshot was taken at.
    pub fn taken_at(&self) -> Time {
        self.now
    }

    /// Overrides the version field — test hook for the mismatch path.
    #[doc(hidden)]
    pub fn with_version(mut self, v: u32) -> FluidSnapshot {
        self.version = v;
        self
    }

    /// Schedules an already-due event — test hook for the barrier check.
    #[doc(hidden)]
    pub fn with_stale_event(mut self) -> FluidSnapshot {
        self.events.schedule_at(self.now, Ev::Poll(0));
        self
    }
}

impl<R: Recorder> Snapshottable<R> for FluidSimulator<R> {
    type Snapshot = FluidSnapshot;

    fn snapshot(&self) -> Result<FluidSnapshot, SnapshotError> {
        check_barrier(self.events.peek_time(), self.now)?;
        Ok(FluidSnapshot {
            version: SNAPSHOT_VERSION,
            capacities: self.capacities.clone(),
            base_capacities: self.base_capacities.clone(),
            link_schedules: self.link_schedules.clone(),
            jobs: self.jobs.clone(),
            arena: self.arena.clone(),
            events: self.events.clone(),
            now: self.now,
            policy: self.policy.clone(),
            nic_rate: self.nic_rate,
            rates_dirty: self.rates_dirty,
            force_resolve: self.force_resolve,
            active: self.active.clone(),
            solved_active: self.solved_active.clone(),
            next_completion_cache: self.next_completion_cache,
            throughput_traces: self.throughput_traces.clone(),
            spans: self.spans.clone(),
            allocs: self.allocs,
            events_popped: self.events_popped,
            last_rates: self.last_rates.clone(),
        })
    }

    fn restore(snap: FluidSnapshot, rec: R) -> Result<FluidSimulator<R>, SnapshotError> {
        check_version(snap.version)?;
        check_barrier(snap.events.peek_time(), snap.now)?;
        snap.arena.validate(snap.jobs.len())?;
        if snap.jobs.is_empty() {
            return Err(SnapshotError::Malformed { what: "no jobs" });
        }
        if snap.throughput_traces.len() != snap.jobs.len() {
            return Err(SnapshotError::Malformed {
                what: "throughput trace count mismatches jobs",
            });
        }
        if snap.last_rates.len() != snap.jobs.len() {
            return Err(SnapshotError::Malformed {
                what: "last-rate count mismatches jobs",
            });
        }
        Ok(FluidSimulator {
            capacities: snap.capacities,
            base_capacities: snap.base_capacities,
            link_schedules: snap.link_schedules,
            jobs: snap.jobs,
            arena: snap.arena,
            events: snap.events,
            now: snap.now,
            policy: snap.policy,
            nic_rate: snap.nic_rate,
            rates_dirty: snap.rates_dirty,
            force_resolve: snap.force_resolve,
            active: snap.active,
            solved_active: snap.solved_active,
            // Pure working memory, rebuilt on the next solver pass; the
            // skip-solve path only needs `solved_active` + arena rates,
            // which the snapshot keeps consistent.
            scratch: AllocScratch::new(),
            rate_buf: Vec::new(),
            next_completion_cache: snap.next_completion_cache,
            throughput_traces: snap.throughput_traces,
            rec,
            spans: snap.spans,
            allocs: snap.allocs,
            events_popped: snap.events_popped,
            last_rates: snap.last_rates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventsim::Cdf;
    use topology::builders::dumbbell;
    use workload::Model;

    const LINE: Bandwidth = Bandwidth::from_gbps(50);

    /// A dumbbell with two left→right jobs, both crossing the bottleneck.
    fn two_job_setup(
        spec_a: JobSpec,
        spec_b: JobSpec,
        cfg: FluidConfig,
    ) -> (FluidSimulator, Topology) {
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let jobs = [
            FluidJob::single_path(spec_a, path(0)),
            FluidJob::single_path(spec_b, path(1)),
        ];
        (FluidSimulator::new(&t, cfg, &jobs), t)
    }

    fn median_ms(sim: &FluidSimulator, j: usize, skip: usize) -> f64 {
        let times: Vec<_> = sim
            .progress(j)
            .iteration_times()
            .into_iter()
            .skip(skip)
            .collect();
        Cdf::from_samples(times).median().as_millis_f64()
    }

    #[test]
    fn solo_job_matches_analytic() {
        let d = dumbbell(1, LINE, LINE, Dur::ZERO);
        let path = d
            .topology
            .route(topology::FlowKey {
                src: d.left_hosts[0],
                dst: d.right_hosts[0],
                tag: 0,
            })
            .unwrap();
        let spec = JobSpec::reference(Model::Vgg16, 1400);
        let job = FluidJob::single_path(spec, path.links().to_vec());
        let mut sim = FluidSimulator::new(&d.topology, FluidConfig::fair(), &[job]);
        assert!(sim.run_until_iterations(5, Dur::from_secs(3)));
        let expected = spec.iteration_time_at(LINE).as_millis_f64();
        let got = median_ms(&sim, 0, 0);
        assert!(
            (got - expected).abs() < 0.5,
            "solo {got:.2} ms vs analytic {expected:.2} ms"
        );
    }

    /// Fluid max-min locks two identical simultaneous jobs at K + 2C —
    /// the same steady state the rate-based DCQCN engine converges to.
    #[test]
    fn fair_maxmin_locks_identical_jobs() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let (mut sim, _t) = two_job_setup(spec, spec, FluidConfig::fair());
        assert!(sim.run_until_iterations(6, Dur::from_secs(5)));
        let expected = (spec.compute_time() + spec.comm_time_at(LINE) * 2).as_millis_f64();
        for j in 0..2 {
            let got = median_ms(&sim, j, 1);
            assert!(
                (got - expected).abs() < 1.0,
                "job {j}: {got:.1} ms vs K+2C = {expected:.1} ms"
            );
        }
    }

    /// Weighted max-min (static unfairness) slides compatible jobs apart:
    /// both converge to their solo iteration time.
    #[test]
    fn weighted_unfairness_interleaves_compatible_jobs() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let cfg = FluidConfig {
            policy: SharingPolicy::Weighted(vec![2.0, 1.0]),
            ..FluidConfig::fair()
        };
        let (mut sim, _t) = two_job_setup(spec, spec, cfg);
        assert!(sim.run_until_iterations(10, Dur::from_secs(6)));
        let solo = spec.iteration_time_at(LINE).as_millis_f64();
        for j in 0..2 {
            let got = median_ms(&sim, j, 5);
            assert!(
                (got - solo).abs() < 2.0,
                "job {j}: median {got:.1} ms did not reach solo {solo:.1} ms"
            );
        }
    }

    /// `SharingPolicy::Cc` with all-`Fair` variants is the
    /// congestion-control zoo's spelling of max-min: every weight is
    /// exactly 1.0, so the runs match bit for bit.
    #[test]
    fn cc_fair_policy_matches_maxmin_exactly() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let cfg = FluidConfig {
            policy: SharingPolicy::Cc(vec![CcVariant::Fair, CcVariant::Fair]),
            ..FluidConfig::fair()
        };
        let (mut cc, _t) = two_job_setup(spec, spec, cfg);
        let (mut mm, _t) = two_job_setup(spec, spec, FluidConfig::fair());
        assert!(cc.run_until_iterations(6, Dur::from_secs(5)));
        assert!(mm.run_until_iterations(6, Dur::from_secs(5)));
        for j in 0..2 {
            assert_eq!(
                cc.progress(j).iteration_times(),
                mm.progress(j).iteration_times(),
                "job {j}: Cc(Fair) diverged from MaxMin"
            );
        }
    }

    /// Static wrapped variants reduce to weighted max-min: a proportional
    /// fairness policy with weight 2 against `Fair` reproduces the
    /// `Weighted([2, 1])` run exactly.
    #[test]
    fn cc_proportional_policy_matches_weighted_exactly() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let cc_cfg = FluidConfig {
            policy: SharingPolicy::Cc(vec![
                CcVariant::Policy {
                    policy: dcqcn::FairnessPolicy::Proportional { weight: 2.0 },
                },
                CcVariant::Fair,
            ]),
            ..FluidConfig::fair()
        };
        let w_cfg = FluidConfig {
            policy: SharingPolicy::Weighted(vec![2.0, 1.0]),
            ..FluidConfig::fair()
        };
        let (mut cc, _t) = two_job_setup(spec, spec, cc_cfg);
        let (mut w, _t) = two_job_setup(spec, spec, w_cfg);
        assert!(cc.run_until_iterations(10, Dur::from_secs(6)));
        assert!(w.run_until_iterations(10, Dur::from_secs(6)));
        for j in 0..2 {
            assert_eq!(
                cc.progress(j).iteration_times(),
                w.progress(j).iteration_times(),
                "job {j}: Cc(Proportional) diverged from Weighted"
            );
        }
    }

    /// MLTCP on the fluid engine: the progress bonus favours whichever
    /// job is further through its allreduce, sliding staggered compatible
    /// jobs apart until both run at solo pace — where plain max-min keeps
    /// them locked in contention.
    #[test]
    fn cc_mltcp_interleaves_staggered_jobs() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let stagger = spec.comm_time_at(LINE) / 2;
        let run = |policy: SharingPolicy| {
            let jobs = [
                FluidJob::single_path(spec, path(0)),
                FluidJob::single_path_at(spec, path(1), stagger),
            ];
            let cfg = FluidConfig {
                policy,
                ..FluidConfig::fair()
            };
            let mut sim = FluidSimulator::new(&t, cfg, &jobs);
            assert!(sim.run_until_iterations(12, Dur::from_secs(8)));
            (median_ms(&sim, 0, 6), median_ms(&sim, 1, 6))
        };
        let mltcp = SharingPolicy::Cc(vec![CcVariant::Mltcp { bonus: 4.0 }; 2]);
        let (m0, m1) = run(mltcp);
        let (f0, f1) = run(SharingPolicy::MaxMin);
        let solo = spec.iteration_time_at(LINE).as_millis_f64();
        for (j, (m, f)) in [(m0, f0), (m1, f1)].into_iter().enumerate() {
            assert!(
                m < f - 0.5,
                "job {j}: MLTCP median {m:.2} ms not faster than max-min {f:.2} ms"
            );
            assert!(
                (m - solo).abs() < 2.0,
                "job {j}: MLTCP median {m:.2} ms did not settle at solo {solo:.2} ms"
            );
        }
    }

    /// Strict priorities (§4.ii) achieve the same interleaving without
    /// touching congestion control.
    #[test]
    fn priority_queues_interleave_compatible_jobs() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let cfg = FluidConfig {
            policy: SharingPolicy::Priority(vec![1, 0]),
            ..FluidConfig::fair()
        };
        let (mut sim, _t) = two_job_setup(spec, spec, cfg);
        assert!(sim.run_until_iterations(10, Dur::from_secs(6)));
        let solo = spec.iteration_time_at(LINE).as_millis_f64();
        for j in 0..2 {
            let got = median_ms(&sim, j, 5);
            assert!(
                (got - solo).abs() < 2.0,
                "job {j}: median {got:.1} ms did not reach solo {solo:.1} ms"
            );
        }
    }

    /// Gated flow scheduling (§4.iii): with slots from complementary
    /// offsets, two jobs never contend from the very first iteration.
    #[test]
    fn gates_schedule_comm_phases_apart() {
        let spec = JobSpec::reference(Model::Vgg19, 1200); // 261.28 ms period
        let period = spec.iteration_time_at(LINE);
        let comm = spec.comm_time_at(LINE);
        let compute = spec.compute_time();
        // Job 0's comm naturally occupies [compute, period). Gate job 1's
        // comm to start where job 0's ends: offset compute + comm.
        let gates = vec![
            Some(Gate {
                offset: compute,
                period,
            }),
            Some(Gate {
                offset: compute + comm,
                period,
            }),
        ];
        let cfg = FluidConfig {
            gates,
            ..FluidConfig::fair()
        };
        let (mut sim, _t) = two_job_setup(spec, spec, cfg);
        assert!(sim.run_until_iterations(6, Dur::from_secs(4)));
        // Job 0 runs at exactly solo pace; job 1 pays its initial wait then
        // also settles at solo pace (its slot repeats every period).
        let solo = period.as_millis_f64();
        for j in 0..2 {
            let got = median_ms(&sim, j, 2);
            assert!(
                (got - solo).abs() < 1.0,
                "job {j}: {got:.2} ms vs solo {solo:.2} ms under gating"
            );
        }
    }

    /// Multi-flow jobs: a job splitting bytes across two disjoint paths
    /// finishes when the slower flow finishes.
    #[test]
    fn multi_flow_job_completes_on_slowest_flow() {
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let spec = JobSpec::reference(Model::Vgg16, 1400);
        // 70% of bytes on path 0, 30% on path 1; both share the bottleneck,
        // so total transfer time is governed by the aggregate anyway.
        let job = FluidJob {
            spec,
            start_offset: Dur::ZERO,
            flows: vec![
                FlowSpec {
                    links: path(0),
                    fraction: 0.7,
                },
                FlowSpec {
                    links: path(1),
                    fraction: 0.3,
                },
            ],
            total_bytes_override: None,
            noise: None,
            depart_at: None,
        };
        let mut sim = FluidSimulator::new(&t, FluidConfig::fair(), &[job]);
        assert!(sim.run_until_iterations(3, Dur::from_secs(2)));
        // Both flows cross the same bottleneck: max-min gives each 25G,
        // the 70% flow takes 0.7·C/0.5 = 1.4× the solo comm time... but
        // once the 30% flow finishes, the 70% flow gets the full link.
        // Transfer time: 0.3 of bytes at 25+25 in parallel... compute the
        // exact schedule: phase ends when the big flow is done.
        // Stage 1: both at 25G until small flow (0.3·B) drains: t1 = 0.3B/25G.
        // Big flow delivered 0.3B too; remaining 0.4B at 50G: t2 = 0.4B/50G.
        let spec_bytes = spec.comm_bytes().as_bytes() as f64;
        let t1 = 0.3 * spec_bytes * 8.0 / 25e9;
        let t2 = 0.4 * spec_bytes * 8.0 / 50e9;
        let expected_ms = spec.compute_time().as_millis_f64() + (t1 + t2) * 1e3;
        let got = median_ms(&sim, 0, 0);
        assert!(
            (got - expected_ms).abs() < 1.0,
            "multi-flow iteration {got:.2} ms vs {expected_ms:.2} ms"
        );
    }

    /// Jobs on disjoint paths never affect each other.
    #[test]
    fn disjoint_jobs_do_not_interact() {
        let d = dumbbell(2, LINE, Bandwidth::from_gbps(100), Dur::ZERO);
        let t = d.topology.clone();
        // Job 0 left→right, job 1 right→left: different link directions.
        let fwd = t
            .route(topology::FlowKey {
                src: d.left_hosts[0],
                dst: d.right_hosts[0],
                tag: 0,
            })
            .unwrap();
        let rev = t
            .route(topology::FlowKey {
                src: d.right_hosts[1],
                dst: d.left_hosts[1],
                tag: 0,
            })
            .unwrap();
        let spec = JobSpec::reference(Model::Vgg16, 1400);
        let jobs = [
            FluidJob::single_path(spec, fwd.links().to_vec()),
            FluidJob::single_path(spec, rev.links().to_vec()),
        ];
        let mut sim = FluidSimulator::new(&t, FluidConfig::fair(), &jobs);
        assert!(sim.run_until_iterations(4, Dur::from_secs(3)));
        let solo = spec.iteration_time_at(LINE).as_millis_f64();
        for j in 0..2 {
            let got = median_ms(&sim, j, 0);
            assert!((got - solo).abs() < 0.5, "job {j}: {got:.2} vs {solo:.2}");
        }
    }

    #[test]
    fn link_utilization_reflects_allocation() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let (mut sim, t) = two_job_setup(spec, spec, FluidConfig::fair());
        let bottleneck = t
            .node_by_name("tor-left")
            .and_then(|n| {
                t.out_links(n)
                    .iter()
                    .copied()
                    .find(|&l| t.node(t.link(l).dst).name == "tor-right")
            })
            .expect("dumbbell bottleneck");
        // During compute: idle.
        sim.run_for(Dur::from_millis(10));
        assert_eq!(sim.link_utilization(bottleneck), 0.0);
        // Mid-overlap: both jobs communicating → fully utilized.
        sim.run_for(Dur::from_millis(150)); // compute ends at 142.6 ms
        let u = sim.link_utilization(bottleneck);
        assert!((u - 1.0).abs() < 1e-9, "contended utilization {u}");
    }

    #[test]
    fn gate_next_release_math() {
        let g = Gate {
            offset: Dur::from_millis(30),
            period: Dur::from_millis(100),
        };
        let t = |ms: u64| Time::from_nanos(ms * 1_000_000);
        assert_eq!(g.next_release(t(0)), t(30));
        assert_eq!(g.next_release(t(30)), t(30));
        assert_eq!(g.next_release(t(31)), t(130));
        assert_eq!(g.next_release(t(130)), t(130));
        assert_eq!(g.next_release(t(999)), t(1030));
    }

    /// An observed gated run records phase transitions, solver passes,
    /// alloc-tagged rate changes, and gate releases.
    #[test]
    fn recorder_captures_fluid_events() {
        use telemetry::BufferRecorder;
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let period = spec.iteration_time_at(LINE);
        let comm = spec.comm_time_at(LINE);
        let compute = spec.compute_time();
        let gates = vec![
            None,
            Some(Gate {
                offset: compute + comm,
                period,
            }),
        ];
        let cfg = FluidConfig {
            gates,
            ..FluidConfig::fair()
        };
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let jobs = [
            FluidJob::single_path(spec, path(0)),
            FluidJob::single_path(spec, path(1)),
        ];
        let mut rec = BufferRecorder::new();
        let mut sim = FluidSimulator::with_recorder(&t, cfg, &jobs, &mut rec);
        assert!(sim.run_until_iterations(4, Dur::from_secs(3)));
        drop(sim);
        let kinds: std::collections::BTreeSet<&str> =
            rec.events().iter().map(|e| e.event.kind()).collect();
        for k in [
            "phase_enter",
            "phase_exit",
            "solver_iteration",
            "rate_change",
            "gate_release",
        ] {
            assert!(kinds.contains(k), "missing {k} in {kinds:?}");
        }
        let m = rec.metrics();
        assert!(m.counter_total("solver_iterations_total") > 0);
        assert!(m.counter("gate_releases_total", "job=1") > 0);
        assert!(m.counter("rate_changes_total", "flow=0,state=alloc") > 0);
        assert!(rec.counts()["fluid_allocations_total"] > 0);
        assert!(rec.spans().contains_key("netsim.fluid"));
    }

    /// The incremental active index and skip-unchanged solver must stay
    /// equivalent to a from-scratch scan + reallocation at every slice
    /// boundary of a contended, gated, multi-policy run.
    #[test]
    fn incremental_allocation_matches_reference_throughout() {
        let spec_a = JobSpec::reference(Model::Vgg19, 1200);
        let spec_b = JobSpec::reference(Model::Vgg16, 1400);
        for policy in [
            SharingPolicy::MaxMin,
            SharingPolicy::Weighted(vec![2.0, 1.0]),
            SharingPolicy::Priority(vec![1, 0]),
        ] {
            let cfg = FluidConfig {
                policy,
                ..FluidConfig::fair()
            };
            let (mut sim, _t) = two_job_setup(spec_a, spec_b, cfg);
            for _ in 0..200 {
                sim.run_for(Dur::from_millis(7));
                if let Some(div) = sim.debug_max_rate_divergence() {
                    assert!(div <= 1.0, "rate divergence {div} bits/s");
                }
            }
            assert!(sim.progress(0).completed() > 2);
        }
    }

    #[test]
    #[should_panic(expected = "fractions sum")]
    fn bad_fractions_rejected() {
        let d = dumbbell(1, LINE, LINE, Dur::ZERO);
        let spec = JobSpec::reference(Model::Vgg16, 1400);
        let job = FluidJob {
            spec,
            start_offset: Dur::ZERO,
            flows: vec![FlowSpec {
                links: vec![],
                fraction: 0.4,
            }],
            total_bytes_override: None,
            noise: None,
            depart_at: None,
        };
        let _ = FluidSimulator::new(&d.topology, FluidConfig::fair(), &[job]);
    }

    #[test]
    #[should_panic(expected = "weights length")]
    fn bad_policy_length_rejected() {
        let d = dumbbell(1, LINE, LINE, Dur::ZERO);
        let spec = JobSpec::reference(Model::Vgg16, 1400);
        let job = FluidJob::single_path(spec, vec![]);
        let cfg = FluidConfig {
            policy: SharingPolicy::Weighted(vec![1.0, 2.0]),
            ..FluidConfig::fair()
        };
        let _ = FluidSimulator::new(&d.topology, cfg, &[job]);
    }

    #[test]
    fn capacity_schedule_degrades_and_recovers() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let run = |schedules: Option<(Time, Time, f64)>| {
            let d = dumbbell(1, LINE, LINE, Dur::ZERO);
            let t = d.topology.clone();
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[0],
                    dst: d.right_hosts[0],
                    tag: 0,
                })
                .unwrap()
                .links()
                .to_vec();
            let mut cfg = FluidConfig::fair();
            if let Some((from, to, factor)) = schedules {
                cfg.link_schedules = (0..t.links().len())
                    .map(|l| {
                        if path.iter().any(|id| id.0 as usize == l) {
                            LinkSchedule::degraded(from, to, factor)
                        } else {
                            LinkSchedule::identity()
                        }
                    })
                    .collect();
            }
            let mut sim = FluidSimulator::new(&t, cfg, &[FluidJob::single_path(spec, path)]);
            assert!(sim.run_until_iterations(8, Dur::from_secs(20)));
            sim.progress(0)
                .iteration_times()
                .iter()
                .map(|x| x.as_millis_f64())
                .collect::<Vec<_>>()
        };
        let clean = run(None);
        // All-identity schedules take the scheduled path but change nothing.
        let identity = run(Some((
            Time::ZERO + Dur::from_millis(1),
            Time::ZERO + Dur::from_millis(2),
            1.0,
        )));
        assert_eq!(clean, identity, "identity schedules must be a no-op");
        let degraded = run(Some((
            Time::ZERO + Dur::from_millis(100),
            Time::ZERO + Dur::from_millis(700),
            0.25,
        )));
        let base = clean[0];
        let worst = degraded.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            worst > base * 1.3,
            "expected a degraded iteration above {base:.2} ms, worst {worst:.2} ms"
        );
        let last = *degraded.last().unwrap();
        assert!(
            (last - base).abs() < base * 0.05,
            "tail should recover to {base:.2} ms, got {last:.2} ms"
        );
    }

    #[test]
    fn departed_job_frees_the_link() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let (mut sim, _t) = {
            let d = dumbbell(2, LINE, LINE, Dur::ZERO);
            let t = d.topology.clone();
            let path = |i: usize| {
                t.route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .unwrap()
                .links()
                .to_vec()
            };
            let jobs = [
                FluidJob {
                    depart_at: Some(Time::ZERO + Dur::from_millis(400)),
                    ..FluidJob::single_path(spec, path(0))
                },
                FluidJob::single_path(spec, path(1)),
            ];
            (FluidSimulator::new(&t, FluidConfig::fair(), &jobs), t)
        };
        assert!(sim.run_until_iterations(8, Dur::from_secs(20)));
        assert!(sim.departed(0), "job 0 should have departed");
        assert!(sim.progress(0).completed() < 8, "leaver must not finish");
        // Once alone, the survivor's tail iterations run at the solo pace.
        let solo = spec.iteration_time_at(LINE).as_millis_f64();
        let times = sim.progress(1).iteration_times();
        let tail = times.last().unwrap().as_millis_f64();
        assert!(
            (tail - solo).abs() < solo * 0.03,
            "survivor tail {tail:.2} ms vs solo {solo:.2} ms"
        );
    }

    #[test]
    fn phase_noise_is_deterministic_and_varies() {
        let noise = PhaseNoise {
            seed: 5,
            job: 0,
            compute_jitter: 0.25,
            comm_jitter: 0.25,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
        };
        let run = || {
            let d = dumbbell(1, LINE, LINE, Dur::ZERO);
            let t = d.topology.clone();
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[0],
                    dst: d.right_hosts[0],
                    tag: 0,
                })
                .unwrap()
                .links()
                .to_vec();
            let job = FluidJob {
                noise: Some(noise),
                ..FluidJob::single_path(JobSpec::reference(Model::Vgg19, 1200), path)
            };
            let mut sim = FluidSimulator::new(&t, FluidConfig::fair(), &[job]);
            assert!(sim.run_until_iterations(6, Dur::from_secs(20)));
            sim.progress(0)
                .iteration_times()
                .iter()
                .map(|x| x.as_nanos())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded noise must be reproducible");
        let spread = a.iter().max().unwrap() - a.iter().min().unwrap();
        assert!(spread > 0, "jitter should vary iteration times");
    }

    /// run(0→T) ≡ run(0→t) + snapshot + restore + run(t→T), with noise,
    /// link-fault schedules (pending LinkChange events cross the barrier),
    /// and two contending jobs.
    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let noise = PhaseNoise {
            seed: 9,
            job: 0,
            compute_jitter: 0.2,
            comm_jitter: 0.2,
            straggler_prob: 0.1,
            straggler_factor: 1.8,
        };
        let build = || {
            let d = dumbbell(2, LINE, LINE, Dur::ZERO);
            let t = d.topology.clone();
            let path = |i: usize| {
                t.route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .unwrap()
                .links()
                .to_vec()
            };
            let spec = JobSpec::reference(Model::Vgg19, 1200);
            let jobs = [
                FluidJob {
                    noise: Some(noise),
                    ..FluidJob::single_path(spec, path(0))
                },
                FluidJob::single_path(spec, path(1)),
            ];
            let mut schedules = vec![LinkSchedule::identity(); t.links().len()];
            schedules[0] = LinkSchedule::degraded(
                Time::ZERO + Dur::from_millis(350),
                Time::ZERO + Dur::from_millis(500),
                0.5,
            );
            let cfg = FluidConfig {
                link_schedules: schedules,
                ..FluidConfig::fair()
            };
            FluidSimulator::new(&t, cfg, &jobs)
        };
        let stop = Time::ZERO + Dur::from_millis(800);
        let mut whole = build();
        whole.run_until(stop);

        let barrier = Time::ZERO + Dur::from_millis(300);
        let mut prefix = build();
        prefix.run_until(barrier);
        let snap = prefix.snapshot().expect("run_until leaves a barrier");
        assert_eq!(snap.taken_at(), barrier);
        let mut forked = FluidSimulator::restore(snap, NoopRecorder).expect("restore");
        forked.run_until(stop);

        assert_eq!(whole.now(), forked.now());
        for j in 0..2 {
            assert_eq!(
                whole.progress(j).iteration_times(),
                forked.progress(j).iteration_times(),
                "job {j}: iteration times diverged across snapshot/restore"
            );
            assert_eq!(
                whole.throughput_trace(j),
                forked.throughput_trace(j),
                "job {j}: throughput trace diverged across snapshot/restore"
            );
        }
    }

    /// Version mismatch and mid-event-barrier misuse surface as typed
    /// errors, never panics.
    #[test]
    fn snapshot_misuse_returns_typed_errors() {
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let (mut sim, _t) = two_job_setup(spec, spec, FluidConfig::fair());
        sim.run_until(Time::ZERO + Dur::from_millis(200));
        let snap = sim.snapshot().expect("barrier");

        let err = match FluidSimulator::restore(snap.clone().with_version(7), NoopRecorder) {
            Err(e) => e,
            Ok(_) => panic!("version mismatch accepted"),
        };
        assert_eq!(
            err,
            SnapshotError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: 7
            }
        );

        let err = match FluidSimulator::restore(snap.with_stale_event(), NoopRecorder) {
            Err(e) => e,
            Ok(_) => panic!("stale event accepted"),
        };
        match err {
            SnapshotError::MidEventBarrier { pending_at, now } => {
                assert!(pending_at <= now, "{pending_at:?} vs {now:?}")
            }
            other => panic!("wrong error: {other}"),
        }
    }
}
