//! Flow-level network simulation engines.
//!
//! Two engines share one purpose — measuring training-iteration times of
//! jobs contending on links — at two levels of realism:
//!
//! * [`rate`] — the **rate-based DCQCN engine**: a single bottleneck link
//!   with a RED/ECN marking queue, stepped at microsecond resolution, with
//!   every flow running the full DCQCN reaction-point state machine from
//!   the [`dcqcn`] crate. Congestion behaviour (fair sharing, the
//!   unfairness knob `T`, the adaptive `R_AI` variant) is *emergent*, which
//!   is what reproduces the paper's §2 observation: unfairness slides the
//!   phases of compatible jobs apart. Drives Fig. 1, Fig. 2, Table 1 and
//!   the §4.i experiments.
//!
//! * [`fluid`] — the **event-driven fluid engine**: instantaneous
//!   (weighted) max-min or strict-priority bandwidth allocation over an
//!   arbitrary [`topology::Topology`], advancing directly from flow event
//!   to flow event. Idealized and fast; drives the mechanism experiments
//!   (§4.ii priority queues, §4.iii flow scheduling via comm-phase gates)
//!   and the cluster-scale scheduler studies (§5).
//!
//! A third engine, [`packet`], simulates DCQCN **per packet** (paced
//! senders, per-packet ECN marking, CNP round trips) and serves as the
//! ground truth the fluid abstraction is validated against on short
//! scenarios.
//!
//! The shared allocation mathematics (progressive-filling max-min, weighted
//! variant, strict priorities) lives in [`alloc`] as pure, independently
//! tested functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod fluid;
pub mod packet;
pub mod rate;
pub mod shard;
pub mod snapshot;
