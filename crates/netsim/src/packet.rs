//! Packet-level validation engine.
//!
//! The [`crate::rate`] engine treats flows as fluids; this module is the
//! ground truth it is validated against: an event-driven **per-packet**
//! simulation of DCQCN senders over one bottleneck queue. Every packet is
//! an event — paced out of the sender at the reaction point's current
//! rate, enqueued (and possibly ECN-marked against the instantaneous queue
//! depth), serviced at line rate, and acknowledged; marked arrivals
//! produce CNPs after a propagation delay, paced per flow by the
//! notification point.
//!
//! It is 3–4 orders of magnitude more expensive per simulated second than
//! the fluid engine (a 50 Gbps flow is ~6M packets/s), so it runs the
//! *validation* scenarios — short phase-level runs asserting that fair
//! flows split the link evenly, that the `T` knob biases the split the
//! same way, and that job iteration times agree with the fluid engine
//! within a few percent (see `tests/packet_validation.rs`).
//!
//! For paper-scale validation runs the engine can **batch packet trains**:
//! with [`PacketSimConfig::train_packets`] > 1, consecutive packets of one
//! flow coalesce into a single `SenderWake`/`Dequeue` event pair carrying N
//! MTUs, with the per-packet marking coin flips, delivery timestamps, and
//! CNP pacing decisions still evaluated packet-by-packet inside the event.
//! Trains are capped so no CNP pacing deadline is outrun (one train's
//! airtime never exceeds the NP's CNP interval), and `train_packets = 1`
//! reproduces the per-packet engine event-for-event and bit-for-bit.

use crate::snapshot::{
    check_barrier, check_version, SnapshotError, Snapshottable, SNAPSHOT_VERSION,
};
use dcqcn::{CcAlgorithm, CcVariant, DcqcnParams, NotificationPoint, RedMarker, SignalLoss};
use eventsim::{queue::reference, EventQueue, Rng, ScheduledEvent};
use simtime::{Bandwidth, Dur, Time};
use telemetry::{CcState, Event, NoopRecorder, Phase, Recorder, SpanTracker};
use topology::LinkSchedule;
use workload::{JobProgress, JobSpec, PhaseNoise};

/// Configuration of the packet engine.
#[derive(Debug, Clone)]
pub struct PacketSimConfig {
    /// Bottleneck link capacity.
    pub capacity: Bandwidth,
    /// Packet size (RoCE MTU).
    pub mtu_bytes: u32,
    /// One-way propagation delay (sender→switch and switch→receiver each;
    /// CNPs travel one hop back).
    pub prop_delay: Dur,
    /// ECN marking curve, evaluated against the instantaneous queue depth
    /// at enqueue.
    pub marker: RedMarker,
    /// Base DCQCN parameters.
    pub base_params: DcqcnParams,
    /// Marking RNG seed (packet marking is genuinely per-packet random
    /// here — the packet engine is where that physics lives).
    pub seed: u64,
    /// Restart flows at line rate on each communication phase.
    pub restart_on_phase: bool,
    /// Packets coalesced per sender/dequeue event (a "packet train").
    /// `1` is the exact per-packet engine; larger values trade event count
    /// for a bounded marking/pacing approximation (capped at
    /// [`MAX_TRAIN_PACKETS`], and per train to one CNP interval of
    /// airtime).
    pub train_packets: u32,
    /// Which event-queue implementation drives the simulation.
    pub queue: QueueBackend,
    /// Fault injection: a time-varying multiplier on the bottleneck
    /// capacity. Service times are sampled at each train start, so a
    /// degradation stretches serialization from the next train onwards.
    /// `None` is the exact unperturbed engine.
    pub capacity_schedule: Option<LinkSchedule>,
    /// Fault injection: probabilistic loss of ECN marks (between CP and
    /// NP) and CNPs (between NP and RP), rolled on a dedicated chaos RNG
    /// that is never consulted when `None`.
    pub signal_loss: Option<SignalLoss>,
}

/// Upper bound on [`PacketSimConfig::train_packets`] (the per-train ECN
/// mark bitmask is a `u64`).
pub const MAX_TRAIN_PACKETS: u32 = 64;

impl Default for PacketSimConfig {
    fn default() -> PacketSimConfig {
        PacketSimConfig {
            capacity: Bandwidth::from_gbps(50),
            mtu_bytes: 1024,
            prop_delay: Dur::from_micros(2),
            marker: RedMarker::default_50g(),
            base_params: DcqcnParams::testbed_default(),
            seed: 1,
            restart_on_phase: true,
            train_packets: 1,
            queue: QueueBackend::default(),
            capacity_schedule: None,
            signal_loss: None,
        }
    }
}

/// Event-queue backend selector, for differential determinism checks: the
/// timing wheel is the production queue; the reference heap
/// ([`eventsim::queue::reference`]) is the oracle it must match
/// event-for-event (see the wheel-swap gate in `scripts/check.sh`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical timing wheel (`eventsim::EventQueue`), the default.
    #[default]
    TimingWheel,
    /// Binary-heap oracle (`eventsim::queue::reference::EventQueue`).
    ReferenceHeap,
}

/// The two queue implementations behind one seam, so a config knob can
/// swap them without making the simulator generic over the queue type.
#[derive(Clone)]
enum Queue<E: Clone> {
    Wheel(EventQueue<E>),
    Heap(reference::EventQueue<E>),
}

impl<E: Clone> Queue<E> {
    fn new(backend: QueueBackend) -> Queue<E> {
        match backend {
            QueueBackend::TimingWheel => Queue::Wheel(EventQueue::new()),
            QueueBackend::ReferenceHeap => Queue::Heap(reference::EventQueue::new()),
        }
    }

    fn now(&self) -> Time {
        match self {
            Queue::Wheel(q) => q.now(),
            Queue::Heap(q) => q.now(),
        }
    }

    fn peek_time(&self) -> Option<Time> {
        match self {
            Queue::Wheel(q) => q.peek_time(),
            Queue::Heap(q) => q.peek_time(),
        }
    }

    fn schedule_at(&mut self, at: Time, event: E) {
        match self {
            Queue::Wheel(q) => q.schedule_at(at, event),
            Queue::Heap(q) => q.schedule_at(at, event),
        }
    }

    fn pop_until(&mut self, horizon: Time) -> Option<ScheduledEvent<E>> {
        match self {
            Queue::Wheel(q) => q.pop_until(horizon),
            Queue::Heap(q) => q.pop_until(horizon),
        }
    }
}

/// A job in the packet simulation.
#[derive(Debug, Clone)]
pub struct PacketJob {
    /// The training job.
    pub spec: JobSpec,
    /// Its congestion control (DCQCN variants only).
    pub variant: CcVariant,
    /// When the job's first compute phase starts. Staggered offsets are
    /// how paper-style rotation schedules are expressed (mirrors
    /// [`crate::rate::RateJob::start_offset`]).
    pub start_offset: Dur,
    /// Fault injection: per-iteration phase jitter and stragglers.
    /// `None` keeps the unperturbed iteration plan.
    pub noise: Option<PhaseNoise>,
    /// Fault injection: the job leaves the cluster at the first compute
    /// instant at or after this time (an in-flight communication phase
    /// finishes first).
    pub depart_at: Option<Time>,
}

impl PacketJob {
    /// A job starting at t = 0 with the given variant.
    pub fn new(spec: JobSpec, variant: CcVariant) -> PacketJob {
        PacketJob {
            spec,
            variant,
            start_offset: Dur::ZERO,
            noise: None,
            depart_at: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A job's compute deadline may have passed.
    Poll(usize),
    /// Flow `i` may emit its next packet.
    SenderWake(usize),
    /// The queue head finishes transmission (delivery at receiver after
    /// prop delay is folded in).
    Dequeue,
    /// A CNP reaches flow `i`'s sender.
    Cnp(usize),
}

#[derive(Clone)]
struct FlowState {
    progress: JobProgress,
    /// The flow's live congestion controller, built from its
    /// [`CcVariant`] spec (mark-reactive family only — see the
    /// constructor's delay-based rejection).
    rp: Box<dyn CcAlgorithm>,
    /// Whether the controller consumes communication-phase progress
    /// ([`CcVariant::wants_progress`]).
    wants_progress: bool,
    np: NotificationPoint,
    /// Bytes of the current phase not yet emitted as packets.
    to_send: f64,
    /// Last instant the RP's clocks were advanced.
    rp_clock: Time,
    /// Bytes sent since the last RP advance (feeds the byte counter).
    sent_since_advance: f64,
    /// Whether a SenderWake is already scheduled.
    wake_armed: bool,
    /// Whether an `Ev::Poll` is already scheduled (prevents redundant
    /// polls from the two dequeue-side scheduling sites).
    poll_armed: bool,
    /// Packets the next SenderWake may emit, planned when the wake was
    /// armed (the wake is paced for exactly this many serialization gaps).
    pending_train: u32,
    /// Delivered bytes (for goodput accounting).
    delivered: f64,
    /// Fault injection: pending departure deadline, if any.
    depart_at: Option<Time>,
    /// The job has left the cluster (no further events are armed).
    departed: bool,
}

/// A contiguous run of one flow's packets occupying the switch FIFO.
#[derive(Clone)]
struct Train {
    flow: usize,
    packets: u32,
    /// Bit `j` set = packet `j` of the train was ECN-marked at enqueue.
    marked: u64,
}

/// The per-packet simulator over one bottleneck link.
pub struct PacketSimulator<R: Recorder = NoopRecorder> {
    cfg: PacketSimConfig,
    events: Queue<Ev>,
    flows: Vec<FlowState>,
    rng: Rng,
    /// Queue occupancy in bytes (instantaneous, at the switch).
    queue_bytes: u64,
    /// FIFO of packet trains in the queue (each train is ≥ 1 packet of
    /// one flow; `train_packets = 1` makes every train a single packet).
    fifo: std::collections::VecDeque<Train>,
    /// Whether the link is currently transmitting a packet.
    busy: bool,
    packets_sent: u64,
    packets_marked: u64,
    cnps_sent: u64,
    rec: R,
    /// Typed-span emission state (empty when `R` is disabled).
    spans: SpanTracker,
    events_processed: u64,
    /// Dedicated fault RNG: only ever drawn when `cfg.signal_loss` has a
    /// positive probability, so the mark stream is untouched otherwise.
    chaos_rng: Rng,
    /// Last capacity multiplier observed (for change telemetry).
    last_cap_mult: f64,
}

impl PacketSimulator {
    /// Builds the simulator without telemetry.
    ///
    /// # Panics
    /// Panics if `jobs` is empty or a job uses the delay-based variant
    /// (the packet engine models DCQCN's ECN/CNP path).
    pub fn new(cfg: PacketSimConfig, jobs: &[PacketJob]) -> PacketSimulator {
        PacketSimulator::with_recorder(cfg, jobs, NoopRecorder)
    }
}

impl<R: Recorder> PacketSimulator<R> {
    /// Builds the simulator with a telemetry recorder.
    ///
    /// # Panics
    /// Panics if `jobs` is empty or a job uses the delay-based variant
    /// (the packet engine models DCQCN's ECN/CNP path).
    pub fn with_recorder(
        cfg: PacketSimConfig,
        jobs: &[PacketJob],
        mut rec: R,
    ) -> PacketSimulator<R> {
        assert!(!jobs.is_empty(), "PacketSimulator: no jobs");
        assert!(
            (1..=MAX_TRAIN_PACKETS).contains(&cfg.train_packets),
            "PacketSimulator: train_packets must be in 1..={MAX_TRAIN_PACKETS}"
        );
        let mut events = Queue::new(cfg.queue);
        let flows: Vec<FlowState> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                assert!(
                    !j.variant.is_delay_based(),
                    "PacketSimulator: DCQCN variants only"
                );
                let params = cfg.base_params.with_line_rate(cfg.capacity);
                let progress = JobProgress::with_noise(
                    j.spec,
                    Time::ZERO + j.start_offset,
                    j.spec.comm_bytes().as_bytes() as f64,
                    j.noise,
                );
                events.schedule_at(
                    progress.next_self_transition().expect("starts computing"),
                    Ev::Poll(i),
                );
                FlowState {
                    progress,
                    rp: j.variant.build(params),
                    wants_progress: j.variant.wants_progress(),
                    np: NotificationPoint::new(cfg.base_params.cnp_interval),
                    to_send: 0.0,
                    rp_clock: Time::ZERO,
                    sent_since_advance: 0.0,
                    wake_armed: false,
                    poll_armed: true,
                    pending_train: 1,
                    delivered: 0.0,
                    depart_at: j.depart_at,
                    departed: false,
                }
            })
            .collect();
        let mut spans = SpanTracker::new::<R>(jobs.len());
        if R::ENABLED {
            for (i, j) in jobs.iter().enumerate() {
                // One shared bottleneck, like the rate engine: announce it
                // so offline attribution can blame contention on a link.
                rec.record(
                    Time::ZERO + j.start_offset,
                    Event::JobPath {
                        job: i as u32,
                        links: vec![0],
                    },
                );
                spans.enter(
                    &mut rec,
                    Time::ZERO + j.start_offset,
                    i as u32,
                    Phase::Compute,
                    0,
                );
                rec.record(
                    Time::ZERO + j.start_offset,
                    Event::PhaseEnter {
                        job: i as u32,
                        phase: Phase::Compute,
                        iteration: 0,
                    },
                );
            }
        }
        let rng = Rng::new(cfg.seed);
        let chaos_rng = Rng::new(cfg.signal_loss.map_or(0, |l| l.seed));
        PacketSimulator {
            cfg,
            events,
            flows,
            rng,
            queue_bytes: 0,
            fifo: std::collections::VecDeque::new(),
            busy: false,
            packets_sent: 0,
            packets_marked: 0,
            cnps_sent: 0,
            rec,
            spans,
            events_processed: 0,
            chaos_rng,
            last_cap_mult: 1.0,
        }
    }

    /// Whether flow `i` has departed the cluster.
    pub fn departed(&self, i: usize) -> bool {
        self.flows[i].departed
    }

    /// The bottleneck capacity in bps as of `now`, honouring any fault
    /// schedule. Emits a `LinkCapacity` event when the observed multiplier
    /// changes (capacity is sampled at service start, not on a timer, so
    /// the event lands at the first transmission under the new capacity).
    fn effective_capacity_bps(&mut self, now: Time) -> f64 {
        let base = self.cfg.capacity.as_bps_f64();
        let Some(schedule) = &self.cfg.capacity_schedule else {
            return base;
        };
        let mult = schedule.multiplier_at(now);
        if mult != self.last_cap_mult {
            self.last_cap_mult = mult;
            if R::ENABLED {
                self.rec.record(
                    now,
                    Event::LinkCapacity {
                        link: 0,
                        fraction: mult,
                    },
                );
            }
        }
        if mult == 1.0 {
            base
        } else {
            base * mult
        }
    }

    /// The telemetry recorder, for post-run inspection.
    pub fn recorder(&mut self) -> &mut R {
        &mut self.rec
    }

    /// Consumes the simulator and returns the attached recorder (how a
    /// shard's fork is recovered for the ordered merge).
    pub fn into_recorder(self) -> R {
        self.rec
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.events.now()
    }

    /// Job bookkeeping for flow `i`.
    pub fn progress(&self, i: usize) -> &JobProgress {
        &self.flows[i].progress
    }

    /// Number of jobs (flows) in the simulation (including departed ones).
    pub fn num_jobs(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered for flow `i`.
    pub fn delivered(&self, i: usize) -> f64 {
        self.flows[i].delivered
    }

    /// `(sent, marked)` packet totals.
    pub fn packet_counts(&self) -> (u64, u64) {
        (self.packets_sent, self.packets_marked)
    }

    /// CNPs the notification points emitted.
    pub fn cnps_sent(&self) -> u64 {
        self.cnps_sent
    }

    /// Events processed so far (the cost batching exists to reduce).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn advance_rp(&mut self, i: usize, now: Time) {
        let f = &mut self.flows[i];
        let dt = now.saturating_since(f.rp_clock);
        if !dt.is_zero() {
            if f.wants_progress && f.progress.is_communicating() {
                let total = f.progress.comm_bytes_per_iteration();
                let sent = total - f.progress.remaining_bytes();
                f.rp.on_phase_progress(sent / total);
            }
            f.rp.advance(dt, f.sent_since_advance, Dur::ZERO);
            f.sent_since_advance = 0.0;
            f.rp_clock = now;
        }
    }

    fn arm_sender(&mut self, i: usize, now: Time) {
        if self.flows[i].wake_armed || self.flows[i].to_send < 1.0 {
            return;
        }
        self.advance_rp(i, now);
        let mtu = self.cfg.mtu_bytes as f64;
        let f = &mut self.flows[i];
        // Pacing: the next packet leaves one serialization interval (at
        // the *controlled* rate) after now.
        let gap_secs = mtu * 8.0 / f.rp.rate().max(1.0);
        // Plan the train the wake will emit: bounded by the config knob,
        // by what the phase still needs, and — so a rate cut is never
        // outrun mid-train — by one CNP pacing interval of airtime at the
        // current rate. A rate change between arm and wake keeps the
        // planned schedule (pacing error of one train, exactly as a
        // single packet's pending wake kept its schedule before).
        let mut n = self.cfg.train_packets as u64;
        if n > 1 {
            let packets_left = (f.to_send / mtu).ceil() as u64;
            n = n.min(packets_left.max(1));
            let airtime_cap = (self.cfg.base_params.cnp_interval.as_secs_f64() / gap_secs) as u64;
            n = n.min(airtime_cap.max(1));
        }
        let gap = Dur::from_secs_f64(gap_secs * n as f64).max(Dur::NANOSECOND);
        f.pending_train = n as u32;
        f.wake_armed = true;
        self.events.schedule_at(now + gap, Ev::SenderWake(i));
    }

    /// Schedules an `Ev::Poll` for flow `i` unless one is already pending.
    /// The poll handler re-arms if it fires before the actual transition,
    /// so suppressing a redundant poll never loses a deadline.
    fn arm_poll(&mut self, i: usize, at: Time) {
        if self.flows[i].poll_armed {
            return;
        }
        self.flows[i].poll_armed = true;
        self.events.schedule_at(at, Ev::Poll(i));
    }

    fn start_service_if_idle(&mut self, now: Time) {
        if self.busy {
            return;
        }
        let Some(front) = self.fifo.front() else {
            return;
        };
        self.busy = true;
        let packets = front.packets;
        let bps = self.effective_capacity_bps(now);
        let pkt_service = Dur::from_secs_f64(self.cfg.mtu_bytes as f64 * 8.0 / bps);
        let service = Dur::from_nanos(pkt_service.as_nanos() * packets as u64);
        self.events.schedule_at(now + service, Ev::Dequeue);
    }

    fn handle(&mut self, ev: Ev, now: Time) {
        match ev {
            Ev::Poll(i) => {
                self.flows[i].poll_armed = false;
                if self.flows[i].departed {
                    return;
                }
                // Fault injection: a due departure takes effect at the
                // first compute-side poll (in-flight communication always
                // finishes). The flow arms no further events.
                if let Some(d) = self.flows[i].depart_at {
                    if now >= d && !self.flows[i].progress.is_communicating() {
                        self.flows[i].departed = true;
                        if R::ENABLED {
                            self.rec.record(now, Event::JobDepart { job: i as u32 });
                        }
                        return;
                    }
                }
                if self.flows[i].progress.poll(now) {
                    let f = &mut self.flows[i];
                    f.to_send = f.progress.remaining_bytes();
                    if self.cfg.restart_on_phase {
                        f.rp.restart();
                        f.np.reset();
                    }
                    if R::ENABLED {
                        let f = &self.flows[i];
                        let iter = f.progress.completed() as u64;
                        self.rec.record(
                            now,
                            Event::PhaseExit {
                                job: i as u32,
                                phase: Phase::Compute,
                                iteration: iter,
                            },
                        );
                        self.spans
                            .exit(&mut self.rec, now, i as u32, Phase::Compute, iter);
                        self.spans
                            .enter(&mut self.rec, now, i as u32, Phase::Communicate, iter);
                        self.rec.record(
                            now,
                            Event::PhaseEnter {
                                job: i as u32,
                                phase: Phase::Communicate,
                                iteration: iter,
                            },
                        );
                        if self.cfg.restart_on_phase {
                            self.rec.record(
                                now,
                                Event::RateChange {
                                    flow: i as u32,
                                    bps: f.rp.rate(),
                                    state: CcState::Restart,
                                },
                            );
                        }
                    }
                    self.arm_sender(i, now);
                } else if let Some(t) = self.flows[i].progress.next_self_transition() {
                    // Premature poll (its twin was suppressed): re-arm at
                    // the real deadline.
                    self.arm_poll(i, t.max(now));
                }
            }
            Ev::SenderWake(i) => {
                self.flows[i].wake_armed = false;
                if !self.flows[i].progress.is_communicating() || self.flows[i].to_send < 1.0 {
                    return;
                }
                // Emit the planned train into the queue, marking each
                // packet against the instantaneous depth as it lands.
                let mtu = self.cfg.mtu_bytes as f64;
                let planned = self.flows[i].pending_train.max(1);
                let mut emitted = 0u32;
                let mut mask = 0u64;
                while emitted < planned && self.flows[i].to_send >= 1.0 {
                    let payload = mtu.min(self.flows[i].to_send);
                    self.flows[i].to_send -= payload;
                    self.flows[i].sent_since_advance += payload;
                    let p_mark = self.cfg.marker.mark_probability(self.queue_bytes as f64);
                    let mut marked = self.rng.bernoulli(p_mark);
                    // Fault injection: the mark may be stripped in flight
                    // and is then invisible everywhere downstream. The
                    // chaos RNG is only consulted for marked packets.
                    if marked {
                        match &self.cfg.signal_loss {
                            Some(l) if l.mark_loss > 0.0 => {
                                marked = !self.chaos_rng.bernoulli(l.mark_loss);
                            }
                            _ => {}
                        }
                    }
                    self.packets_sent += 1;
                    if marked {
                        self.packets_marked += 1;
                        mask |= 1 << emitted;
                        if R::ENABLED {
                            self.rec.record(now, Event::EcnMark { flow: i as u32 });
                            self.rec.record(
                                now,
                                Event::QueueDepth {
                                    link: 0,
                                    bytes: self.queue_bytes as f64,
                                },
                            );
                        }
                    }
                    self.queue_bytes += payload as u64;
                    emitted += 1;
                }
                if emitted > 0 {
                    self.fifo.push_back(Train {
                        flow: i,
                        packets: emitted,
                        marked: mask,
                    });
                    self.start_service_if_idle(now);
                }
                self.arm_sender(i, now);
            }
            Ev::Dequeue => {
                self.busy = false;
                let train = self.fifo.pop_front().expect("dequeue from empty FIFO");
                let i = train.flow;
                let mtu = self.cfg.mtu_bytes as f64;
                self.queue_bytes = self
                    .queue_bytes
                    .saturating_sub(mtu as u64 * train.packets as u64);
                self.start_service_if_idle(now);
                // Deliver packet-by-packet: packet `j` left the wire
                // `packets - 1 - j` serialization quanta before `now`, and
                // reaches the receiver a prop delay later; the NP judges
                // each marked arrival at its own timestamp.
                let bps = self.effective_capacity_bps(now);
                let pkt_ns = Dur::from_secs_f64(mtu * 8.0 / bps).as_nanos();
                for j in 0..train.packets {
                    let lag = pkt_ns * (train.packets - 1 - j) as u64;
                    let exit = Time::from_nanos(now.as_nanos().saturating_sub(lag));
                    let deliver_at = exit + self.cfg.prop_delay;
                    let marked = train.marked >> j & 1 == 1;
                    let f = &mut self.flows[i];
                    f.delivered += mtu.min(f.progress.remaining_bytes().max(mtu));
                    if marked && f.np.on_marked_arrival(deliver_at) {
                        self.cnps_sent += 1;
                        if R::ENABLED {
                            self.rec.record(now, Event::CnpSent { flow: i as u32 });
                        }
                        // Fault injection: the CNP may be dropped on the
                        // reverse path — the NP has still consumed its
                        // pacing slot, but the RP never reacts.
                        let cnp_lost = match &self.cfg.signal_loss {
                            Some(l) if l.cnp_loss > 0.0 => self.chaos_rng.bernoulli(l.cnp_loss),
                            _ => false,
                        };
                        if !cnp_lost {
                            // CNP travels back one hop (never into the past:
                            // early packets of a long train may have
                            // delivered before `now`).
                            self.events.schedule_at(
                                (deliver_at + self.cfg.prop_delay).max(now),
                                Ev::Cnp(i),
                            );
                        }
                    }
                    let finished = f.progress.deliver(mtu, deliver_at.max(now)).is_some();
                    if finished {
                        f.to_send = 0.0;
                        f.rp.on_iteration_end();
                        let poll_at = f
                            .progress
                            .next_self_transition()
                            .expect("job computes after an iteration");
                        self.arm_poll(i, poll_at.max(now));
                    } else if !f.progress.is_communicating() {
                        // Pipelined segment gap.
                        let poll_at = f
                            .progress
                            .next_self_transition()
                            .expect("job computes between segments");
                        self.arm_poll(i, poll_at.max(now));
                    }
                    if R::ENABLED && (finished || !self.flows[i].progress.is_communicating()) {
                        let done = self.flows[i].progress.completed() as u64;
                        let exited = if finished { done - 1 } else { done };
                        self.rec.record(
                            now,
                            Event::PhaseExit {
                                job: i as u32,
                                phase: Phase::Communicate,
                                iteration: exited,
                            },
                        );
                        self.spans
                            .exit(&mut self.rec, now, i as u32, Phase::Communicate, exited);
                        self.spans
                            .enter(&mut self.rec, now, i as u32, Phase::Compute, done);
                        self.rec.record(
                            now,
                            Event::PhaseEnter {
                                job: i as u32,
                                phase: Phase::Compute,
                                iteration: done,
                            },
                        );
                    }
                }
            }
            Ev::Cnp(i) => {
                self.advance_rp(i, now);
                self.flows[i].rp.on_cnp();
                if R::ENABLED {
                    self.rec.record(now, Event::CnpReceived { flow: i as u32 });
                    self.rec.record(
                        now,
                        Event::RateChange {
                            flow: i as u32,
                            bps: self.flows[i].rp.rate(),
                            state: CcState::Cut,
                        },
                    );
                }
                // Rate changed: the pending wake keeps its schedule (pacing
                // error of one packet), new wakes use the new rate.
            }
        }
    }

    /// Runs until `t_stop`.
    pub fn run_until(&mut self, t_stop: Time) {
        let wall = if R::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let before = self.events_processed;
        while let Some(e) = self.events.pop_until(t_stop) {
            let now = e.at;
            self.events_processed += 1;
            self.handle(e.event, now);
        }
        if let Some(start) = wall {
            let delta = self.events_processed - before;
            self.rec.span("netsim.packet", start.elapsed(), delta);
            self.rec.count("packet_events_total", delta);
        }
    }

    /// Runs until every job completed `n` iterations or `max_span`
    /// elapses; returns `true` on success.
    pub fn run_until_iterations(&mut self, n: usize, max_span: Dur) -> bool {
        let wall = if R::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let before = self.events_processed;
        let stop = self.now() + max_span;
        let reached = |flows: &[FlowState]| {
            flows
                .iter()
                .all(|f| f.departed || f.progress.completed() >= n)
        };
        let done = loop {
            if reached(&self.flows) {
                break true;
            }
            let Some(e) = self.events.pop_until(stop) else {
                break reached(&self.flows);
            };
            let now = e.at;
            self.events_processed += 1;
            self.handle(e.event, now);
        };
        if let Some(start) = wall {
            let delta = self.events_processed - before;
            self.rec.span("netsim.packet", start.elapsed(), delta);
            self.rec.count("packet_events_total", delta);
        }
        done
    }

    /// Injects (or clears) per-iteration phase noise for flow `i`, taking
    /// effect at its next iteration rollover.
    pub fn set_noise(&mut self, i: usize, noise: Option<PhaseNoise>) {
        self.flows[i].progress.set_noise(noise);
    }

    /// Schedules flow `i` to leave at the first compute-side poll at/after
    /// `at` (or cancels a pending departure).
    pub fn set_depart_at(&mut self, i: usize, at: Option<Time>) {
        self.flows[i].depart_at = at;
    }

    /// Replaces the bottleneck's capacity schedule from now on (sampled at
    /// each train's service start).
    pub fn set_capacity_schedule(&mut self, schedule: Option<LinkSchedule>) {
        self.cfg.capacity_schedule = schedule;
    }

    /// Replaces the signal-loss profile and reseeds the chaos RNG from it,
    /// exactly as construction would have.
    pub fn set_signal_loss(&mut self, loss: Option<SignalLoss>) {
        self.cfg.signal_loss = loss;
        self.chaos_rng = Rng::new(loss.map_or(0, |l| l.seed));
    }
}

/// Complete captured state of a [`PacketSimulator`] at an event barrier:
/// the full timing-wheel (or heap) contents including the FIFO tie-break
/// counter, switch FIFO and queue depth, per-flow RP/NP state, RNG and
/// chaos stream positions, and span-tracker state. Recorder-free.
#[derive(Clone)]
pub struct PacketSnapshot {
    version: u32,
    cfg: PacketSimConfig,
    events: Queue<Ev>,
    flows: Vec<FlowState>,
    rng: Rng,
    queue_bytes: u64,
    fifo: std::collections::VecDeque<Train>,
    busy: bool,
    packets_sent: u64,
    packets_marked: u64,
    cnps_sent: u64,
    spans: SpanTracker,
    events_processed: u64,
    chaos_rng: Rng,
    last_cap_mult: f64,
}

impl PacketSnapshot {
    /// The simulated instant the snapshot was taken at.
    pub fn taken_at(&self) -> Time {
        self.events.now()
    }

    /// Overrides the version tag — test hook for the
    /// [`SnapshotError::VersionMismatch`] path.
    #[doc(hidden)]
    pub fn with_version(mut self, version: u32) -> PacketSnapshot {
        self.version = version;
        self
    }

    /// Corrupts the snapshot by scheduling an event at its own clock, the
    /// state a mid-event capture would leave behind — test hook for the
    /// [`SnapshotError::MidEventBarrier`] path.
    #[doc(hidden)]
    pub fn with_stale_event(mut self) -> PacketSnapshot {
        let at = self.events.now();
        self.events.schedule_at(at, Ev::Dequeue);
        self
    }
}

impl<R: Recorder> Snapshottable<R> for PacketSimulator<R> {
    type Snapshot = PacketSnapshot;

    fn snapshot(&self) -> Result<PacketSnapshot, SnapshotError> {
        check_barrier(self.events.peek_time(), self.events.now())?;
        Ok(PacketSnapshot {
            version: SNAPSHOT_VERSION,
            cfg: self.cfg.clone(),
            events: self.events.clone(),
            flows: self.flows.clone(),
            rng: self.rng.clone(),
            queue_bytes: self.queue_bytes,
            fifo: self.fifo.clone(),
            busy: self.busy,
            packets_sent: self.packets_sent,
            packets_marked: self.packets_marked,
            cnps_sent: self.cnps_sent,
            spans: self.spans.clone(),
            events_processed: self.events_processed,
            chaos_rng: self.chaos_rng.clone(),
            last_cap_mult: self.last_cap_mult,
        })
    }

    fn restore(snap: PacketSnapshot, rec: R) -> Result<PacketSimulator<R>, SnapshotError> {
        check_version(snap.version)?;
        check_barrier(snap.events.peek_time(), snap.events.now())?;
        if snap.flows.is_empty() {
            return Err(SnapshotError::Malformed { what: "no flows" });
        }
        if snap.busy && snap.fifo.is_empty() {
            return Err(SnapshotError::Malformed {
                what: "link busy with an empty FIFO",
            });
        }
        Ok(PacketSimulator {
            cfg: snap.cfg,
            events: snap.events,
            flows: snap.flows,
            rng: snap.rng,
            queue_bytes: snap.queue_bytes,
            fifo: snap.fifo,
            busy: snap.busy,
            packets_sent: snap.packets_sent,
            packets_marked: snap.packets_marked,
            cnps_sent: snap.cnps_sent,
            rec,
            spans: snap.spans,
            events_processed: snap.events_processed,
            chaos_rng: snap.chaos_rng,
            last_cap_mult: snap.last_cap_mult,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Model;

    /// A deliberately small job so packet-level tests stay fast: ResNet50
    /// at batch 400 → 30.4 ms compute + 21 ms comm ≈ 51 ms iterations.
    fn small_job() -> JobSpec {
        JobSpec::reference(Model::ResNet50, 400)
    }

    #[test]
    fn solo_job_runs_at_line_rate() {
        let mut sim = PacketSimulator::new(
            PacketSimConfig::default(),
            &[PacketJob::new(small_job(), CcVariant::Fair)],
        );
        assert!(sim.run_until_iterations(3, Dur::from_secs(2)));
        let solo = small_job()
            .iteration_time_at(Bandwidth::from_gbps(50))
            .as_millis_f64();
        let times = sim.progress(0).iteration_times();
        for d in &times {
            let ms = d.as_millis_f64();
            // Packetization adds at most a few serialization quanta.
            assert!(
                (ms - solo).abs() < solo * 0.02,
                "iteration {ms:.2} ms vs solo {solo:.2} ms"
            );
        }
        let (sent, _marked) = sim.packet_counts();
        assert!(sent > 10_000, "sent {sent} packets");
    }

    #[test]
    fn two_fair_flows_split_evenly() {
        let jobs = [
            PacketJob::new(small_job(), CcVariant::Fair),
            PacketJob::new(small_job(), CcVariant::Fair),
        ];
        let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
        // Run through the overlapped first communication phase only.
        sim.run_until(Time::ZERO + Dur::from_millis(60));
        let d0 = sim.delivered(0);
        let d1 = sim.delivered(1);
        assert!(d0 > 0.0 && d1 > 0.0);
        let ratio = d0 / d1;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "fair packet split ratio {ratio:.2}"
        );
        // Marks happened (the queue really built up).
        let (sent, marked) = sim.packet_counts();
        assert!(marked > 0, "no ECN marks among {sent} packets");
    }

    #[test]
    fn aggressive_timer_wins_at_packet_level() {
        // A comm-heavy pair (73% comm fraction) that cannot slide apart:
        // sustained contention lets the T asymmetry accumulate.
        let heavy = JobSpec::reference(Model::ResNet50, 100);
        let jobs = [
            PacketJob::new(
                heavy,
                CcVariant::StaticUnfair {
                    timer: Dur::from_micros(100),
                },
            ),
            PacketJob::new(heavy, CcVariant::Fair),
        ];
        let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
        sim.run_until(Time::ZERO + Dur::from_millis(400));
        let (d0, d1) = (sim.delivered(0), sim.delivered(1));
        assert!(
            d0 > d1 * 1.05,
            "aggressive flow should lead: {d0:.0} vs {d1:.0} bytes"
        );
    }

    #[test]
    fn recorder_captures_packet_events() {
        use std::collections::BTreeSet;
        use telemetry::BufferRecorder;

        let jobs = [
            PacketJob::new(small_job(), CcVariant::Fair),
            PacketJob::new(small_job(), CcVariant::Fair),
        ];
        let mut rec = BufferRecorder::new();
        let mut sim = PacketSimulator::with_recorder(PacketSimConfig::default(), &jobs, &mut rec);
        sim.run_until(Time::ZERO + Dur::from_millis(60));
        let kinds: BTreeSet<&str> = rec.events().iter().map(|e| e.event.kind()).collect();
        for want in [
            "phase_enter",
            "phase_exit",
            "ecn_mark",
            "cnp_sent",
            "cnp_received",
            "rate_change",
            "queue_depth",
        ] {
            assert!(kinds.contains(want), "missing event kind {want:?}");
        }
        let metrics = rec.metrics();
        assert!(
            metrics.counter_total("ecn_marks_total") > 0,
            "no ECN marks recorded"
        );
        assert!(metrics.counter_total("cnp_total") > 0, "no CNPs recorded");
        assert!(
            metrics.counter_total("rate_changes_total") > 0,
            "no rate changes recorded"
        );
        assert!(rec.spans().contains_key("netsim.packet"));
        assert!(rec.counts()["packet_events_total"] > 0);
    }

    #[test]
    fn recorder_does_not_perturb_packet_dynamics() {
        let jobs = [
            PacketJob::new(small_job(), CcVariant::Fair),
            PacketJob::new(small_job(), CcVariant::Fair),
        ];
        let mut plain = PacketSimulator::new(PacketSimConfig::default(), &jobs);
        plain.run_until(Time::ZERO + Dur::from_millis(60));
        let mut rec = telemetry::BufferRecorder::new();
        let mut observed =
            PacketSimulator::with_recorder(PacketSimConfig::default(), &jobs, &mut rec);
        observed.run_until(Time::ZERO + Dur::from_millis(60));
        assert_eq!(plain.packet_counts(), observed.packet_counts());
        assert_eq!(plain.delivered(0), observed.delivered(0));
        assert_eq!(plain.delivered(1), observed.delivered(1));
    }

    #[test]
    fn wheel_and_heap_backends_are_event_identical() {
        use telemetry::BufferRecorder;
        let jobs = [
            PacketJob::new(small_job(), CcVariant::Fair),
            PacketJob::new(small_job(), CcVariant::Fair),
        ];
        let mut streams = Vec::new();
        for queue in [QueueBackend::TimingWheel, QueueBackend::ReferenceHeap] {
            let cfg = PacketSimConfig {
                queue,
                ..PacketSimConfig::default()
            };
            let mut rec = BufferRecorder::new();
            let mut sim = PacketSimulator::with_recorder(cfg, &jobs, &mut rec);
            sim.run_until(Time::ZERO + Dur::from_millis(60));
            let counts = sim.packet_counts();
            streams.push((rec.events().to_vec(), counts));
        }
        assert_eq!(streams[0].1, streams[1].1, "packet counts diverge");
        assert_eq!(
            streams[0].0, streams[1].0,
            "telemetry streams diverge between queue backends"
        );
    }

    #[test]
    fn batched_trains_speed_up_without_changing_outcome() {
        // Same scenario per-packet and with 32-packet trains: delivered
        // bytes and congestion signals must agree within a few percent,
        // and the batched run must process far fewer events. The horizon
        // lands mid-way through the first contended communication phase —
        // comparing at a phase boundary would measure cutoff luck, not
        // batching error (compute→comm transitions are compute-driven and
        // land at identical instants in both runs).
        let jobs = [
            PacketJob::new(small_job(), CcVariant::Fair),
            PacketJob::new(small_job(), CcVariant::Fair),
        ];
        let run = |train_packets: u32| {
            let cfg = PacketSimConfig {
                train_packets,
                ..PacketSimConfig::default()
            };
            let mut sim = PacketSimulator::new(cfg, &jobs);
            sim.run_until(Time::ZERO + Dur::from_millis(45));
            (
                sim.delivered(0) + sim.delivered(1),
                sim.packet_counts(),
                sim.events_processed(),
            )
        };
        // Tolerances are calibrated to DCQCN's sensitivity, not batching
        // sloppiness: shifting one CNP by a few µs shifts the whole rate
        // sawtooth, so instantaneous goodput wobbles ±5–10% while the
        // congestion statistics (mark rate, CNP count) stay put.
        let (bytes_1, (sent_1, _), events_1) = run(1);
        let (bytes_32, (sent_32, _), events_32) = run(32);
        let db = (bytes_32 - bytes_1).abs() / bytes_1;
        assert!(db < 0.10, "delivered bytes diverged by {:.1}%", db * 100.0);
        let ds = (sent_32 as f64 - sent_1 as f64).abs() / sent_1 as f64;
        assert!(ds < 0.10, "sent packets diverged by {:.1}%", ds * 100.0);
        assert!(
            events_32 * 5 < events_1,
            "batching should cut events ≥5×: {events_32} vs {events_1}"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        // Batching is an approximation with a bounded error: for arbitrary
        // train lengths and marking seeds, delivered bytes, ECN mark
        // counts, and CNP counts must stay within tolerance of the exact
        // per-packet run. Marks/CNPs are sparse stochastic counts, so
        // their tolerance is looser than goodput's.
        #[test]
        fn train_batching_stays_within_tolerance(
            train in 2u32..(MAX_TRAIN_PACKETS + 1),
            seed in 1u64..1_000,
        ) {
            let jobs = [
                PacketJob::new(small_job(), CcVariant::Fair),
                PacketJob::new(small_job(), CcVariant::Fair),
            ];
            let run = |train_packets: u32| {
                let cfg = PacketSimConfig {
                    train_packets,
                    seed,
                    ..PacketSimConfig::default()
                };
                let mut sim = PacketSimulator::new(cfg, &jobs);
                sim.run_until(Time::ZERO + Dur::from_millis(45));
                let (_, marked) = sim.packet_counts();
                (sim.delivered(0) + sim.delivered(1), marked, sim.cnps_sent())
            };
            let (bytes_exact, marked_exact, cnps_exact) = run(1);
            let (bytes_train, marked_train, cnps_train) = run(train);
            let db = (bytes_train - bytes_exact).abs() / bytes_exact;
            proptest::prop_assert!(
                db < 0.10,
                "delivered bytes diverged by {:.1}% at train={}", db * 100.0, train
            );
            let dm = (marked_train as f64 - marked_exact as f64).abs()
                / (marked_exact.max(1) as f64);
            proptest::prop_assert!(
                dm < 0.5,
                "ECN marks diverged by {:.0}% at train={} ({marked_train} vs {marked_exact})",
                dm * 100.0, train
            );
            let dc = (cnps_train as f64 - cnps_exact as f64).abs()
                / (cnps_exact.max(1) as f64);
            proptest::prop_assert!(
                dc < 0.5,
                "CNPs diverged by {:.0}% at train={} ({cnps_train} vs {cnps_exact})",
                dc * 100.0, train
            );
        }
    }

    #[test]
    #[should_panic(expected = "DCQCN variants only")]
    fn swift_rejected() {
        let _ = PacketSimulator::new(
            PacketSimConfig::default(),
            &[PacketJob::new(
                small_job(),
                CcVariant::Swift {
                    target_delay: Dur::from_micros(30),
                },
            )],
        );
    }

    #[test]
    fn capacity_schedule_stretches_serialization() {
        let run = |schedule: Option<LinkSchedule>| {
            let cfg = PacketSimConfig {
                capacity_schedule: schedule,
                ..PacketSimConfig::default()
            };
            let mut sim =
                PacketSimulator::new(cfg, &[PacketJob::new(small_job(), CcVariant::Fair)]);
            assert!(sim.run_until_iterations(6, Dur::from_secs(4)));
            sim.progress(0)
                .iteration_times()
                .iter()
                .map(|d| d.as_millis_f64())
                .collect::<Vec<_>>()
        };
        let clean = run(None);
        let identity = run(Some(LinkSchedule::identity()));
        assert_eq!(clean, identity, "identity schedule must be a no-op");
        // Halve the link for the run's middle stretch: iterations there
        // spend twice as long communicating.
        let degraded = run(Some(LinkSchedule::degraded(
            Time::ZERO + Dur::from_millis(60),
            Time::ZERO + Dur::from_millis(200),
            0.5,
        )));
        let worst = degraded.iter().cloned().fold(0.0f64, f64::max);
        let base = clean[0];
        assert!(
            worst > base * 1.2,
            "expected a degraded iteration above {base:.2} ms, worst {worst:.2} ms"
        );
        let last = *degraded.last().unwrap();
        assert!(
            (last - base).abs() < base * 0.05,
            "tail should recover to {base:.2} ms, got {last:.2} ms"
        );
    }

    #[test]
    fn signal_loss_reduces_cnp_pressure() {
        let heavy = JobSpec::reference(Model::ResNet50, 100);
        let run = |loss: Option<SignalLoss>| {
            let cfg = PacketSimConfig {
                signal_loss: loss,
                ..PacketSimConfig::default()
            };
            let jobs = [
                PacketJob::new(heavy, CcVariant::Fair),
                PacketJob::new(heavy, CcVariant::Fair),
            ];
            let mut sim = PacketSimulator::new(cfg, &jobs);
            sim.run_until(Time::ZERO + Dur::from_millis(300));
            sim.cnps_sent()
        };
        let clean = run(None);
        let lossless = run(Some(SignalLoss::none()));
        assert_eq!(clean, lossless, "zero-probability loss must be a no-op");
        assert!(clean > 0, "contended pair should produce CNPs");
        // Stripping every mark starves the NPs completely. (Partial loss
        // is NOT monotone in CNP count: less backoff deepens the queue,
        // which generates more marks — so the test pins the total-loss
        // endpoint where the causal chain is unambiguous.)
        let starved = run(Some(SignalLoss {
            mark_loss: 1.0,
            cnp_loss: 0.0,
            seed: 7,
        }));
        assert_eq!(starved, 0, "total mark loss must silence the NPs");
    }

    #[test]
    fn departed_flow_frees_the_link() {
        let jobs = [
            PacketJob {
                depart_at: Some(Time::ZERO + Dur::from_millis(120)),
                ..PacketJob::new(small_job(), CcVariant::Fair)
            },
            PacketJob::new(small_job(), CcVariant::Fair),
        ];
        let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
        assert!(sim.run_until_iterations(8, Dur::from_secs(4)));
        assert!(sim.departed(0), "flow 0 should have departed");
        assert!(
            sim.progress(0).completed() < 8,
            "leaver must not finish the run"
        );
        // Once alone, the survivor runs at the solo pace.
        let solo = small_job()
            .iteration_time_at(Bandwidth::from_gbps(50))
            .as_millis_f64();
        let times = sim.progress(1).iteration_times();
        let tail = times.last().unwrap().as_millis_f64();
        assert!(
            (tail - solo).abs() < solo * 0.03,
            "survivor tail {tail:.2} ms vs solo {solo:.2} ms"
        );
    }

    /// Snapshot/restore splices invisibly: run(0→T) matches
    /// run(0→t) + snapshot + restore + run(t→T) exactly — packet counts,
    /// delivered bytes, CNPs, and events processed — on both queue
    /// backends and with batched trains.
    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        use crate::snapshot::Snapshottable;
        for queue in [QueueBackend::TimingWheel, QueueBackend::ReferenceHeap] {
            let cfg = PacketSimConfig {
                queue,
                train_packets: 8,
                ..PacketSimConfig::default()
            };
            let jobs = [
                PacketJob::new(small_job(), CcVariant::Fair),
                PacketJob::new(small_job(), CcVariant::Fair),
            ];
            let mut whole = PacketSimulator::new(cfg.clone(), &jobs);
            whole.run_until(Time::ZERO + Dur::from_millis(60));

            let mut prefix = PacketSimulator::new(cfg, &jobs);
            prefix.run_until(Time::ZERO + Dur::from_millis(25));
            let snap = prefix.snapshot().unwrap();
            let mut resumed: PacketSimulator = Snapshottable::restore(snap, NoopRecorder).unwrap();
            resumed.run_until(Time::ZERO + Dur::from_millis(60));

            assert_eq!(whole.packet_counts(), resumed.packet_counts());
            assert_eq!(whole.cnps_sent(), resumed.cnps_sent());
            assert_eq!(whole.events_processed(), resumed.events_processed());
            for i in 0..2 {
                assert_eq!(whole.delivered(i), resumed.delivered(i));
                assert_eq!(
                    whole.progress(i).iteration_times(),
                    resumed.progress(i).iteration_times()
                );
            }
        }
    }

    /// Tampered snapshots surface typed errors, never panics: a stale
    /// same-instant event trips the barrier check, a foreign version tag
    /// trips the version check.
    #[test]
    fn snapshot_misuse_returns_typed_errors() {
        use crate::snapshot::{SnapshotError, Snapshottable, SNAPSHOT_VERSION};
        let mut sim = PacketSimulator::new(
            PacketSimConfig::default(),
            &[PacketJob::new(small_job(), CcVariant::Fair)],
        );
        sim.run_until(Time::ZERO + Dur::from_millis(40));
        let clean = sim.snapshot().unwrap();
        assert_eq!(clean.taken_at(), sim.now());

        let stale = clean.clone().with_stale_event();
        match <PacketSimulator>::restore(stale, NoopRecorder) {
            Err(SnapshotError::MidEventBarrier { pending_at, now }) => {
                assert!(pending_at <= now);
            }
            Err(e) => panic!("wrong error {e}"),
            Ok(_) => panic!("stale snapshot accepted"),
        }

        let old = clean.with_version(0);
        match <PacketSimulator>::restore(old, NoopRecorder) {
            Err(SnapshotError::VersionMismatch { expected, found }) => {
                assert_eq!((expected, found), (SNAPSHOT_VERSION, 0));
            }
            Err(e) => panic!("wrong error {e}"),
            Ok(_) => panic!("old snapshot accepted"),
        }
    }

    #[test]
    fn phase_noise_perturbs_iterations_deterministically() {
        let noise = PhaseNoise {
            seed: 99,
            job: 0,
            compute_jitter: 0.2,
            comm_jitter: 0.2,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
        };
        let run = || {
            let job = PacketJob {
                noise: Some(noise),
                ..PacketJob::new(small_job(), CcVariant::Fair)
            };
            let mut sim = PacketSimulator::new(PacketSimConfig::default(), &[job]);
            assert!(sim.run_until_iterations(5, Dur::from_secs(4)));
            sim.progress(0)
                .iteration_times()
                .iter()
                .map(|d| d.as_nanos())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded noise must be reproducible");
        let spread = a.iter().max().unwrap() - a.iter().min().unwrap();
        assert!(spread > 0, "jitter should vary iteration times");
    }
}
