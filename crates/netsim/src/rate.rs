//! The rate-based DCQCN engine: emergent congestion dynamics on a shared
//! bottleneck.
//!
//! Reproduces the paper's testbed setup (Fig. 1a): a set of training jobs
//! whose flows all funnel through one bottleneck link (`L1`). The engine
//! advances in fixed microsecond-scale steps; in each step every
//! communicating job injects at its DCQCN-controlled rate, the link drains
//! at capacity into a shared FIFO queue, the queue's depth drives RED/ECN
//! marking, marks become CNPs (paced per flow by the notification point),
//! and CNPs cut rates. Nothing about sharing is hard-coded: fair 50/50
//! splits, the 30/15 split under a smaller `T`, and the phase-sliding that
//! makes compatible jobs interleave all *emerge* from the control loop —
//! exactly the surprising behaviour §2 reports.
//!
//! Scope: one bottleneck link (the paper's experiments are all
//! single-bottleneck; multi-link topologies are the fluid engine's job).

use crate::snapshot::{check_version, SnapshotError, Snapshottable, SNAPSHOT_VERSION};
use dcqcn::{
    CcAlgorithm, CcVariant, DcqcnParams, NotificationPoint, RedMarker, RpStage, SignalLoss,
};
use eventsim::{Rng, TimeSeries};
use simtime::{Bandwidth, Dur, Time};
use telemetry::{CcState, Event, NoopRecorder, Phase, Recorder, SpanTracker};
use topology::LinkSchedule;
use workload::{JobProgress, JobSpec, PhaseNoise};

/// Telemetry sampling cadence (queue depth + per-flow rate) used when the
/// run is observed but no trace interval is configured.
const DEFAULT_SAMPLE_INTERVAL: Dur = Dur::from_micros(500);

/// Configuration of the rate-based engine.
#[derive(Debug, Clone)]
pub struct RateSimConfig {
    /// Bottleneck link capacity (also the default NIC line rate).
    pub capacity: Bandwidth,
    /// Simulation step. 5 µs resolves the 50–125 µs DCQCN time constants.
    pub dt: Dur,
    /// ECN marking curve of the bottleneck queue.
    pub marker: RedMarker,
    /// Base DCQCN parameters (variants override per job).
    pub base_params: DcqcnParams,
    /// Packet size used to convert fluid bytes into "packets" for the
    /// marking-probability computation (RoCE default 1024 B).
    pub mtu_bytes: f64,
    /// Marking noise in `[0, 1)`. The fluid CP accumulates *expected*
    /// marked packets per flow and fires deterministically when the
    /// accumulator crosses 1 — this keeps two identical fair jobs exactly
    /// locked in contention, as the paper's scenario 1 observes (Fig. 2a).
    /// A positive value jitters the firing threshold in
    /// `[1−noise, 1+noise]`, modelling packet-level randomness.
    pub mark_noise: f64,
    /// RNG seed for marking jitter (only consulted when `mark_noise > 0`).
    pub seed: u64,
    /// Whether a job's flow restarts at line rate when a new communication
    /// phase begins (RDMA message semantics; see [`dcqcn::DcqcnRp::restart`]).
    pub restart_on_phase: bool,
    /// If set, per-job throughput and queue traces are recorded at this
    /// granularity.
    pub trace_interval: Option<Dur>,
    /// Adaptive stepping: lengthen `dt` (doubling, up to [`max_dt`])
    /// while the system is quiet — no marks fired, no phase transitions,
    /// and every communicating flow's rate unchanged over the step — and
    /// snap back to the base `dt` the moment anything happens. When every
    /// job is computing and the queue is drained, the engine jumps
    /// straight to the next compute deadline (that jump is exact: the
    /// DCQCN clocks replay their timer/byte events precisely for any
    /// `dt`). Off by default; `false` is the exact legacy stepper.
    ///
    /// [`max_dt`]: RateSimConfig::max_dt
    pub adaptive_step: bool,
    /// Longest step adaptive stepping may take while any flow is
    /// communicating (idle jumps between compute deadlines may be longer).
    /// Only read when [`adaptive_step`] is set.
    ///
    /// [`adaptive_step`]: RateSimConfig::adaptive_step
    pub max_dt: Dur,
    /// Fault injection: a time-varying multiplier on the bottleneck
    /// capacity (degradation windows, up/down flaps). `None` is the exact
    /// unperturbed engine.
    pub capacity_schedule: Option<LinkSchedule>,
    /// Fault injection: probabilistic loss of ECN marks and CNPs, rolled
    /// on a dedicated chaos RNG that is never consulted when `None`.
    pub signal_loss: Option<SignalLoss>,
}

impl Default for RateSimConfig {
    fn default() -> RateSimConfig {
        RateSimConfig {
            capacity: Bandwidth::from_gbps(50),
            dt: Dur::from_micros(5),
            marker: RedMarker::default_50g(),
            base_params: DcqcnParams::testbed_default(),
            mtu_bytes: 1024.0,
            mark_noise: 0.0,
            seed: 1,
            restart_on_phase: true,
            trace_interval: None,
            adaptive_step: false,
            max_dt: Dur::from_micros(80),
            capacity_schedule: None,
            signal_loss: None,
        }
    }
}

/// A job participating in the rate simulation.
#[derive(Debug, Clone)]
pub struct RateJob {
    /// The training job.
    pub spec: JobSpec,
    /// Its congestion-control behaviour.
    pub variant: CcVariant,
    /// When the job's first compute phase starts.
    pub start_offset: Dur,
    /// Fault injection: per-iteration phase jitter/stragglers. `None` is
    /// the exact unperturbed job.
    pub noise: Option<PhaseNoise>,
    /// Fault injection: churn — the job permanently leaves the cluster at
    /// the first compute-phase instant at/after this time (an in-flight
    /// communication phase is allowed to finish).
    pub depart_at: Option<Time>,
}

impl RateJob {
    /// A job starting at t = 0 with the given variant.
    pub fn new(spec: JobSpec, variant: CcVariant) -> RateJob {
        RateJob {
            spec,
            variant,
            start_offset: Dur::ZERO,
            noise: None,
            depart_at: None,
        }
    }
}

/// Telemetry tag for a controller's current increase regime: DCQCN's
/// stage machinery when it has one, the delay tag otherwise.
pub(crate) fn cc_state_of(cc: &dyn CcAlgorithm) -> CcState {
    match cc.stage() {
        Some(RpStage::FastRecovery) => CcState::FastRecovery,
        Some(RpStage::AdditiveIncrease) => CcState::AdditiveIncrease,
        Some(RpStage::HyperIncrease) => CcState::HyperIncrease,
        None => CcState::Delay,
    }
}

#[derive(Clone)]
struct JobState {
    progress: JobProgress,
    /// The job's live congestion controller, built from its
    /// [`CcVariant`] spec.
    cc: Box<dyn CcAlgorithm>,
    np: NotificationPoint,
    /// Whether the controller consumes communication-phase progress
    /// ([`CcVariant::wants_progress`]).
    adaptive: bool,
    /// Bytes of the current phase not yet placed into the link queue.
    to_inject: f64,
    /// This job's bytes sitting in the link queue.
    backlog: f64,
    /// Bytes delivered since the last trace sample.
    traced_bytes: f64,
    /// Expected marked packets accumulated since the last CNP decision.
    expected_marks: f64,
    /// Accumulator level that triggers the next CNP (1.0 unless jittered).
    mark_threshold: f64,
    /// Churn: when the job permanently leaves (checked at compute-phase
    /// instants), and whether it already has.
    depart_at: Option<Time>,
    departed: bool,
}

/// The rate-based simulator over one bottleneck link.
///
/// Generic over a [`Recorder`]; the default [`NoopRecorder`] compiles all
/// instrumentation away, so `RateSimulator::new` is exactly as fast as the
/// uninstrumented engine. Observed runs use
/// [`RateSimulator::with_recorder`].
pub struct RateSimulator<R: Recorder = NoopRecorder> {
    cfg: RateSimConfig,
    now: Time,
    jobs: Vec<JobState>,
    rng: Rng,
    queue_trace: TimeSeries,
    rate_traces: Vec<TimeSeries>,
    next_trace_at: Time,
    rec: R,
    /// Typed-span emission state (empty when `R` is disabled).
    spans: SpanTracker,
    next_sample_at: Time,
    steps: u64,
    /// Current adaptive step multiplier (power of two; 1 = base `dt`).
    dt_scale: u64,
    /// Consecutive quiet steps (no marks, transitions, or rate motion).
    quiet_steps: u32,
    /// Dedicated chaos RNG for signal loss; only drawn from when
    /// `cfg.signal_loss` is set, so quiet runs stay bit-identical.
    chaos_rng: Rng,
    /// Last observed capacity multiplier (for change detection).
    last_cap_mult: f64,
}

/// Quiet steps required before the adaptive stepper starts doubling:
/// long enough to sit out a full CNP pacing interval of silence at the
/// base 5 µs step before trusting the lull.
const QUIET_STEPS_TO_COARSEN: u32 = 8;

/// Longest exact idle jump between compute deadlines (keeps trace and
/// telemetry sampling from starving during long compute phases).
const MAX_IDLE_JUMP: Dur = Dur::from_millis(1);

impl RateSimulator {
    /// Builds an unobserved simulator for `jobs` sharing the bottleneck.
    ///
    /// # Panics
    /// Panics if `jobs` is empty or `dt` is zero.
    pub fn new(cfg: RateSimConfig, jobs: &[RateJob]) -> RateSimulator {
        RateSimulator::with_recorder(cfg, jobs, NoopRecorder)
    }
}

impl<R: Recorder> RateSimulator<R> {
    /// Builds a simulator whose instrumentation feeds `rec`.
    ///
    /// # Panics
    /// Panics if `jobs` is empty or `dt` is zero.
    pub fn with_recorder(cfg: RateSimConfig, jobs: &[RateJob], mut rec: R) -> RateSimulator<R> {
        assert!(!jobs.is_empty(), "RateSimulator: no jobs");
        assert!(!cfg.dt.is_zero(), "RateSimulator: zero dt");
        let mut spans = SpanTracker::new::<R>(jobs.len());
        if R::ENABLED {
            for (i, j) in jobs.iter().enumerate() {
                // Single shared bottleneck: every job's flow crosses link 0.
                rec.record(
                    Time::ZERO + j.start_offset,
                    Event::JobPath {
                        job: i as u32,
                        links: vec![0],
                    },
                );
                spans.enter(
                    &mut rec,
                    Time::ZERO + j.start_offset,
                    i as u32,
                    Phase::Compute,
                    0,
                );
                rec.record(
                    Time::ZERO + j.start_offset,
                    Event::PhaseEnter {
                        job: i as u32,
                        phase: Phase::Compute,
                        iteration: 0,
                    },
                );
            }
        }
        let states = jobs
            .iter()
            .map(|j| {
                let params = cfg.base_params.with_line_rate(cfg.capacity);
                let cc = j.variant.build(params);
                JobState {
                    progress: JobProgress::with_noise(
                        j.spec,
                        Time::ZERO + j.start_offset,
                        j.spec.comm_bytes().as_bytes() as f64,
                        j.noise,
                    ),
                    cc,
                    np: NotificationPoint::new(cfg.base_params.cnp_interval),
                    adaptive: j.variant.wants_progress(),
                    to_inject: 0.0,
                    backlog: 0.0,
                    traced_bytes: 0.0,
                    expected_marks: 0.0,
                    mark_threshold: 1.0,
                    depart_at: j.depart_at,
                    departed: false,
                }
            })
            .collect();
        let n = jobs.len();
        let rng = Rng::new(cfg.seed);
        let chaos_rng = Rng::new(cfg.signal_loss.map_or(0, |l| l.seed));
        RateSimulator {
            cfg,
            now: Time::ZERO,
            jobs: states,
            rng,
            queue_trace: TimeSeries::new(),
            rate_traces: (0..n).map(|_| TimeSeries::new()).collect(),
            next_trace_at: Time::ZERO,
            rec,
            spans,
            next_sample_at: Time::ZERO,
            steps: 0,
            dt_scale: 1,
            quiet_steps: 0,
            chaos_rng,
            last_cap_mult: 1.0,
        }
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &R {
        &self.rec
    }

    /// Consumes the simulator and returns the attached recorder (how a
    /// shard's fork is recovered for the ordered merge).
    pub fn into_recorder(self) -> R {
        self.rec
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Iteration bookkeeping of job `i`.
    pub fn progress(&self, i: usize) -> &JobProgress {
        &self.jobs[i].progress
    }

    /// Number of jobs in the simulation (including departed ones).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// `true` once churn has removed job `i` from the cluster.
    pub fn departed(&self, i: usize) -> bool {
        self.jobs[i].departed
    }

    /// Per-job delivered-throughput trace (Gbps), if tracing is enabled.
    pub fn rate_trace(&self, i: usize) -> &TimeSeries {
        &self.rate_traces[i]
    }

    /// Bottleneck queue-depth trace (bytes), if tracing is enabled.
    pub fn queue_trace(&self) -> &TimeSeries {
        &self.queue_trace
    }

    /// Total steps taken so far (adaptive stepping's cost metric).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The earliest compute→communicate deadline across all jobs, if any
    /// job is computing. Departed jobs idle forever and are skipped (their
    /// stale deadline would otherwise pin the adaptive stepper to 1 ns).
    fn next_deadline(&self) -> Option<Time> {
        self.jobs
            .iter()
            .filter(|j| !j.departed)
            .filter_map(|j| j.progress.next_self_transition())
            .min()
    }

    /// Picks this step's `dt` under adaptive stepping: the scaled base
    /// step (or an exact jump to the next compute deadline when the whole
    /// system is idle), never stepping over a compute deadline.
    fn adaptive_dt(&self) -> Dur {
        let base = self.cfg.dt;
        let idle = self
            .jobs
            .iter()
            .all(|j| !j.progress.is_communicating() && j.backlog < 0.5);
        let mut dt = if idle {
            match self.next_deadline() {
                // Nothing can happen before the earliest deadline; the
                // DCQCN clocks replay exactly across any span.
                Some(dl) => dl.saturating_since(self.now).clamp(base, MAX_IDLE_JUMP),
                None => MAX_IDLE_JUMP, // all jobs permanently done
            }
        } else {
            Dur::from_nanos(base.as_nanos().saturating_mul(self.dt_scale)).min(self.cfg.max_dt)
        };
        // Land exactly on the next compute deadline rather than past it,
        // so coarse steps never delay a phase start.
        if let Some(dl) = self.next_deadline() {
            if dl > self.now {
                dt = dt.min(dl.saturating_since(self.now));
            }
        }
        // Same for the next scheduled capacity change: a coarse step must
        // not average across a fault boundary.
        if let Some(s) = &self.cfg.capacity_schedule {
            if let Some(change) = s.next_change_after(self.now) {
                dt = dt.min(change.saturating_since(self.now));
            }
        }
        dt.max(Dur::NANOSECOND)
    }

    /// Advances the simulation by one step.
    pub fn step(&mut self) {
        let dt = if self.cfg.adaptive_step {
            self.adaptive_dt()
        } else {
            self.cfg.dt
        };
        let dt_secs = dt.as_secs_f64();
        let t_end = self.now + dt;
        // Anything that should snap the stepper back to fine steps: phase
        // transitions, mark firings (hence CNPs), or rate motion.
        let mut activity = false;

        // 0. Fault injection: the capacity multiplier in effect this step.
        // `effective_bps` stays the exact config value on the quiet path.
        let mut effective_bps = self.cfg.capacity.as_bps_f64();
        if let Some(s) = &self.cfg.capacity_schedule {
            let cap_mult = s.multiplier_at(self.now);
            if cap_mult != self.last_cap_mult {
                activity = true;
                self.last_cap_mult = cap_mult;
                if R::ENABLED {
                    self.rec.record(
                        self.now,
                        Event::LinkCapacity {
                            link: 0,
                            fraction: cap_mult,
                        },
                    );
                }
            }
            if cap_mult != 1.0 {
                effective_bps *= cap_mult;
            }
        }

        // 1. Compute→communicate transitions due at (or before) this step,
        // and churn departures (a departing job finishes any in-flight
        // communication phase, then idles forever instead of re-entering).
        for (i, js) in self.jobs.iter_mut().enumerate() {
            if !js.departed {
                if let Some(d) = js.depart_at {
                    if self.now >= d && !js.progress.is_communicating() {
                        js.departed = true;
                        activity = true;
                        if R::ENABLED {
                            self.rec
                                .record(self.now, Event::JobDepart { job: i as u32 });
                        }
                    }
                }
            }
            if js.departed {
                continue;
            }
            if !js.progress.is_communicating() && js.progress.poll(self.now) {
                activity = true;
                js.to_inject = js.progress.remaining_bytes();
                js.backlog = 0.0;
                if self.cfg.restart_on_phase {
                    js.cc.restart();
                }
                js.np.reset();
                if R::ENABLED {
                    let iteration = js.progress.completed() as u64;
                    self.rec.record(
                        self.now,
                        Event::PhaseExit {
                            job: i as u32,
                            phase: Phase::Compute,
                            iteration,
                        },
                    );
                    self.spans
                        .exit(&mut self.rec, self.now, i as u32, Phase::Compute, iteration);
                    self.spans.enter(
                        &mut self.rec,
                        self.now,
                        i as u32,
                        Phase::Communicate,
                        iteration,
                    );
                    self.rec.record(
                        self.now,
                        Event::PhaseEnter {
                            job: i as u32,
                            phase: Phase::Communicate,
                            iteration,
                        },
                    );
                    if self.cfg.restart_on_phase {
                        self.rec.record(
                            self.now,
                            Event::RateChange {
                                flow: i as u32,
                                bps: js.cc.rate(),
                                state: CcState::Restart,
                            },
                        );
                    }
                }
            }
        }

        // 2. Injection at DCQCN rates (capped by phase residual).
        for js in &mut self.jobs {
            if js.progress.is_communicating() {
                let offered = js.cc.rate() * dt_secs / 8.0; // bytes
                let a = offered.min(js.to_inject);
                js.backlog += a;
                js.to_inject -= a;
            }
        }

        // 3. FIFO service at the (possibly degraded) link capacity, shared
        // pro-rata by backlog.
        let total_backlog: f64 = self.jobs.iter().map(|j| j.backlog).sum();
        let service = effective_bps * dt_secs / 8.0;
        let served_total = total_backlog.min(service);
        let mut delivered = vec![0.0f64; self.jobs.len()];
        if total_backlog > 0.0 {
            for (i, js) in self.jobs.iter_mut().enumerate() {
                // Clamp against float dust: pro-rata shares can overshoot a
                // job's backlog by an ulp, and a negative backlog would
                // poison the next step's totals.
                let d = (served_total * js.backlog / total_backlog).clamp(0.0, js.backlog);
                js.backlog = (js.backlog - d).max(0.0);
                delivered[i] = d;
            }
        }
        let standing_queue = total_backlog - served_total;

        // 4. ECN marking on the standing queue → CNPs (paced per flow;
        // DCQCN controllers only — delay-based flows observe the queue
        // directly in step 5).
        // Fluid marking: accumulate the expected number of marked packets
        // and fire when it crosses the threshold. Marks suppressed by CNP
        // pacing are dropped, as NP hardware coalesces them.
        for (i, js) in self.jobs.iter_mut().enumerate() {
            if !js.cc.reacts_to_marks() {
                continue;
            }
            if delivered[i] > 0.0 {
                let packets = delivered[i] / self.cfg.mtu_bytes;
                js.expected_marks += packets * self.cfg.marker.mark_probability(standing_queue);
                if js.expected_marks >= js.mark_threshold {
                    activity = true;
                    js.expected_marks = 0.0;
                    js.mark_threshold = if self.cfg.mark_noise > 0.0 {
                        1.0 + self.cfg.mark_noise * (self.rng.f64() * 2.0 - 1.0)
                    } else {
                        1.0
                    };
                    // Fault injection: the mark may be stripped before it
                    // reaches the NP. The chaos RNG is only consulted when
                    // loss is configured, keeping quiet runs bit-identical.
                    let mark_lost = match &self.cfg.signal_loss {
                        Some(l) if l.mark_loss > 0.0 => self.chaos_rng.bernoulli(l.mark_loss),
                        _ => false,
                    };
                    if !mark_lost {
                        if R::ENABLED {
                            self.rec.record(t_end, Event::EcnMark { flow: i as u32 });
                        }
                        if js.np.on_marked_arrival(t_end) {
                            // The NP sent a CNP; it may be lost on the
                            // reverse path before the RP sees it.
                            let cnp_lost = match &self.cfg.signal_loss {
                                Some(l) if l.cnp_loss > 0.0 => self.chaos_rng.bernoulli(l.cnp_loss),
                                _ => false,
                            };
                            if R::ENABLED {
                                self.rec.record(t_end, Event::CnpSent { flow: i as u32 });
                            }
                            if !cnp_lost {
                                js.cc.on_cnp();
                                if R::ENABLED {
                                    // NP→RP notification is modeled as
                                    // zero-delay, so send and receipt land
                                    // on the same instant.
                                    self.rec
                                        .record(t_end, Event::CnpReceived { flow: i as u32 });
                                    self.rec.record(
                                        t_end,
                                        Event::RateChange {
                                            flow: i as u32,
                                            bps: js.cc.rate(),
                                            state: CcState::Cut,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }

        // 5. Controller clocks, adaptive progress, and delivery to jobs.
        // The queueing delay a delay-based controller observes: the time
        // the standing queue takes to drain at line rate.
        let queue_delay = Dur::from_secs_f64(standing_queue * 8.0 / effective_bps);
        for (i, js) in self.jobs.iter_mut().enumerate() {
            let communicating = js.progress.is_communicating();
            let rate_before = js.cc.rate();
            if js.adaptive && communicating {
                let total = js.progress.comm_bytes_per_iteration();
                let sent = total - js.progress.remaining_bytes();
                js.cc.on_phase_progress(sent / total);
            }
            js.cc.advance(dt, delivered[i], queue_delay);
            // A communicating flow whose controlled rate moved this step
            // is still converging: keep the stepper fine. (Computing
            // flows' clocks replay exactly at any dt, so their motion
            // doesn't force fine steps.)
            if communicating && js.cc.rate() != rate_before {
                activity = true;
            }
            if js.progress.is_communicating() && delivered[i] > 0.0 {
                js.traced_bytes += delivered[i];
                let finished = js.progress.deliver(delivered[i], t_end).is_some();
                if finished || !js.progress.is_communicating() {
                    activity = true;
                }
                if finished {
                    // Iteration finished: residual float dust is discarded.
                    js.to_inject = 0.0;
                    js.backlog = 0.0;
                    js.cc.on_iteration_end();
                }
                // Iteration end — or, for pipelined jobs, a mid-iteration
                // gap between communication segments — returns the job to
                // computing.
                if R::ENABLED && !js.progress.is_communicating() {
                    let done = js.progress.completed() as u64;
                    let exited = if finished {
                        done.saturating_sub(1)
                    } else {
                        done
                    };
                    self.rec.record(
                        t_end,
                        Event::PhaseExit {
                            job: i as u32,
                            phase: Phase::Communicate,
                            iteration: exited,
                        },
                    );
                    self.spans
                        .exit(&mut self.rec, t_end, i as u32, Phase::Communicate, exited);
                    self.spans
                        .enter(&mut self.rec, t_end, i as u32, Phase::Compute, done);
                    self.rec.record(
                        t_end,
                        Event::PhaseEnter {
                            job: i as u32,
                            phase: Phase::Compute,
                            iteration: done,
                        },
                    );
                }
            }
        }

        // 6. Traces.
        if let Some(interval) = self.cfg.trace_interval {
            if t_end >= self.next_trace_at {
                let span = interval.as_secs_f64();
                for (i, js) in self.jobs.iter_mut().enumerate() {
                    let gbps = js.traced_bytes * 8.0 / span / 1e9;
                    self.rate_traces[i].push(t_end, gbps);
                    js.traced_bytes = 0.0;
                }
                self.queue_trace.push(t_end, standing_queue);
                self.next_trace_at = t_end + interval;
            }
        }

        // 7. Telemetry sampling (observed runs only): queue depth plus each
        // communicating flow's rate, tagged with its DCQCN increase stage.
        if R::ENABLED && t_end >= self.next_sample_at {
            self.rec.record(
                t_end,
                Event::QueueDepth {
                    link: 0,
                    bytes: standing_queue,
                },
            );
            for (i, js) in self.jobs.iter().enumerate() {
                if js.progress.is_communicating() {
                    self.rec.record(
                        t_end,
                        Event::RateChange {
                            flow: i as u32,
                            bps: js.cc.rate(),
                            state: cc_state_of(js.cc.as_ref()),
                        },
                    );
                }
            }
            let interval = self.cfg.trace_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL);
            self.next_sample_at = t_end + interval;
        }

        self.steps += 1;
        self.now = t_end;
        if self.cfg.adaptive_step {
            if activity {
                self.dt_scale = 1;
                self.quiet_steps = 0;
            } else {
                self.quiet_steps = self.quiet_steps.saturating_add(1);
                if self.quiet_steps >= QUIET_STEPS_TO_COARSEN {
                    self.dt_scale = (self.dt_scale * 2)
                        .min(self.cfg.max_dt.as_nanos() / self.cfg.dt.as_nanos().max(1))
                        .max(1);
                }
            }
        }
    }

    /// Runs for a fixed span of simulated time.
    pub fn run_for(&mut self, span: Dur) {
        let wall = if R::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let steps0 = self.steps;
        let end = self.now + span;
        while self.now < end {
            self.step();
        }
        if let Some(t0) = wall {
            self.rec
                .span("netsim.rate", t0.elapsed(), self.steps - steps0);
            self.rec.count("rate_steps_total", self.steps - steps0);
        }
    }

    /// Runs until every job has completed `n` iterations, or `max_span`
    /// elapses. Returns `true` if all jobs reached `n`.
    pub fn run_until_iterations(&mut self, n: usize, max_span: Dur) -> bool {
        let wall = if R::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let steps0 = self.steps;
        let end = self.now + max_span;
        let mut done = false;
        // Departed jobs will never reach `n`; they no longer gate the run.
        let reached = |jobs: &[JobState]| {
            jobs.iter()
                .all(|j| j.departed || j.progress.completed() >= n)
        };
        while self.now < end {
            if reached(&self.jobs) {
                done = true;
                break;
            }
            self.step();
        }
        if let Some(t0) = wall {
            self.rec
                .span("netsim.rate", t0.elapsed(), self.steps - steps0);
            self.rec.count("rate_steps_total", self.steps - steps0);
        }
        done || reached(&self.jobs)
    }

    /// Runs until the clock reaches (or first steps past) `t`. A no-op if
    /// the clock is already there — the natural way to drive the engine to
    /// a fork barrier.
    pub fn run_until(&mut self, t: Time) {
        self.run_for(t.saturating_since(self.now));
    }

    /// Replaces job `i`'s congestion-control variant with a freshly built
    /// controller, as if the job restarted its transport (rate resets to
    /// line rate on the next phase restart; CNP pacing state clears).
    /// Forked sweeps use this to vary the Fig. 1 variant matrix from a
    /// shared prefix.
    pub fn set_cc_variant(&mut self, i: usize, variant: CcVariant) {
        let params = self.cfg.base_params.with_line_rate(self.cfg.capacity);
        let js = &mut self.jobs[i];
        js.cc = variant.build(params);
        js.adaptive = variant.wants_progress();
        js.np.reset();
    }

    /// Injects (or clears) per-iteration phase noise for job `i`, taking
    /// effect at its next iteration rollover.
    pub fn set_noise(&mut self, i: usize, noise: Option<PhaseNoise>) {
        self.jobs[i].progress.set_noise(noise);
    }

    /// Schedules job `i` to leave the cluster at the first compute-phase
    /// instant at/after `at` (or cancels a pending departure). Ignored if
    /// the job already departed.
    pub fn set_depart_at(&mut self, i: usize, at: Option<Time>) {
        self.jobs[i].depart_at = at;
    }

    /// Replaces the bottleneck's capacity schedule (fault-injection
    /// degradation windows and flaps) from now on.
    pub fn set_capacity_schedule(&mut self, schedule: Option<LinkSchedule>) {
        self.cfg.capacity_schedule = schedule;
    }

    /// Replaces the signal-loss profile and reseeds the chaos RNG from it,
    /// exactly as construction would have.
    pub fn set_signal_loss(&mut self, loss: Option<SignalLoss>) {
        self.cfg.signal_loss = loss;
        self.chaos_rng = Rng::new(loss.map_or(0, |l| l.seed));
    }
}

/// Complete captured state of a [`RateSimulator`] at a step boundary:
/// clocks, per-job progress and controller state, RNG and chaos stream
/// positions, accumulated traces, and span-tracker state. Recorder-free.
#[derive(Clone)]
pub struct RateSnapshot {
    version: u32,
    cfg: RateSimConfig,
    now: Time,
    jobs: Vec<JobState>,
    rng: Rng,
    queue_trace: TimeSeries,
    rate_traces: Vec<TimeSeries>,
    next_trace_at: Time,
    spans: SpanTracker,
    next_sample_at: Time,
    steps: u64,
    dt_scale: u64,
    quiet_steps: u32,
    chaos_rng: Rng,
    last_cap_mult: f64,
}

impl RateSnapshot {
    /// The simulated instant the snapshot was taken at.
    pub fn taken_at(&self) -> Time {
        self.now
    }

    /// Overrides the version tag — test hook for exercising the
    /// [`SnapshotError::VersionMismatch`] path.
    #[doc(hidden)]
    pub fn with_version(mut self, version: u32) -> RateSnapshot {
        self.version = version;
        self
    }
}

impl<R: Recorder> Snapshottable<R> for RateSimulator<R> {
    type Snapshot = RateSnapshot;

    fn snapshot(&self) -> Result<RateSnapshot, SnapshotError> {
        Ok(RateSnapshot {
            version: SNAPSHOT_VERSION,
            cfg: self.cfg.clone(),
            now: self.now,
            jobs: self.jobs.clone(),
            rng: self.rng.clone(),
            queue_trace: self.queue_trace.clone(),
            rate_traces: self.rate_traces.clone(),
            next_trace_at: self.next_trace_at,
            spans: self.spans.clone(),
            next_sample_at: self.next_sample_at,
            steps: self.steps,
            dt_scale: self.dt_scale,
            quiet_steps: self.quiet_steps,
            chaos_rng: self.chaos_rng.clone(),
            last_cap_mult: self.last_cap_mult,
        })
    }

    fn restore(snap: RateSnapshot, rec: R) -> Result<RateSimulator<R>, SnapshotError> {
        check_version(snap.version)?;
        if snap.jobs.is_empty() {
            return Err(SnapshotError::Malformed { what: "no jobs" });
        }
        if snap.rate_traces.len() != snap.jobs.len() {
            return Err(SnapshotError::Malformed {
                what: "rate-trace count does not match job count",
            });
        }
        Ok(RateSimulator {
            cfg: snap.cfg,
            now: snap.now,
            jobs: snap.jobs,
            rng: snap.rng,
            queue_trace: snap.queue_trace,
            rate_traces: snap.rate_traces,
            next_trace_at: snap.next_trace_at,
            rec,
            spans: snap.spans,
            next_sample_at: snap.next_sample_at,
            steps: snap.steps,
            dt_scale: snap.dt_scale,
            quiet_steps: snap.quiet_steps,
            chaos_rng: snap.chaos_rng,
            last_cap_mult: snap.last_cap_mult,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventsim::Cdf;
    use workload::Model;

    fn vgg19(batch: u32) -> JobSpec {
        JobSpec::reference(Model::Vgg19, batch)
    }

    fn median_ms(sim: &RateSimulator, i: usize, skip: usize) -> f64 {
        let times: Vec<_> = sim
            .progress(i)
            .iteration_times()
            .into_iter()
            .skip(skip)
            .collect();
        Cdf::from_samples(times).median().as_millis_f64()
    }

    /// A lone job on an empty link iterates at its solo time.
    #[test]
    fn solo_job_matches_analytic_iteration_time() {
        let spec = vgg19(1200);
        let mut sim = RateSimulator::new(
            RateSimConfig::default(),
            &[RateJob::new(spec, CcVariant::Fair)],
        );
        assert!(sim.run_until_iterations(5, Dur::from_secs(5)));
        let expected = spec
            .iteration_time_at(Bandwidth::from_gbps(50))
            .as_millis_f64();
        let measured = median_ms(&sim, 0, 1);
        let err = (measured - expected).abs() / expected;
        assert!(
            err < 0.02,
            "solo iteration {measured:.1} ms vs analytic {expected:.1} ms"
        );
    }

    /// Two identical jobs under default DCQCN share fairly: equal medians.
    #[test]
    fn fair_sharing_is_symmetric() {
        let mut sim = RateSimulator::new(
            RateSimConfig::default(),
            &[
                RateJob::new(vgg19(1200), CcVariant::Fair),
                RateJob::new(vgg19(1200), CcVariant::Fair),
            ],
        );
        assert!(sim.run_until_iterations(8, Dur::from_secs(10)));
        let a = median_ms(&sim, 0, 2);
        let b = median_ms(&sim, 1, 2);
        let rel = (a - b).abs() / a.max(b);
        assert!(rel < 0.10, "medians {a:.1} vs {b:.1} ms");
        // And both are slower than solo (they contend).
        let solo = vgg19(1200)
            .iteration_time_at(Bandwidth::from_gbps(50))
            .as_millis_f64();
        assert!(a > solo * 1.02, "contended {a:.1} ms vs solo {solo:.1} ms");
    }

    /// The headline §2 result: making one of two compatible jobs more
    /// aggressive (T = 100 µs vs 125 µs) speeds up BOTH jobs.
    #[test]
    fn unfairness_speeds_up_compatible_pair() {
        let jobs_fair = [
            RateJob::new(vgg19(1200), CcVariant::Fair),
            RateJob::new(vgg19(1200), CcVariant::Fair),
        ];
        let jobs_unfair = [
            RateJob::new(
                vgg19(1200),
                CcVariant::StaticUnfair {
                    timer: Dur::from_micros(100),
                },
            ),
            RateJob::new(vgg19(1200), CcVariant::Fair),
        ];
        let mut fair = RateSimulator::new(RateSimConfig::default(), &jobs_fair);
        let mut unfair = RateSimulator::new(RateSimConfig::default(), &jobs_unfair);
        assert!(fair.run_until_iterations(12, Dur::from_secs(12)));
        assert!(unfair.run_until_iterations(12, Dur::from_secs(12)));
        for i in 0..2 {
            let f = median_ms(&fair, i, 4);
            let u = median_ms(&unfair, i, 4);
            assert!(
                u < f,
                "job {i}: unfair median {u:.1} ms not faster than fair {f:.1} ms"
            );
        }
    }

    /// Determinism: identical seeds give byte-identical iteration times;
    /// with zero marking noise the run is seed-independent entirely.
    #[test]
    fn same_seed_same_run() {
        let jobs = [
            RateJob::new(vgg19(1200), CcVariant::Fair),
            RateJob::new(vgg19(1400), CcVariant::Fair),
        ];
        let run = |seed, noise| {
            let cfg = RateSimConfig {
                seed,
                mark_noise: noise,
                ..RateSimConfig::default()
            };
            let mut sim = RateSimulator::new(cfg, &jobs);
            sim.run_until_iterations(5, Dur::from_secs(10));
            (
                sim.progress(0).iteration_times(),
                sim.progress(1).iteration_times(),
            )
        };
        // Noise-free: fully deterministic, independent of seed.
        assert_eq!(run(7, 0.0), run(7, 0.0));
        assert_eq!(run(7, 0.0), run(8, 0.0));
        // With noise: reproducible per seed, different across seeds.
        assert_eq!(run(7, 0.3), run(7, 0.3));
        assert_ne!(run(7, 0.3), run(8, 0.3), "noisy runs should differ by seed");
    }

    /// Traces are recorded when enabled and capture utilization ≤ capacity.
    #[test]
    fn traces_record_throughput() {
        let cfg = RateSimConfig {
            trace_interval: Some(Dur::from_millis(1)),
            ..RateSimConfig::default()
        };
        let mut sim = RateSimulator::new(
            cfg,
            &[
                RateJob::new(vgg19(1200), CcVariant::Fair),
                RateJob::new(vgg19(1200), CcVariant::Fair),
            ],
        );
        sim.run_for(Dur::from_millis(600));
        let t0 = sim.rate_trace(0);
        let t1 = sim.rate_trace(1);
        assert!(t0.len() > 100);
        // No sample exceeds line rate; at least one sample sees real traffic.
        assert!(t0.iter().all(|(_, v)| v <= 50.5));
        assert!(t0.max_value().unwrap() > 10.0);
        assert!(t1.max_value().unwrap() > 10.0);
        assert!(!sim.queue_trace().is_empty());
    }

    /// Staggered starts shift the first communication phase.
    #[test]
    fn start_offset_respected() {
        let mut job = RateJob::new(vgg19(1200), CcVariant::Fair);
        job.start_offset = Dur::from_millis(50);
        let mut sim = RateSimulator::new(RateSimConfig::default(), &[job]);
        assert!(sim.run_until_iterations(1, Dur::from_secs(2)));
        let rec = sim.progress(0).iterations()[0];
        assert_eq!(rec.started, Time::ZERO + Dur::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "no jobs")]
    fn empty_jobs_rejected() {
        let _ = RateSimulator::new(RateSimConfig::default(), &[]);
    }

    /// An observed contended run records the full event vocabulary: phase
    /// transitions, ECN marks, CNPs, rate changes, and queue samples.
    #[test]
    fn recorder_captures_congestion_events() {
        use telemetry::BufferRecorder;
        let mut rec = BufferRecorder::new();
        let jobs = [
            RateJob::new(vgg19(1200), CcVariant::Fair),
            RateJob::new(vgg19(1200), CcVariant::Fair),
        ];
        let mut sim = RateSimulator::with_recorder(RateSimConfig::default(), &jobs, &mut rec);
        assert!(sim.run_until_iterations(3, Dur::from_secs(5)));
        drop(sim);
        let kinds: std::collections::BTreeSet<&str> =
            rec.events().iter().map(|e| e.event.kind()).collect();
        for k in [
            "phase_enter",
            "phase_exit",
            "ecn_mark",
            "cnp_received",
            "rate_change",
            "queue_depth",
        ] {
            assert!(kinds.contains(k), "missing {k} in {kinds:?}");
        }
        let m = rec.metrics();
        assert!(m.counter("ecn_marks_total", "flow=0") > 0);
        assert!(m.counter("cnp_total", "flow=0") > 0);
        assert!(m.counter("cnp_total", "flow=1") > 0);
        // The engine reported a profiling span with its step count.
        assert!(rec.spans()["netsim.rate"].events > 0);
        assert!(rec.counts()["rate_steps_total"] > 0);
        // Phase events alternate consistently per job: enters and exits of
        // the communicate phase pair up (±1 for the trailing phase).
        let enters = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    telemetry::Event::PhaseEnter {
                        job: 0,
                        phase: telemetry::Phase::Communicate,
                        ..
                    }
                )
            })
            .count() as i64;
        let exits = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    telemetry::Event::PhaseExit {
                        job: 0,
                        phase: telemetry::Phase::Communicate,
                        ..
                    }
                )
            })
            .count() as i64;
        assert!((enters - exits).abs() <= 1, "enters {enters} exits {exits}");
    }

    /// Adaptive stepping must not change what the simulation concludes —
    /// iteration times stay within the engine's own validation bound —
    /// while taking several times fewer steps.
    #[test]
    fn adaptive_stepping_reduces_steps_without_changing_results() {
        let jobs = [
            RateJob::new(vgg19(1200), CcVariant::Fair),
            RateJob::new(vgg19(1200), CcVariant::Fair),
        ];
        let run = |adaptive_step: bool| {
            let cfg = RateSimConfig {
                adaptive_step,
                ..RateSimConfig::default()
            };
            let mut sim = RateSimulator::new(cfg, &jobs);
            assert!(sim.run_until_iterations(8, Dur::from_secs(10)));
            let m = [median_ms(&sim, 0, 2), median_ms(&sim, 1, 2)];
            (m, sim.steps())
        };
        let (fixed, steps_fixed) = run(false);
        let (adaptive, steps_adaptive) = run(true);
        for i in 0..2 {
            let rel = (adaptive[i] - fixed[i]).abs() / fixed[i];
            assert!(
                rel < 0.03,
                "job {i}: adaptive median {:.2} ms vs fixed {:.2} ms",
                adaptive[i],
                fixed[i]
            );
        }
        assert!(
            steps_adaptive * 2 < steps_fixed,
            "adaptive stepping should cut steps ≥2×: {steps_adaptive} vs {steps_fixed}"
        );
    }

    /// A solo adaptive run still matches the analytic iteration time: the
    /// coarse steps taken in steady state and the exact idle jumps across
    /// compute phases cannot distort a converged flow.
    #[test]
    fn adaptive_solo_matches_analytic_iteration_time() {
        let spec = vgg19(1200);
        let cfg = RateSimConfig {
            adaptive_step: true,
            ..RateSimConfig::default()
        };
        let mut sim = RateSimulator::new(cfg, &[RateJob::new(spec, CcVariant::Fair)]);
        assert!(sim.run_until_iterations(5, Dur::from_secs(5)));
        let expected = spec
            .iteration_time_at(Bandwidth::from_gbps(50))
            .as_millis_f64();
        let measured = median_ms(&sim, 0, 1);
        let err = (measured - expected).abs() / expected;
        assert!(
            err < 0.02,
            "adaptive solo iteration {measured:.1} ms vs analytic {expected:.1} ms"
        );
    }

    /// A capacity degradation window slows delivery while open and the
    /// engine recovers afterwards; an identity schedule changes nothing.
    #[test]
    fn capacity_schedule_degrades_and_recovers() {
        use topology::LinkSchedule;
        let jobs = [RateJob::new(vgg19(1200), CcVariant::Fair)];
        let run = |schedule: Option<LinkSchedule>| {
            let cfg = RateSimConfig {
                capacity_schedule: schedule,
                ..RateSimConfig::default()
            };
            let mut sim = RateSimulator::new(cfg, &jobs);
            assert!(sim.run_until_iterations(6, Dur::from_secs(10)));
            sim.progress(0).iteration_times()
        };
        let base = run(None);
        assert_eq!(base, run(Some(LinkSchedule::identity())));
        // Degrade to 20% for the first ~3 nominal iterations.
        let hit = run(Some(LinkSchedule::degraded(
            Time::ZERO + Dur::from_millis(50),
            Time::ZERO + Dur::from_millis(800),
            0.2,
        )));
        assert!(
            hit[0] > base[0].mul_f64(1.5),
            "degraded iteration {:?} not slower than {:?}",
            hit[0],
            base[0]
        );
        // The tail recovers to the nominal pace.
        assert!(
            hit.last().unwrap().as_millis_f64() < base.last().unwrap().as_millis_f64() * 1.05,
            "tail did not recover: {:?} vs {:?}",
            hit.last(),
            base.last()
        );
    }

    /// CNP loss starves the control loop of cuts: the lossy run delivers
    /// no slower, and the chaos RNG leaves the quiet path untouched.
    #[test]
    fn signal_loss_reduces_cnp_cuts() {
        use dcqcn::SignalLoss;
        use telemetry::BufferRecorder;
        let jobs = [
            RateJob::new(vgg19(1200), CcVariant::Fair),
            RateJob::new(vgg19(1200), CcVariant::Fair),
        ];
        let cnps = |loss: Option<SignalLoss>| {
            let cfg = RateSimConfig {
                signal_loss: loss,
                ..RateSimConfig::default()
            };
            let mut rec = BufferRecorder::new();
            let mut sim = RateSimulator::with_recorder(cfg, &jobs, &mut rec);
            sim.run_until_iterations(5, Dur::from_secs(10));
            drop(sim);
            let m = rec.metrics();
            m.counter("cnp_total", "flow=0") + m.counter("cnp_total", "flow=1")
        };
        let clean = cnps(None);
        let lossy = cnps(Some(SignalLoss {
            mark_loss: 0.0,
            cnp_loss: 0.5,
            seed: 3,
        }));
        assert!(clean > 0);
        assert!(
            (lossy as f64) < clean as f64 * 0.75,
            "cnp_loss=0.5 should drop cuts: {lossy} vs {clean}"
        );
    }

    /// Churn: a job with `depart_at` leaves at a compute boundary, stops
    /// gating `run_until_iterations`, and frees the link for the survivor.
    #[test]
    fn departed_job_frees_the_link() {
        let mut leaver = RateJob::new(vgg19(1200), CcVariant::Fair);
        leaver.depart_at = Some(Time::ZERO + Dur::from_millis(300));
        let stayer = RateJob::new(vgg19(1200), CcVariant::Fair);
        let mut sim = RateSimulator::new(RateSimConfig::default(), &[leaver, stayer]);
        assert!(sim.run_until_iterations(8, Dur::from_secs(10)));
        assert!(sim.departed(0));
        assert!(!sim.departed(1));
        // The survivor's late iterations run at solo pace.
        let solo = vgg19(1200)
            .iteration_time_at(Bandwidth::from_gbps(50))
            .as_millis_f64();
        let tail = sim.progress(1).iteration_times();
        let last = tail.last().unwrap().as_millis_f64();
        assert!(
            (last - solo).abs() / solo < 0.03,
            "survivor tail {last:.1} ms vs solo {solo:.1} ms"
        );
        // The leaver froze after its departure point.
        assert!(sim.progress(0).completed() < 8);
    }

    /// Snapshot/restore splices invisibly: run(0→T) is bit-identical to
    /// run(0→t) + snapshot + restore + run(t→T), including RNG-dependent
    /// marking jitter, traces, and step counts.
    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        use crate::snapshot::Snapshottable;
        let jobs = [
            RateJob::new(vgg19(1200), CcVariant::Fair),
            RateJob::new(vgg19(1400), CcVariant::Fair),
        ];
        let cfg = RateSimConfig {
            mark_noise: 0.3,
            trace_interval: Some(Dur::from_millis(1)),
            ..RateSimConfig::default()
        };
        let mut whole = RateSimulator::new(cfg.clone(), &jobs);
        whole.run_for(Dur::from_millis(800));

        let mut prefix = RateSimulator::new(cfg, &jobs);
        prefix.run_for(Dur::from_millis(300));
        let snap = prefix.snapshot().unwrap();
        assert_eq!(snap.taken_at(), prefix.now());
        let mut resumed: RateSimulator = Snapshottable::restore(snap, NoopRecorder).unwrap();
        resumed.run_until(Time::ZERO + Dur::from_millis(800));

        assert_eq!(whole.now(), resumed.now());
        assert_eq!(whole.steps(), resumed.steps());
        for i in 0..2 {
            assert_eq!(
                whole.progress(i).iteration_times(),
                resumed.progress(i).iteration_times()
            );
            assert_eq!(whole.rate_trace(i), resumed.rate_trace(i));
        }
        assert_eq!(whole.queue_trace(), resumed.queue_trace());
    }

    /// A snapshot from a different layout version is rejected with a typed
    /// error, not misread.
    #[test]
    fn snapshot_version_mismatch_is_typed() {
        use crate::snapshot::{SnapshotError, Snapshottable, SNAPSHOT_VERSION};
        let mut sim = RateSimulator::new(
            RateSimConfig::default(),
            &[RateJob::new(vgg19(1200), CcVariant::Fair)],
        );
        sim.run_for(Dur::from_millis(10));
        let snap = sim.snapshot().unwrap().with_version(SNAPSHOT_VERSION + 7);
        let err = match <RateSimulator>::restore(snap, NoopRecorder) {
            Err(e) => e,
            Ok(_) => panic!("version mismatch accepted"),
        };
        assert_eq!(
            err,
            SnapshotError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: SNAPSHOT_VERSION + 7
            }
        );
    }

    /// The same run, observed or not, produces identical simulation
    /// results: recording must never perturb dynamics.
    #[test]
    fn recorder_does_not_perturb_dynamics() {
        let jobs = [
            RateJob::new(vgg19(1200), CcVariant::Fair),
            RateJob::new(vgg19(1400), CcVariant::Fair),
        ];
        let cfg = RateSimConfig {
            mark_noise: 0.3,
            ..RateSimConfig::default()
        };
        let mut plain = RateSimulator::new(cfg.clone(), &jobs);
        let mut rec = telemetry::BufferRecorder::new();
        let mut observed = RateSimulator::with_recorder(cfg, &jobs, &mut rec);
        plain.run_until_iterations(4, Dur::from_secs(8));
        observed.run_until_iterations(4, Dur::from_secs(8));
        for i in 0..2 {
            assert_eq!(
                plain.progress(i).iteration_times(),
                observed.progress(i).iteration_times()
            );
        }
    }
}

#[cfg(test)]
mod swift_tests {
    use super::*;
    use eventsim::Cdf;
    use workload::Model;

    fn vgg19() -> JobSpec {
        JobSpec::reference(Model::Vgg19, 1200)
    }

    fn median_ms(sim: &RateSimulator, i: usize, skip: usize) -> f64 {
        let times: Vec<_> = sim
            .progress(i)
            .iteration_times()
            .into_iter()
            .skip(skip)
            .collect();
        Cdf::from_samples(times).median().as_millis_f64()
    }

    fn run_pair(targets_us: [u64; 2]) -> RateSimulator {
        let jobs = [
            RateJob::new(
                vgg19(),
                CcVariant::Swift {
                    target_delay: Dur::from_micros(targets_us[0]),
                },
            ),
            RateJob::new(
                vgg19(),
                CcVariant::Swift {
                    target_delay: Dur::from_micros(targets_us[1]),
                },
            ),
        ];
        let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
        assert!(sim.run_until_iterations(12, Dur::from_secs(12)));
        sim
    }

    /// Equal delay targets: the delay-based controller shares fairly and
    /// two synchronized identical jobs stay locked in contention, like
    /// fair DCQCN.
    #[test]
    fn swift_equal_targets_lock_like_fair_dcqcn() {
        let sim = run_pair([30, 30]);
        let locked = (vgg19().compute_time() + vgg19().comm_time_at(Bandwidth::from_gbps(50)) * 2)
            .as_millis_f64();
        for i in 0..2 {
            let m = median_ms(&sim, i, 4);
            assert!(
                (m - locked).abs() < locked * 0.03,
                "job {i}: {m:.1} ms vs locked {locked:.1} ms"
            );
        }
    }

    /// Unequal delay targets: the paper's payoff is transport-agnostic —
    /// the tolerant-target job wins overlaps, the phases slide apart, and
    /// BOTH jobs converge to dedicated-network pace.
    #[test]
    fn swift_unequal_targets_interleave_both_jobs() {
        let sim = run_pair([60, 30]);
        let solo = vgg19()
            .iteration_time_at(Bandwidth::from_gbps(50))
            .as_millis_f64();
        for i in 0..2 {
            let m = median_ms(&sim, i, 6);
            assert!(
                (m - solo).abs() < solo * 0.03,
                "job {i}: {m:.1} ms vs solo {solo:.1} ms"
            );
        }
    }
}
