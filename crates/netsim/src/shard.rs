//! Sharded execution: advancing several independent engine instances in
//! lockstep epochs across worker threads.
//!
//! A shard is one engine instance simulating one link-disjoint component of
//! a scenario (see `topology::partition`). Because components share no
//! links, no event in one shard can ever influence another — in
//! conservative parallel-DES terms the cross-shard lookahead is infinite —
//! so the default epoch policy runs each shard to the deadline in a single
//! pass. Bounded epochs (`epoch: Some(..)`) insert a barrier every fixed
//! slice of simulated time; they exist for engines whose shards *could*
//! exchange state at a boundary (and to prove, in tests, that the barrier
//! placement does not change output).
//!
//! Determinism: each shard is a deterministic simulation, shards never
//! communicate, and the caller merges per-shard recordings by a key that
//! does not involve wall-clock or thread identity
//! (`ForkableRecorder::join_merged`). Worker-thread count therefore cannot
//! affect output — `--shards 8` and `--shards 1` produce byte-identical
//! streams.

use crate::fluid::FluidSimulator;
use crate::packet::PacketSimulator;
use crate::rate::RateSimulator;
use simtime::{Dur, Time};
use std::sync::atomic::{AtomicUsize, Ordering};
use telemetry::Recorder;

/// An engine instance that can be advanced in bounded slices — the least
/// common denominator the lockstep executor needs from the fluid, rate,
/// and packet simulators.
pub trait ShardEngine: Send {
    /// Advances until every job has completed `iterations` iterations or
    /// `span` of simulated time elapses, whichever comes first. Returns
    /// `true` once all jobs are done. Must be resumable: repeated calls
    /// with smaller spans traverse the exact same event sequence as one
    /// call with the total span.
    fn run_slice(&mut self, iterations: usize, span: Dur) -> bool;

    /// Current simulation time of this shard.
    fn now(&self) -> Time;

    /// `true` once every (non-departed) job completed `iterations`.
    fn done(&self, iterations: usize) -> bool;
}

impl<R: Recorder + Send> ShardEngine for FluidSimulator<R> {
    fn run_slice(&mut self, iterations: usize, span: Dur) -> bool {
        self.run_until_iterations(iterations, span)
    }

    fn now(&self) -> Time {
        FluidSimulator::now(self)
    }

    fn done(&self, iterations: usize) -> bool {
        (0..self.num_jobs()).all(|j| self.departed(j) || self.progress(j).completed() >= iterations)
    }
}

impl<R: Recorder + Send> ShardEngine for RateSimulator<R> {
    fn run_slice(&mut self, iterations: usize, span: Dur) -> bool {
        self.run_until_iterations(iterations, span)
    }

    fn now(&self) -> Time {
        RateSimulator::now(self)
    }

    fn done(&self, iterations: usize) -> bool {
        (0..self.num_jobs()).all(|i| self.departed(i) || self.progress(i).completed() >= iterations)
    }
}

impl<R: Recorder + Send> ShardEngine for PacketSimulator<R> {
    fn run_slice(&mut self, iterations: usize, span: Dur) -> bool {
        self.run_until_iterations(iterations, span)
    }

    fn now(&self) -> Time {
        PacketSimulator::now(self)
    }

    fn done(&self, iterations: usize) -> bool {
        (0..self.num_jobs()).all(|i| self.departed(i) || self.progress(i).completed() >= iterations)
    }
}

/// Advances every shard until all of its jobs complete `iterations`
/// iterations or the shard has simulated `deadline` past where it started,
/// using up to `threads` worker threads. Returns `true` if every shard
/// finished its iterations within the deadline.
///
/// `epoch: None` runs each shard to its deadline in one slice — correct
/// whenever shards are link-disjoint (infinite lookahead). `epoch:
/// Some(d)` inserts a lockstep barrier every `d` of simulated time: no
/// shard starts epoch `k + 1` before every shard has finished epoch `k`.
/// Both policies traverse identical per-shard event sequences (see
/// [`ShardEngine::run_slice`]), so the choice — like `threads` — never
/// shows in the output.
pub fn run_epochs<S: ShardEngine>(
    shards: &mut [S],
    threads: usize,
    iterations: usize,
    deadline: Dur,
    epoch: Option<Dur>,
) -> bool {
    if shards.is_empty() {
        return true;
    }
    // Per-shard absolute stop: shards restored from a snapshot may start at
    // different clocks, and `run_until_iterations` spans are relative.
    let stops: Vec<Time> = shards.iter().map(|s| s.now() + deadline).collect();
    let epoch = epoch.filter(|d| !d.is_zero());
    let start = shards.iter().map(|s| s.now()).min().unwrap();
    let mut barrier = match epoch {
        Some(d) => start + d,
        None => Time::MAX,
    };
    loop {
        // One epoch: every unfinished shard advances to min(barrier, stop).
        let work: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter(|(i, s)| !s.done(iterations) && s.now() < stops[*i])
            .map(|(i, _)| i)
            .collect();
        if work.is_empty() {
            break;
        }
        run_parallel(shards, &work, threads, |i, shard| {
            let stop = stops[i].min(barrier);
            let span = stop.saturating_since(shard.now());
            shard.run_slice(iterations, span);
        });
        match epoch {
            Some(d) if barrier < *stops.iter().max().unwrap() => barrier += d,
            Some(_) => break,
            None => break,
        }
    }
    shards.iter().all(|s| s.done(iterations))
}

/// Runs `f` over the shards named by `work`, fanning out across up to
/// `threads` scoped worker threads pulling indices from a shared cursor.
/// With one thread (or one work item) it degrades to a plain serial loop.
fn run_parallel<S: ShardEngine>(
    shards: &mut [S],
    work: &[usize],
    threads: usize,
    f: impl Fn(usize, &mut S) + Sync,
) {
    let workers = threads.clamp(1, work.len().max(1));
    if workers <= 1 {
        for &i in work {
            f(i, &mut shards[i]);
        }
        return;
    }
    // Hand each worker disjoint `&mut` access by draining the shards into
    // per-slot options; the cursor hands out work indices in order.
    let slots: Vec<std::sync::Mutex<Option<(usize, &mut S)>>> = {
        let mut remaining: Vec<Option<&mut S>> = shards.iter_mut().map(Some).collect();
        work.iter()
            .map(|&i| std::sync::Mutex::new(remaining[i].take().map(|s| (i, s))))
            .collect()
    };
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= slots.len() {
                    break;
                }
                let taken = slots[k].lock().unwrap().take();
                if let Some((i, shard)) = taken {
                    f(i, shard);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{RateJob, RateSimConfig, RateSimulator};
    use dcqcn::CcVariant;
    use telemetry::{BufferRecorder, ForkableRecorder};
    use workload::{JobSpec, Model};

    fn shard_sims(n: usize) -> Vec<RateSimulator<BufferRecorder>> {
        (0..n)
            .map(|i| {
                let spec = JobSpec::reference(Model::Vgg19, 1000 + 100 * i as u32);
                RateSimulator::with_recorder(
                    RateSimConfig::default(),
                    &[RateJob::new(spec, CcVariant::Fair)],
                    BufferRecorder::fork(),
                )
            })
            .collect()
    }

    fn merged_events(sims: Vec<RateSimulator<BufferRecorder>>) -> Vec<telemetry::TimedEvent> {
        let mut parent = BufferRecorder::new();
        parent.join_merged(sims.into_iter().map(|s| s.into_recorder()).collect());
        parent.events().to_vec()
    }

    /// The executor's three knobs — thread count, epoch bound, epoch size —
    /// must be invisible in the merged stream.
    #[test]
    fn threads_and_epochs_do_not_change_merged_output() {
        let runs = [
            (1, None),
            (4, None),
            (1, Some(Dur::from_millis(20))),
            (4, Some(Dur::from_millis(7))),
        ];
        let mut streams = Vec::new();
        for (threads, epoch) in runs {
            let mut sims = shard_sims(3);
            assert!(run_epochs(&mut sims, threads, 4, Dur::from_secs(5), epoch));
            streams.push(merged_events(sims));
        }
        assert!(!streams[0].is_empty());
        for s in &streams[1..] {
            assert_eq!(s, &streams[0], "executor knobs leaked into the output");
        }
    }

    /// Sharded lockstep equals running each shard independently to the
    /// deadline (what an unsharded per-component loop would do).
    #[test]
    fn lockstep_equals_independent_runs() {
        let mut lockstep = shard_sims(2);
        run_epochs(
            &mut lockstep,
            2,
            3,
            Dur::from_secs(5),
            Some(Dur::from_millis(11)),
        );
        let mut independent = shard_sims(2);
        for sim in &mut independent {
            sim.run_until_iterations(3, Dur::from_secs(5));
        }
        assert_eq!(merged_events(lockstep), merged_events(independent));
    }

    #[test]
    fn deadline_bounds_unfinished_shards() {
        let mut sims = shard_sims(1);
        // Far too little simulated time for 1000 iterations.
        assert!(!run_epochs(&mut sims, 1, 1000, Dur::from_millis(5), None));
        assert!(sims[0].now() <= Time::ZERO + Dur::from_millis(6));
    }
}
