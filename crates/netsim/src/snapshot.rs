//! Engine snapshot/restore: versioned state capture at a simulated-time
//! barrier, with restore guaranteed byte-identical to an uninterrupted run.
//!
//! Each engine defines its own snapshot type ([`crate::fluid::FluidSnapshot`],
//! [`crate::rate::RateSnapshot`], [`crate::packet::PacketSnapshot`]) behind
//! the common [`Snapshottable`] trait. A snapshot captures **everything**
//! that feeds future behaviour — job progress and controller state, RNG and
//! chaos stream positions, pending timing-wheel/queue contents (including
//! the FIFO tie-break counter), span-tracker state, and the accumulated
//! traces the experiments read back — so that
//!
//! ```text
//! run(0 → T)  ≡  run(0 → t) + snapshot + restore + run(t → T)
//! ```
//!
//! holds at the telemetry byte level. The recorder itself is *not* part of
//! the snapshot: restore takes a fresh recorder, and callers that need the
//! merged stream replay the prefix recording into it (see
//! `mlcc::parallel::map_forked`).
//!
//! # Barriers
//!
//! A snapshot must be taken at a **simulated-time barrier**: a point where
//! every event due at or before the current clock has been processed.
//! `run_until(t)` always leaves an event-driven engine at one (it drains
//! every event up to `t`, including same-instant reschedules), so that is
//! the API to drive an engine to a fork point. `run_until_iterations` can
//! break on its iteration-count check while a same-instant reschedule is
//! still pending; `snapshot()` detects that and returns
//! [`SnapshotError::MidEventBarrier`] instead of capturing mid-event
//! state. `restore` re-validates the same invariant so a tampered or
//! corrupted snapshot is rejected with the typed error rather than
//! panicking deep inside the event queue.
//!
//! # Versioning
//!
//! Snapshots are in-memory values, but their layout tracks engine
//! internals that change across releases (e.g. the fluid engine's SoA flow
//! arena). Each snapshot carries [`SNAPSHOT_VERSION`]; `restore` rejects a
//! mismatch with a typed error rather than misinterpreting state. Bump the
//! constant whenever captured fields change meaning.

use simtime::Time;
use std::error::Error;
use std::fmt;
use telemetry::Recorder;

/// Current snapshot layout version, shared by all three engines.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be taken or restored. All misuse surfaces as
/// one of these — never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was produced by a different engine layout version.
    VersionMismatch {
        /// The version this build understands ([`SNAPSHOT_VERSION`]).
        expected: u32,
        /// The version carried by the snapshot.
        found: u32,
    },
    /// The snapshot is not at a clean simulated-time barrier: an event is
    /// still pending at or before the captured clock. Restoring it would
    /// re-process (or skip) work an uninterrupted run already did.
    MidEventBarrier {
        /// The earliest pending event's firing time.
        pending_at: Time,
        /// The snapshot's clock.
        now: Time,
    },
    /// The snapshot's internal structure is inconsistent (e.g. SoA column
    /// lengths disagree) — it was corrupted or hand-built.
    Malformed {
        /// Which invariant failed.
        what: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::VersionMismatch { expected, found } => write!(
                f,
                "snapshot version {found} does not match this engine's version {expected}"
            ),
            SnapshotError::MidEventBarrier { pending_at, now } => write!(
                f,
                "snapshot is mid-event: an event is pending at {pending_at:?} \
                 but the snapshot clock is already {now:?}"
            ),
            SnapshotError::Malformed { what } => {
                write!(f, "snapshot is malformed: {what}")
            }
        }
    }
}

impl Error for SnapshotError {}

/// Engines that can capture and resume their complete simulation state.
///
/// The type parameter is the recorder the restored engine will record
/// into; the snapshot itself is recorder-free.
pub trait Snapshottable<R: Recorder>: Sized {
    /// The engine-specific state capture.
    type Snapshot: Clone + Send + 'static;

    /// Captures the engine's complete state at the current simulated-time
    /// barrier. Cheap: near-memcpy of the engine's vectors plus a clone of
    /// the pending event queue.
    fn snapshot(&self) -> Result<Self::Snapshot, SnapshotError>;

    /// Rebuilds an engine from `snap`, recording into `rec`. The restored
    /// engine's future behaviour — events popped, bytes delivered, RNG
    /// draws, telemetry emitted — is byte-identical to the engine the
    /// snapshot was taken from.
    fn restore(snap: Self::Snapshot, rec: R) -> Result<Self, SnapshotError>;
}

/// Validates the version field shared by every snapshot type.
pub(crate) fn check_version(found: u32) -> Result<(), SnapshotError> {
    if found != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            expected: SNAPSHOT_VERSION,
            found,
        });
    }
    Ok(())
}

/// Validates the barrier invariant shared by every queue-backed snapshot.
pub(crate) fn check_barrier(pending: Option<Time>, now: Time) -> Result<(), SnapshotError> {
    match pending {
        Some(pending_at) if pending_at <= now => {
            Err(SnapshotError::MidEventBarrier { pending_at, now })
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let v = SnapshotError::VersionMismatch {
            expected: SNAPSHOT_VERSION,
            found: 99,
        };
        assert!(v.to_string().contains("99"));
        let b = SnapshotError::MidEventBarrier {
            pending_at: Time::from_nanos(5),
            now: Time::from_nanos(9),
        };
        assert!(b.to_string().contains("pending"));
        let m = SnapshotError::Malformed { what: "flow arena" };
        assert!(m.to_string().contains("flow arena"));
    }

    #[test]
    fn version_and_barrier_checks() {
        assert!(check_version(SNAPSHOT_VERSION).is_ok());
        assert_eq!(
            check_version(0),
            Err(SnapshotError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: 0
            })
        );
        assert!(check_barrier(None, Time::from_nanos(10)).is_ok());
        assert!(check_barrier(Some(Time::from_nanos(11)), Time::from_nanos(10)).is_ok());
        assert!(check_barrier(Some(Time::from_nanos(10)), Time::from_nanos(10)).is_err());
    }
}
