//! Compatibility-aware cluster scheduling (§4–§5 of the paper).
//!
//! The paper argues ML schedulers must treat **job compatibility on network
//! links** as a first-class placement input, alongside free GPUs: profile
//! each job in isolation, learn which links each candidate placement would
//! share, run the geometric-abstraction solver, and prefer placements whose
//! link-mates are fully compatible. Once placed, the operator engineers the
//! "desirable side effect of unfairness" with one of three mechanisms:
//! unfair congestion control, switch priority queues, or precise flow
//! scheduling.
//!
//! This crate implements that pipeline:
//!
//! * [`profiler`] — turns a [`workload::JobSpec`] into the geometry
//!   crate's [`geometry::Profile`], either analytically or by *measuring* a
//!   solo run in the fluid simulator (how a real scheduler would profile);
//! * [`placement`] — a two-tier-cluster scheduler with two policies:
//!   `LocalityOnly` (Themis-style: pack into the fewest racks, ignore
//!   compatibility) and `CompatibilityAware` (among feasible placements,
//!   require/prefer geometric compatibility on every shared uplink);
//! * [`mechanisms`] — priority assignment for §4.ii (unique classes under
//!   a limited number of switch queues) and flow-schedule (gate)
//!   extraction from solver rotations for §4.iii;
//! * [`tuner`] — the §5 hyper-parameter opportunity: adjust a job's batch
//!   size (within an operator-set tolerance) until its circle rotates
//!   cleanly into its link-mates'.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mechanisms;
pub mod placement;
pub mod profiler;
pub mod tuner;

pub use mechanisms::{assign_priorities, gates_from_rotations, PriorityError};
pub use placement::{
    ClusterScheduler, PlacedJob, PlacementError, PlacementPolicy, SchedulerConfig,
};
pub use profiler::{
    analytic_profile, gating_profiles, gating_profiles_with_stretch, measured_profile,
    measured_profile_traced,
};
pub use tuner::{tune_batch_for_compatibility, TuneResult};
