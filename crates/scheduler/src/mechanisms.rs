//! §4 mechanisms: priority assignment and flow-schedule extraction.

use geometry::{Profile, Rotation};
use netsim::fluid::Gate;
use simtime::Dur;

/// Why priorities could not be assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriorityError {
    /// More jobs share a link than the switch has priority queues — the
    /// §4.ii caveat: "today's switches support a few priority queues".
    NotEnoughQueues {
        /// Jobs needing distinct classes.
        jobs: usize,
        /// Queues the switch offers.
        queues: usize,
    },
}

impl std::fmt::Display for PriorityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PriorityError::NotEnoughQueues { jobs, queues } => write!(
                f,
                "{jobs} jobs share a link but the switch has only {queues} priority queues"
            ),
        }
    }
}

impl std::error::Error for PriorityError {}

/// Assigns a unique priority class to each of `jobs` jobs sharing a link
/// (§4.ii). Per the paper, *which* job gets which priority is arbitrary as
/// long as classes are unique — we hand out descending classes in job
/// order. Fails if the switch has fewer queues than jobs.
pub fn assign_priorities(jobs: usize, queues: usize) -> Result<Vec<u8>, PriorityError> {
    if jobs > queues {
        return Err(PriorityError::NotEnoughQueues { jobs, queues });
    }
    Ok((0..jobs).map(|j| (queues - 1 - j) as u8).collect())
}

/// Converts solver rotations into communication-phase release gates
/// (§4.iii): "the output of our optimization formulation provides an angle
/// of rotation for each job … this angle corresponds to a time-shift for
/// the communication phase of a job."
///
/// For job `j` with profile period `P_j`, natural communication start
/// `c_j` (its first arc's start), rotation shift `σ_j` and cluster start
/// offset `o_j`, the gate releases communication at instants
/// `t ≡ o_j + c_j + σ_j (mod P_j)`.
///
/// # Panics
/// Panics if the slice lengths differ or a profile has no arcs.
pub fn gates_from_rotations(
    profiles: &[Profile],
    rotations: &[Rotation],
    start_offsets: &[Dur],
) -> Vec<Option<Gate>> {
    assert_eq!(profiles.len(), rotations.len(), "length mismatch");
    assert_eq!(profiles.len(), start_offsets.len(), "length mismatch");
    profiles
        .iter()
        .zip(rotations)
        .zip(start_offsets)
        .map(|((p, r), &o)| {
            let first_arc = p
                .arcs()
                .first()
                .expect("profile must have a communication arc");
            let offset = (o + first_arc.start + r.shift) % p.period();
            Some(Gate {
                offset,
                period: p.period(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Time;

    #[test]
    fn priorities_are_unique_and_fit() {
        let p = assign_priorities(3, 8).unwrap();
        assert_eq!(p.len(), 3);
        let set: std::collections::HashSet<u8> = p.iter().copied().collect();
        assert_eq!(set.len(), 3, "classes must be unique");
        assert_eq!(p[0], 7, "first job gets the top class");
        assert!(p.iter().all(|&c| (c as usize) < 8));
    }

    #[test]
    fn too_many_jobs_fail() {
        let err = assign_priorities(9, 8).unwrap_err();
        assert_eq!(err, PriorityError::NotEnoughQueues { jobs: 9, queues: 8 });
        assert!(err.to_string().contains("9 jobs"));
    }

    #[test]
    fn boundary_exactly_fits() {
        let p = assign_priorities(8, 8).unwrap();
        assert_eq!(p.len(), 8);
        let set: std::collections::HashSet<u8> = p.iter().copied().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn gates_realize_rotations() {
        // Job: compute 60, comm 40 (period 100); rotated by 30.
        let p = Profile::compute_then_comm(Dur::from_millis(60), Dur::from_millis(40));
        let rot = Rotation {
            sectors: 0, // not used here
            shift: Dur::from_millis(30),
            degrees: 108.0,
        };
        let gates = gates_from_rotations(&[p], &[rot], &[Dur::ZERO]);
        let g = gates[0].unwrap();
        assert_eq!(g.period, Dur::from_millis(100));
        // Comm naturally starts at 60; shifted by 30 → released at 90 mod 100.
        assert_eq!(g.offset, Dur::from_millis(90));
        let t = |ms: u64| Time::from_nanos(ms * 1_000_000);
        assert_eq!(g.next_release(t(0)), t(90));
        assert_eq!(g.next_release(t(91)), t(190));
    }

    #[test]
    fn gate_offsets_wrap_the_period() {
        let p = Profile::compute_then_comm(Dur::from_millis(80), Dur::from_millis(20));
        let rot = Rotation {
            sectors: 0,
            shift: Dur::from_millis(50),
            degrees: 180.0,
        };
        // Start offset 10: 10 + 80 + 50 = 140 ≡ 40 (mod 100).
        let gates = gates_from_rotations(&[p], &[rot], &[Dur::from_millis(10)]);
        assert_eq!(gates[0].unwrap().offset, Dur::from_millis(40));
    }
}
