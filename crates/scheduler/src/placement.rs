//! Placement: locality-only baseline vs compatibility-aware scheduling.
//!
//! The cluster model is a two-tier Clos ([`topology::builders::TwoTier`])
//! with whole-host workers (the paper assumes GPUs are not shared, §5).
//! A job that fits in one rack touches no shared fabric link; a job split
//! across racks runs an inter-rack ring over its racks' ToR uplinks, and
//! every hop of that ring carries the job's full calibrated communication
//! volume — those uplinks are where cross-job contention happens and where
//! compatibility matters.
//!
//! Two policies:
//!
//! * [`PlacementPolicy::LocalityOnly`] — today's schedulers (Themis,
//!   Gandiva…): prefer one rack, otherwise split over the fewest racks,
//!   never looking at who else is on the uplinks.
//! * [`PlacementPolicy::CompatibilityAware`] — the paper's proposal: among
//!   feasible placements, prefer one rack; otherwise evaluate each split
//!   with the geometric-abstraction solver over the *closure* of affected
//!   links and jobs (§5: compatibility must hold across all links) and
//!   pick a split whose link-mates are fully compatible, falling back to
//!   the least-overlap split when none is.

use crate::profiler::analytic_profile;
use geometry::{cluster::ClusterInstance, solve_cluster, Profile, SolverConfig, Verdict};
use netsim::fluid::{FlowSpec, FluidJob};
use simtime::{Bandwidth, Dur};
use std::collections::BTreeMap;
use topology::builders::TwoTier;
use topology::LinkId;
use workload::JobSpec;

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Fewest racks, first fit; compatibility ignored (the baseline).
    LocalityOnly,
    /// Fewest racks, but cross-rack splits must be geometrically
    /// compatible with their link-mates when possible.
    CompatibilityAware,
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// Geometry solver settings for compatibility checks.
    pub solver: SolverConfig,
    /// Period quantization grid for profiles (see
    /// [`geometry::quantize_period`]).
    pub grid: Dur,
    /// NIC / uplink line rate used for profiling.
    pub nic: Bandwidth,
    /// Batch-tuning tolerance (§5 "impact of hyper-parameters"): when no
    /// candidate placement is compatible as-requested, the scheduler may
    /// adjust the arriving job's batch size by up to this fraction to
    /// harmonize its period with its link-mates. `None` disables tuning.
    pub tune_tolerance: Option<f64>,
}

impl SchedulerConfig {
    /// Compatibility-aware defaults: 720 sectors, 2.5 ms grid, 50 Gbps.
    pub fn compatibility_aware() -> SchedulerConfig {
        SchedulerConfig {
            policy: PlacementPolicy::CompatibilityAware,
            solver: SolverConfig::default(),
            grid: Dur::from_micros(2_500),
            nic: Bandwidth::from_gbps(50),
            tune_tolerance: None,
        }
    }

    /// Compatibility-aware placement with batch tuning enabled.
    pub fn compatibility_aware_with_tuning(tolerance: f64) -> SchedulerConfig {
        SchedulerConfig {
            tune_tolerance: Some(tolerance),
            ..SchedulerConfig::compatibility_aware()
        }
    }

    /// The locality-only baseline with the same solver/grid settings.
    pub fn locality_only() -> SchedulerConfig {
        SchedulerConfig {
            policy: PlacementPolicy::LocalityOnly,
            ..SchedulerConfig::compatibility_aware()
        }
    }
}

/// Why a job could not be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The cluster does not have enough free hosts in total.
    NotEnoughHosts {
        /// Hosts the job needs.
        needed: usize,
        /// Hosts currently free.
        free: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NotEnoughHosts { needed, free } => {
                write!(f, "job needs {needed} hosts, only {free} free")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A job the scheduler has placed.
#[derive(Debug, Clone)]
pub struct PlacedJob {
    /// The job as placed (its batch may have been tuned).
    pub spec: JobSpec,
    /// The batch size the user requested (differs from `spec.batch` only
    /// when the scheduler tuned it for compatibility).
    pub requested_batch: u32,
    /// Hosts per rack: `(rack index, host count)`.
    pub racks: Vec<(usize, usize)>,
    /// Directed fabric links (uplinks and downlinks) the job's inter-rack
    /// ring traverses. Empty for single-rack jobs.
    pub links: Vec<LinkId>,
    /// Its quantized circle, used for compatibility checks.
    pub profile: Profile,
}

impl PlacedJob {
    /// `true` if the job fits in one rack (no fabric traffic).
    pub fn is_single_rack(&self) -> bool {
        self.racks.len() <= 1
    }
}

struct Candidate {
    racks: Vec<(usize, usize)>,
    /// Per ring hop: the directed links it traverses.
    hops: Vec<Vec<LinkId>>,
}

/// The cluster scheduler.
pub struct ClusterScheduler {
    fabric: TwoTier,
    cfg: SchedulerConfig,
    free: Vec<usize>,
    placed: Vec<PlacedJob>,
}

impl ClusterScheduler {
    /// A scheduler over `fabric` with the given configuration.
    pub fn new(fabric: TwoTier, cfg: SchedulerConfig) -> ClusterScheduler {
        let free = fabric.hosts.iter().map(|r| r.len()).collect();
        ClusterScheduler {
            fabric,
            cfg,
            free,
            placed: Vec::new(),
        }
    }

    /// Jobs placed so far, in submission order.
    pub fn placed(&self) -> &[PlacedJob] {
        &self.placed
    }

    /// Free hosts per rack.
    pub fn free_hosts(&self) -> &[usize] {
        &self.free
    }

    /// The fabric this scheduler manages.
    pub fn fabric(&self) -> &TwoTier {
        &self.fabric
    }

    /// Which placed jobs use each contended fabric link (links with ≥ 2
    /// jobs).
    pub fn contended_links(&self) -> BTreeMap<LinkId, Vec<usize>> {
        let mut map: BTreeMap<LinkId, Vec<usize>> = BTreeMap::new();
        for (j, pj) in self.placed.iter().enumerate() {
            for &l in &pj.links {
                map.entry(l).or_default().push(j);
            }
        }
        map.retain(|_, jobs| jobs.len() >= 2);
        map
    }

    /// Removes a completed/cancelled job, returning its hosts to the free
    /// pool. Later jobs keep their indices minus the shift (indices in
    /// previously-returned values are invalidated — callers tracking jobs
    /// across churn should re-read [`ClusterScheduler::placed`]).
    ///
    /// # Panics
    /// Panics if `job` is out of range.
    pub fn remove(&mut self, job: usize) -> PlacedJob {
        assert!(job < self.placed.len(), "remove: unknown job {job}");
        let pj = self.placed.remove(job);
        for &(r, n) in &pj.racks {
            self.free[r] += n;
        }
        pj
    }

    /// Places a job. Returns its index in [`ClusterScheduler::placed`].
    pub fn submit(&mut self, spec: JobSpec) -> Result<usize, PlacementError> {
        let needed = spec.workers as usize;
        let free_total: usize = self.free.iter().sum();
        if needed > free_total {
            return Err(PlacementError::NotEnoughHosts {
                needed,
                free: free_total,
            });
        }
        let requested_batch = spec.batch;
        let mut spec = spec;
        let mut profile = analytic_profile(&spec, self.cfg.nic, self.cfg.grid);
        let candidates = self.candidates(needed);
        debug_assert!(!candidates.is_empty(), "free-count check guarantees one");
        let (chosen, compatible) = match self.cfg.policy {
            PlacementPolicy::LocalityOnly => (0, true),
            PlacementPolicy::CompatibilityAware => self.pick_compatible(&candidates, &profile),
        };
        // §5 tuning fallback: no candidate was compatible as-requested, so
        // try to harmonize the job's batch with the chosen candidate's
        // closure (conservatively treated as one shared link).
        if !compatible {
            if let Some(tolerance) = self.cfg.tune_tolerance {
                let residents = self.closure_profiles(&candidates[chosen]);
                if let Some(tuned) = crate::tuner::tune_batch_for_compatibility(
                    &spec,
                    &residents,
                    self.cfg.nic,
                    self.cfg.grid,
                    &self.cfg.solver,
                    tolerance,
                ) {
                    spec = tuned.spec;
                    profile = analytic_profile(&spec, self.cfg.nic, self.cfg.grid);
                }
            }
        }
        let cand = &candidates[chosen];
        for &(r, n) in &cand.racks {
            self.free[r] -= n;
        }
        let links: Vec<LinkId> = cand.hops.iter().flatten().copied().collect();
        self.placed.push(PlacedJob {
            spec,
            requested_batch,
            racks: cand.racks.clone(),
            links,
            profile,
        });
        Ok(self.placed.len() - 1)
    }

    /// Profiles of every placed job in the closure of `cand`'s links.
    fn closure_profiles(&self, cand: &Candidate) -> Vec<Profile> {
        let links: Vec<LinkId> = cand.hops.iter().flatten().copied().collect();
        self.placed
            .iter()
            .filter(|pj| pj.links.iter().any(|l| links.contains(l)))
            .map(|pj| pj.profile.clone())
            .collect()
    }

    /// Enumerates placement candidates, best-locality first: single racks
    /// (tightest fit first), then two-rack splits, then a greedy many-rack
    /// split as a last resort.
    fn candidates(&self, needed: usize) -> Vec<Candidate> {
        let mut out = Vec::new();
        // Single racks, tightest feasible first (best-fit).
        let mut single: Vec<usize> = (0..self.free.len())
            .filter(|&r| self.free[r] >= needed)
            .collect();
        single.sort_by_key(|&r| self.free[r]);
        for r in single {
            out.push(Candidate {
                racks: vec![(r, needed)],
                hops: Vec::new(),
            });
        }
        // Two-rack splits (fill the first rack, remainder in the second),
        // one candidate per spine choice so the compatibility policy can
        // route around an incompatible link-mate.
        for a in 0..self.free.len() {
            for b in 0..self.free.len() {
                if a == b || self.free[a] == 0 || self.free[a] >= needed {
                    continue;
                }
                let rest = needed - self.free[a];
                if self.free[b] >= rest {
                    for spine in 0..self.fabric.spines.len() {
                        let racks = vec![(a, self.free[a]), (b, rest)];
                        let hops = self.ring_hops(&[a, b], spine);
                        out.push(Candidate { racks, hops });
                    }
                }
            }
        }
        // Greedy many-rack split.
        if out.is_empty() {
            let mut order: Vec<usize> = (0..self.free.len()).collect();
            order.sort_by_key(|&r| std::cmp::Reverse(self.free[r]));
            let mut racks = Vec::new();
            let mut left = needed;
            for r in order {
                if left == 0 {
                    break;
                }
                let take = self.free[r].min(left);
                if take > 0 {
                    racks.push((r, take));
                    left -= take;
                }
            }
            debug_assert_eq!(left, 0);
            let rack_ids: Vec<usize> = racks.iter().map(|&(r, _)| r).collect();
            for spine in 0..self.fabric.spines.len() {
                let hops = self.ring_hops(&rack_ids, spine);
                out.push(Candidate {
                    racks: racks.clone(),
                    hops,
                });
            }
        }
        out
    }

    /// The directed links of an inter-rack ring over `racks` through the
    /// given spine.
    fn ring_hops(&self, racks: &[usize], spine: usize) -> Vec<Vec<LinkId>> {
        if racks.len() < 2 {
            return Vec::new();
        }
        let t = &self.fabric.topology;
        let mut hops = Vec::with_capacity(racks.len());
        let ring: Vec<usize> = racks.to_vec();
        for (i, &ra) in ring.iter().enumerate() {
            let rb = ring[(i + 1) % ring.len()];
            let up = self.fabric.uplinks[ra][spine];
            // Find the spine→tor_b downlink: the link from spines[spine]
            // to tors[rb].
            let down = t
                .out_links(self.fabric.spines[spine])
                .iter()
                .copied()
                .find(|&l| t.link(l).dst == self.fabric.tors[rb])
                .expect("two-tier fabric is fully connected");
            hops.push(vec![up, down]);
        }
        hops
    }

    /// Index of the best candidate under compatibility-aware policy and
    /// whether it is fully compatible.
    fn pick_compatible(&self, candidates: &[Candidate], profile: &Profile) -> (usize, bool) {
        let mut best_overlap = f64::INFINITY;
        let mut best_idx = 0;
        for (ci, cand) in candidates.iter().enumerate() {
            if cand.hops.is_empty() {
                return (ci, true); // single rack: no fabric contention
            }
            match self.check_candidate(cand, profile) {
                Verdict::Compatible { .. } => return (ci, true),
                v => {
                    let o = v.overlap_fraction();
                    if o < best_overlap {
                        best_overlap = o;
                        best_idx = ci;
                    }
                }
            }
        }
        (best_idx, false)
    }

    /// Solves the cluster-compatibility instance induced by hypothetically
    /// adding `cand` (with `profile`), over the closure of affected links
    /// and jobs (§5).
    fn check_candidate(&self, cand: &Candidate, profile: &Profile) -> Verdict {
        // Closure: start from the candidate's links; pull in every placed
        // job touching them; pull in every link those jobs touch; repeat.
        let mut links: Vec<LinkId> = cand.hops.iter().flatten().copied().collect();
        links.sort_unstable();
        links.dedup();
        let mut jobs: Vec<usize> = Vec::new();
        loop {
            let mut grew = false;
            for (j, pj) in self.placed.iter().enumerate() {
                if !jobs.contains(&j) && pj.links.iter().any(|l| links.contains(l)) {
                    jobs.push(j);
                    grew = true;
                }
            }
            for &j in &jobs {
                for &l in &self.placed[j].links {
                    if !links.contains(&l) {
                        links.push(l);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        // Build the instance: closure jobs plus the new job (last index).
        let mut profiles: Vec<Profile> = jobs
            .iter()
            .map(|&j| self.placed[j].profile.clone())
            .collect();
        profiles.push(profile.clone());
        let new_idx = profiles.len() - 1;
        let cand_links: Vec<LinkId> = cand.hops.iter().flatten().copied().collect();
        let link_jobs: Vec<Vec<usize>> = links
            .iter()
            .map(|&l| {
                let mut on_link: Vec<usize> = jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, &j)| self.placed[j].links.contains(&l))
                    .map(|(local, _)| local)
                    .collect();
                if cand_links.contains(&l) {
                    on_link.push(new_idx);
                }
                on_link
            })
            .filter(|on_link| on_link.len() >= 2)
            .collect();
        if link_jobs.is_empty() {
            // Nobody to conflict with.
            return Verdict::Compatible {
                rotations: Vec::new(),
                slack_fraction: 1.0,
            };
        }
        let inst = ClusterInstance::new(profiles, link_jobs);
        match solve_cluster(&inst, &self.cfg.solver) {
            Ok(v) => v,
            Err(_) => Verdict::Inconclusive {
                best_overlap_fraction: 1.0,
            },
        }
    }

    /// Builds fluid-simulator jobs for the current placement. Single-rack
    /// jobs have no fabric flows and run at solo pace by construction, so
    /// they are modelled with an uncontended private path (no links).
    pub fn fluid_jobs(&self) -> Vec<FluidJob> {
        self.placed
            .iter()
            .map(|pj| {
                if pj.links.is_empty() {
                    FluidJob::single_path(pj.spec, Vec::new())
                } else {
                    let hops = pj.links.chunks(2); // [up, down] pairs
                    let k = pj.links.len() / 2;
                    let flows: Vec<FlowSpec> = hops
                        .map(|pair| FlowSpec {
                            links: pair.to_vec(),
                            fraction: 1.0 / k as f64,
                        })
                        .collect();
                    let total = pj.spec.comm_bytes().as_bytes() as f64 * k as f64;
                    FluidJob {
                        spec: pj.spec,
                        start_offset: Dur::ZERO,
                        flows,
                        total_bytes_override: Some(total),
                        noise: None,
                        depart_at: None,
                    }
                }
            })
            .collect()
    }

    /// Solves the cluster instance for the *current* placement (all
    /// contended links) — used to extract rotations for §4.iii gates.
    pub fn cluster_verdict(&self) -> Verdict {
        let contended = self.contended_links();
        if contended.is_empty() {
            return Verdict::Compatible {
                rotations: vec![
                    geometry::Rotation {
                        sectors: 0,
                        shift: Dur::ZERO,
                        degrees: 0.0,
                    };
                    self.placed.len()
                ],
                slack_fraction: 1.0,
            };
        }
        let profiles: Vec<Profile> = self.placed.iter().map(|p| p.profile.clone()).collect();
        let links: Vec<Vec<usize>> = contended.values().cloned().collect();
        let inst = ClusterInstance::new(profiles, links);
        solve_cluster(&inst, &self.cfg.solver).unwrap_or(Verdict::Inconclusive {
            best_overlap_fraction: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::builders::two_tier;
    use workload::Model;

    fn fabric(racks: usize, hosts: usize) -> TwoTier {
        two_tier(
            racks,
            hosts,
            2,
            Bandwidth::from_gbps(50),
            Bandwidth::from_gbps(50),
            Dur::ZERO,
        )
    }

    fn sched(racks: usize, hosts: usize, policy: PlacementPolicy) -> ClusterScheduler {
        let cfg = match policy {
            PlacementPolicy::LocalityOnly => SchedulerConfig::locality_only(),
            PlacementPolicy::CompatibilityAware => SchedulerConfig::compatibility_aware(),
        };
        ClusterScheduler::new(fabric(racks, hosts), cfg)
    }

    #[test]
    fn single_rack_preferred_by_both_policies() {
        for policy in [
            PlacementPolicy::LocalityOnly,
            PlacementPolicy::CompatibilityAware,
        ] {
            let mut s = sched(3, 4, policy);
            let j = s.submit(JobSpec::reference(Model::Vgg16, 1400)).unwrap();
            let pj = &s.placed()[j];
            assert!(pj.is_single_rack(), "{policy:?} should pack one rack");
            assert!(pj.links.is_empty());
            assert_eq!(pj.racks[0].1, 2);
        }
    }

    #[test]
    fn best_fit_picks_tightest_rack() {
        let mut s = sched(3, 4, PlacementPolicy::LocalityOnly);
        // Occupy rack 0 partially so it has exactly 2 free.
        let filler = JobSpec::reference(Model::ResNet50, 1600); // 2 workers
        s.submit(filler).unwrap();
        assert_eq!(s.free_hosts()[0], 2);
        // A 2-worker job should slot into rack 0 (tightest), not rack 1.
        let j = s.submit(JobSpec::reference(Model::Vgg16, 1400)).unwrap();
        assert_eq!(s.placed()[j].racks, vec![(0, 2)]);
    }

    #[test]
    fn split_job_uses_uplinks() {
        let mut s = sched(2, 2, PlacementPolicy::LocalityOnly);
        let big = JobSpec {
            workers: 3,
            ..JobSpec::reference(Model::Vgg16, 1400)
        };
        let j = s.submit(big).unwrap();
        let pj = &s.placed()[j];
        assert_eq!(pj.racks.len(), 2);
        assert_eq!(pj.links.len(), 4, "two hops × (up + down)");
        // Fluid jobs carry 2× the calibrated bytes over 2 hops.
        let fj = &s.fluid_jobs()[j];
        assert_eq!(fj.flows.len(), 2);
        let expect = big.comm_bytes().as_bytes() as f64 * 2.0;
        assert_eq!(fj.total_bytes_override, Some(expect));
    }

    #[test]
    fn not_enough_hosts_errors() {
        let mut s = sched(2, 2, PlacementPolicy::LocalityOnly);
        let huge = JobSpec {
            workers: 5,
            ..JobSpec::reference(Model::Vgg16, 1400)
        };
        assert_eq!(
            s.submit(huge),
            Err(PlacementError::NotEnoughHosts { needed: 5, free: 4 })
        );
    }

    /// The paper's placement argument in miniature: a split job must share
    /// uplinks with a resident split job. The compatibility-aware policy
    /// picks a spine/rack combination whose resident is compatible; the
    /// locality-only policy grabs the first split it sees.
    #[test]
    fn compatibility_aware_avoids_incompatible_linkmates() {
        // 4 racks × 2 hosts. Pre-place an incompatible-heavy resident
        // (BERT: 73% comm) split across racks 0-1 on spine 0, and a
        // compatible resident (ResNet50: 13% comm) split across racks 2-3.
        let mk = |policy| {
            let mut s = sched(5, 2, policy);
            let bert3 = JobSpec {
                workers: 3,
                ..JobSpec::reference(Model::BertLarge, 8)
            };
            s.submit(bert3).unwrap(); // racks 0+1 (first fill), spine 0
            let rn3 = JobSpec {
                workers: 3,
                ..JobSpec::reference(Model::ResNet50, 1600)
            };
            s.submit(rn3).unwrap(); // racks 2+3, spine 1
                                    // Now 4 racks have 2,0... recompute: rack0 had 2 → bert took
                                    // 2 from rack0? workers=3: rack0 (2) + rack1 (1). rn3: rack1
                                    // has 1 free → candidates differ; assert below on actual state.
            s
        };
        let comp = mk(PlacementPolicy::CompatibilityAware);
        let loc = mk(PlacementPolicy::LocalityOnly);
        // Submit a VGG16 pair-filler that must split and share some uplink.
        let vgg3 = JobSpec {
            workers: 3,
            ..JobSpec::reference(Model::Vgg16, 1400)
        };
        let mut comp = comp;
        let mut loc = loc;
        let jc = comp.submit(vgg3).unwrap();
        let jl = loc.submit(vgg3).unwrap();
        // Both must have split somewhere.
        assert!(!comp.placed()[jc].is_single_rack());
        assert!(!loc.placed()[jl].is_single_rack());
        // The compatibility-aware cluster as a whole must be solvable.
        let v = comp.cluster_verdict();
        assert!(
            v.is_compatible(),
            "compatibility-aware placement left an unsolvable cluster: {v:?}"
        );
    }

    /// Churn: departures free hosts, and the freed capacity is reused for
    /// later arrivals without disturbing residents.
    #[test]
    fn churn_frees_and_reuses_hosts() {
        let mut s = sched(3, 2, PlacementPolicy::CompatibilityAware);
        let j2 = JobSpec::reference(Model::Vgg16, 1400); // 2 workers
        let a = s.submit(j2).unwrap();
        let _b = s.submit(j2).unwrap();
        let _c = s.submit(j2).unwrap();
        assert_eq!(s.free_hosts().iter().sum::<usize>(), 0);
        // Cluster full: a fourth job is refused.
        assert!(matches!(
            s.submit(j2),
            Err(PlacementError::NotEnoughHosts { .. })
        ));
        // Job `a` departs; its rack frees up and a new job lands there.
        let gone = s.remove(a);
        assert_eq!(gone.spec, j2);
        assert_eq!(s.free_hosts().iter().sum::<usize>(), 2);
        let d = s.submit(JobSpec::reference(Model::ResNet50, 1600)).unwrap();
        assert!(s.placed()[d].is_single_rack());
        assert_eq!(s.placed().len(), 3);
    }

    /// §5 tuning in the placement loop: an arriving job whose period is
    /// incommensurate with its forced link-mate gets its batch adjusted
    /// (within tolerance) so the cluster stays compatible.
    ///
    /// Setup: 3 racks × 2 hosts, ONE spine — a 3-worker resident
    /// (WideResNet, period 272.5 ms at 3-worker ring volume) occupies
    /// racks 0-1, and a 3-worker VGG16 must split across racks 1-2,
    /// sharing the spine uplinks. At batch 1250 the VGG16 period is
    /// 277.5 ms (incommensurate); the harmonizing batch is ≈1198
    /// (−4%), within a 10% tolerance.
    #[test]
    fn tuning_fallback_harmonizes_batch() {
        let run = |tolerance: Option<f64>| {
            let fabric = two_tier(
                3,
                2,
                1,
                Bandwidth::from_gbps(50),
                Bandwidth::from_gbps(50),
                Dur::ZERO,
            );
            let mut cfg = SchedulerConfig::compatibility_aware();
            cfg.tune_tolerance = tolerance;
            let mut s = ClusterScheduler::new(fabric, cfg);
            let wrn = JobSpec {
                workers: 3,
                ..JobSpec::reference(Model::WideResNet50, 800)
            };
            s.submit(wrn).unwrap(); // racks (0, 1), the only spine
            let vgg = JobSpec {
                workers: 3,
                ..JobSpec::reference(Model::Vgg16, 1250)
            };
            let j = s.submit(vgg).unwrap(); // racks (1, 2): shares uplinks
            (s.placed()[j].clone(), s.cluster_verdict())
        };
        let (untuned, v_untuned) = run(None);
        assert_eq!(untuned.spec.batch, 1250, "no tuning without tolerance");
        assert!(!untuned.is_single_rack());
        assert!(!v_untuned.is_compatible(), "batch 1250 should clash");
        let (tuned, v_tuned) = run(Some(0.1));
        assert_ne!(tuned.spec.batch, 1250, "tuning should adjust the batch");
        assert_eq!(tuned.requested_batch, 1250);
        assert!(
            (tuned.spec.batch as i64 - 1250).unsigned_abs() as f64 <= 125.0,
            "change within tolerance: {}",
            tuned.spec.batch
        );
        assert!(
            v_tuned.is_compatible(),
            "tuned cluster should be compatible: {v_tuned:?}"
        );
    }

    #[test]
    fn contended_links_report() {
        let mut s = sched(2, 3, PlacementPolicy::LocalityOnly);
        let split = JobSpec {
            workers: 4,
            ..JobSpec::reference(Model::Vgg16, 1400)
        };
        s.submit(split).unwrap(); // racks (3, 1): uses uplinks
                                  // One split job alone: no *contended* links.
        assert!(s.contended_links().is_empty());
        let small = JobSpec::reference(Model::ResNet50, 1600); // 2 workers
        let j = s.submit(small).unwrap();
        assert!(s.placed()[j].is_single_rack()); // fits in rack 1's 2 free
        assert!(s.contended_links().is_empty());
        // cluster_verdict with no contention: trivially compatible.
        assert!(s.cluster_verdict().is_compatible());
    }
}
