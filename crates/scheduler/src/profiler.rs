//! Job profiling: from a job specification to its circle.
//!
//! §4 of the paper: "the ML scheduler should first profile each ML training
//! job in isolation to measure its iteration time, communication pattern,
//! and bandwidth demand." Two profilers are provided:
//!
//! * [`analytic_profile`] — directly from the calibrated model zoo
//!   (instant; what the scheduler uses in the large-scale experiments);
//! * [`measured_profile`] — actually runs the job alone in the fluid
//!   simulator for a few iterations and reads the phases off the run,
//!   demonstrating the full profiling loop a production scheduler would
//!   use. The two must agree (there is a test for that).

use geometry::{quantize_period, Profile};
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use simtime::{Bandwidth, Dur};
use topology::builders::dumbbell;
use workload::JobSpec;

/// The analytic circle of a job at a given NIC rate, with the period
/// snapped to `grid` (see [`geometry::quantize_period`]) so that sets of
/// jobs produce tractable unified-circle perimeters.
///
/// Communication arcs keep their true lengths (one arc per pipelined
/// burst; monolithic jobs get a single arc); quantization slack lands
/// after the last arc, where the solver treats time as free anyway.
pub fn analytic_profile(spec: &JobSpec, nic: Bandwidth, grid: Dur) -> Profile {
    let plan = spec.phase_plan();
    let mut arcs = Vec::with_capacity(plan.len());
    let mut cursor = Dur::ZERO;
    for (compute, bytes) in plan {
        cursor += compute;
        let burst = nic.time_to_send(simtime::ByteSize::from_bytes(bytes.round() as u64));
        arcs.push(geometry::Arc {
            start: cursor,
            end: cursor + burst,
        });
        cursor += burst;
    }
    // Snap the period to the grid (un-aligned periods make unified-circle
    // LCMs astronomically large). When nearest-rounding lands just below
    // the arcs' end, slide every arc earlier by the overhang — absorbing
    // quantization error in the leading compute phase, whose exact length
    // the solver treats as free time anyway. Only if the compute phase is
    // too short to absorb it does the period round up instead.
    let mut period = quantize_period(spec.iteration_time_at(nic), grid);
    let overhang = cursor.saturating_sub(period);
    if !overhang.is_zero() {
        if arcs[0].start >= overhang {
            for a in &mut arcs {
                a.start -= overhang;
                a.end -= overhang;
            }
        } else {
            let steps = cursor.as_nanos().div_ceil(grid.as_nanos()).max(1);
            period = grid * steps;
        }
    }
    Profile::new(period, arcs, 1.0)
}

/// Profiles jobs for **flow-schedule gating** (§4.iii).
///
/// A gate locks a job to a slot that repeats every `period`; the lock is
/// only stable if the job's *natural* iteration time never exceeds the
/// slot period (otherwise the forward pass finishes ever later, eventually
/// misses its slot, and stalls a full period). So slot periods are chosen
/// **at or above** each natural period, and **harmonically**: the hyper-
/// period `P` is the largest natural period rounded up to the grid, and
/// each job's slot period is `P / k` for the largest divisor-friendly `k`
/// that keeps the slot at or above the job's natural period. Every slot
/// period then divides `P`, so the unified circle's perimeter is exactly
/// `P` and the solver sees a compact instance.
///
/// The price of harmony is a bounded stretch: a job only takes a harmonic
/// slot if that slows it by at most `max_stretch` (default 10% via
/// [`gating_profiles`]); otherwise it keeps its own rounded-up period.
/// Slowing a job arbitrarily could "solve" any instance — a 150 ms BERT
/// gated at a 262.5 ms slot is compatible with anything and 75% slower —
/// so the cap is what keeps the solver's verdict meaningful. A job that
/// cannot take a harmonic slot usually renders the instance incompatible;
/// tune the batch instead ([`crate::tuner`]).
///
/// The returned profiles are what both the solver and
/// [`crate::gates_from_rotations`] must be fed — solving on one set of
/// periods and gating on another breaks the slot discipline.
pub fn gating_profiles(specs: &[JobSpec], nic: Bandwidth, grid: Dur) -> Vec<Profile> {
    gating_profiles_with_stretch(specs, nic, grid, 0.10)
}

/// [`gating_profiles`] with an explicit slot-stretch budget.
///
/// # Panics
/// Panics if `grid` is zero or `max_stretch` is negative.
pub fn gating_profiles_with_stretch(
    specs: &[JobSpec],
    nic: Bandwidth,
    grid: Dur,
    max_stretch: f64,
) -> Vec<Profile> {
    assert!(!grid.is_zero(), "gating_profiles: zero grid");
    assert!(max_stretch >= 0.0, "gating_profiles: negative stretch");
    let ceil_grid = |d: Dur| -> Dur {
        let steps = d.as_nanos().div_ceil(grid.as_nanos()).max(1);
        grid * steps
    };
    let naturals: Vec<Dur> = specs.iter().map(|s| s.iteration_time_at(nic)).collect();
    let p_max = ceil_grid(*naturals.iter().max().expect("at least one job"));
    specs
        .iter()
        .zip(&naturals)
        .map(|(s, &natural)| {
            // Largest k with k | P and P/k ≥ natural; k = 1 always works.
            let mut k = (p_max / natural).max(1);
            while p_max.as_nanos() % k != 0 {
                k -= 1;
            }
            let harmonic = Dur::from_nanos(p_max.as_nanos() / k);
            debug_assert!(harmonic >= natural);
            let own = ceil_grid(natural);
            let stretch = harmonic.ratio(natural) - 1.0;
            let period = if stretch <= max_stretch {
                harmonic
            } else {
                own
            };
            let comm = s.comm_time_at(nic);
            Profile::compute_then_comm(period - comm, comm)
        })
        .collect()
}

/// Profiles a job by running it alone on a dedicated link in the fluid
/// simulator for `iters` iterations and measuring the median iteration
/// time and communication-phase duration.
///
/// # Panics
/// Panics if `iters == 0` or the job fails to complete within a generous
/// time budget (100 iterations' worth of analytic time).
pub fn measured_profile(spec: &JobSpec, nic: Bandwidth, grid: Dur, iters: usize) -> Profile {
    measured_profile_traced(spec, nic, grid, iters, telemetry::NoopRecorder)
}

/// [`measured_profile`] with the profiling run's telemetry streamed into
/// `rec` — the phase transitions and solver passes of the isolated run
/// become inspectable alongside the experiment that requested the profile.
///
/// # Panics
/// Panics under the same conditions as [`measured_profile`].
pub fn measured_profile_traced<R: telemetry::Recorder>(
    spec: &JobSpec,
    nic: Bandwidth,
    grid: Dur,
    iters: usize,
    rec: R,
) -> Profile {
    assert!(iters > 0, "measured_profile: zero iterations");
    let d = dumbbell(1, nic, nic, Dur::ZERO);
    let path = d
        .topology
        .route(topology::FlowKey {
            src: d.left_hosts[0],
            dst: d.right_hosts[0],
            tag: 0,
        })
        .expect("dumbbell is connected");
    let job = FluidJob::single_path(*spec, path.links().to_vec());
    let cfg = FluidConfig {
        nic_rate: nic,
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::with_recorder(&d.topology, cfg, &[job], rec);
    let budget = spec.iteration_time_at(nic) * (iters as u64 * 4 + 16);
    let ok = sim.run_until_iterations(iters, budget);
    assert!(
        ok,
        "measured_profile: job did not complete {iters} iterations"
    );
    // Median iteration time from the run; comm = iteration − compute
    // (compute is an input, not something the network run changes).
    let times = sim.progress(0).iteration_times();
    let cdf = eventsim::Cdf::from_samples(times);
    let period_measured = cdf.median();
    let comm = period_measured.saturating_sub(spec.compute_time());
    let period = quantize_period(period_measured, grid).max(comm + grid);
    Profile::compute_then_comm(period - comm, comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Model;

    const LINE: Bandwidth = Bandwidth::from_gbps(50);
    const GRID: Dur = Dur::from_millis(1);

    #[test]
    fn analytic_profile_shape() {
        let spec = JobSpec::reference(Model::Vgg16, 1400);
        let p = analytic_profile(&spec, LINE, GRID);
        // Period snapped to 1 ms grid near 254.9 ms.
        assert_eq!(p.period(), Dur::from_millis(255));
        // Comm arc keeps its exact calibrated length (113.92 ms).
        assert_eq!(p.comm_time(), spec.comm_time_at(LINE));
        assert_eq!(p.arcs().len(), 1);
    }

    #[test]
    fn measured_matches_analytic() {
        for model in [Model::Vgg19, Model::ResNet50, Model::Dlrm] {
            let spec = JobSpec::reference(model, 1000);
            let analytic = analytic_profile(&spec, LINE, GRID);
            let measured = measured_profile(&spec, LINE, GRID, 3);
            assert_eq!(
                analytic.period(),
                measured.period(),
                "{model:?}: period mismatch"
            );
            let da = analytic.comm_time().as_millis_f64();
            let dm = measured.comm_time().as_millis_f64();
            assert!(
                (da - dm).abs() < 0.5,
                "{model:?}: comm {da:.2} vs measured {dm:.2} ms"
            );
        }
    }

    #[test]
    fn traced_profiling_run_is_observable() {
        let spec = JobSpec::reference(Model::Vgg19, 1000);
        let mut rec = telemetry::BufferRecorder::new();
        let traced = measured_profile_traced(&spec, LINE, GRID, 3, &mut rec);
        // Tracing never changes the measurement.
        let plain = measured_profile(&spec, LINE, GRID, 3);
        assert_eq!(traced.period(), plain.period());
        assert_eq!(traced.comm_time(), plain.comm_time());
        // The isolated run's phase transitions and solver passes landed in
        // the buffer.
        let kinds: std::collections::BTreeSet<&str> =
            rec.events().iter().map(|e| e.event.kind()).collect();
        assert!(kinds.contains("phase_enter"), "kinds: {kinds:?}");
        assert!(kinds.contains("phase_exit"));
        assert!(kinds.contains("solver_iteration"));
    }

    #[test]
    fn gating_profiles_round_up_and_align() {
        let grid = Dur::from_micros(2_500);
        // WRN(800) natural 255.04 ms, VGG16(1400) natural 254.90 ms:
        // rounded up to 257.5 and 255.0, within one grid step → aligned to
        // the common 257.5 ms so both lock to one slot cycle.
        let specs = [
            JobSpec::reference(Model::WideResNet50, 800),
            JobSpec::reference(Model::Vgg16, 1400),
        ];
        let ps = gating_profiles(&specs, LINE, grid);
        assert_eq!(ps[0].period(), ps[1].period());
        assert_eq!(ps[0].period(), Dur::from_micros(257_500));
        // Slot period never below the natural period (lock stability).
        for (p, s) in ps.iter().zip(&specs) {
            assert!(p.period() >= s.iteration_time_at(LINE));
            assert_eq!(p.comm_time(), s.comm_time_at(LINE));
        }
        // Far-apart jobs: DLRM anchors P = 1000 ms; ResNet50's nearest
        // harmonic slot (200 ms) would stretch it 40% — over the default
        // 10% budget, so it keeps its own rounded-up period (142.4 ms
        // natural → 142.5 ms).
        let far = [
            JobSpec::reference(Model::Dlrm, 2000),
            JobSpec::reference(Model::ResNet50, 1600),
        ];
        let ps = gating_profiles(&far, LINE, grid);
        assert_eq!(ps[0].period(), Dur::from_millis(1000));
        assert_eq!(ps[1].period(), Dur::from_micros(142_500));
        // With a generous stretch budget the harmonic slot is taken.
        let ps = gating_profiles_with_stretch(&far, LINE, grid, 0.5);
        assert_eq!(ps[1].period(), Dur::from_millis(200));
        assert_eq!(
            ps[0].period().as_nanos() % ps[1].period().as_nanos(),
            0,
            "slot periods divide the hyper-period"
        );
    }

    /// The Table 1 group-5 trio gets harmonic slots: both VGG jobs at the
    /// 287.5 ms hyper-period, ResNet50 at exactly half of it.
    #[test]
    fn gating_profiles_harmonic_trio() {
        let specs = [
            JobSpec::reference(Model::Vgg19, 1400),
            JobSpec::reference(Model::Vgg16, 1700),
            JobSpec::reference(Model::ResNet50, 1600),
        ];
        let ps = gating_profiles(&specs, LINE, Dur::from_micros(2_500));
        assert_eq!(ps[0].period(), Dur::from_micros(287_500));
        assert_eq!(ps[1].period(), Dur::from_micros(287_500));
        assert_eq!(ps[2].period(), Dur::from_micros(143_750));
        for (p, s) in ps.iter().zip(&specs) {
            assert!(p.period() >= s.iteration_time_at(LINE));
        }
    }

    #[test]
    fn tiny_job_period_is_at_least_comm_plus_grid() {
        // A pathological job whose iteration is under one grid step must
        // not produce an inverted profile.
        let spec = JobSpec::reference(Model::ResNet50, 1);
        let p = analytic_profile(&spec, LINE, Dur::from_millis(100));
        assert!(p.period() >= p.comm_time());
        assert!(p.comm_fraction() <= 1.0);
    }
}
