//! Hyper-parameter tuning for compatibility (§5, "Impact of
//! hyper-parameters").
//!
//! The paper observes that batch size shapes a job's circle — compute time
//! scales with batch while communication volume does not — and that this
//! "provides an opportunity for the scheduler to adjust the
//! hyper-parameters to improve the compatibility of jobs sharing links".
//! This module implements that opportunity: given a job about to be placed
//! and the profiles already resident on its links, search nearby batch
//! sizes for one whose circle rotates cleanly into the residents'.
//!
//! The search prefers batches closest to the requested one (smallest
//! change to the training recipe) and is bounded by a tolerance fraction —
//! an operator would not let the scheduler halve a user's batch size.

use crate::profiler::analytic_profile;
use geometry::{solve_on, Profile, SolverConfig, UnifiedCircle, Verdict};
use simtime::{Bandwidth, Dur};
use workload::JobSpec;

/// A successful tuning outcome.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The adjusted batch size.
    pub batch: u32,
    /// The adjusted job spec (same model/workers, new batch).
    pub spec: JobSpec,
    /// Relative change from the requested batch, signed.
    pub batch_change: f64,
    /// The compatible verdict (rotations include the residents, with the
    /// tuned job last).
    pub verdict: Verdict,
}

/// Searches batch sizes within `±tolerance` (fraction of the requested
/// batch) for one that makes `job` fully compatible with `residents` on a
/// shared link. Candidates are tried nearest-first; returns `None` if no
/// batch in range works (including the requested one).
///
/// `grid` is the period-quantization grid used for profiling — tuning
/// works *because* nearby batches can snap two jobs onto harmonically
/// related quantized periods.
///
/// # Panics
/// Panics if `tolerance` is not in `(0, 1)`.
pub fn tune_batch_for_compatibility(
    job: &JobSpec,
    residents: &[Profile],
    nic: Bandwidth,
    grid: Dur,
    solver: &SolverConfig,
    tolerance: f64,
) -> Option<TuneResult> {
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tune_batch: tolerance {tolerance} outside (0, 1)"
    );
    let requested = job.batch;
    let max_delta = ((requested as f64 * tolerance) as u32).max(1);
    // Step so the compute phase moves by roughly half a grid cell per
    // candidate — finer steps only re-test the same quantized period.
    let fwd_ns = job.model.params().fwd_ns_per_sample;
    let step = ((grid.as_nanos() / 2) / fwd_ns.max(1)).max(1) as u32;

    let mut deltas: Vec<i64> = vec![0];
    let mut d = step as i64;
    while d <= max_delta as i64 {
        deltas.push(d);
        deltas.push(-d);
        d += step as i64;
    }

    for delta in deltas {
        let batch = requested as i64 + delta;
        if batch < 1 {
            continue;
        }
        let candidate = JobSpec {
            batch: batch as u32,
            ..*job
        };
        let profile = analytic_profile(&candidate, nic, grid);
        let mut profiles: Vec<Profile> = residents.to_vec();
        profiles.push(profile);
        let Ok(uc) = UnifiedCircle::new(&profiles, solver.sectors) else {
            continue; // LCM overflow at this batch: not a usable period
        };
        let verdict = solve_on(&uc, solver);
        if verdict.is_compatible() {
            return Some(TuneResult {
                batch: batch as u32,
                spec: candidate,
                batch_change: delta as f64 / requested as f64,
                verdict,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Model;

    const LINE: Bandwidth = Bandwidth::from_gbps(50);
    const GRID: Dur = Dur::from_micros(2_500);

    #[test]
    fn already_compatible_batch_is_kept() {
        // WRN(800) + VGG16(1400) share a 255 ms period: compatible as-is.
        let resident = analytic_profile(&JobSpec::reference(Model::WideResNet50, 800), LINE, GRID);
        let job = JobSpec::reference(Model::Vgg16, 1400);
        let r = tune_batch_for_compatibility(
            &job,
            &[resident],
            LINE,
            GRID,
            &SolverConfig::default(),
            0.1,
        )
        .expect("already compatible");
        assert_eq!(r.batch, 1400, "no change needed");
        assert_eq!(r.batch_change, 0.0);
        assert!(r.verdict.is_compatible());
    }

    /// The paper's tuning opportunity: VGG16 at batch 1480 has a period
    /// incommensurate with WRN(800)'s — incompatible. A ≲6% batch
    /// reduction re-harmonizes the periods.
    #[test]
    fn tuning_recovers_compatibility() {
        let resident = analytic_profile(&JobSpec::reference(Model::WideResNet50, 800), LINE, GRID);
        let job = JobSpec::reference(Model::Vgg16, 1480);
        // Untuned: incompatible.
        let untuned = tune_batch_for_compatibility(
            &job,
            std::slice::from_ref(&resident),
            LINE,
            GRID,
            &SolverConfig::default(),
            0.001, // tolerance too small to change anything but 0
        );
        assert!(untuned.is_none(), "batch 1480 should not fit as-is");
        // Tuned within 10%: finds a compatible batch below 1480.
        let tuned = tune_batch_for_compatibility(
            &job,
            &[resident],
            LINE,
            GRID,
            &SolverConfig::default(),
            0.1,
        )
        .expect("a compatible batch exists within 10%");
        assert!(
            tuned.batch < 1480,
            "expected a reduction, got {}",
            tuned.batch
        );
        assert!(tuned.batch_change.abs() <= 0.1);
        assert!(tuned.verdict.is_compatible());
        // The tuned period must match WRN's quantized 255 ms (give or take
        // one grid step of harmonic alternatives).
        let period = analytic_profile(&tuned.spec, LINE, GRID).period();
        assert_eq!(period, Dur::from_micros(255_000), "period {period}");
    }

    #[test]
    fn hopeless_jobs_stay_incompatible() {
        // BERT(8) (73% comm) + VGG19(1200) (45% comm): no batch within
        // ±20% makes the fractions fit.
        let resident = analytic_profile(&JobSpec::reference(Model::Vgg19, 1200), LINE, GRID);
        let job = JobSpec::reference(Model::BertLarge, 8);
        let r = tune_batch_for_compatibility(
            &job,
            &[resident],
            LINE,
            GRID,
            &SolverConfig::default(),
            0.2,
        );
        assert!(r.is_none());
    }

    #[test]
    fn candidates_prefer_smallest_change() {
        // With no residents, every batch is compatible: the requested one
        // must win.
        let job = JobSpec::reference(Model::ResNet50, 1600);
        let r = tune_batch_for_compatibility(&job, &[], LINE, GRID, &SolverConfig::default(), 0.5);
        // No residents means the solver sees a single job: compatible.
        let r = r.expect("single job is always compatible");
        assert_eq!(r.batch, 1600);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn bad_tolerance_rejected() {
        let job = JobSpec::reference(Model::ResNet50, 1600);
        let _ = tune_batch_for_compatibility(&job, &[], LINE, GRID, &SolverConfig::default(), 1.5);
    }
}
