//! [`Bandwidth`] (bits per second) and [`ByteSize`] (bytes), with the
//! conversions a flow-level simulator needs.

use crate::Dur;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A data rate in bits per second.
///
/// Stored as integer bits/s so that common cluster rates (10/25/50/100/400
/// Gbps) are exact. Fractional rates from congestion-control math should be
/// carried as `f64` and converted at the edges via [`Bandwidth::from_bps_f64`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// A rate of `bps` bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Bandwidth {
        Bandwidth(bps)
    }

    /// A rate of `mbps` megabits per second (10^6 bits/s).
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Bandwidth {
        Bandwidth(mbps * 1_000_000)
    }

    /// A rate of `gbps` gigabits per second (10^9 bits/s).
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Bandwidth {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// A rate from fractional bits per second, rounded to the nearest bit/s.
    ///
    /// # Panics
    /// Panics if `bps` is negative, NaN or too large.
    #[inline]
    pub fn from_bps_f64(bps: f64) -> Bandwidth {
        assert!(
            bps >= 0.0 && bps.is_finite() && bps <= u64::MAX as f64,
            "Bandwidth::from_bps_f64: invalid rate {bps}"
        );
        Bandwidth(bps.round() as u64)
    }

    /// A rate from fractional gigabits per second.
    #[inline]
    pub fn from_gbps_f64(gbps: f64) -> Bandwidth {
        Bandwidth::from_bps_f64(gbps * 1e9)
    }

    /// The rate in bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// The rate in fractional gigabits per second.
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The rate in fractional bits per second.
    #[inline]
    pub fn as_bps_f64(self) -> f64 {
        self.0 as f64
    }

    /// `true` if the rate is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time needed to move `size` at this rate, rounded **up** to the
    /// next nanosecond (a transfer is only done once the last bit is out).
    ///
    /// # Panics
    /// Panics if the rate is zero and `size` is non-zero.
    #[inline]
    pub fn time_to_send(self, size: ByteSize) -> Dur {
        if size.as_bytes() == 0 {
            return Dur::ZERO;
        }
        assert!(!self.is_zero(), "Bandwidth::time_to_send: zero rate");
        let bits = size.as_bytes() as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        debug_assert!(ns <= u64::MAX as u128, "transfer time overflows u64 ns");
        Dur::from_nanos(ns as u64)
    }

    /// Bytes moved in `dt` at this rate (truncating to whole bytes).
    #[inline]
    pub fn bytes_in(self, dt: Dur) -> ByteSize {
        let bits = self.0 as u128 * dt.as_nanos() as u128 / 1_000_000_000;
        ByteSize::from_bytes((bits / 8) as u64)
    }

    /// This rate scaled by a non-negative factor.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Bandwidth {
        assert!(k >= 0.0 && k.is_finite(), "Bandwidth::mul_f64: invalid {k}");
        Bandwidth::from_bps_f64(self.0 as f64 * k)
    }

    /// The fraction `self / total` in `[0, ∞)`.
    ///
    /// # Panics
    /// Panics if `total` is zero.
    #[inline]
    pub fn fraction_of(self, total: Bandwidth) -> f64 {
        assert!(!total.is_zero(), "Bandwidth::fraction_of: zero total");
        self.0 as f64 / total.0 as f64
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rates.
    #[inline]
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    #[inline]
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl SubAssign for Bandwidth {
    #[inline]
    fn sub_assign(&mut self, rhs: Bandwidth) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn mul(self, k: u64) -> Bandwidth {
        Bandwidth(self.0 * k)
    }
}

impl Div<u64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn div(self, k: u64) -> Bandwidth {
        Bandwidth(self.0 / k)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", bps as f64 / 1e9)
        } else if bps >= 1_000_000 {
            write!(f, "{:.2}Mbps", bps as f64 / 1e6)
        } else if bps >= 1_000 {
            write!(f, "{:.2}Kbps", bps as f64 / 1e3)
        } else {
            write!(f, "{bps}bps")
        }
    }
}

/// A number of bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// `b` bytes.
    #[inline]
    pub const fn from_bytes(b: u64) -> ByteSize {
        ByteSize(b)
    }

    /// `kb` kilobytes (10^3 bytes).
    #[inline]
    pub const fn from_kb(kb: u64) -> ByteSize {
        ByteSize(kb * 1_000)
    }

    /// `mb` megabytes (10^6 bytes).
    #[inline]
    pub const fn from_mb(mb: u64) -> ByteSize {
        ByteSize(mb * 1_000_000)
    }

    /// `gb` gigabytes (10^9 bytes).
    #[inline]
    pub const fn from_gb(gb: u64) -> ByteSize {
        ByteSize(gb * 1_000_000_000)
    }

    /// The size in bytes.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The size in bits.
    #[inline]
    pub const fn as_bits(self) -> u64 {
        self.0 * 8
    }

    /// The size in fractional megabytes.
    #[inline]
    pub fn as_mb_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two sizes.
    #[inline]
    pub fn min(self, other: ByteSize) -> ByteSize {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// This size scaled by a non-negative factor, rounded to whole bytes.
    #[inline]
    pub fn mul_f64(self, k: f64) -> ByteSize {
        assert!(k >= 0.0 && k.is_finite(), "ByteSize::mul_f64: invalid {k}");
        ByteSize((self.0 as f64 * k).round() as u64)
    }

    /// The minimum constant rate that moves this size within `dt`.
    ///
    /// # Panics
    /// Panics if `dt` is zero.
    #[inline]
    pub fn rate_over(self, dt: Dur) -> Bandwidth {
        assert!(!dt.is_zero(), "ByteSize::rate_over: zero duration");
        let bps = self.0 as u128 * 8 * 1_000_000_000 / dt.as_nanos() as u128;
        debug_assert!(bps <= u64::MAX as u128);
        Bandwidth::from_bps(bps as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    #[inline]
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, k: u64) -> ByteSize {
        ByteSize(self.0 * k)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn div(self, k: u64) -> ByteSize {
        ByteSize(self.0 / k)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1_000_000_000 {
            write!(f, "{:.2}GB", b as f64 / 1e9)
        } else if b >= 1_000_000 {
            write!(f, "{:.2}MB", b as f64 / 1e6)
        } else if b >= 1_000 {
            write!(f, "{:.2}KB", b as f64 / 1e3)
        } else {
            write!(f, "{b}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_constructors() {
        assert_eq!(Bandwidth::from_gbps(50).as_bps(), 50_000_000_000);
        assert_eq!(Bandwidth::from_mbps(1_000), Bandwidth::from_gbps(1));
        assert_eq!(Bandwidth::from_gbps_f64(0.5), Bandwidth::from_mbps(500));
    }

    #[test]
    fn time_to_send_exact() {
        // 712 MB at 50 Gbps = 712e6 * 8 / 50e9 s = 113.92 ms.
        let t = Bandwidth::from_gbps(50).time_to_send(ByteSize::from_mb(712));
        assert_eq!(t, Dur::from_micros(113_920));
    }

    #[test]
    fn time_to_send_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s → rounds up to the next ns.
        let t = Bandwidth::from_bps(3).time_to_send(ByteSize::from_bytes(1));
        assert_eq!(t.as_nanos(), 2_666_666_667);
        // Zero bytes is instant even at zero rate.
        assert_eq!(Bandwidth::ZERO.time_to_send(ByteSize::ZERO), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero rate")]
    fn time_to_send_zero_rate_panics() {
        let _ = Bandwidth::ZERO.time_to_send(ByteSize::from_bytes(1));
    }

    #[test]
    fn bytes_in_window() {
        // 50 Gbps for 1 ms = 6.25 MB.
        let b = Bandwidth::from_gbps(50).bytes_in(Dur::from_millis(1));
        assert_eq!(b, ByteSize::from_bytes(6_250_000));
    }

    #[test]
    fn rate_over_inverts_time_to_send() {
        let size = ByteSize::from_mb(100);
        let dt = Dur::from_millis(20);
        let rate = size.rate_over(dt);
        assert_eq!(rate, Bandwidth::from_gbps(40));
        assert_eq!(rate.time_to_send(size), dt);
    }

    #[test]
    fn fraction_and_scale() {
        let half = Bandwidth::from_gbps(25);
        let full = Bandwidth::from_gbps(50);
        assert_eq!(half.fraction_of(full), 0.5);
        assert_eq!(full.mul_f64(0.3), Bandwidth::from_gbps(15));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::from_gbps(50).to_string(), "50.00Gbps");
        assert_eq!(Bandwidth::from_mbps(21).to_string(), "21.00Mbps");
        assert_eq!(ByteSize::from_mb(712).to_string(), "712.00MB");
        assert_eq!(ByteSize::from_bytes(42).to_string(), "42B");
    }

    proptest! {
        #[test]
        fn send_then_measure_roundtrip(
            mb in 1u64..10_000,
            gbps in 1u64..400,
        ) {
            let size = ByteSize::from_mb(mb);
            let rate = Bandwidth::from_gbps(gbps);
            let t = rate.time_to_send(size);
            let moved = rate.bytes_in(t);
            // time_to_send rounds up, so we moved at least `size` but at
            // most one extra "nanosecond worth" of bytes.
            prop_assert!(moved >= size);
            let slack = rate.bytes_in(Dur::from_nanos(2)) + ByteSize::from_bytes(1);
            prop_assert!(moved.saturating_sub(size) <= slack);
        }

        #[test]
        fn bytes_in_monotone(gbps in 1u64..400, a in 0u64..10_000_000, b in 0u64..10_000_000) {
            let rate = Bandwidth::from_gbps(gbps);
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(rate.bytes_in(Dur::from_nanos(lo)) <= rate.bytes_in(Dur::from_nanos(hi)));
        }
    }
}
